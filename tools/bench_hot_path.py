#!/usr/bin/env python
"""Per-stage hot-path benchmark: the repo's perf trajectory capture.

Times the four stages of a campaign iteration — generate, search, compile,
oracle — on a pinned deterministic workload and writes a ``BENCH_<n>.json``
trajectory point (iterations/sec per stage plus cache hit rates) into
``benchmarks/``.  Every PR appends a point by re-running ``make bench``, so
speed claims are measured, not asserted; CI only validates the schema
(``tests/test_bench_hot_path.py``), never thresholds.

The compile stage runs two passes over the same exported models: the second
pass is the repeated-graph workload of a real campaign (multiple oracles
and O0 fault-localization recompile identical graphs), and its artifact-
cache hit rate is reported alongside the timing.

Schema v2 (PR 9) adds three compiled-plan sections:

``interpreter``
    Reference-interpreter iterations/sec through the legacy dict loop
    (``plain``), the compiled slab loop (``compiled``), and the batched
    sweep (``batched``) on a pinned repeated-graph workload.
``oracle_gradcheck``
    End-to-end reference gradcheck judge throughput (autodiff verdict on a
    probe-heavy multi-input model), sequential FD probes vs one batched
    sweep through the compiled plan.
``prefix_campaign``
    Prefix value-cache hit rate when a campaign's seed stream is replayed
    through a warm process cache — the motif-repeat workload.

Usage::

    python tools/bench_hot_path.py [--iterations N] [--seed S]
                                   [--output PATH] [--no-cache]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

SCHEMA_VERSION = 2
KNOWN_SCHEMAS = (1, 2)
STAGE_NAMES = ("generate", "search", "compile", "oracle")
INTERPRETER_MODES = ("plain", "compiled", "batched")


def _stage(count: int, seconds: float) -> Dict[str, float]:
    return {
        "count": count,
        "seconds": round(seconds, 6),
        "iterations_per_sec": round(count / seconds, 3) if seconds > 0
        else float(count),
    }


def _probe_heavy_model():
    """Four float inputs feeding an elementwise/softmax chain: every input
    is a gradcheck target, so a case carries 4 tensors x 3 samples x 2
    sides = 24 FD probe runs — the workload batched sweeps amortize."""
    from repro.dtypes import DType
    from repro.graph.model import Model
    from repro.graph.node import Node
    from repro.graph.tensor_type import TensorType

    model = Model("bench-probe-heavy")
    ttype = TensorType((2, 8), DType.float32)
    for name in ("a", "b", "c", "d"):
        model.add_input(name, ttype)
    model.add_node(Node("Add", "add0", ["a", "b"], ["s0"]), [ttype])
    model.add_node(Node("Mul", "mul0", ["s0", "c"], ["s1"]), [ttype])
    model.add_node(Node("Add", "add1", ["s1", "d"], ["s2"]), [ttype])
    model.add_node(Node("Relu", "relu0", ["s2"], ["s3"]), [ttype])
    model.add_node(Node("Softmax", "sm0", ["s3"], ["y"],
                        attrs={"axis": -1}), [ttype])
    model.mark_output("y")
    return model


def _bench_interpreter(repeats: int, enable_cache: bool) -> Dict[str, Dict]:
    """Plain vs compiled vs batched iterations/sec on one pinned model.

    The workload repeats one graph (the repeated-graph premise); with
    caching disabled every mode runs the legacy loop, so the section still
    reports honest numbers for the cold path."""
    import numpy as np

    from repro.core import cache
    from repro.runtime.interpreter import Interpreter, random_inputs
    from repro.testing import build_mlp_model

    model = build_mlp_model()
    inputs = random_inputs(model, np.random.default_rng(0))
    interp = Interpreter(record_intermediates=False)

    def timed_loop(plan: bool) -> Dict[str, float]:
        cache.reset()
        cache.configure(enabled=enable_cache, plan=plan, prefix=False)
        interp.run_detailed(model, inputs)  # warm the plan/compile caches
        start = time.perf_counter()
        for _ in range(repeats):
            interp.run_detailed(model, inputs)
        return _stage(repeats, time.perf_counter() - start)

    section = {"plain": timed_loop(False),
               "compiled": timed_loop(enable_cache)}

    cache.reset()
    cache.configure(enabled=enable_cache, plan=enable_cache, prefix=False)
    compiled, _plan = cache.compiled_execution(model)
    if compiled is None:
        # Cold path: per-sample sequential runs stand in for the sweep.
        start = time.perf_counter()
        batch = [random_inputs(model, np.random.default_rng(k))
                 for k in range(32)]
        count = 0
        while count < repeats:
            for sample in batch:
                interp.run_detailed(model, sample)
            count += len(batch)
        section["batched"] = _stage(count, time.perf_counter() - start)
    else:
        batch = [random_inputs(model, np.random.default_rng(k))
                 for k in range(32)]
        compiled.execute_batched(model, batch)
        start = time.perf_counter()
        count = 0
        while count < repeats:
            compiled.execute_batched(model, batch)
            count += len(batch)
        section["batched"] = _stage(count, time.perf_counter() - start)

    plain_rate = section["plain"]["iterations_per_sec"] or 1.0
    section["speedup_compiled"] = round(
        section["compiled"]["iterations_per_sec"] / plain_rate, 3)
    section["speedup_batched"] = round(
        section["batched"]["iterations_per_sec"] / plain_rate, 3)
    return section


def _bench_oracle_gradcheck(cases: int, enable_cache: bool) -> Dict:
    """Reference gradcheck judge (autodiff verdict): sequential FD probes
    vs one batched sweep per case on the probe-heavy model."""
    from repro.compilers.bugs import BugConfig
    from repro.core import cache
    from repro.core.oracle import build_oracle

    model = _probe_heavy_model()

    def timed_judge(plan: bool) -> Dict[str, float]:
        cache.reset()
        cache.configure(enabled=enable_cache, plan=plan, prefix=plan)
        tester = build_oracle("gradcheck", [], bugs=BugConfig.none())
        tester.run_case(model)  # warm
        start = time.perf_counter()
        for _ in range(cases):
            tester.run_case(model)
        return _stage(cases, time.perf_counter() - start)

    sequential = timed_judge(False)
    batched = timed_judge(enable_cache)
    rate = sequential["iterations_per_sec"] or 1.0
    return {
        "sequential": sequential,
        "batched": batched,
        "speedup": round(batched["iterations_per_sec"] / rate, 3),
    }


def _bench_prefix_campaign(config) -> Dict:
    """Replay one campaign seed stream through a warm process cache and
    report the prefix value-cache hit rate of the replay (the motif-repeat
    workload: identical structures under fresh Model objects)."""
    from repro.compilers.bugs import BugConfig
    from repro.core import cache
    from repro.core.fuzzer import Fuzzer
    from repro.core.parallel import default_compiler_factory

    cache.reset()
    cache.configure(enabled=config.enable_cache,
                    artifact=config.enable_cache,
                    plan=config.enable_cache, prefix=config.enable_cache)
    Fuzzer(default_compiler_factory(BugConfig.all()), config).run()
    replay = Fuzzer(default_compiler_factory(BugConfig.all()), config).run()
    prefix = replay.cache_stats.get("prefix", {"hits": 0, "misses": 0})
    lookups = prefix["hits"] + prefix["misses"]
    return {
        "hits": prefix["hits"],
        "misses": prefix["misses"],
        "hit_rate": round(prefix["hits"] / lookups, 4) if lookups else 0.0,
    }


def run_benchmark(iterations: int = 40, seed: int = 0, n_nodes: int = 8,
                  enable_cache: bool = True) -> Dict:
    """Run all four stages and return the BENCH payload (no I/O)."""
    from repro.compilers.bugs import BugConfig
    from repro.core import cache
    from repro.core.fuzzer import (generate_for_iteration, iteration_rng,
                                   single_iteration_result)
    from repro.core.oracle import build_oracle
    from repro.core.parallel import default_compiler_factory
    from repro.core.value_search import search_values
    from repro.testing import tiny_campaign_config

    config = tiny_campaign_config(iterations=iterations, seed=seed,
                                  n_nodes=n_nodes)
    import dataclasses
    config = dataclasses.replace(config, enable_cache=enable_cache)
    cache.reset()
    cache.configure(enabled=enable_cache, artifact=enable_cache,
                    plan=enable_cache, prefix=enable_cache)

    stages: Dict[str, Dict[str, float]] = {}

    # -- generate ----------------------------------------------------------
    start = time.perf_counter()
    generated = [generate_for_iteration(config, iteration)
                 for iteration in range(1, iterations + 1)]
    stages["generate"] = _stage(iterations, time.perf_counter() - start)
    models = [item.model for item in generated if item is not None]

    # -- search ------------------------------------------------------------
    start = time.perf_counter()
    for index, model in enumerate(models, start=1):
        search_values(model, method=config.value_search_method,
                      rng=iteration_rng(config, index),
                      time_budget=config.value_search_budget,
                      max_steps=config.value_search_max_steps)
    stages["search"] = _stage(len(models), time.perf_counter() - start)

    # -- compile (two passes: cold, then the repeated-graph workload) ------
    from repro.core.cache import compile_with_cache
    from repro.errors import ReproError
    from repro.runtime.exporter import export_model

    compilers = default_compiler_factory(BugConfig.all())
    exported = [export_model(model) for model in models]
    before_compile = cache.stats_snapshot()
    compile_calls = 0
    start = time.perf_counter()
    for _ in range(2):
        for model in exported:
            for compiler in compilers:
                compile_calls += 1
                try:
                    compile_with_cache(compiler, model)
                except ReproError:
                    pass
    stages["compile"] = _stage(compile_calls, time.perf_counter() - start)
    compile_delta = cache.stats_delta(before_compile)

    # -- oracle (the full judged iteration, end to end) --------------------
    tester = build_oracle(config.oracle, compilers, bugs=config.bugs)
    start = time.perf_counter()
    for iteration in range(1, iterations + 1):
        single_iteration_result(tester, config, iteration)
    stages["oracle"] = _stage(iterations, time.perf_counter() - start)

    artifact = compile_delta.get("artifact", {"hits": 0, "misses": 0})
    lookups = artifact["hits"] + artifact["misses"]
    stats = cache.stats_snapshot()

    # -- compiled-plan sections (schema v2) --------------------------------
    interpreter = _bench_interpreter(repeats=max(200, 50 * iterations),
                                     enable_cache=enable_cache)
    oracle_gradcheck = _bench_oracle_gradcheck(
        cases=max(20, 2 * iterations), enable_cache=enable_cache)
    prefix_campaign = _bench_prefix_campaign(config)
    cache.reset()
    cache.configure(enabled=enable_cache, artifact=enable_cache,
                    plan=enable_cache, prefix=enable_cache)

    return {
        "schema_version": SCHEMA_VERSION,
        "label": "bench_hot_path",
        "config": {
            "iterations": iterations,
            "seed": seed,
            "n_nodes": n_nodes,
            "cache_enabled": enable_cache,
        },
        "stages": {name: stages[name] for name in STAGE_NAMES},
        "interpreter": interpreter,
        "oracle_gradcheck": oracle_gradcheck,
        "prefix_campaign": prefix_campaign,
        "cache": {
            "stats": stats,
            "compile_stage_artifact_hit_rate": (
                round(artifact["hits"] / lookups, 4) if lookups else 0.0),
        },
    }


def _check_stage(entry, label: str, problems: List[str]) -> None:
    if not isinstance(entry, dict):
        problems.append(f"stage {label!r} missing")
        return
    for field in ("count", "seconds", "iterations_per_sec"):
        value = entry.get(field)
        if not isinstance(value, (int, float)) or value < 0:
            problems.append(f"stage {label!r}: bad {field!r}: {value!r}")


def validate_payload(payload: Dict) -> List[str]:
    """Schema check shared with the tier-1 smoke test.  Returns problems."""
    problems = []
    version = payload.get("schema_version")
    if version not in KNOWN_SCHEMAS:
        problems.append("schema_version missing or unknown")
        return problems
    stages = payload.get("stages")
    if not isinstance(stages, dict):
        problems.append("stages missing")
        return problems
    for name in STAGE_NAMES:
        _check_stage(stages.get(name), name, problems)
    cache_info = payload.get("cache")
    if not isinstance(cache_info, dict) or "stats" not in cache_info:
        problems.append("cache stats missing")
    if version >= 2:
        interpreter = payload.get("interpreter")
        if not isinstance(interpreter, dict):
            problems.append("interpreter section missing")
        else:
            for mode in INTERPRETER_MODES:
                _check_stage(interpreter.get(mode),
                             f"interpreter.{mode}", problems)
            for field in ("speedup_compiled", "speedup_batched"):
                if not isinstance(interpreter.get(field), (int, float)):
                    problems.append(f"interpreter: bad {field!r}")
        gradcheck = payload.get("oracle_gradcheck")
        if not isinstance(gradcheck, dict):
            problems.append("oracle_gradcheck section missing")
        else:
            _check_stage(gradcheck.get("sequential"),
                         "oracle_gradcheck.sequential", problems)
            _check_stage(gradcheck.get("batched"),
                         "oracle_gradcheck.batched", problems)
            if not isinstance(gradcheck.get("speedup"), (int, float)):
                problems.append("oracle_gradcheck: bad 'speedup'")
        prefix = payload.get("prefix_campaign")
        if not isinstance(prefix, dict):
            problems.append("prefix_campaign section missing")
        else:
            for field in ("hits", "misses", "hit_rate"):
                value = prefix.get(field)
                if not isinstance(value, (int, float)) or value < 0:
                    problems.append(f"prefix_campaign: bad {field!r}")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--iterations", type=int, default=40,
                        help="iterations per stage (default 40)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--nodes", type=int, default=8,
                        help="nodes per generated model")
    parser.add_argument("--output", default=None, metavar="PATH",
                        help="write the JSON payload here "
                             "(default: print to stdout)")
    parser.add_argument("--no-cache", action="store_true",
                        help="benchmark the cold path (caches disabled)")
    args = parser.parse_args(argv)

    payload = run_benchmark(iterations=args.iterations, seed=args.seed,
                            n_nodes=args.nodes,
                            enable_cache=not args.no_cache)
    problems = validate_payload(payload)
    if problems:
        print("schema problems:", problems, file=sys.stderr)
        return 1
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        summary = ", ".join(
            f"{name} {payload['stages'][name]['iterations_per_sec']}/s"
            for name in STAGE_NAMES)
        hit_rate = payload["cache"]["compile_stage_artifact_hit_rate"]
        interp = payload["interpreter"]
        print(f"wrote {args.output}: {summary} "
              f"(compile-stage artifact hit rate {hit_rate})")
        print(f"interpreter: plain "
              f"{interp['plain']['iterations_per_sec']}/s, compiled "
              f"{interp['compiled']['iterations_per_sec']}/s "
              f"({interp['speedup_compiled']}x), batched "
              f"{interp['batched']['iterations_per_sec']}/s "
              f"({interp['speedup_batched']}x); gradcheck batched "
              f"{payload['oracle_gradcheck']['speedup']}x; prefix hit rate "
              f"{payload['prefix_campaign']['hit_rate']}")
    else:
        print(text, end="")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
