#!/usr/bin/env python
"""Per-stage hot-path benchmark: the repo's perf trajectory capture.

Times the four stages of a campaign iteration — generate, search, compile,
oracle — on a pinned deterministic workload and writes a ``BENCH_<n>.json``
trajectory point (iterations/sec per stage plus cache hit rates) into
``benchmarks/``.  Every PR appends a point by re-running ``make bench``, so
speed claims are measured, not asserted; CI only validates the schema
(``tests/test_bench_hot_path.py``), never thresholds.

The compile stage runs two passes over the same exported models: the second
pass is the repeated-graph workload of a real campaign (multiple oracles
and O0 fault-localization recompile identical graphs), and its artifact-
cache hit rate is reported alongside the timing.

Usage::

    python tools/bench_hot_path.py [--iterations N] [--seed S]
                                   [--output PATH] [--no-cache]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

SCHEMA_VERSION = 1
STAGE_NAMES = ("generate", "search", "compile", "oracle")


def _stage(count: int, seconds: float) -> Dict[str, float]:
    return {
        "count": count,
        "seconds": round(seconds, 6),
        "iterations_per_sec": round(count / seconds, 3) if seconds > 0
        else float(count),
    }


def run_benchmark(iterations: int = 40, seed: int = 0, n_nodes: int = 8,
                  enable_cache: bool = True) -> Dict:
    """Run all four stages and return the BENCH payload (no I/O)."""
    from repro.compilers.bugs import BugConfig
    from repro.core import cache
    from repro.core.fuzzer import (generate_for_iteration, iteration_rng,
                                   single_iteration_result)
    from repro.core.oracle import build_oracle
    from repro.core.parallel import default_compiler_factory
    from repro.core.value_search import search_values
    from repro.testing import tiny_campaign_config

    config = tiny_campaign_config(iterations=iterations, seed=seed,
                                  n_nodes=n_nodes)
    import dataclasses
    config = dataclasses.replace(config, enable_cache=enable_cache)
    cache.reset()
    cache.configure(enabled=enable_cache, artifact=enable_cache)

    stages: Dict[str, Dict[str, float]] = {}

    # -- generate ----------------------------------------------------------
    start = time.perf_counter()
    generated = [generate_for_iteration(config, iteration)
                 for iteration in range(1, iterations + 1)]
    stages["generate"] = _stage(iterations, time.perf_counter() - start)
    models = [item.model for item in generated if item is not None]

    # -- search ------------------------------------------------------------
    start = time.perf_counter()
    for index, model in enumerate(models, start=1):
        search_values(model, method=config.value_search_method,
                      rng=iteration_rng(config, index),
                      time_budget=config.value_search_budget,
                      max_steps=config.value_search_max_steps)
    stages["search"] = _stage(len(models), time.perf_counter() - start)

    # -- compile (two passes: cold, then the repeated-graph workload) ------
    from repro.core.cache import compile_with_cache
    from repro.errors import ReproError
    from repro.runtime.exporter import export_model

    compilers = default_compiler_factory(BugConfig.all())
    exported = [export_model(model) for model in models]
    before_compile = cache.stats_snapshot()
    compile_calls = 0
    start = time.perf_counter()
    for _ in range(2):
        for model in exported:
            for compiler in compilers:
                compile_calls += 1
                try:
                    compile_with_cache(compiler, model)
                except ReproError:
                    pass
    stages["compile"] = _stage(compile_calls, time.perf_counter() - start)
    compile_delta = cache.stats_delta(before_compile)

    # -- oracle (the full judged iteration, end to end) --------------------
    tester = build_oracle(config.oracle, compilers, bugs=config.bugs)
    start = time.perf_counter()
    for iteration in range(1, iterations + 1):
        single_iteration_result(tester, config, iteration)
    stages["oracle"] = _stage(iterations, time.perf_counter() - start)

    artifact = compile_delta.get("artifact", {"hits": 0, "misses": 0})
    lookups = artifact["hits"] + artifact["misses"]
    return {
        "schema_version": SCHEMA_VERSION,
        "label": "bench_hot_path",
        "config": {
            "iterations": iterations,
            "seed": seed,
            "n_nodes": n_nodes,
            "cache_enabled": enable_cache,
        },
        "stages": {name: stages[name] for name in STAGE_NAMES},
        "cache": {
            "stats": cache.stats_snapshot(),
            "compile_stage_artifact_hit_rate": (
                round(artifact["hits"] / lookups, 4) if lookups else 0.0),
        },
    }


def validate_payload(payload: Dict) -> List[str]:
    """Schema check shared with the tier-1 smoke test.  Returns problems."""
    problems = []
    if payload.get("schema_version") != SCHEMA_VERSION:
        problems.append("schema_version missing or unknown")
    stages = payload.get("stages")
    if not isinstance(stages, dict):
        problems.append("stages missing")
        return problems
    for name in STAGE_NAMES:
        entry = stages.get(name)
        if not isinstance(entry, dict):
            problems.append(f"stage {name!r} missing")
            continue
        for field in ("count", "seconds", "iterations_per_sec"):
            value = entry.get(field)
            if not isinstance(value, (int, float)) or value < 0:
                problems.append(f"stage {name!r}: bad {field!r}: {value!r}")
    cache_info = payload.get("cache")
    if not isinstance(cache_info, dict) or "stats" not in cache_info:
        problems.append("cache stats missing")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--iterations", type=int, default=40,
                        help="iterations per stage (default 40)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--nodes", type=int, default=8,
                        help="nodes per generated model")
    parser.add_argument("--output", default=None, metavar="PATH",
                        help="write the JSON payload here "
                             "(default: print to stdout)")
    parser.add_argument("--no-cache", action="store_true",
                        help="benchmark the cold path (caches disabled)")
    args = parser.parse_args(argv)

    payload = run_benchmark(iterations=args.iterations, seed=args.seed,
                            n_nodes=args.nodes,
                            enable_cache=not args.no_cache)
    problems = validate_payload(payload)
    if problems:
        print("schema problems:", problems, file=sys.stderr)
        return 1
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        summary = ", ".join(
            f"{name} {payload['stages'][name]['iterations_per_sec']}/s"
            for name in STAGE_NAMES)
        hit_rate = payload["cache"]["compile_stage_artifact_hit_rate"]
        print(f"wrote {args.output}: {summary} "
              f"(compile-stage artifact hit rate {hit_rate})")
    else:
        print(text, end="")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
