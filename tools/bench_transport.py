#!/usr/bin/env python
"""Transport-overhead benchmark: local pool vs socket fleet.

Runs the same seeded campaign twice — once on the multiprocessing
``LocalTransport`` pool, once as a real coordinator service draining a
2-worker ``SocketTransport`` fleet over localhost TCP — and writes a
``BENCH_8.json`` trajectory point: iterations/sec per transport, mean
lease offer→claim round-trip latency, and the socket/local wall-clock
overhead ratio.  The fabric's design target is ≤1.2× (socket framing and
heartbeats must never dominate real fuzzing compute); CI validates only
the schema (``tests/test_bench_transport.py``), never the timings —
trajectory capture, not a perf gate.

The run also cross-checks correctness: both transports must produce the
same campaign signature (bit-identical findings), or the payload records
``findings_equal: false`` and the tool exits non-zero.

Usage::

    python tools/bench_transport.py [--iterations N] [--seed S]
                                    [--output PATH]
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import sys
import time
from typing import Dict, List

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

SCHEMA_VERSION = 1
TRANSPORT_NAMES = ("local", "socket")
#: Design target: a localhost socket fleet stays within 20% of the local
#: pool's wall clock on a compute-bound campaign.
TARGET_MAX_OVERHEAD_RATIO = 1.2


def _silent(_message: str) -> None:
    """Worker log sink (fleet chatter stays out of the benchmark output)."""


def _transport_entry(iterations: int, seconds: float,
                     status: Dict) -> Dict[str, object]:
    latency = status.get("lease_latency", {})
    return {
        "seconds": round(seconds, 6),
        "iterations_per_sec": round(iterations / seconds, 3) if seconds > 0
        else float(iterations),
        "lease_claims": latency.get("claims", 0),
        "lease_latency_mean_seconds": latency.get("mean_seconds"),
    }


def run_benchmark(iterations: int = 24, seed: int = 13, n_nodes: int = 5,
                  n_workers: int = 2) -> Dict:
    """Run the campaign on both transports and return the BENCH payload."""
    from repro.core.fabric.service import run_fabric_worker
    from repro.core.fabric.transport import SocketTransport
    from repro.core.parallel import ParallelCampaign, default_compiler_factory
    from repro.testing import campaign_signature, tiny_campaign_config

    config = tiny_campaign_config(iterations=iterations, seed=seed,
                                  n_nodes=n_nodes)

    # -- local pool --------------------------------------------------------
    local_campaign = ParallelCampaign(config=config, n_workers=n_workers,
                                      n_shards=n_workers)
    start = time.perf_counter()
    local_result = local_campaign.run()
    local_seconds = time.perf_counter() - start

    # -- socket fleet ------------------------------------------------------
    transport = SocketTransport(host="127.0.0.1", port=0)
    transport.start([], default_compiler_factory)
    context = multiprocessing.get_context("fork")
    workers = [
        context.Process(target=run_fabric_worker,
                        kwargs={"host": "127.0.0.1", "port": transport.port,
                                "name": f"bench-w{index}", "log": _silent},
                        daemon=True)
        for index in range(n_workers)
    ]
    for process in workers:
        process.start()
    socket_campaign = ParallelCampaign(config=config, n_workers=n_workers,
                                       n_shards=n_workers,
                                       transport=transport)
    start = time.perf_counter()
    try:
        socket_result = socket_campaign.run()
    finally:
        for process in workers:
            process.join(timeout=20)
            if process.is_alive():
                process.terminate()
    socket_seconds = time.perf_counter() - start

    return {
        "schema_version": SCHEMA_VERSION,
        "label": "bench_transport",
        "config": {
            "iterations": iterations,
            "seed": seed,
            "n_nodes": n_nodes,
            "n_workers": n_workers,
        },
        "transports": {
            "local": _transport_entry(local_result.iterations, local_seconds,
                                      local_campaign.last_status),
            "socket": _transport_entry(socket_result.iterations,
                                       socket_seconds,
                                       socket_campaign.last_status),
        },
        "overhead_ratio": round(socket_seconds / max(local_seconds, 1e-9), 4),
        "target_max_overhead_ratio": TARGET_MAX_OVERHEAD_RATIO,
        "findings_equal": (campaign_signature(socket_result)
                           == campaign_signature(local_result)),
    }


def validate_payload(payload: Dict) -> List[str]:
    """Schema check for a BENCH_8 payload; returns a list of problems."""
    problems = []
    if payload.get("schema_version") != SCHEMA_VERSION:
        problems.append("schema_version missing or wrong")
    if payload.get("label") != "bench_transport":
        problems.append("label must be 'bench_transport'")
    transports = payload.get("transports")
    if not isinstance(transports, dict):
        problems.append("transports missing")
        return problems
    for name in TRANSPORT_NAMES:
        entry = transports.get(name)
        if not isinstance(entry, dict):
            problems.append(f"transports.{name} missing")
            continue
        for key in ("seconds", "iterations_per_sec", "lease_claims",
                    "lease_latency_mean_seconds"):
            if key not in entry:
                problems.append(f"transports.{name}.{key} missing")
    for key in ("overhead_ratio", "findings_equal", "config"):
        if key not in payload:
            problems.append(f"{key} missing")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark local-pool vs socket-fleet campaign "
                    "throughput and lease latency.")
    parser.add_argument("--iterations", type=int, default=24)
    parser.add_argument("--seed", type=int, default=13)
    parser.add_argument("--nodes", type=int, default=5)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--output", default=os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "benchmarks", "BENCH_8.json"))
    args = parser.parse_args(argv)

    payload = run_benchmark(iterations=args.iterations, seed=args.seed,
                            n_nodes=args.nodes, n_workers=args.workers)
    problems = validate_payload(payload)
    if problems:
        print("schema problems:", "; ".join(problems), file=sys.stderr)
        return 1
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    local = payload["transports"]["local"]
    socket_entry = payload["transports"]["socket"]
    print(f"local : {local['iterations_per_sec']:>8} iter/s "
          f"({local['seconds']}s)")
    print(f"socket: {socket_entry['iterations_per_sec']:>8} iter/s "
          f"({socket_entry['seconds']}s, mean lease latency "
          f"{socket_entry['lease_latency_mean_seconds']}s)")
    print(f"overhead ratio: {payload['overhead_ratio']} "
          f"(target <= {TARGET_MAX_OVERHEAD_RATIO}), findings_equal: "
          f"{payload['findings_equal']}")
    print(f"wrote {args.output}")
    if not payload["findings_equal"]:
        print("transport results diverged — findings must be "
              "bit-identical across transports", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
