#!/usr/bin/env python
"""End-to-end distributed-campaign smoke (`make smoke-distributed`).

Boots a real coordinator service (``python -m repro.campaign serve``) on an
ephemeral localhost port, joins two fleet workers over TCP, and asserts
that the seeded-bug campaign run through actual sockets (a) finds seeded
bugs, (b) reports them on the live status endpoint during ``--linger``,
and (c) writes the same snapshot via ``--status-out``.  Everything a
multi-host deployment exercises, minus the second host.

Usage::

    python tools/smoke_distributed.py [--iterations N] [--seed S]
"""

from __future__ import annotations

import argparse
import json
import os
import re
import subprocess
import sys
import tempfile
import time

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(_REPO_ROOT, "src"))

_LISTENING = re.compile(r"fabric coordinator listening on ([\d.]+):(\d+)")


def _fail(message: str) -> "SystemExit":
    return SystemExit(f"smoke-distributed FAILED: {message}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Coordinator + 2 socket workers seeded-bug smoke.")
    parser.add_argument("--iterations", type=int, default=12)
    parser.add_argument("--seed", type=int, default=13)
    parser.add_argument("--timeout", type=float, default=240.0,
                        help="overall deadline in seconds")
    args = parser.parse_args(argv)
    deadline = time.monotonic() + args.timeout

    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(_REPO_ROOT, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    env["PYTHONUNBUFFERED"] = "1"

    status_out = os.path.join(tempfile.mkdtemp(prefix="smoke-fabric-"),
                              "status.json")
    serve = subprocess.Popen(
        [sys.executable, "-m", "repro.campaign", "serve",
         "--host", "127.0.0.1", "--port", "0",
         "--iterations", str(args.iterations), "--seed", str(args.seed),
         "--workers", "2", "--shards", "2", "--min-workers", "2",
         "--deterministic", "--quiet",
         "--status-out", status_out, "--linger", "8"],
        cwd=_REPO_ROOT, env=env, text=True,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
    workers = []
    captured = []
    try:
        # The coordinator prints its bound ephemeral port at startup.
        port = None
        while port is None:
            if serve.poll() is not None:
                raise _fail("coordinator exited before binding:\n"
                            + "".join(captured))
            line = serve.stdout.readline()
            captured.append(line)
            match = _LISTENING.search(line)
            if match:
                port = int(match.group(2))
        print(f"coordinator up on 127.0.0.1:{port}")

        for index in range(2):
            workers.append(subprocess.Popen(
                [sys.executable, "-m", "repro.campaign", "worker",
                 "--connect", f"127.0.0.1:{port}",
                 "--name", f"smoke-w{index}"],
                cwd=_REPO_ROOT, env=env,
                stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL))
        print("2 workers joining...")

        # --status-out lands right after the campaign completes; --linger
        # keeps the final snapshot queryable on the same port after that.
        while not os.path.exists(status_out):
            if serve.poll() is not None:
                raise _fail("coordinator exited without writing "
                            "--status-out:\n" + "".join(captured)
                            + serve.stdout.read())
            if time.monotonic() > deadline:
                serve.kill()
                raise _fail("campaign did not finish before --timeout")
            time.sleep(0.2)

        from repro.core.fabric.service import query_status

        live = query_status("127.0.0.1", port)
        with open(status_out, encoding="utf-8") as handle:
            written = json.load(handle)

        for name, snapshot in (("status endpoint", live),
                               ("--status-out", written)):
            if snapshot.get("findings", 0) <= 0:
                raise _fail(f"{name} reports no findings: {snapshot}")
            if not all(cell.get("done")
                       for cell in snapshot.get("cells", {}).values()):
                raise _fail(f"{name} reports unfinished cells: {snapshot}")
        roster = live.get("workers", {})
        if set(roster) != {"smoke-w0", "smoke-w1"}:
            raise _fail(f"status endpoint roster is wrong: {roster}")

        captured.append(serve.stdout.read())
        output = "".join(captured)
        if "Ground-truth seeded bugs found:" not in output:
            raise _fail("campaign summary shows no seeded bugs:\n" + output)
        if serve.wait(timeout=max(1.0, deadline - time.monotonic())) != 0:
            raise _fail(f"coordinator exited {serve.returncode}")
        for index, worker in enumerate(workers):
            if worker.wait(timeout=30) != 0:
                raise _fail(f"worker {index} exited {worker.returncode}")
    finally:
        for process in [serve] + workers:
            if process.poll() is None:
                process.kill()

    bugs = sorted(line.strip().split()[0] for line in output.splitlines()
                  if line.startswith("  ") and "-" in line.split()[0]
                  and "/" in line)
    print(f"smoke-distributed OK: {live['findings']} findings over "
          f"{live['iterations']} iterations, seeded bugs confirmed over "
          f"real sockets ({', '.join(bugs) if bugs else 'see summary'})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
