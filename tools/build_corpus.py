"""Regenerate the regression corpus under ``tests/corpus/``.

Fuzzes the fully-seeded compiler trio and, for every seeded bug id it
manages to trigger, freezes the *first* triggering (model, inputs) pair
into a small JSON file.  The replay test
(``tests/core/test_corpus_replay.py``) re-runs each frozen case through
``DifferentialTester`` and asserts the same bug id is still detected — a
regression net over the seeded-bug trigger paths and the importer /
optimizer code they live in.

Usage::

    PYTHONPATH=src python tools/build_corpus.py [max_iterations] \\
        [--strategy NAME] [--nodes N] [--max-dim N] [--seed N]

``--strategy`` picks any registered generation strategy
(:mod:`repro.core.strategy`).  Plain ``nnsmith`` fuzzing stalled at 18/30
seeded bugs — the remaining triggers need rare structures; the ``targeted``
motif strategy reaches them within a few dozen iterations, which is how the
corpus was extended to full coverage.

Bugs whose symptom only a non-default oracle can observe are harvested
through that oracle automatically: ``perf``-symptom bugs must be *detected*
(a ``perf`` verdict) by the performance-regression oracle and
``gradient``-symptom bugs by the ``gradcheck`` oracle before they are
frozen.  Their corpus entries record the detecting oracle
(``format_version`` 2, ``"oracle"`` field) so the replay test re-runs each
case through the oracle that can actually see its bug.

Bugs that only a *non-canonical pass ordering* can trigger (no ``-O<k>``
pipeline ever runs the interacting passes in the failing order) are
harvested with ``--pipelines``: every listed token (``rand:<seed>:<index>``
or ``random:<k>@<seed>``, see :mod:`repro.compilers.pipeline`) adds a
differential tester whose compilers run that sampled pass sequence.  A bug
frozen this way gets a ``format_version`` 3 entry recording the
``"pipeline"`` token and the ``"minimal_passes"`` attribution computed by
:mod:`repro.experiments.pass_bisect` — the replay test re-runs the case
under the recorded pipeline *and* re-derives the attribution.

Bugs whose symptom is ``verifier`` (a pass leaves the IR
executing-but-ill-formed — invisible to every execution-based oracle) are
harvested through a differential tester whose compilers run with
``verify_passes=True``: the bug is frozen only when a ``verifier`` verdict
carries its id, and the entry (``format_version`` 4,
``"verify_passes": true``) records the pipeline token plus the
``"minimal_passes"`` attribution so the replay re-derives both.

The generator knobs are pinned small (``max_dim=8``) so the frozen weights
stay a few kilobytes per file.  Regenerate only when trigger conditions
legitimately change; the corpus is otherwise append-only.
"""

from __future__ import annotations

import argparse
import json
import os

import numpy as np

from repro.compilers.base import build_compiler_set, registered_compilers
from repro.compilers.bugs import BugConfig, all_bugs, bug_spec
from repro.compilers.pipeline import expand_pipeline_tokens, resolve_pipeline
from repro.core.difftest import DifferentialTester
from repro.core.fuzzer import FuzzerConfig, generate_for_iteration
from repro.core.oracle import build_oracle
from repro.core.parallel import default_compiler_factory
from repro.core.generator import GeneratorConfig
from repro.core.strategy import DEFAULT_STRATEGY, registered_strategies
from repro.dtypes import DType
from repro.graph.serialize import model_to_dict
from repro.runtime.interpreter import random_inputs

#: v2 entries carry the detecting oracle (``"oracle"``); v1 entries predate
#: the oracle registry and implicitly mean ``difftest``.  v3 entries may
#: additionally carry the triggering ``"pipeline"`` token and its
#: ``"minimal_passes"`` bisection attribution.  v4 entries may carry
#: ``"verify_passes": true`` — the bug is observable only by the
#: pass-boundary IR verifier.
CORPUS_FORMAT_VERSION = 4

#: Which registry oracle can observe each oracle-only bug symptom.
_SYMPTOM_ORACLES = {"perf": "perf", "gradient": "gradcheck"}
#: The verdict status that counts as *detection* under each extra oracle.
_ORACLE_DETECTS = {"perf": "perf", "gradcheck": "gradient"}
CORPUS_DIR = os.path.join(os.path.dirname(__file__), os.pardir,
                          "tests", "corpus")
CAMPAIGN_SEED = 20260730


def _encode_inputs(inputs):
    return {
        name: {
            "dtype": str(DType.from_numpy(array.dtype)),
            "shape": list(array.shape),
            "data": array.tolist(),
        }
        for name, array in inputs.items()
    }


def build_corpus(max_iterations: int = 4000, n_nodes: int = 8,
                 max_dim: int = 8, seed: int = CAMPAIGN_SEED,
                 strategy: str = DEFAULT_STRATEGY,
                 pipelines=None) -> None:
    from repro.core.strategy import build_strategy

    bugs = BugConfig.all()
    tester = DifferentialTester(default_compiler_factory(bugs), bugs=bugs)
    config = FuzzerConfig(
        generator=GeneratorConfig(n_nodes=n_nodes, max_dim=max_dim),
        bugs=bugs,
        seed=seed,
        strategy=strategy,
    )
    # Built once and reused: lemon/tzer cache their seed zoo per instance.
    generation_strategy = build_strategy(strategy, config)
    # Append-only: bugs that already have a frozen case are left untouched.
    existing = {name[:-len(".json")] for name in
                (os.listdir(CORPUS_DIR) if os.path.isdir(CORPUS_DIR) else [])
                if name.endswith(".json")}
    wanted = {spec.bug_id for spec in all_bugs()} - existing
    found = {}
    # Oracle-only bugs (perf regressions, wrong gradients) are invisible to
    # the differential tester; build the oracle that can see them only when
    # such bugs are still wanted.
    extra_oracles = {}
    for bug in wanted:
        oracle_name = _SYMPTOM_ORACLES.get(bug_spec(bug).symptom)
        if oracle_name and oracle_name not in extra_oracles:
            extra_oracles[oracle_name] = build_oracle(
                oracle_name, default_compiler_factory(bugs), bugs=bugs)
    # Ordering-dependent bugs: one extra differential tester per sampled
    # pipeline, its compilers locked to that pass sequence.
    pipeline_testers = {}
    for token in expand_pipeline_tokens(pipelines or [], seed):
        spec = resolve_pipeline(token)
        pipeline_testers[token] = DifferentialTester(
            build_compiler_set(registered_compilers(), bugs=bugs,
                               pipeline=spec), bugs=bugs)
    # Verifier-only bugs (a pass leaves executing-but-ill-formed IR) never
    # surface through execution — their ids only appear in the
    # IRVerificationError a verify-enabled compile raises at the offending
    # pass boundary.
    verifier_tester = None
    if any(bug_spec(bug).symptom == "verifier" for bug in wanted):
        verifier_tester = DifferentialTester(
            build_compiler_set(registered_compilers(), bugs=bugs,
                               verify_passes=True), bugs=bugs)

    def freeze(bug, via, oracle_name, iteration, model, inputs,
               pipeline=None, minimal_passes=None, verify_passes=False):
        found[bug] = {
            "format_version": CORPUS_FORMAT_VERSION,
            "bug_id": bug,
            "system": bug_spec(bug).system,
            "phase": bug_spec(bug).phase,
            "symptom": bug_spec(bug).symptom,
            "detected_by": via,
            "oracle": oracle_name,
            "iteration": iteration,
            "campaign_seed": seed,
            "strategy": strategy,
            "model": model_to_dict(model),
            "inputs": _encode_inputs(inputs),
        }
        if pipeline is not None:
            found[bug]["pipeline"] = pipeline
            found[bug]["minimal_passes"] = minimal_passes
        if verify_passes:
            found[bug]["verify_passes"] = True
        print(f"[{len(found):2d}] {bug:<40} via {via}/{oracle_name} "
              f"(iteration {iteration}"
              + (f", pipeline {pipeline}" if pipeline else "")
              + (", verify" if verify_passes else "") + ")")

    for iteration in range(1, max_iterations + 1):
        if wanted <= set(found):
            break
        generated = generate_for_iteration(config, iteration,
                                           generation_strategy)
        if generated is None:
            continue
        model = generated.model
        inputs = random_inputs(model, np.random.default_rng(iteration))
        try:
            case = tester.run_case(model, inputs=inputs)
        except Exception:
            continue
        triggered = {}
        for verdict in case.verdicts:
            for bug in verdict.triggered_bugs:
                triggered.setdefault(bug, verdict.compiler)
        for bug in case.exporter_bugs:
            triggered.setdefault(bug, "exporter")
        for bug, via in triggered.items():
            if bug in found or bug not in wanted:
                continue
            if bug_spec(bug).symptom in _SYMPTOM_ORACLES or \
                    bug_spec(bug).symptom == "verifier":
                continue  # needs its own oracle/mode to *detect*, see below
            freeze(bug, via, "difftest", iteration, model, inputs)
        for oracle_name, oracle in extra_oracles.items():
            if not any(bug not in found and
                       _SYMPTOM_ORACLES.get(bug_spec(bug).symptom)
                       == oracle_name for bug in wanted):
                continue
            try:
                extra_case = oracle.run_case(model, inputs=inputs)
            except Exception:
                continue
            for verdict in extra_case.verdicts:
                if verdict.status != _ORACLE_DETECTS[oracle_name]:
                    continue  # trigger without detection: keep hunting
                for bug in verdict.triggered_bugs:
                    if bug in found or bug not in wanted:
                        continue
                    if _SYMPTOM_ORACLES.get(bug_spec(bug).symptom) != \
                            oracle_name:
                        continue
                    freeze(bug, verdict.compiler, oracle_name, iteration,
                           model, inputs)
        for token, pipe_tester in pipeline_testers.items():
            if wanted <= set(found):
                break
            try:
                pipe_case = pipe_tester.run_case(model, inputs=inputs)
            except Exception:
                continue
            for verdict in pipe_case.verdicts:
                for bug in verdict.triggered_bugs:
                    if bug in found or bug not in wanted:
                        continue
                    if bug_spec(bug).symptom in _SYMPTOM_ORACLES or \
                            bug_spec(bug).symptom == "verifier":
                        continue
                    from repro.experiments.pass_bisect import bisect_finding

                    result = bisect_finding(model, verdict.compiler, token,
                                            bugs=bugs, inputs=inputs)
                    minimal = [list(ref) for ref in result.minimal] \
                        if result.reproduced else None
                    freeze(bug, verdict.compiler, "difftest", iteration,
                           model, inputs, pipeline=token,
                           minimal_passes=minimal)
        if verifier_tester is not None and any(
                bug not in found and bug_spec(bug).symptom == "verifier"
                for bug in wanted):
            try:
                verify_case = verifier_tester.run_case(model, inputs=inputs)
            except Exception:
                verify_case = None
            for verdict in (verify_case.verdicts if verify_case else ()):
                if verdict.status != "verifier":
                    continue  # trigger without detection: keep hunting
                for bug in verdict.triggered_bugs:
                    if bug in found or bug not in wanted:
                        continue
                    if bug_spec(bug).symptom != "verifier":
                        continue
                    from repro.experiments.pass_bisect import bisect_finding

                    # The verify-enabled tester runs the canonical O2
                    # pipeline; record it so the replay can re-derive the
                    # offending-pass attribution.
                    result = bisect_finding(model, verdict.compiler, "O2",
                                            bugs=bugs, inputs=inputs,
                                            verify_passes=True)
                    minimal = [list(ref) for ref in result.minimal] \
                        if result.reproduced else None
                    freeze(bug, verdict.compiler, "difftest", iteration,
                           model, inputs, pipeline="O2",
                           minimal_passes=minimal, verify_passes=True)

    os.makedirs(CORPUS_DIR, exist_ok=True)
    for bug, entry in sorted(found.items()):
        path = os.path.join(CORPUS_DIR, f"{bug}.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(entry, handle)
        print(f"wrote {path} ({os.path.getsize(path)} bytes)")

    missing = sorted(wanted - set(found))
    covered = existing | set(found)
    systems_found = {bug_spec(bug).system for bug in covered}
    print(f"\ncorpus now covers {len(covered)}/{len(all_bugs())} seeded "
          f"bugs, systems: {sorted(systems_found)}")
    if missing:
        print("not triggered within budget:", missing)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(
        description="Freeze bug-triggering (model, inputs) pairs into "
                    "tests/corpus/ (append-only).")
    parser.add_argument("max_iterations", nargs="?", type=int, default=4000)
    parser.add_argument("--strategy", default=DEFAULT_STRATEGY,
                        choices=registered_strategies(),
                        help="generation strategy (use 'targeted' for the "
                             "rare-structure bugs plain fuzzing misses)")
    parser.add_argument("--nodes", type=int, default=8)
    parser.add_argument("--max-dim", type=int, default=8)
    parser.add_argument("--seed", type=int, default=CAMPAIGN_SEED)
    parser.add_argument("--pipelines", action="append", default=None,
                        metavar="TOKEN",
                        help="additionally difftest every model under this "
                             "pipeline token ('rand:<seed>:<index>' or "
                             "'random:<k>@<seed>'); repeatable — harvests "
                             "ordering-dependent bugs into v3 entries")
    args = parser.parse_args()
    build_corpus(args.max_iterations, n_nodes=args.nodes,
                 max_dim=args.max_dim, seed=args.seed,
                 strategy=args.strategy, pipelines=args.pipelines)
