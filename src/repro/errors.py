"""Exception hierarchy shared across the repro package.

Every subsystem raises exceptions derived from :class:`ReproError` so that
callers (the fuzzer, the differential-testing harness, the experiment
drivers) can distinguish *expected* failures (e.g. an unsatisfiable
constraint system, a compiler rejecting an invalid model) from genuine
programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class GraphError(ReproError):
    """Raised when a computation graph is structurally malformed."""


class TypeCheckError(GraphError):
    """Raised when a graph fails type checking (shape/dtype mismatch)."""


class ShapeInferenceError(GraphError):
    """Raised when concrete shape inference fails for an operator."""


class UnsupportedOperatorError(ReproError):
    """Raised when an operator kind is not known to a registry or backend."""


class SolverError(ReproError):
    """Base class for constraint-solver errors."""


class UnsatisfiableError(SolverError):
    """Raised when a constraint system has no model within the search budget."""


class SolverTimeoutError(SolverError):
    """Raised when the solver exhausts its step budget without a verdict."""


class GenerationError(ReproError):
    """Raised when model generation cannot make progress."""


class ValueSearchError(ReproError):
    """Raised when gradient-guided value search cannot find viable inputs."""


class CompilerError(ReproError):
    """Base class for errors raised by the compilers under test.

    A compiler raising :class:`CompilerError` (or a subclass) is a *crash*
    from the point of view of the differential-testing harness.
    """


class ConversionError(CompilerError):
    """Raised by a compiler front end while importing a model."""


class TransformationError(CompilerError):
    """Raised by a compiler optimization pass."""


class ExecutionError(CompilerError):
    """Raised by a compiled executable at run time."""


class IRVerificationError(CompilerError):
    """Raised by the pass-boundary IR verifier (:mod:`repro.analysis`).

    A pass left the IR executing-but-ill-formed (dangling value ref, stale
    recorded type, unknown attribute, ...).  Harness layers that want the
    dedicated ``verifier`` symptom catch this *before* the generic
    :class:`CompilerError` handler; anywhere else it degrades to a crash.
    """


class ExportError(ReproError):
    """Raised by the model exporter (the "PyTorch exporter" analogue)."""
