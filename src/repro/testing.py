"""Shared test fixtures and helpers for the repo's test and benchmark suites.

``tests/conftest.py`` and ``benchmarks/conftest.py`` previously carried
duplicated marker registration and model builders; both now import from this
module so there is exactly one definition of:

* the pytest markers the suites use (:func:`register_markers`);
* the small reference models used across tests (:func:`build_mlp_model`,
  :func:`build_conv_model`);
* the run-exactly-once pytest-benchmark adapter (:func:`run_once`).

Living under :mod:`repro` (rather than inside one of the two test roots)
keeps it importable from both without ``sys.path`` games.
"""

from __future__ import annotations

import numpy as np

from repro.graph.builder import GraphBuilder
from repro.graph.model import Model

#: Markers shared by the test and benchmark suites.  ``make test`` runs the
#: fast tier (``-m "not slow"``); ``make test-all`` runs everything.
MARKERS = (
    "smoke: fast end-to-end checks (run with `make smoke` / `pytest -m smoke`)",
    "slow: long-running tests excluded from the default `make test` tier "
    "(run with `make test-all`)",
    "campaign: tests that execute full (parallel/matrix) fuzzing campaigns",
)


def register_markers(config) -> None:
    """Register the shared markers on a pytest config (call from conftest)."""
    for marker in MARKERS:
        config.addinivalue_line("markers", marker)


def build_mlp_model(seed: int = 0, dtype=np.float32) -> Model:
    """A small Gemm/Relu/Softmax model used across tests."""
    gen = np.random.default_rng(seed)
    builder = GraphBuilder("mlp")
    x = builder.input([2, 8])
    w1 = builder.weight(gen.normal(0, 0.5, size=(8, 6)).astype(dtype))
    b1 = builder.weight(np.zeros(6, dtype=dtype))
    h = builder.op1("Gemm", [x, w1, b1])
    h = builder.op1("Relu", [h])
    w2 = builder.weight(gen.normal(0, 0.5, size=(6, 4)).astype(dtype))
    b2 = builder.weight(np.zeros(4, dtype=dtype))
    out = builder.op1("Gemm", [h, w2, b2])
    out = builder.op1("Softmax", [out], axis=1)
    builder.output(out)
    return builder.build()


def build_conv_model(seed: int = 0) -> Model:
    """A small convolutional model (conv/relu/pool/flatten)."""
    gen = np.random.default_rng(seed)
    builder = GraphBuilder("cnn")
    x = builder.input([1, 4, 8, 8])
    w = builder.weight(gen.normal(0, 0.4, size=(8, 4, 3, 3)).astype(np.float32))
    value = builder.op1("Conv2d", [x, w], stride=1, padding=1)
    value = builder.op1("Relu", [value])
    value = builder.op1("MaxPool2d", [value], kh=2, kw=2, stride=2, padding=0)
    value = builder.op1("Flatten", [value], axis=1)
    builder.output(value)
    return builder.build()


def run_once(benchmark, func, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1,
                              iterations=1)


def tiny_campaign_config(iterations=4, seed=0, n_nodes=5,
                         strategy="nnsmith", oracle="difftest",
                         max_steps=8):
    """A small, fully deterministic campaign config for engine tests.

    Step-bounded value search (no wall-clock dependence) over a few
    iterations of small models — the knobs every campaign/equivalence test
    was duplicating.
    """
    from repro.compilers.bugs import BugConfig
    from repro.core.fuzzer import FuzzerConfig
    from repro.core.generator import GeneratorConfig
    from repro.core.parallel import deterministic_config

    return deterministic_config(FuzzerConfig(
        generator=GeneratorConfig(n_nodes=n_nodes),
        max_iterations=iterations,
        bugs=BugConfig.all(),
        seed=seed,
        strategy=strategy,
        oracle=oracle,
    ), max_steps=max_steps)


def campaign_signature(result):
    """Order-independent content of a campaign result (for equivalence
    assertions), including per-cell provenance when present."""
    return (result.iterations,
            result.generated_models,
            result.generation_failures,
            result.numerically_valid_models,
            frozenset(result.seeded_bugs_found),
            frozenset(result.operator_instances),
            frozenset(report.dedup_key() for report in result.reports),
            frozenset(
                (key, cell.iterations, frozenset(cell.seeded_bugs_found),
                 frozenset(cell.report_keys))
                for key, cell in result.cells.items()))


def checkpoint_signature(path):
    """Clock-normalized content of a campaign checkpoint file.

    Findings, completion sets, fingerprints and scheduler *shape* are
    transport-independent by construction, but wall-clock fields
    (``time_used``, per-result ``elapsed``, timeline stamps, novelty
    durations) necessarily differ run-to-run.  This helper strips them so
    transport-equivalence tests can assert the rest is bit-identical.
    """
    import copy
    import json

    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    payload = copy.deepcopy(payload)
    scheduler = payload.get("scheduler")
    if isinstance(scheduler, dict):
        state = scheduler.get("state")
        if isinstance(state, dict):
            # Novelty windows/stagnation carry durations; keep which cells
            # were observed and their arc counts, drop the seconds.
            recent = state.get("recent")
            if isinstance(recent, dict):
                state["recent"] = {
                    cell: [count for count, _duration in samples]
                    for cell, samples in recent.items()}
            state.pop("stagnation", None)
    for entry in payload.get("cells", {}).values():
        entry.pop("time_used", None)
        result = entry.get("result")
        if isinstance(result, dict):
            result.pop("elapsed", None)
            result.pop("cache_stats", None)
            for sample in result.get("timeline", []):
                sample.pop("elapsed", None)
            for sample in result.get("coverage_timeline", []):
                sample.pop("elapsed", None)
                sample.pop("cell_elapsed", None)
    return json.dumps(payload, sort_keys=True)
