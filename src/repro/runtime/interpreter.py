"""The reference interpreter — this repo's "PyTorch" oracle.

The interpreter executes a model node by node with the reference numpy
kernels, optionally recording every intermediate tensor and the first
operator whose output contains a floating-point exceptional value.  The
differential-testing harness uses it as the trusted baseline (§4 motivates
why the paper uses PyTorch the same way), and the gradient-guided value
search uses the recorded intermediates and NaN/Inf positions.

Execution runs over a cached per-model *execution plan*
(:mod:`repro.core.cache`): topological order with each node's kernel
pre-resolved once per model instead of re-dispatched per run.  When the
plan additionally compiles to a flat-slab :class:`CompiledPlan`
(:mod:`repro.runtime.compiled_plan` — the common case), ``run_detailed``
delegates to it: same outputs, same ``RunResult`` fields, same exception
behavior, just without per-step dict lookups; models the slab cannot
represent keep the legacy dict loop below.  Coverage-traced runs take the
compiled path too — the tracer's scope excludes ``repro/runtime``, so the
arcs a traced campaign observes are unchanged.  Two correctness
properties of the run loop (preserved by both paths):

* Initializers enter the value environment as **read-only views** — a
  mutating kernel or a caller poking at ``RunResult.values`` can no longer
  silently corrupt the model's weights for later iterations (a hard
  precondition for sharing cached compiled artifacts across iterations).
* With ``record_intermediates=False``, dead intermediates are dropped
  eagerly (refcounted by remaining consumers from the plan) instead of
  being retained until function exit; ``RunResult.peak_live_values``
  reports the high-water mark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

import numpy as np

from repro.errors import ExecutionError, GraphError, UnsupportedOperatorError
from repro.graph.model import Model

_cache_module = None


def _hot_cache():
    """Lazy import of :mod:`repro.core.cache`.

    ``repro.core.__init__`` imports the whole core package (including the
    cache module, which imports ``repro.ops``); importing it at this
    module's import time would create a cycle for anyone importing the
    runtime package first.
    """
    global _cache_module
    if _cache_module is None:
        from repro.core import cache
        _cache_module = cache
    return _cache_module


@dataclass
class RunResult:
    """Outcome of one interpreter run."""

    outputs: Dict[str, np.ndarray]
    values: Dict[str, np.ndarray] = field(default_factory=dict)
    #: Name of the first node (in topological order) whose output contains a
    #: NaN or Inf, or None when the whole execution is numerically valid.
    first_exceptional_node: Optional[str] = None
    #: Names of every node that produced a NaN/Inf output.
    exceptional_nodes: List[str] = field(default_factory=list)
    #: High-water mark of simultaneously live values during the run (inputs,
    #: weights and intermediates).  With ``record_intermediates=True`` this
    #: equals the total value count; with ``False`` it shows how much the
    #: eager dead-value dropping actually saved.
    peak_live_values: int = 0

    @property
    def numerically_valid(self) -> bool:
        """True when no operator produced a NaN or Inf (§2.3, challenge #3)."""
        return self.first_exceptional_node is None


class Interpreter:
    """Reference executor for computation graphs."""

    def __init__(self, record_intermediates: bool = True) -> None:
        self.record_intermediates = record_intermediates

    def run(self, model: Model, inputs: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Execute the model and return only its outputs."""
        return self.run_detailed(model, inputs).outputs

    def run_detailed(self, model: Model,
                     inputs: Mapping[str, np.ndarray]) -> RunResult:
        """Execute the model, recording intermediates and NaN/Inf producers."""
        cache_module = _hot_cache()
        compiled, plan = cache_module.compiled_execution(model)
        if compiled is not None:
            return compiled.execute(model, inputs, self.record_intermediates,
                                    cache_module.get_cache())

        values: Dict[str, np.ndarray] = {}
        for name in model.inputs:
            if name not in inputs:
                raise ExecutionError(f"missing graph input {name!r}")
            expected = model.type_of(name)
            array = np.asarray(inputs[name], dtype=expected.dtype.numpy)
            if tuple(array.shape) != expected.shape:
                raise ExecutionError(
                    f"input {name!r} has shape {array.shape}, expected {expected.shape}")
            values[name] = array
        for name, array in model.initializers.items():
            # Read-only view: shares the weight's buffer without letting a
            # kernel (or a RunResult.values consumer) write through to it.
            view = np.asarray(array).view()
            view.setflags(write=False)
            values[name] = view

        record = self.record_intermediates
        remaining = None if record else dict(plan.consumers)
        protected = plan.protected
        first_exceptional: Optional[str] = None
        exceptional: List[str] = []
        peak = len(values)
        for kernel_func, node, bad_input in plan.steps:
            if bad_input is not None:
                raise GraphError(
                    f"node {node.name} consumes unavailable value {bad_input!r}")
            node_inputs = [np.asarray(values[name]) for name in node.inputs]
            if kernel_func is None:
                raise UnsupportedOperatorError(
                    f"no kernel for operator {node.op!r}")
            try:
                results = kernel_func(node.attrs, node_inputs)
            except (ValueError, IndexError, ZeroDivisionError) as exc:
                raise ExecutionError(f"kernel {node.op} failed: {exc}") from exc
            for output_name, array in zip(node.outputs, results):
                values[output_name] = array
            if _has_exceptional(results):
                exceptional.append(node.name)
                if first_exceptional is None:
                    first_exceptional = node.name
            if len(values) > peak:
                peak = len(values)
            if remaining is not None:
                for input_name in node.inputs:
                    count = remaining.get(input_name)
                    if count is None:
                        continue
                    count -= 1
                    remaining[input_name] = count
                    if count == 0 and input_name not in protected:
                        values.pop(input_name, None)
                for output_name in node.outputs:
                    if (output_name not in protected
                            and remaining.get(output_name, 0) == 0):
                        values.pop(output_name, None)

        outputs = {name: values[name] for name in model.outputs}
        return RunResult(
            outputs=outputs,
            values=values if record else {},
            first_exceptional_node=first_exceptional,
            exceptional_nodes=exceptional,
            peak_live_values=peak,
        )


def _has_exceptional(arrays: List[np.ndarray]) -> bool:
    for array in arrays:
        if array.dtype.kind == "f" and not np.all(np.isfinite(array)):
            return True
    return False


def _integer_draw(rng: np.random.Generator, low: float, high: float,
                  size, int_bounds: str) -> np.ndarray:
    """Integer sampling for :func:`random_inputs`/:func:`random_weights`.

    ``int_bounds`` picks between two distributions:

    ``"inclusive"`` (default)
        The intended distribution: uniform over the closed range
        ``[int(low), int(high)]``, every integer reachable, never
        degenerate.  This became the default in PR 9, which regenerated
        the seeded corpus and re-pinned the smoke seeds on the new stream
        (the standing seed-stream debt called out in ROADMAP).

    ``"legacy"``
        ``rng.integers(int(low), max(int(high), int(low) + 1))`` — the
        historical stream.  The high bound is *exclusive*, so the
        documented ``[low, high)`` float range becomes
        ``[int(low), int(high))`` over ints: with the default 1.0/9.0
        range, 9 is never sampled, and when ``int(high) == int(low)`` the
        draw degenerates to the single value ``int(low)``.  Kept as an
        explicit opt-out so pre-PR-9 campaign seeds remain replayable.

    Both streams are pinned by seeded tests in
    ``tests/runtime/test_interpreter_hot_path.py``.
    """
    if int_bounds == "legacy":
        return rng.integers(int(low), max(int(high), int(low) + 1), size=size)
    if int_bounds == "inclusive":
        lo, hi = int(low), int(high)
        if hi < lo:
            lo, hi = hi, lo
        return rng.integers(lo, hi + 1, size=size)
    raise ValueError(f"unknown int_bounds mode {int_bounds!r}; "
                     f"expected 'legacy' or 'inclusive'")


def random_inputs(model: Model, rng: Optional[np.random.Generator] = None,
                  low: float = 1.0, high: float = 9.0,
                  int_bounds: str = "inclusive") -> Dict[str, np.ndarray]:
    """Sample random graph inputs (the paper's "Sampling" baseline range).

    Floats are drawn uniformly from ``[low, high)`` and booleans as fair
    coin flips.  Integer draws follow ``int_bounds`` — see
    :func:`_integer_draw` for the inclusive-vs-legacy distinction.
    """
    rng = rng or np.random.default_rng()
    result: Dict[str, np.ndarray] = {}
    for name in model.inputs:
        ttype = model.type_of(name)
        if ttype.dtype.is_float:
            data = rng.uniform(low, high, size=ttype.shape)
        elif ttype.dtype.is_int:
            data = _integer_draw(rng, low, high, ttype.shape, int_bounds)
        else:
            data = rng.integers(0, 2, size=ttype.shape).astype(bool)
        result[name] = np.asarray(data, dtype=ttype.dtype.numpy)
    return result


def random_weights(model: Model, rng: Optional[np.random.Generator] = None,
                   low: float = 1.0, high: float = 9.0,
                   int_bounds: str = "inclusive") -> Dict[str, np.ndarray]:
    """Sample replacement values for the model's initializers.

    Same distribution rules as :func:`random_inputs`, including the
    ``int_bounds`` knob.
    """
    rng = rng or np.random.default_rng()
    result: Dict[str, np.ndarray] = {}
    for name, array in model.initializers.items():
        if array.dtype.kind == "f":
            data = rng.uniform(low, high, size=array.shape)
        elif array.dtype.kind in "iu":
            data = _integer_draw(rng, low, high, array.shape, int_bounds)
        else:
            data = rng.integers(0, 2, size=array.shape).astype(bool)
        result[name] = np.asarray(data, dtype=array.dtype)
    return result
