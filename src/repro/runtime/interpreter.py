"""The reference interpreter — this repo's "PyTorch" oracle.

The interpreter executes a model node by node with the reference numpy
kernels, optionally recording every intermediate tensor and the first
operator whose output contains a floating-point exceptional value.  The
differential-testing harness uses it as the trusted baseline (§4 motivates
why the paper uses PyTorch the same way), and the gradient-guided value
search uses the recorded intermediates and NaN/Inf positions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

import numpy as np

from repro.errors import ExecutionError, GraphError
from repro.graph.model import Model
from repro.ops.semantics import execute_node


@dataclass
class RunResult:
    """Outcome of one interpreter run."""

    outputs: Dict[str, np.ndarray]
    values: Dict[str, np.ndarray] = field(default_factory=dict)
    #: Name of the first node (in topological order) whose output contains a
    #: NaN or Inf, or None when the whole execution is numerically valid.
    first_exceptional_node: Optional[str] = None
    #: Names of every node that produced a NaN/Inf output.
    exceptional_nodes: List[str] = field(default_factory=list)

    @property
    def numerically_valid(self) -> bool:
        """True when no operator produced a NaN or Inf (§2.3, challenge #3)."""
        return self.first_exceptional_node is None


class Interpreter:
    """Reference executor for computation graphs."""

    def __init__(self, record_intermediates: bool = True) -> None:
        self.record_intermediates = record_intermediates

    def run(self, model: Model, inputs: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Execute the model and return only its outputs."""
        return self.run_detailed(model, inputs).outputs

    def run_detailed(self, model: Model,
                     inputs: Mapping[str, np.ndarray]) -> RunResult:
        """Execute the model, recording intermediates and NaN/Inf producers."""
        values: Dict[str, np.ndarray] = {}
        for name in model.inputs:
            if name not in inputs:
                raise ExecutionError(f"missing graph input {name!r}")
            expected = model.type_of(name)
            array = np.asarray(inputs[name], dtype=expected.dtype.numpy)
            if tuple(array.shape) != expected.shape:
                raise ExecutionError(
                    f"input {name!r} has shape {array.shape}, expected {expected.shape}")
            values[name] = array
        for name, array in model.initializers.items():
            values[name] = np.asarray(array)

        first_exceptional: Optional[str] = None
        exceptional: List[str] = []
        for node in model.topological_order():
            node_inputs = []
            for input_name in node.inputs:
                if input_name not in values:
                    raise GraphError(
                        f"node {node.name} consumes unavailable value {input_name!r}")
                node_inputs.append(values[input_name])
            results = execute_node(node, node_inputs)
            for output_name, array in zip(node.outputs, results):
                values[output_name] = array
            if _has_exceptional(results):
                exceptional.append(node.name)
                if first_exceptional is None:
                    first_exceptional = node.name

        outputs = {name: values[name] for name in model.outputs}
        return RunResult(
            outputs=outputs,
            values=values if self.record_intermediates else {},
            first_exceptional_node=first_exceptional,
            exceptional_nodes=exceptional,
        )


def _has_exceptional(arrays: List[np.ndarray]) -> bool:
    for array in arrays:
        if array.dtype.kind == "f" and not np.all(np.isfinite(array)):
            return True
    return False


def random_inputs(model: Model, rng: Optional[np.random.Generator] = None,
                  low: float = 1.0, high: float = 9.0) -> Dict[str, np.ndarray]:
    """Sample random graph inputs (the paper's "Sampling" baseline range).

    Floats are drawn uniformly from ``[low, high)``, integers from the same
    range rounded down, and booleans as fair coin flips.
    """
    rng = rng or np.random.default_rng()
    result: Dict[str, np.ndarray] = {}
    for name in model.inputs:
        ttype = model.type_of(name)
        if ttype.dtype.is_float:
            data = rng.uniform(low, high, size=ttype.shape)
        elif ttype.dtype.is_int:
            data = rng.integers(int(low), max(int(high), int(low) + 1), size=ttype.shape)
        else:
            data = rng.integers(0, 2, size=ttype.shape).astype(bool)
        result[name] = np.asarray(data, dtype=ttype.dtype.numpy)
    return result


def random_weights(model: Model, rng: Optional[np.random.Generator] = None,
                   low: float = 1.0, high: float = 9.0) -> Dict[str, np.ndarray]:
    """Sample replacement values for the model's initializers."""
    rng = rng or np.random.default_rng()
    result: Dict[str, np.ndarray] = {}
    for name, array in model.initializers.items():
        if array.dtype.kind == "f":
            data = rng.uniform(low, high, size=array.shape)
        elif array.dtype.kind in "iu":
            data = rng.integers(int(low), max(int(high), int(low) + 1), size=array.shape)
        else:
            data = rng.integers(0, 2, size=array.shape).astype(bool)
        result[name] = np.asarray(data, dtype=array.dtype)
    return result
