"""Model exporter — the analogue of PyTorch's ONNX exporter.

NNSmith materializes its generated graphs as PyTorch modules and exports them
to ONNX before handing them to the compilers under test; ten of the paper's
72 bugs were *conversion bugs in that exporter*, found as a by-product.

Here, :func:`export_model` converts a generator-built
:class:`~repro.graph.model.Model` into the serialized interchange form the
compilers import.  The conversion is a structural copy, but — mirroring the
paper — it carries seeded exporter bugs that corrupt specific patterns
(scalar Log2 ranks, int32 Clip, Squeeze without axes, reflect padding of
rank-2 tensors).  The reference interpreter always executes the *original*
model, so exporter bugs surface as oracle/compiler divergences attributable
to the export step.
"""

from __future__ import annotations

from typing import Optional

from repro.compilers.bugs import BugConfig
from repro.dtypes import DType
from repro.graph.model import Model
from repro.graph.serialize import model_from_dict, model_to_dict
from repro.graph.tensor_type import TensorType


class ExportReport:
    """What happened during an export (used for bug attribution)."""

    def __init__(self) -> None:
        self.triggered_bugs: list = []

    def record(self, bug_id: str) -> None:
        if bug_id not in self.triggered_bugs:
            self.triggered_bugs.append(bug_id)


def export_model(model: Model, bugs: Optional[BugConfig] = None,
                 report: Optional[ExportReport] = None) -> Model:
    """Export a model to the interchange representation.

    Returns a new :class:`Model` equivalent to ``model`` (round-tripped
    through the serialization format), possibly corrupted by enabled seeded
    exporter bugs.
    """
    bugs = bugs or BugConfig.none()
    report = report if report is not None else ExportReport()

    exported = model_from_dict(model_to_dict(model))

    for node in exported.nodes:
        input_types = [exported.type_of(name) for name in node.inputs]

        if node.op == "Log2" and bugs.enabled("exporter-log2-scalar-rank"):
            if input_types and input_types[0].rank == 0:
                # Wrong output rank: scalar becomes a 1-element vector.
                output = node.outputs[0]
                exported.value_types[output] = TensorType(
                    (1,), exported.value_types[output].dtype)
                report.record("exporter-log2-scalar-rank")

        if node.op == "Clip" and bugs.enabled("exporter-clip-int32-opset"):
            if input_types and input_types[0].dtype in (DType.int32, DType.int64):
                # Silently exported although the format version forbids it;
                # mark the node so well-formed importers reject the model.
                node.attrs["opset_unsupported"] = True
                report.record("exporter-clip-int32-opset")

        if node.op == "Squeeze" and bugs.enabled("exporter-squeeze-empty-axes"):
            if "axes" not in node.attrs or node.attrs.get("axes") is None:
                node.attrs["axes"] = []
                report.record("exporter-squeeze-empty-axes")

        if node.op == "Pad" and bugs.enabled("exporter-pad-reflect-rank2"):
            if node.attrs.get("mode") == "reflect" and input_types and \
                    input_types[0].rank == 2:
                pads = [int(p) for p in node.attrs.get("pads", [])]
                if len(pads) == 4:
                    # Transposed pad pairs: (begin0, begin1, end0, end1)
                    # becomes (begin1, begin0, end1, end0).
                    node.attrs["pads"] = [pads[1], pads[0], pads[3], pads[2]]
                    report.record("exporter-pad-reflect-rank2")

    exported.name = f"{model.name}.exported"
    return exported
