"""Reference runtime: the oracle interpreter and the model exporter."""

from repro.runtime.exporter import ExportReport, export_model
from repro.runtime.interpreter import Interpreter, RunResult, random_inputs, random_weights

__all__ = [
    "ExportReport",
    "Interpreter",
    "RunResult",
    "export_model",
    "random_inputs",
    "random_weights",
]
