"""Compiled execution plans: the interpreter loop as preresolved closures.

PR 7's :class:`~repro.core.cache.ExecutionPlan` removed per-run dispatch
(kernels resolved once per model) but execution still walked a name-keyed
dict: every step looked up inputs by string, wrote outputs by string, and
decremented a refcount dict.  This module compiles that plan one level
further, the LUT-specialization move of pLUTo/PALUTE (PAPERS.md) applied to
the interpreter itself:

*Flattening*
    Every value name is assigned a slot in a flat slab once per model;
    each node becomes a step tuple ``(kernel, attrs, in_slots, out_slots,
    drop_slots, name, op)`` with the refcount decrements *baked in* as a
    static ``drop_slots`` list (the legacy eager-drop walk is fully
    determined by the plan, so it is simulated at compile time).  The
    per-run loop is slot indexing and kernel calls — no dict lookups, no
    refcount arithmetic, no re-dispatch.

*Batched mode* (opt-in, :meth:`CompiledPlan.execute_batched`)
    K independent input sets run through the plan in one sweep.  Inputs
    identical across the batch stay *unbatched* (evaluated once and
    shared); differing inputs are stacked along a leading batch axis.
    Steps whose op is batch-friendly (elementwise/matmul families, under
    rank conditions that make the leading axis transparent) run their
    kernel once over the stack; batch-hostile ops fall back to per-sample
    execution and restack.  Results are bit-identical to K sequential runs
    — numpy ufuncs are elementwise-deterministic and ``np.matmul`` over a
    stacked operand performs the same per-slice GEMM (verified by the
    equivalence tests).  Finite-difference gradcheck probes and value
    search amortize Python dispatch this way.

*Cross-iteration subgraph-prefix value cache*
    Each topological prefix of the plan is fingerprinted at compile time
    by *canonical position* (op, attrs, input references as input/
    initializer/step positions — value names excluded, so motif-repeated
    and LEMON-mutated graphs can share prefixes across iterations).  At
    run time the structural hash is combined with content digests of the
    inputs and initializers the prefix consumes; on a hit the cached
    boundary values are installed in the slab and execution resumes after
    the prefix.  Entries are LRU-bounded in :class:`HotPathCache` and
    counted as the ``prefix`` telemetry stage.

*Per-closure timing hooks*
    :meth:`CompiledPlan.profile` times every step; the module-level
    :func:`attribute_slow_nodes` applies the same per-node timing protocol
    to compiled backends (duck-typed ``profile_nodes``) so the perf oracle
    can bisect *which node* carries a flagged regression.

Invisibility contract: everything here must be bit-identical to the legacy
dict loop — same outputs, same ``RunResult`` fields, same exception types,
messages and raise points (``GraphError`` for statically unavailable
inputs, ``UnsupportedOperatorError`` for missing kernels, both raised
*when reached*; ``ExecutionError`` wrapping the same kernel failures).
Models the flattening cannot represent exactly (duplicate value names,
graph outputs never produced) compile to ``None`` and the interpreter
falls back to the legacy loop.  Coverage-traced runs stay on the compiled
path: the tracer's scope excludes ``repro/runtime``, so closures add no
arcs and skip none (pinned by the coverage-equivalence tests).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import (ExecutionError, GraphError, ReproError,
                          UnsupportedOperatorError)
from repro.graph.model import Model
from repro.runtime.interpreter import RunResult, _has_exceptional

__all__ = [
    "CompiledPlan",
    "attribute_slow_nodes",
    "batched_reference_runner",
    "compile_plan",
]

#: Ops whose kernels are elementwise over every input (unary activations,
#: broadcasting binaries, comparisons, logicals, Where): a leading batch
#: axis is transparent when every stacked operand has one rank and no
#: unstacked operand out-ranks the per-sample shapes.
_ELEMENTWISE_OPS = frozenset({
    "Relu", "LeakyRelu", "Sigmoid", "Tanh", "Softplus", "Erf", "Abs", "Neg",
    "Sign", "Reciprocal", "Exp", "Log", "Log2", "Sqrt", "Sin", "Cos", "Asin",
    "Acos", "Atan", "Floor", "Ceil", "Round", "Identity", "Dropout", "Not",
    "Clip", "Cast", "Add", "Sub", "Mul", "Max", "Min", "Equal", "Greater",
    "Less", "GreaterOrEqual", "LessOrEqual", "And", "Or", "Xor", "Div",
    "Mod", "Pow", "Where",
})

#: Most prefix cuts precomputed per plan (evenly strided when a model is
#: deeper; the final whole-graph cut is always kept).
_MAX_PREFIX_CUTS = 48


def _encode_attr(value: Any) -> Any:
    if isinstance(value, (list, tuple)):
        return [_encode_attr(item) for item in value]
    if isinstance(value, (bool, int, float, str)) or value is None:
        return [type(value).__name__, value]
    return ["repr", repr(value)]


def _array_digest(array: np.ndarray) -> bytes:
    digest = hashlib.sha256()
    digest.update(str(array.dtype).encode("utf-8"))
    digest.update(repr(array.shape).encode("utf-8"))
    digest.update(np.ascontiguousarray(array).tobytes())
    return digest.digest()


def _frozen_copy(array: np.ndarray) -> np.ndarray:
    copy = np.array(array, copy=True)
    copy.setflags(write=False)
    return copy


@dataclass(frozen=True)
class _PrefixCut:
    """One cachable topological prefix: steps ``0..index`` inclusive."""

    index: int
    struct_hex: str
    #: Positions into ``input_specs`` / ``init_slots`` whose content the
    #: prefix reads (they join the runtime cache key as digests).
    consumed_inputs: Tuple[int, ...]
    consumed_inits: Tuple[int, ...]
    #: Slots produced by the prefix and still needed afterwards (read by a
    #: later step, or protected graph outputs) — the values a hit restores.
    boundary_slots: Tuple[int, ...]
    #: Input/initializer slots the legacy loop would have dropped by now.
    dead_slots: Tuple[int, ...]


@dataclass(frozen=True)
class _PrefixEntry:
    """Cached boundary of one executed prefix (stored in HotPathCache)."""

    boundary: Tuple[np.ndarray, ...]
    exceptional: Tuple[str, ...]


class CompiledPlan:
    """A per-model flattening of the interpreter loop (see module docs)."""

    def __init__(self, model: Model) -> None:
        # Populated by compile_plan(); kept dataclass-free for loop speed.
        self.input_specs: List[Tuple[str, int, Any, Tuple[int, ...]]] = []
        self.init_slots: List[Tuple[str, int]] = []
        self.output_specs: List[Tuple[str, int]] = []
        self.slot_names: List[str] = []
        self.steps: List[Tuple] = []
        self.n_slots = 0
        self.peak_record = 0
        self.peak_lean = 0
        #: Deferred terminal raise — (exception class, message) when the
        #: plan ends at a statically-bad or kernel-less step.
        self.terminal: Optional[Tuple[type, str]] = None
        self.cuts: List[_PrefixCut] = []
        self._cut_at: Dict[int, _PrefixCut] = {}

    # ------------------------------------------------------------------ #
    # Sequential execution (the Interpreter.run_detailed fast path)
    # ------------------------------------------------------------------ #
    def execute(self, model: Model, inputs: Mapping[str, np.ndarray],
                record: bool, cache: Any) -> RunResult:
        slab: List[Optional[np.ndarray]] = [None] * self.n_slots
        for name, slot, np_dtype, shape in self.input_specs:
            if name not in inputs:
                raise ExecutionError(f"missing graph input {name!r}")
            array = np.asarray(inputs[name], dtype=np_dtype)
            if tuple(array.shape) != shape:
                raise ExecutionError(
                    f"input {name!r} has shape {array.shape}, expected {shape}")
            slab[slot] = array
        initializers = model.initializers
        for name, slot in self.init_slots:
            view = np.asarray(initializers[name]).view()
            view.setflags(write=False)
            slab[slot] = view

        first_exceptional: Optional[str] = None
        exceptional: List[str] = []
        start = 0
        use_prefix = (not record and cache is not None and cache.enabled
                      and cache.prefix_enabled and bool(self.cuts))
        digests: Dict[Tuple[str, int], bytes] = {}
        captured: List[Tuple[_PrefixCut, List[np.ndarray], int]] = []
        if use_prefix:
            hit = self._prefix_lookup(cache, slab, model, digests)
            if hit is not None:
                cut, entry = hit
                for slot in cut.dead_slots:
                    slab[slot] = None
                for slot, array in zip(cut.boundary_slots, entry.boundary):
                    slab[slot] = array
                exceptional = list(entry.exceptional)
                if exceptional:
                    first_exceptional = exceptional[0]
                start = cut.index + 1
                cache.record_hit("prefix")
            else:
                cache.record_miss("prefix")

        steps = self.steps
        cut_at = self._cut_at if use_prefix else None
        for index in range(start, len(steps)):
            kernel, attrs, in_slots, out_slots, drop_slots, name, op = steps[index]
            args = [slab[slot] for slot in in_slots]
            try:
                results = kernel(attrs, args)
            except (ValueError, IndexError, ZeroDivisionError) as exc:
                raise ExecutionError(f"kernel {op} failed: {exc}") from exc
            for slot, array in zip(out_slots, results):
                slab[slot] = array
            if _has_exceptional(results):
                exceptional.append(name)
                if first_exceptional is None:
                    first_exceptional = name
            if not record:
                for slot in drop_slots:
                    slab[slot] = None
            if cut_at is not None:
                cut = cut_at.get(index)
                if cut is not None:
                    captured.append(
                        (cut, [slab[slot] for slot in cut.boundary_slots],
                         len(exceptional)))

        if self.terminal is not None:
            exc_type, message = self.terminal
            raise exc_type(message)

        if use_prefix and captured:
            self._prefix_insert(cache, slab, model, digests, captured,
                                exceptional)

        outputs = {name: slab[slot] for name, slot in self.output_specs}
        if record:
            names = self.slot_names
            values = {names[i]: value for i, value in enumerate(slab)
                      if value is not None}
        else:
            values = {}
        return RunResult(
            outputs=outputs,
            values=values,
            first_exceptional_node=first_exceptional,
            exceptional_nodes=exceptional,
            peak_live_values=self.peak_record if record else self.peak_lean,
        )

    # ------------------------------------------------------------------ #
    # Prefix-cache plumbing
    # ------------------------------------------------------------------ #
    def _digest_for(self, kind: str, position: int,
                    slab: Sequence[Optional[np.ndarray]], model: Model,
                    digests: Dict[Tuple[str, int], bytes]) -> bytes:
        key = (kind, position)
        cached = digests.get(key)
        if cached is None:
            if kind == "in":
                cached = _array_digest(slab[self.input_specs[position][1]])
            else:
                name = self.init_slots[position][0]
                cached = _array_digest(np.asarray(model.initializers[name]))
            digests[key] = cached
        return cached

    def _prefix_key(self, cut: _PrefixCut,
                    slab: Sequence[Optional[np.ndarray]], model: Model,
                    digests: Dict[Tuple[str, int], bytes]) -> Tuple:
        return (
            cut.struct_hex,
            tuple(self._digest_for("in", position, slab, model, digests)
                  for position in cut.consumed_inputs),
            tuple(self._digest_for("init", position, slab, model, digests)
                  for position in cut.consumed_inits),
        )

    def _prefix_lookup(self, cache, slab, model, digests):
        for cut in reversed(self.cuts):
            entry = cache.prefix_get(
                self._prefix_key(cut, slab, model, digests))
            if entry is not None:
                return cut, entry
        return None

    def _prefix_insert(self, cache, slab, model, digests, captured,
                       exceptional) -> None:
        for cut, boundary, exceptional_count in captured:
            cache.prefix_put(
                self._prefix_key(cut, slab, model, digests),
                _PrefixEntry(
                    boundary=tuple(_frozen_copy(array) for array in boundary),
                    exceptional=tuple(exceptional[:exceptional_count]),
                ))

    # ------------------------------------------------------------------ #
    # Batched execution (K independent input sets, one sweep)
    # ------------------------------------------------------------------ #
    def execute_batched(self, model: Model,
                        inputs_list: Sequence[Mapping[str, np.ndarray]]
                        ) -> List[Dict[str, np.ndarray]]:
        """Outputs of ``len(inputs_list)`` independent runs, bit-identical
        to calling :meth:`execute` per sample (outputs only — intermediates
        and exceptional tracking are not reported in batched mode)."""
        count = len(inputs_list)
        slab: List[Optional[np.ndarray]] = [None] * self.n_slots
        batched: List[bool] = [False] * self.n_slots
        for name, slot, np_dtype, shape in self.input_specs:
            arrays = []
            for sample in inputs_list:
                if name not in sample:
                    raise ExecutionError(f"missing graph input {name!r}")
                array = np.asarray(sample[name], dtype=np_dtype)
                if tuple(array.shape) != shape:
                    raise ExecutionError(
                        f"input {name!r} has shape {array.shape}, "
                        f"expected {shape}")
                arrays.append(array)
            first = arrays[0]
            if all(np.array_equal(first, other) for other in arrays[1:]):
                slab[slot] = first
            else:
                slab[slot] = np.stack(arrays)
                batched[slot] = True
        initializers = model.initializers
        for name, slot in self.init_slots:
            view = np.asarray(initializers[name]).view()
            view.setflags(write=False)
            slab[slot] = view

        for kernel, attrs, in_slots, out_slots, drop_slots, _name, op in self.steps:
            step_batched = [batched[slot] for slot in in_slots]
            args = [slab[slot] for slot in in_slots]
            try:
                if not any(step_batched):
                    results = kernel(attrs, args)
                    out_flags = False
                elif self._batch_safe(op, attrs, args, step_batched):
                    results = kernel(attrs, args)
                    out_flags = True
                else:
                    per_sample = [
                        kernel(attrs,
                               [array[k] if flag else array
                                for array, flag in zip(args, step_batched)])
                        for k in range(count)
                    ]
                    results = [np.stack([outs[j] for outs in per_sample])
                               for j in range(len(per_sample[0]))]
                    out_flags = True
            except (ValueError, IndexError, ZeroDivisionError) as exc:
                raise ExecutionError(f"kernel {op} failed: {exc}") from exc
            for slot, array in zip(out_slots, results):
                slab[slot] = array
                batched[slot] = out_flags
            for slot in drop_slots:
                slab[slot] = None
                batched[slot] = False

        if self.terminal is not None:
            exc_type, message = self.terminal
            raise exc_type(message)

        outputs_list: List[Dict[str, np.ndarray]] = []
        for k in range(count):
            outputs_list.append({
                name: slab[slot][k] if batched[slot] else slab[slot]
                for name, slot in self.output_specs
            })
        return outputs_list

    @staticmethod
    def _batch_safe(op: str, attrs: dict, args: Sequence[np.ndarray],
                    flags: Sequence[bool]) -> bool:
        """True when running the kernel once over stacked operands is
        provably bit-identical to per-sample execution."""
        ranks = [array.ndim - 1 if flag else array.ndim
                 for array, flag in zip(args, flags)]
        if op in _ELEMENTWISE_OPS:
            stacked = [rank for rank, flag in zip(ranks, flags) if flag]
            top = max(stacked)
            if any(rank != top for rank in stacked):
                return False
            return all(rank <= top
                       for rank, flag in zip(ranks, flags) if not flag)
        if op == "Softmax":
            # A negative axis indexes from the trailing end, untouched by a
            # leading batch dimension.
            return int(attrs.get("axis", -1)) < 0
        if op == "MatMul":
            return all(rank == 2 for rank in ranks)
        if op == "Gemm":
            if len(ranks) < 2 or ranks[0] != 2 or ranks[1] != 2:
                return False
            if len(ranks) == 2:
                return True
            return ranks[2] == 2 if flags[2] else ranks[2] <= 2
        return False

    # ------------------------------------------------------------------ #
    # Per-closure timing hooks
    # ------------------------------------------------------------------ #
    def profile(self, model: Model, inputs: Mapping[str, np.ndarray],
                timer: Callable[[], float]
                ) -> Tuple[Dict[str, np.ndarray], List[Tuple[str, str, float]]]:
        """One lean run with every closure timed: ``(outputs, [(node,
        op, seconds), ...])``."""
        slab: List[Optional[np.ndarray]] = [None] * self.n_slots
        for name, slot, np_dtype, shape in self.input_specs:
            if name not in inputs:
                raise ExecutionError(f"missing graph input {name!r}")
            array = np.asarray(inputs[name], dtype=np_dtype)
            if tuple(array.shape) != shape:
                raise ExecutionError(
                    f"input {name!r} has shape {array.shape}, expected {shape}")
            slab[slot] = array
        initializers = model.initializers
        for name, slot in self.init_slots:
            view = np.asarray(initializers[name]).view()
            view.setflags(write=False)
            slab[slot] = view
        times: List[Tuple[str, str, float]] = []
        for kernel, attrs, in_slots, out_slots, drop_slots, name, op in self.steps:
            args = [slab[slot] for slot in in_slots]
            began = timer()
            try:
                results = kernel(attrs, args)
            except (ValueError, IndexError, ZeroDivisionError) as exc:
                raise ExecutionError(f"kernel {op} failed: {exc}") from exc
            times.append((name, op, timer() - began))
            for slot, array in zip(out_slots, results):
                slab[slot] = array
            for slot in drop_slots:
                slab[slot] = None
        if self.terminal is not None:
            exc_type, message = self.terminal
            raise exc_type(message)
        return {name: slab[slot] for name, slot in self.output_specs}, times


# --------------------------------------------------------------------------- #
# Compilation
# --------------------------------------------------------------------------- #
def compile_plan(model: Model, plan: Any) -> Optional[CompiledPlan]:
    """Flatten an :class:`ExecutionPlan` into a :class:`CompiledPlan`.

    Returns ``None`` for the rare shapes the slab cannot represent with
    exact legacy semantics (duplicate value names across inputs/
    initializers/outputs, or a declared graph output that is never
    produced) — the interpreter then keeps the dict loop.
    """
    compiled = CompiledPlan(model)
    slot_of: Dict[str, int] = {}

    def assign(name: str) -> Optional[int]:
        if name in slot_of:
            return None
        slot = len(compiled.slot_names)
        slot_of[name] = slot
        compiled.slot_names.append(name)
        return slot

    for position, name in enumerate(model.inputs):
        slot = assign(name)
        if slot is None:
            return None
        value_type = model.type_of(name)
        compiled.input_specs.append(
            (name, slot, value_type.dtype.numpy, tuple(value_type.shape)))
    for name in model.initializers:
        slot = assign(name)
        if slot is None:
            return None
        compiled.init_slots.append((name, slot))

    protected = plan.protected
    remaining = dict(plan.consumers)
    executed = []
    terminal: Optional[Tuple[type, str]] = None
    for kernel, node, bad_input in plan.steps:
        if bad_input is not None:
            terminal = (GraphError,
                        f"node {node.name} consumes unavailable value "
                        f"{bad_input!r}")
            break
        if kernel is None:
            terminal = (UnsupportedOperatorError,
                        f"no kernel for operator {node.op!r}")
            break
        executed.append((kernel, node))
    compiled.terminal = terminal

    live = len(compiled.input_specs) + len(compiled.init_slots)
    peak_lean = live
    total_outputs = 0
    for kernel, node in executed:
        in_slots = []
        for input_name in node.inputs:
            slot = slot_of.get(input_name)
            if slot is None:
                return None  # plan/model mismatch; let the legacy loop run
            in_slots.append(slot)
        out_slots = []
        for output_name in node.outputs:
            slot = assign(output_name)
            if slot is None:
                return None  # value-name reuse breaks slab SSA
            out_slots.append(slot)
        drop_slots = []
        for input_name in node.inputs:
            count = remaining.get(input_name)
            if count is None:
                continue
            count -= 1
            remaining[input_name] = count
            if count == 0 and input_name not in protected:
                drop_slots.append(slot_of[input_name])
        for output_name in node.outputs:
            if (output_name not in protected
                    and remaining.get(output_name, 0) == 0):
                drop_slots.append(slot_of[output_name])
        compiled.steps.append((kernel, node.attrs, tuple(in_slots),
                               tuple(out_slots), tuple(drop_slots),
                               node.name, node.op))
        total_outputs += len(out_slots)
        live += len(out_slots)
        if live > peak_lean:
            peak_lean = live
        live -= len(drop_slots)

    for name in model.outputs:
        slot = slot_of.get(name)
        if slot is None:
            return None  # output never produced: legacy loop raises KeyError
        compiled.output_specs.append((name, slot))

    compiled.n_slots = len(compiled.slot_names)
    base = len(compiled.input_specs) + len(compiled.init_slots)
    compiled.peak_record = base + total_outputs
    compiled.peak_lean = peak_lean
    if terminal is None and compiled.steps:
        _build_prefix_cuts(compiled, model, slot_of)
    return compiled


def _build_prefix_cuts(compiled: CompiledPlan, model: Model,
                       slot_of: Dict[str, int]) -> None:
    """Precompute the canonical fingerprint and boundary of every cut."""
    token_of: Dict[int, str] = {}
    input_position = {slot: position for position, (_name, slot, _dtype, _shape)
                      in enumerate(compiled.input_specs)}
    init_position = {slot: position
                     for position, (_name, slot) in enumerate(compiled.init_slots)}
    for slot, position in input_position.items():
        token_of[slot] = f"i{position}"
    for slot, position in init_position.items():
        token_of[slot] = f"t{position}"

    n_steps = len(compiled.steps)
    produced_at: Dict[int, int] = {}
    last_read: Dict[int, int] = {}
    for index, step in enumerate(compiled.steps):
        _kernel, _attrs, in_slots, out_slots, _drops, _name, _op = step
        for slot in in_slots:
            last_read[slot] = index
        for position, slot in enumerate(out_slots):
            produced_at[slot] = index
            token_of[slot] = f"n{index}.{position}"

    protected_slots = {slot for _name, slot in compiled.output_specs}
    stride = max(1, -(-n_steps // _MAX_PREFIX_CUTS))
    chain = hashlib.sha256()
    consumed_inputs: List[int] = []
    consumed_inits: List[int] = []
    seen_inputs = set()
    seen_inits = set()
    for index, step in enumerate(compiled.steps):
        _kernel, attrs, in_slots, out_slots, _drops, _name, op = step
        for slot in in_slots:
            position = input_position.get(slot)
            if position is not None and position not in seen_inputs:
                seen_inputs.add(position)
                consumed_inputs.append(position)
            position = init_position.get(slot)
            if position is not None and position not in seen_inits:
                seen_inits.add(position)
                consumed_inits.append(position)
        chain.update(json.dumps(
            [op,
             sorted((key, _encode_attr(value)) for key, value in attrs.items()),
             [token_of[slot] for slot in in_slots],
             len(out_slots)],
            sort_keys=True).encode("utf-8"))
        if index % stride and index != n_steps - 1:
            continue
        boundary = sorted(
            slot for slot, produced in produced_at.items()
            if produced <= index
            and (last_read.get(slot, -1) > index or slot in protected_slots))
        dead = sorted(
            slot for slot in list(input_position) + list(init_position)
            if last_read.get(slot, -1) <= index
            and slot in last_read
            and compiled.slot_names[slot] not in
            {name for name, _slot in compiled.output_specs})
        cut = _PrefixCut(
            index=index,
            struct_hex=chain.copy().hexdigest(),
            consumed_inputs=tuple(consumed_inputs),
            consumed_inits=tuple(consumed_inits),
            boundary_slots=tuple(boundary),
            dead_slots=tuple(dead),
        )
        compiled.cuts.append(cut)
        compiled._cut_at[index] = cut


# --------------------------------------------------------------------------- #
# Batched gradcheck support
# --------------------------------------------------------------------------- #
def batched_reference_runner(model: Model):
    """A ``List[inputs] -> List[outputs]`` batched reference runner, or
    ``None`` when compiled plans are disabled or unsupported for ``model``.

    Gated on the same knob as the compiled-plan layer, so campaigns with
    caches off exercise the sequential probe loop and the invisibility
    tests pin batched-vs-sequential bit-identity.
    """
    from repro.core import cache as cache_module

    hot = cache_module.get_cache()
    if not (hot.enabled and hot.plan_enabled):
        return None
    compiled, _plan = hot.plan_and_compiled(model)
    if compiled is None:
        return None

    def runner(batch: Sequence[Mapping[str, np.ndarray]]
               ) -> List[Dict[str, np.ndarray]]:
        return compiled.execute_batched(model, batch)

    return runner


# --------------------------------------------------------------------------- #
# Per-node perf attribution
# --------------------------------------------------------------------------- #
def _min_profile(profiler, inputs, timer, repeats: int
                 ) -> List[Tuple[str, str, float]]:
    order: List[Tuple[str, str]] = []
    best: Dict[str, float] = {}
    for _ in range(max(1, repeats)):
        for name, op, seconds in profiler(inputs, timer):
            if name not in best:
                order.append((name, op))
                best[name] = seconds
            elif seconds < best[name]:
                best[name] = seconds
    return [(name, op, best[name]) for name, op in order]


def attribute_slow_nodes(optimized: Any, baseline: Any,
                         inputs: Mapping[str, np.ndarray],
                         timer: Optional[Callable[[], float]] = None,
                         repeats: int = 2, top: int = 3,
                         share_floor: float = 0.8) -> List[Dict[str, str]]:
    """Bisect a flagged perf regression to the nodes that carry it.

    Both executables are profiled node-at-a-time through their own
    ``profile_nodes(inputs, timer)`` hook (min-of-``repeats`` per node, the
    same noise discipline as the perf oracle's measurements); per-node
    excess over the baseline is ranked and the dominating nodes returned as
    ``{"node", "op", "share"}`` provenance dicts.  Executables without the
    hook (codegen backends, test doubles) yield ``[]`` — attribution is
    strictly additive provenance, never a gate.
    """
    import time

    timer = timer if timer is not None else time.perf_counter
    optimized_profiler = getattr(optimized, "profile_nodes", None)
    baseline_profiler = getattr(baseline, "profile_nodes", None)
    if not callable(optimized_profiler) or not callable(baseline_profiler):
        return []
    try:
        optimized_times = _min_profile(optimized_profiler, inputs, timer,
                                       repeats)
        baseline_times = _min_profile(baseline_profiler, inputs, timer,
                                      repeats)
    except (ReproError, Exception):
        return []
    baseline_by_name = {name: seconds for name, _op, seconds in baseline_times}
    excess = [(name, op, seconds - baseline_by_name.get(name, 0.0))
              for name, op, seconds in optimized_times]
    positive = sorted((entry for entry in excess if entry[2] > 0.0),
                      key=lambda entry: -entry[2])
    total = sum(entry[2] for entry in positive)
    if total <= 0.0:
        return []
    slow: List[Dict[str, str]] = []
    covered = 0.0
    for name, op, seconds in positive[:max(1, top)]:
        slow.append({"node": name, "op": op, "share": f"{seconds / total:.0%}"})
        covered += seconds
        if covered / total >= share_floor:
            break
    return slow
