"""Reverse-mode autodiff over computation graphs (the PyTorch-autograd stand-in)."""

from repro.autodiff.backprop import backpropagate, gradient_norm
from repro.autodiff.optim import SGD, Adam
from repro.autodiff.proxy import DEFAULT_PROXY, NO_PROXY, ProxyConfig
from repro.autodiff.vjp import backward_node, has_vjp, unbroadcast

__all__ = [
    "Adam",
    "DEFAULT_PROXY",
    "NO_PROXY",
    "ProxyConfig",
    "SGD",
    "backpropagate",
    "backward_node",
    "gradient_norm",
    "has_vjp",
    "unbroadcast",
]
