"""Reverse-mode differentiation through a computation graph.

Given a model, the concrete value of every tensor in a forward run and a
gradient seed on one intermediate value, :func:`backpropagate` returns the
gradients of that value with respect to the model's inputs and weights.  The
gradient-guided value search (Algorithm 3) seeds the gradient of its loss on
the *input* of the first operator producing a NaN/Inf and uses the result to
update ``<X, W>``.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

import numpy as np

from repro.autodiff.proxy import DEFAULT_PROXY, ProxyConfig
from repro.autodiff.vjp import backward_node
from repro.graph.model import Model


def _node_order(model: Model):
    """Topological node order, served from the cached execution plan.

    The gradient-guided value search backpropagates once per search step, so
    re-walking ``topological_order()`` per call is hot-path waste; the plan
    layer (:mod:`repro.core.cache`) already holds the order per model.  A
    truncated plan (statically-bad input or missing kernel — shapes the
    forward run would have rejected) falls back to the plain walk.
    """
    try:
        from repro.core.cache import execution_plan
        plan = execution_plan(model)
    except Exception:
        return model.topological_order()
    if len(plan.steps) == plan.n_nodes and all(
            step[0] is not None and step[2] is None for step in plan.steps):
        return [step[1] for step in plan.steps]
    return model.topological_order()


def backpropagate(model: Model, values: Mapping[str, np.ndarray],
                  seed_grads: Mapping[str, np.ndarray],
                  proxy: ProxyConfig = DEFAULT_PROXY,
                  stop_after: Optional[str] = None,
                  bugs=None,
                  triggered: Optional[list] = None) -> Dict[str, np.ndarray]:
    """Propagate gradients from ``seed_grads`` back to inputs and weights.

    Args:
        model: the computation graph.
        values: concrete arrays for every value name touched by the forward
            run (inputs, weights, intermediates).
        seed_grads: the gradient flowing into one or more value names.
        proxy: proxy-derivative configuration.
        stop_after: optional node name; nodes after it in topological order
            are skipped (they cannot influence the seeded values anyway when
            the seed sits on that node's input).
        bugs: optional :class:`repro.compilers.bugs.BugConfig` activating
            the seeded wrong-VJP bugs (``None`` — the default everywhere
            except the ``gradcheck`` oracle — keeps every VJP correct).
        triggered: optional list collecting seeded bug ids whose buggy
            backward path executed.

    Returns:
        Gradients for every graph input and initializer (zero arrays for
        values the seeds do not reach).
    """
    grads: Dict[str, np.ndarray] = {
        name: np.asarray(grad, dtype=np.float64) for name, grad in seed_grads.items()
    }

    ordered = _node_order(model)
    if stop_after is not None:
        cutoff = next((i for i, node in enumerate(ordered) if node.name == stop_after),
                      len(ordered) - 1)
        ordered = ordered[: cutoff + 1]

    for node in reversed(ordered):
        grad_outputs = [grads.get(name) for name in node.outputs]
        if all(g is None for g in grad_outputs):
            continue
        input_arrays = [np.asarray(values[name]) for name in node.inputs]
        output_arrays = [np.asarray(values[name]) for name in node.outputs]
        input_grads = backward_node(node, input_arrays, output_arrays,
                                    grad_outputs, proxy,
                                    bugs=bugs, triggered=triggered)
        for name, grad in zip(node.inputs, input_grads):
            if name in grads:
                grads[name] = grads[name] + grad
            else:
                grads[name] = grad

    result: Dict[str, np.ndarray] = {}
    for name in list(model.inputs) + list(model.initializers):
        if name in grads:
            result[name] = grads[name]
        else:
            result[name] = np.zeros(model.type_of(name).shape, dtype=np.float64)
    return result


def gradient_norm(grads: Mapping[str, np.ndarray]) -> float:
    """Euclidean norm across a gradient dictionary (0.0 when empty)."""
    total = 0.0
    for grad in grads.values():
        finite = np.nan_to_num(np.asarray(grad, dtype=np.float64),
                               nan=0.0, posinf=0.0, neginf=0.0)
        total += float(np.sum(finite * finite))
    return float(np.sqrt(total))
