"""Vector-Jacobian products (VJPs) for every operator kind.

Together with :mod:`repro.autodiff.backprop` these form the reverse-mode
autodiff engine of the repo (the role PyTorch's autograd plays in the
original NNSmith).  Each VJP receives the node, its concrete input and output
arrays (as computed by the reference kernels in :mod:`repro.ops.semantics`),
and the gradients flowing into each output; it returns the gradient flowing
into each input.

Conventions:

* gradients are always float64 arrays of the same shape as the respective
  input;
* a ``None`` output gradient means "no gradient flows through this output"
  and is treated as zero;
* operators without a useful derivative (comparisons, ArgMax, ...) return
  zero gradients, which simply stops gradient flow along that path.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.dtypes import DType
from repro.errors import UnsupportedOperatorError
from repro.graph.node import Node
from repro.autodiff.proxy import DEFAULT_PROXY, ProxyConfig

Arrays = Sequence[np.ndarray]
Grads = List[np.ndarray]
VJP = Callable[[Node, Arrays, Arrays, Grads, ProxyConfig], Grads]

_VJPS: Dict[str, VJP] = {}

_EPS = 1e-12


def vjp(name: str) -> Callable[[VJP], VJP]:
    def wrap(func: VJP) -> VJP:
        _VJPS[name] = func
        return func

    return wrap


def has_vjp(name: str) -> bool:
    return name in _VJPS


def backward_node(node: Node, inputs: Arrays, outputs: Arrays,
                  grad_outputs: Sequence[Optional[np.ndarray]],
                  proxy: ProxyConfig = DEFAULT_PROXY,
                  bugs=None, triggered: Optional[List[str]] = None) -> Grads:
    """Compute input gradients for one node.

    ``bugs`` optionally activates the *seeded* wrong-VJP bugs (a
    :class:`repro.compilers.bugs.BugConfig`); the default ``None`` keeps
    every VJP correct, so gradient-guided value search and the ablation
    experiments are never perturbed — only callers that opt in (the
    ``gradcheck`` oracle) can observe the buggy backward paths.
    ``triggered`` collects the ids of seeded bugs whose buggy path
    actually executed.
    """
    func = _VJPS.get(node.op)
    if func is None:
        raise UnsupportedOperatorError(f"no VJP registered for operator {node.op!r}")
    if bugs is not None:
        seeded = _AUTODIFF_BUG_VJPS.get(node.op)
        if seeded is not None:
            bug_id, buggy = seeded
            if bugs.enabled(bug_id):
                func = buggy
                if triggered is not None and bug_id not in triggered:
                    triggered.append(bug_id)
    seeds = [
        np.zeros(out.shape, dtype=np.float64) if grad is None else np.asarray(grad, np.float64)
        for out, grad in zip(outputs, grad_outputs)
    ]
    inputs64 = [np.asarray(x, dtype=np.float64) for x in inputs]
    outputs64 = [np.asarray(y, dtype=np.float64) for y in outputs]
    with np.errstate(all="ignore"):
        grads = func(node, inputs64, outputs64, seeds, proxy)
    result = []
    for array, grad in zip(inputs, grads):
        grad = np.zeros(np.shape(array), dtype=np.float64) if grad is None else grad
        result.append(np.nan_to_num(np.asarray(grad, dtype=np.float64),
                                    nan=0.0, posinf=1e6, neginf=-1e6))
    return result


# --------------------------------------------------------------------------- #
# Shape helpers
# --------------------------------------------------------------------------- #
def unbroadcast(grad: np.ndarray, shape: Sequence[int]) -> np.ndarray:
    """Reduce a broadcasted gradient back to the original operand shape."""
    shape = tuple(shape)
    grad = np.asarray(grad, dtype=np.float64)
    if grad.shape == shape:
        return grad
    # Sum over the leading broadcast axes first.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Then over axes where the operand had size 1.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _zeros_like_all(inputs: Arrays) -> Grads:
    return [np.zeros(np.shape(x), dtype=np.float64) for x in inputs]


# --------------------------------------------------------------------------- #
# Elementwise unary
# --------------------------------------------------------------------------- #
@vjp("Relu")
def _relu_vjp(node, inputs, outputs, grads, proxy):
    (x,), (g,) = inputs, grads
    mask = (x > 0).astype(np.float64)
    if proxy.enabled:
        mask = mask + proxy.alpha * (x <= 0)
    return [g * mask]


@vjp("LeakyRelu")
def _leaky_relu_vjp(node, inputs, outputs, grads, proxy):
    (x,), (g,) = inputs, grads
    alpha = float(node.attrs.get("alpha", 0.01))
    return [g * np.where(x >= 0, 1.0, alpha)]


@vjp("Sigmoid")
def _sigmoid_vjp(node, inputs, outputs, grads, proxy):
    (y,), (g,) = outputs, grads
    return [g * y * (1.0 - y)]


@vjp("Tanh")
def _tanh_vjp(node, inputs, outputs, grads, proxy):
    (y,), (g,) = outputs, grads
    return [g * (1.0 - y * y)]


@vjp("Softplus")
def _softplus_vjp(node, inputs, outputs, grads, proxy):
    (x,), (g,) = inputs, grads
    return [g / (1.0 + np.exp(-x))]


@vjp("Erf")
def _erf_vjp(node, inputs, outputs, grads, proxy):
    (x,), (g,) = inputs, grads
    return [g * (2.0 / math.sqrt(math.pi)) * np.exp(-x * x)]


@vjp("Abs")
def _abs_vjp(node, inputs, outputs, grads, proxy):
    (x,), (g,) = inputs, grads
    sign = np.sign(x)
    if proxy.enabled:
        sign = np.where(sign == 0, proxy.alpha, sign)
    return [g * sign]


@vjp("Neg")
def _neg_vjp(node, inputs, outputs, grads, proxy):
    (g,) = grads
    return [-g]


@vjp("Sign")
def _sign_vjp(node, inputs, outputs, grads, proxy):
    (x,), (g,) = inputs, grads
    slope = proxy.alpha if proxy.enabled else 0.0
    return [g * slope]


@vjp("Reciprocal")
def _reciprocal_vjp(node, inputs, outputs, grads, proxy):
    (x,), (g,) = inputs, grads
    return [-g / (x * x + _EPS)]


@vjp("Exp")
def _exp_vjp(node, inputs, outputs, grads, proxy):
    (y,), (g,) = outputs, grads
    return [g * y]


@vjp("Log")
def _log_vjp(node, inputs, outputs, grads, proxy):
    (x,), (g,) = inputs, grads
    return [g / (x + _EPS)]


@vjp("Log2")
def _log2_vjp(node, inputs, outputs, grads, proxy):
    (x,), (g,) = inputs, grads
    return [g / ((x + _EPS) * math.log(2.0))]


@vjp("Sqrt")
def _sqrt_vjp(node, inputs, outputs, grads, proxy):
    (y,), (g,) = outputs, grads
    return [g / (2.0 * y + _EPS)]


@vjp("Sin")
def _sin_vjp(node, inputs, outputs, grads, proxy):
    (x,), (g,) = inputs, grads
    return [g * np.cos(x)]


@vjp("Cos")
def _cos_vjp(node, inputs, outputs, grads, proxy):
    (x,), (g,) = inputs, grads
    return [-g * np.sin(x)]


@vjp("Asin")
def _asin_vjp(node, inputs, outputs, grads, proxy):
    (x,), (g,) = inputs, grads
    return [g / np.sqrt(np.maximum(1.0 - x * x, _EPS))]


@vjp("Acos")
def _acos_vjp(node, inputs, outputs, grads, proxy):
    (x,), (g,) = inputs, grads
    return [-g / np.sqrt(np.maximum(1.0 - x * x, _EPS))]


@vjp("Atan")
def _atan_vjp(node, inputs, outputs, grads, proxy):
    (x,), (g,) = inputs, grads
    return [g / (1.0 + x * x)]


def _step_function_vjp(node, inputs, outputs, grads, proxy):
    (g,) = grads
    slope = proxy.straight_through if proxy.enabled else 0.0
    return [g * slope]


_VJPS["Floor"] = _step_function_vjp
_VJPS["Ceil"] = _step_function_vjp
_VJPS["Round"] = _step_function_vjp


@vjp("Identity")
def _identity_vjp(node, inputs, outputs, grads, proxy):
    return [grads[0]]


_VJPS["Dropout"] = _identity_vjp


@vjp("Not")
def _not_vjp(node, inputs, outputs, grads, proxy):
    return _zeros_like_all(inputs)


@vjp("Clip")
def _clip_vjp(node, inputs, outputs, grads, proxy):
    (x,), (g,) = inputs, grads
    lo = node.attrs.get("min")
    hi = node.attrs.get("max")
    lo = -np.inf if lo is None else lo
    hi = np.inf if hi is None else hi
    inside = ((x >= lo) & (x <= hi)).astype(np.float64)
    if proxy.enabled:
        inside = inside + proxy.alpha * (inside == 0)
    return [g * inside]


@vjp("Cast")
def _cast_vjp(node, inputs, outputs, grads, proxy):
    (x,), (g,) = inputs, grads
    target = DType.from_str(node.attrs["to"])
    if target.is_float:
        return [g]
    slope = proxy.straight_through if proxy.enabled else 0.0
    return [g * slope]


@vjp("Softmax")
def _softmax_vjp(node, inputs, outputs, grads, proxy):
    (y,), (g,) = outputs, grads
    axis = int(node.attrs.get("axis", -1))
    inner = np.sum(g * y, axis=axis, keepdims=True)
    return [y * (g - inner)]


# --------------------------------------------------------------------------- #
# Elementwise binary
# --------------------------------------------------------------------------- #
@vjp("Add")
def _add_vjp(node, inputs, outputs, grads, proxy):
    a, b = inputs
    (g,) = grads
    return [unbroadcast(g, a.shape), unbroadcast(g, b.shape)]


@vjp("Sub")
def _sub_vjp(node, inputs, outputs, grads, proxy):
    a, b = inputs
    (g,) = grads
    return [unbroadcast(g, a.shape), unbroadcast(-g, b.shape)]


@vjp("Mul")
def _mul_vjp(node, inputs, outputs, grads, proxy):
    a, b = inputs
    (g,) = grads
    return [unbroadcast(g * b, a.shape), unbroadcast(g * a, b.shape)]


@vjp("Div")
def _div_vjp(node, inputs, outputs, grads, proxy):
    a, b = inputs
    (g,) = grads
    safe_b = np.where(np.abs(b) < _EPS, _EPS, b)
    return [
        unbroadcast(g / safe_b, a.shape),
        unbroadcast(-g * a / (safe_b * safe_b), b.shape),
    ]


@vjp("Pow")
def _pow_vjp(node, inputs, outputs, grads, proxy):
    a, b = inputs
    (y,) = outputs
    (g,) = grads
    safe_a = np.where(np.abs(a) < _EPS, _EPS, a)
    grad_a = g * b * y / safe_a
    grad_b = g * y * np.log(np.where(a > 0, a, 1.0))
    return [unbroadcast(grad_a, a.shape), unbroadcast(grad_b, b.shape)]


@vjp("Max")
def _max_vjp(node, inputs, outputs, grads, proxy):
    a, b = inputs
    (g,) = grads
    mask = (a >= b).astype(np.float64)
    return [unbroadcast(g * mask, a.shape), unbroadcast(g * (1.0 - mask), b.shape)]


@vjp("Min")
def _min_vjp(node, inputs, outputs, grads, proxy):
    a, b = inputs
    (g,) = grads
    mask = (a <= b).astype(np.float64)
    return [unbroadcast(g * mask, a.shape), unbroadcast(g * (1.0 - mask), b.shape)]


@vjp("Mod")
def _mod_vjp(node, inputs, outputs, grads, proxy):
    a, b = inputs
    (g,) = grads
    return [unbroadcast(g, a.shape), np.zeros(b.shape, dtype=np.float64)]


def _no_grad_binary(node, inputs, outputs, grads, proxy):
    return _zeros_like_all(inputs)


for _name in ["Equal", "Greater", "Less", "GreaterOrEqual", "LessOrEqual",
              "And", "Or", "Xor"]:
    _VJPS[_name] = _no_grad_binary


@vjp("Where")
def _where_vjp(node, inputs, outputs, grads, proxy):
    cond, a, b = inputs
    (g,) = grads
    mask = cond.astype(np.float64)
    return [
        np.zeros(cond.shape, dtype=np.float64),
        unbroadcast(g * mask, a.shape),
        unbroadcast(g * (1.0 - mask), b.shape),
    ]


# --------------------------------------------------------------------------- #
# Matrix / NN operators
# --------------------------------------------------------------------------- #
@vjp("MatMul")
def _matmul_vjp(node, inputs, outputs, grads, proxy):
    a, b = inputs
    (g,) = grads
    a2 = a.reshape(1, -1) if a.ndim == 1 else a
    b2 = b.reshape(-1, 1) if b.ndim == 1 else b
    g2 = g
    if a.ndim == 1 and b.ndim == 1:
        g2 = g.reshape(1, 1)
    elif a.ndim == 1:
        g2 = np.expand_dims(g, axis=-2)
    elif b.ndim == 1:
        g2 = np.expand_dims(g, axis=-1)
    grad_a = np.matmul(g2, np.swapaxes(b2, -1, -2))
    grad_b = np.matmul(np.swapaxes(a2, -1, -2), g2)
    return [unbroadcast(grad_a.reshape(a.shape) if a.ndim <= 2 else grad_a, a.shape),
            unbroadcast(grad_b.reshape(b.shape) if b.ndim <= 2 else grad_b, b.shape)]


@vjp("Gemm")
def _gemm_vjp(node, inputs, outputs, grads, proxy):
    x, w = inputs[0], inputs[1]
    (g,) = grads
    grad_x = np.matmul(g, w.T)
    grad_w = np.matmul(x.T, g)
    result = [grad_x, grad_w]
    if len(inputs) > 2:
        result.append(unbroadcast(g.sum(axis=0), inputs[2].shape))
    return result


@vjp("Conv2d")
def _conv2d_vjp(node, inputs, outputs, grads, proxy):
    x, weight = inputs[0], inputs[1]
    (g,) = grads
    stride = int(node.attrs.get("stride", 1))
    padding = int(node.attrs.get("padding", 0))
    dilation = int(node.attrs.get("dilation", 1))
    batch, in_ch, in_h, in_w = x.shape
    out_ch, _, k_h, k_w = weight.shape
    _, _, out_h, out_w = g.shape

    padded = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    grad_padded = np.zeros_like(padded)
    grad_weight = np.zeros_like(weight)
    for i in range(k_h):
        for j in range(k_w):
            top, left = i * dilation, j * dilation
            window = padded[:, :, top:top + stride * out_h:stride,
                            left:left + stride * out_w:stride]
            # dL/dW[o, c, i, j] = sum_{b, oh, ow} g[b, o, oh, ow] * window[b, c, oh, ow]
            grad_weight[:, :, i, j] += np.einsum("bohw,bchw->oc", g, window)
            # dL/dX gets W[o, c, i, j] * g scattered back onto the window.
            contribution = np.einsum("bohw,oc->bchw", g, weight[:, :, i, j])
            grad_padded[:, :, top:top + stride * out_h:stride,
                        left:left + stride * out_w:stride] += contribution
    if padding > 0:
        grad_x = grad_padded[:, :, padding:padding + in_h, padding:padding + in_w]
    else:
        grad_x = grad_padded
    result = [grad_x, grad_weight]
    if len(inputs) > 2:
        result.append(g.sum(axis=(0, 2, 3)))
    return result


def _pool_windows(x: np.ndarray, k_h: int, k_w: int, stride: int, padding: int,
                  fill: float):
    batch, channels, in_h, in_w = x.shape
    out_h = (in_h + 2 * padding - k_h) // stride + 1
    out_w = (in_w + 2 * padding - k_w) // stride + 1
    padded = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)),
                    constant_values=fill)
    windows = np.zeros((batch, channels, k_h * k_w, out_h, out_w), dtype=np.float64)
    for i in range(k_h):
        for j in range(k_w):
            windows[:, :, i * k_w + j] = padded[:, :, i:i + stride * out_h:stride,
                                                j:j + stride * out_w:stride]
    return windows, padded.shape, out_h, out_w


def _scatter_windows(grad_windows: np.ndarray, padded_shape, k_h: int, k_w: int,
                     stride: int, padding: int, x_shape) -> np.ndarray:
    grad_padded = np.zeros(padded_shape, dtype=np.float64)
    out_h, out_w = grad_windows.shape[-2:]
    for i in range(k_h):
        for j in range(k_w):
            grad_padded[:, :, i:i + stride * out_h:stride,
                        j:j + stride * out_w:stride] += grad_windows[:, :, i * k_w + j]
    if padding > 0:
        return grad_padded[:, :, padding:padding + x_shape[2], padding:padding + x_shape[3]]
    return grad_padded


@vjp("MaxPool2d")
def _maxpool_vjp(node, inputs, outputs, grads, proxy):
    (x,), (y,), (g,) = inputs, outputs, grads
    k_h, k_w = int(node.attrs["kh"]), int(node.attrs["kw"])
    stride = int(node.attrs.get("stride", 1))
    padding = int(node.attrs.get("padding", 0))
    windows, padded_shape, _, _ = _pool_windows(x, k_h, k_w, stride, padding, -np.inf)
    is_max = (windows == y[:, :, None]).astype(np.float64)
    counts = np.maximum(is_max.sum(axis=2, keepdims=True), 1.0)
    grad_windows = is_max / counts * g[:, :, None]
    return [_scatter_windows(grad_windows, padded_shape, k_h, k_w, stride, padding, x.shape)]


@vjp("AvgPool2d")
def _avgpool_vjp(node, inputs, outputs, grads, proxy):
    (x,), (g,) = inputs, grads
    k_h, k_w = int(node.attrs["kh"]), int(node.attrs["kw"])
    stride = int(node.attrs.get("stride", 1))
    padding = int(node.attrs.get("padding", 0))
    _, padded_shape, out_h, out_w = _pool_windows(x, k_h, k_w, stride, padding, 0.0)
    grad_windows = np.broadcast_to(
        (g / (k_h * k_w))[:, :, None], (x.shape[0], x.shape[1], k_h * k_w, out_h, out_w))
    return [_scatter_windows(grad_windows, padded_shape, k_h, k_w, stride, padding, x.shape)]


@vjp("GlobalAvgPool2d")
def _global_avgpool_vjp(node, inputs, outputs, grads, proxy):
    (x,), (g,) = inputs, grads
    scale = 1.0 / (x.shape[2] * x.shape[3])
    return [np.broadcast_to(g * scale, x.shape).copy()]


@vjp("BatchNorm")
def _batchnorm_vjp(node, inputs, outputs, grads, proxy):
    x, scale, bias, mean, var = inputs
    (g,) = grads
    epsilon = float(node.attrs.get("epsilon", 1e-5))
    shape = (1, -1) + (1,) * (x.ndim - 2)
    inv_std = 1.0 / np.sqrt(var.reshape(shape) + epsilon)
    normalized = (x - mean.reshape(shape)) * inv_std
    reduce_axes = (0,) + tuple(range(2, x.ndim))
    grad_x = g * scale.reshape(shape) * inv_std
    grad_scale = (g * normalized).sum(axis=reduce_axes)
    grad_bias = g.sum(axis=reduce_axes)
    grad_mean = (-g * scale.reshape(shape) * inv_std).sum(axis=reduce_axes)
    grad_var = (g * scale.reshape(shape) * (x - mean.reshape(shape)) *
                (-0.5) * inv_std ** 3).sum(axis=reduce_axes)
    return [grad_x, grad_scale, grad_bias, grad_mean, grad_var]


@vjp("Resize2d")
def _resize_vjp(node, inputs, outputs, grads, proxy):
    (x,), (g,) = inputs, grads
    scale_h = int(node.attrs.get("scale_h", 2))
    scale_w = int(node.attrs.get("scale_w", 2))
    batch, channels, in_h, in_w = x.shape
    reshaped = g.reshape(batch, channels, in_h, scale_h, in_w, scale_w)
    return [reshaped.sum(axis=(3, 5))]


# --------------------------------------------------------------------------- #
# Data movement
# --------------------------------------------------------------------------- #
def _reshape_like_vjp(node, inputs, outputs, grads, proxy):
    (x,), (g,) = inputs, grads
    return [g.reshape(x.shape)]


for _name in ["Reshape", "Flatten", "Squeeze", "Unsqueeze"]:
    _VJPS[_name] = _reshape_like_vjp


@vjp("Transpose")
def _transpose_vjp(node, inputs, outputs, grads, proxy):
    (x,), (g,) = inputs, grads
    perm = node.attrs.get("perm")
    perm = [int(p) for p in perm] if perm is not None else list(range(x.ndim))[::-1]
    inverse = np.argsort(perm)
    return [np.transpose(g, inverse)]


@vjp("Slice")
def _slice_vjp(node, inputs, outputs, grads, proxy):
    (x,), (g,) = inputs, grads
    starts = [int(v) for v in node.attrs["starts"]]
    ends = [int(v) for v in node.attrs["ends"]]
    axes = [int(v) for v in node.attrs.get("axes", range(len(starts)))]
    steps = [int(v) for v in node.attrs.get("steps", [1] * len(starts))]
    slices = [slice(None)] * x.ndim
    for start, end, axis, step in zip(starts, ends, axes, steps):
        slices[axis] = slice(start, end, step)
    grad_x = np.zeros(x.shape, dtype=np.float64)
    grad_x[tuple(slices)] = g
    return [grad_x]


@vjp("Pad")
def _pad_vjp(node, inputs, outputs, grads, proxy):
    (x,), (g,) = inputs, grads
    pads = [int(p) for p in node.attrs["pads"]]
    rank = x.ndim
    # With pad-then-crop semantics, input element i along an axis with begin
    # pad ``before`` lands at output index ``i + before``; only indices that
    # stay inside the output receive a gradient.
    grad_x = np.zeros(x.shape, dtype=np.float64)
    src = []
    dst = []
    for i in range(rank):
        before = pads[i]
        low = max(0, -before)
        high = min(x.shape[i], g.shape[i] - before)
        if high <= low:
            return [grad_x]
        dst.append(slice(low, high))
        src.append(slice(low + before, high + before))
    grad_x[tuple(dst)] = g[tuple(src)]
    return [grad_x]


@vjp("BroadcastTo")
def _broadcast_to_vjp(node, inputs, outputs, grads, proxy):
    (x,), (g,) = inputs, grads
    return [unbroadcast(g, x.shape)]


@vjp("Concat")
def _concat_vjp(node, inputs, outputs, grads, proxy):
    (g,) = grads
    axis = int(node.attrs.get("axis", 0))
    sizes = [x.shape[axis] for x in inputs]
    splits = np.cumsum(sizes)[:-1]
    return [np.asarray(part, dtype=np.float64)
            for part in np.split(g, splits, axis=axis)]


@vjp("Split")
def _split_vjp(node, inputs, outputs, grads, proxy):
    axis = int(node.attrs.get("axis", 0))
    return [np.concatenate(grads, axis=axis)]


@vjp("Tile")
def _tile_vjp(node, inputs, outputs, grads, proxy):
    (x,), (g,) = inputs, grads
    repeats = [int(r) for r in node.attrs["repeats"]]
    # Reshape g to (r0, d0, r1, d1, ...) and sum over the repeat axes.
    interleaved = []
    for repeat, dim in zip(repeats, x.shape):
        interleaved.extend([repeat, dim])
    reshaped = g.reshape(interleaved)
    return [reshaped.sum(axis=tuple(range(0, 2 * x.ndim, 2)))]


@vjp("Gather")
def _gather_vjp(node, inputs, outputs, grads, proxy):
    data, indices = inputs
    (g,) = grads
    axis = int(node.attrs.get("axis", 0))
    grad_data = np.zeros(data.shape, dtype=np.float64)
    moved = np.moveaxis(grad_data, axis, 0)
    grad_moved = np.moveaxis(g, tuple(range(axis, axis + indices.ndim)),
                             tuple(range(indices.ndim)))
    flat_idx = indices.astype(np.int64).reshape(-1)
    flat_grad = grad_moved.reshape((flat_idx.size,) + moved.shape[1:])
    np.add.at(moved, flat_idx, flat_grad)
    return [grad_data, np.zeros(indices.shape, dtype=np.float64)]


# --------------------------------------------------------------------------- #
# Reductions
# --------------------------------------------------------------------------- #
def _reduce_axes(node: Node, rank: int):
    axes = node.attrs.get("axes")
    if axes is None:
        return tuple(range(rank))
    return tuple(int(a) % rank for a in axes)


def _expand_reduced(grad: np.ndarray, x: np.ndarray, axes, keepdims: bool) -> np.ndarray:
    if not keepdims:
        for axis in sorted(axes):
            grad = np.expand_dims(grad, axis=axis)
    return np.broadcast_to(grad, x.shape).copy()


@vjp("ReduceSum")
def _reduce_sum_vjp(node, inputs, outputs, grads, proxy):
    (x,), (g,) = inputs, grads
    axes = _reduce_axes(node, x.ndim)
    return [_expand_reduced(g, x, axes, bool(node.attrs.get("keepdims", False)))]


@vjp("ReduceMean")
def _reduce_mean_vjp(node, inputs, outputs, grads, proxy):
    (x,), (g,) = inputs, grads
    axes = _reduce_axes(node, x.ndim)
    count = float(np.prod([x.shape[a] for a in axes])) or 1.0
    expanded = _expand_reduced(g, x, axes, bool(node.attrs.get("keepdims", False)))
    return [expanded / count]


def _reduce_extreme_vjp(node, inputs, outputs, grads, proxy):
    (x,), (y,), (g,) = inputs, outputs, grads
    axes = _reduce_axes(node, x.ndim)
    keepdims = bool(node.attrs.get("keepdims", False))
    expanded_y = _expand_reduced(y, x, axes, keepdims)
    expanded_g = _expand_reduced(g, x, axes, keepdims)
    mask = (x == expanded_y).astype(np.float64)
    counts = mask.sum(axis=axes, keepdims=True)
    counts = np.broadcast_to(np.maximum(counts, 1.0), x.shape)
    return [expanded_g * mask / counts]


_VJPS["ReduceMax"] = _reduce_extreme_vjp
_VJPS["ReduceMin"] = _reduce_extreme_vjp


@vjp("ReduceProd")
def _reduce_prod_vjp(node, inputs, outputs, grads, proxy):
    (x,), (y,), (g,) = inputs, outputs, grads
    axes = _reduce_axes(node, x.ndim)
    keepdims = bool(node.attrs.get("keepdims", False))
    expanded_y = _expand_reduced(y, x, axes, keepdims)
    expanded_g = _expand_reduced(g, x, axes, keepdims)
    safe_x = np.where(np.abs(x) < _EPS, _EPS, x)
    return [expanded_g * expanded_y / safe_x]


def _no_grad_reduce(node, inputs, outputs, grads, proxy):
    return _zeros_like_all(inputs)


_VJPS["ArgMax"] = _no_grad_reduce
_VJPS["ArgMin"] = _no_grad_reduce


# --------------------------------------------------------------------------- #
# Seeded wrong-VJP bugs (see repro.compilers.bugs, system "autodiff").
# Forward results are untouched — these are visible only to a gradient
# check, mirroring the class of autograd bugs differential testing of
# forward outputs can never catch.  They activate only when a caller
# passes a BugConfig to backward_node/backpropagate (the gradcheck
# oracle); plain value-search backprop always uses the correct VJPs.
# --------------------------------------------------------------------------- #
def _tanh_vjp_buggy(node, inputs, outputs, grads, proxy):
    (y,), (g,) = outputs, grads
    return [g * (1.0 - y)]  # BUG: drops the square of the activation


def _sigmoid_vjp_buggy(node, inputs, outputs, grads, proxy):
    (y,), (g,) = outputs, grads
    return [g * (1.0 - y)]  # BUG: forgets the leading y factor


#: op kind -> (seeded bug id, buggy VJP replacing the correct one).
_AUTODIFF_BUG_VJPS: Dict[str, tuple] = {
    "Tanh": ("autodiff-tanh-grad-linear", _tanh_vjp_buggy),
    "Sigmoid": ("autodiff-sigmoid-grad-unscaled", _sigmoid_vjp_buggy),
}
