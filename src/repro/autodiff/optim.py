"""Optimizers over dictionaries of numpy arrays.

Algorithm 3 uses Adam because the loss functions attached to different
vulnerable operators vary by orders of magnitude; Adam's per-parameter
adaptive step sizes make a single learning rate workable across all of them.
The search also resets the optimizer state whenever the targeted loss
function switches, which :meth:`Adam.reset` supports.
"""

from __future__ import annotations

from typing import Dict, Mapping

import numpy as np


class Adam:
    """Adam optimizer for a named collection of tensors."""

    def __init__(self, learning_rate: float = 0.5, beta1: float = 0.9,
                 beta2: float = 0.999, epsilon: float = 1e-8) -> None:
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._step = 0
        self._first_moment: Dict[str, np.ndarray] = {}
        self._second_moment: Dict[str, np.ndarray] = {}

    def reset(self) -> None:
        """Clear moment estimates (used when the optimized loss switches)."""
        self._step = 0
        self._first_moment.clear()
        self._second_moment.clear()

    def step(self, params: Mapping[str, np.ndarray],
             grads: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Return updated parameters; neither input mapping is modified."""
        self._step += 1
        updated: Dict[str, np.ndarray] = {}
        for name, value in params.items():
            grad = np.asarray(grads.get(name, 0.0), dtype=np.float64)
            if grad.shape != np.shape(value):
                grad = np.broadcast_to(grad, np.shape(value))
            m = self._first_moment.get(name)
            v = self._second_moment.get(name)
            if m is None:
                m = np.zeros_like(grad)
                v = np.zeros_like(grad)
            m = self.beta1 * m + (1.0 - self.beta1) * grad
            v = self.beta2 * v + (1.0 - self.beta2) * grad * grad
            self._first_moment[name] = m
            self._second_moment[name] = v
            m_hat = m / (1.0 - self.beta1 ** self._step)
            v_hat = v / (1.0 - self.beta2 ** self._step)
            delta = self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)
            updated[name] = np.asarray(value, dtype=np.float64) - delta
        return updated


class SGD:
    """Plain gradient descent, used as a simpler baseline in tests."""

    def __init__(self, learning_rate: float = 0.1) -> None:
        self.learning_rate = learning_rate

    def reset(self) -> None:
        """Stateless; provided for interface parity with :class:`Adam`."""

    def step(self, params: Mapping[str, np.ndarray],
             grads: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
        updated: Dict[str, np.ndarray] = {}
        for name, value in params.items():
            grad = np.asarray(grads.get(name, 0.0), dtype=np.float64)
            updated[name] = np.asarray(value, dtype=np.float64) - self.learning_rate * grad
        return updated
