"""Proxy-derivative configuration for gradient-guided value search.

Some operators are not differentiable everywhere (``Floor``, ``Ceil``,
``Round``) or have zero gradient over large regions (``ReLU`` for negative
inputs, ``Clip`` outside its range).  Following §3.3 of the paper, the
backward pass can replace the true (zero or undefined) derivative with a
small *proxy derivative* whose sign follows the overall trend of the
function, so that gradient descent keeps making progress.

The Figure 11 ablation compares gradient search with and without this
mechanism, so it is a run-time switch rather than a hard-coded behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ProxyConfig:
    """Controls proxy derivatives during backpropagation.

    Attributes:
        enabled: when False, non-differentiable / zero-gradient regions
            propagate a zero gradient (the "Gradient" baseline in Figure 11).
        alpha: magnitude of the proxy slope used in zero-gradient regions
            (ReLU's negative side, Clip outside its bounds, ...), kept small
            as in LeakyReLU so the proxy stays close to the true derivative.
        straight_through: slope used for integer-valued step functions
            (Floor, Ceil, Round); the closest left-derivative of these is 1
            between integers, so the straight-through estimator uses 1.
    """

    enabled: bool = True
    alpha: float = 0.01
    straight_through: float = 1.0


#: Default configuration: proxy derivatives on (the full "Gradient (Proxy
#: Deriv.)" method in the paper).
DEFAULT_PROXY = ProxyConfig(enabled=True)

#: Configuration matching the paper's "Gradient" baseline (no proxies).
NO_PROXY = ProxyConfig(enabled=False)
