"""Command-line front end for sharded fuzzing campaigns.

Run a parallel campaign against the three in-repo compilers::

    python -m repro.campaign --iterations 200 --workers 4

Resume an interrupted campaign from its checkpoint (completed shards are
loaded, only missing shards re-run)::

    python -m repro.campaign --iterations 200 --workers 4 \\
        --checkpoint campaign.ckpt.json

``--workers 0`` (or ``--serial``) runs the same shard configs in-process,
serially — useful as a determinism reference and on single-core boxes.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.compilers.bugs import bug_spec
from repro.core.difftest import first_line
from repro.core.fuzzer import CampaignResult, FuzzerConfig
from repro.core.generator import GeneratorConfig
from repro.core.parallel import (
    default_compiler_factory,
    deterministic_config,
    run_parallel_campaign,
    run_sharded_serial,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign",
        description="Sharded, process-parallel fuzzing campaign runner.")
    parser.add_argument("--iterations", type=int, default=100,
                        help="total iterations across all shards (default 100)")
    parser.add_argument("--workers", type=int, default=2,
                        help="number of worker shards; 0 = serial (default 2)")
    parser.add_argument("--serial", action="store_true",
                        help="run the shards serially in-process")
    parser.add_argument("--nodes", type=int, default=10,
                        help="operators per generated model (default 10)")
    parser.add_argument("--seed", type=int, default=0,
                        help="campaign seed (default 0)")
    parser.add_argument("--method", default="gradient_proxy",
                        choices=("sampling", "gradient", "gradient_proxy"),
                        help="value-search method (default gradient_proxy)")
    parser.add_argument("--time-budget", type=float, default=None,
                        help="wall-clock budget per shard in seconds")
    parser.add_argument("--checkpoint", default=None, metavar="PATH",
                        help="JSON checkpoint path for resume support")
    parser.add_argument("--deterministic", action="store_true",
                        help="step-bounded value search (machine-load "
                             "independent results)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress streamed per-finding progress")
    return parser


def make_config(args: argparse.Namespace) -> FuzzerConfig:
    config = FuzzerConfig(
        generator=GeneratorConfig(n_nodes=args.nodes),
        max_iterations=args.iterations,
        time_budget=args.time_budget,
        value_search_method=args.method,
        seed=args.seed,
    )
    if args.deterministic:
        config = deterministic_config(config)
    return config


def print_summary(result: CampaignResult) -> None:
    print(f"\n{result.generated_models} models generated over "
          f"{result.iterations} iterations in {result.elapsed:.1f}s "
          f"({result.numerically_valid_models} numerically valid)")
    print(f"{len(result.reports)} deduplicated findings, "
          f"{len(result.seeded_bugs_found)} distinct seeded bugs hit")
    for report in result.reports:
        print(f"  [{report.compiler:<7}] {report.status:<8} ({report.phase}) "
              f"{first_line(report.message, 90)}")
    if result.seeded_bugs_found:
        print("\nGround-truth seeded bugs found:")
        for bug_id in sorted(result.seeded_bugs_found):
            spec = bug_spec(bug_id)
            print(f"  {bug_id:<38} {spec.system}/{spec.phase}/{spec.symptom}")
    print("\nPer-system counts:", result.bugs_by_system())


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    config = make_config(args)
    serial = args.serial or args.workers == 0
    n_workers = max(args.workers, 1)

    mode = "serially" if serial else f"across {n_workers} worker processes"
    print(f"Fuzzing graphrt, deepc, turbo for {args.iterations} iterations "
          f"{mode} ...")

    if serial:
        if args.checkpoint:
            print("warning: --checkpoint is only supported for parallel runs "
                  "and is ignored in serial mode", file=sys.stderr)
        result = run_sharded_serial(config, n_workers)
    else:
        def on_event(kind, shard, payload):
            if kind == "progress" and not args.quiet:
                print(f"  shard {shard}: iteration {payload['iteration']} "
                      f"{payload['status']} in {payload['compiler']}")

        result = run_parallel_campaign(
            config=config,
            n_workers=n_workers,
            compiler_factory=default_compiler_factory,
            checkpoint_path=args.checkpoint,
            on_event=on_event,
        )
    print_summary(result)
    return 0


if __name__ == "__main__":
    sys.exit(main())
