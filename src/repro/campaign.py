"""Command-line front end for sharded and matrix fuzzing campaigns.

Run a flat parallel campaign against the three in-repo compilers::

    python -m repro.campaign --iterations 200 --workers 4

Run a **matrix campaign** — the same shard seed streams raced over several
compiler subsets and optimization levels, with per-cell provenance for
Venn-style per-backend/per-opt-level analysis::

    python -m repro.campaign --iterations 100 --workers 4 \\
        --compilers graphrt,deepc --compilers turbo --opt-levels 0,2

``--matrix`` is shorthand for "every registered compiler on its own"
(crossed with ``--opt-levels``).

Race several *generation strategies* (NNSmith vs the baselines, or the
``targeted`` motif strategy) through the same engine with ``--generators``
— the paper's fuzzer-comparison in one campaign, with per-generator
provenance::

    python -m repro.campaign --iterations 90 --workers 2 \\
        --generators nnsmith,graphfuzzer,lemon

``--oracle`` picks the judging oracle (``difftest`` by default; ``crash``
skips the numeric comparison), and ``--pool-mode per-subset`` lets every
matrix cell probe its own compiler subset's operator support instead of the
shared union pool.

``--oracles`` makes the oracle itself a matrix axis: every named oracle
judges the *same* shard seed streams and the summary slices found bugs per
oracle — which is how the bug classes only the ``perf``
(optimized-vs-O0 runtime regression) and ``gradcheck`` (autodiff backprop
vs finite differences) oracles can see show up as their exclusive Venn
regions::

    python -m repro.campaign --iterations 60 --workers 4 \\
        --oracles difftest,perf,gradcheck

``--pipelines`` makes the *pass pipeline* a matrix axis: each token is
either a canonical opt-level pipeline (``O0``/``O1``/``O2``) or a sampler
``random:<k>@<seed>`` that expands to ``k`` deterministic random pass
subsequences/orderings (pure function of the campaign seed and sampler
seed, so every worker and every resume sees the same pipelines).  Sampled
cells run equivalence-modulo-passes differential testing — the same model
population compiled under a shuffled pass sequence versus the canonical
one — which is how ordering-dependent compiler bugs that no canonical
``-O<k>`` level can trigger become visible, each attributable to a minimal
pass subsequence via :mod:`repro.experiments.pass_bisect`::

    python -m repro.campaign --iterations 60 --workers 4 \\
        --compilers graphrt --pipelines O2,random:4@11

``--list-passes`` dumps the registered pass pipelines per backend stage
and exits.

Checkpointing streams *per-iteration* progress: a campaign killed mid-shard
resumes from the exact iteration it reached, re-executing only the missing
iterations of each matrix cell (pure time-budget campaigns track consumed
budget per cell and resume with the remainder)::

    python -m repro.campaign --iterations 200 --workers 4 \\
        --checkpoint campaign.ckpt.json

``--schedule`` picks the lease scheduler (:mod:`repro.core.schedule`):
``static`` pre-plans one lease per cell, ``adaptive`` splits budgets into
chunks that idle workers steal from slower cells, and ``coverage`` turns
the campaign into a coverage-guided one — workers trace compiler branch
arcs per iteration and stream deltas to the coordinator, which leases the
next chunk to the cell with the best recent novelty-per-second and records
per-cell and global coverage-over-time series (the Figure 4/5-style
curves).  Scheduling never changes *which* iterations run: for a fixed
iteration budget the merged findings are bit-identical across all three
(only lease order/placement moves).  ``--adaptive`` is the historical
alias for ``--schedule adaptive``.

``--workers 1`` runs the campaign in-process — no worker processes, no
queues — while keeping full checkpoint/resume support.  ``--workers 0`` (or
``--serial``) runs the PR-1 reference path (one ``Fuzzer`` per shard,
merged); it has no checkpoint support and refuses ``--checkpoint`` loudly.

**Distributed campaigns** hang off three subcommands (see
:mod:`repro.core.fabric.service`): ``serve`` runs the coordinator as a TCP
service, ``worker`` joins a remote fleet member, and ``status`` fetches the
live JSON snapshot::

    python -m repro.campaign serve --port 7777 --iterations 200 &
    python -m repro.campaign worker --connect localhost:7777 &
    python -m repro.campaign status --connect localhost:7777

Findings are transport-independent: the same campaign over local queues,
over sockets, or checkpoint-resumed across the two, produces bit-identical
findings.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.compilers.base import registered_compilers
from repro.compilers.bugs import bug_spec
from repro.compilers.coverage import is_pass_arc
from repro.core.difftest import first_line
from repro.core.fuzzer import CampaignResult, FuzzerConfig
from repro.core.generator import GeneratorConfig
from repro.core.oracle import DEFAULT_ORACLE, registered_oracles
from repro.core.parallel import (
    default_compiler_factory,
    deterministic_config,
    run_parallel_campaign,
    run_sharded_serial,
)
from repro.core.schedule import DEFAULT_SCHEDULER, registered_schedulers
from repro.core.strategy import DEFAULT_STRATEGY, registered_strategies
from repro.experiments.venn import campaign_cell_sets, format_venn_table


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign",
        description="Sharded / matrix process-parallel fuzzing campaign runner.")
    parser.add_argument("--iterations", type=int, default=100,
                        help="total iterations per compiler-set x opt-level "
                             "combination, split across shards (default 100)")
    parser.add_argument("--workers", type=int, default=2,
                        help="worker processes; 1 = in-process, "
                             "0 = serial reference (default 2)")
    parser.add_argument("--shards", type=int, default=None,
                        help="shards per combination (default: --workers)")
    parser.add_argument("--serial", action="store_true",
                        help="run the PR-1 serial reference path")
    parser.add_argument("--compilers", action="append", default=None,
                        metavar="NAME[,NAME...]",
                        help="a compiler subset to race as matrix columns; "
                             "repeat for several subsets "
                             "(e.g. --compilers graphrt,deepc --compilers turbo)")
    parser.add_argument("--matrix", action="store_true",
                        help="shorthand: every registered compiler as its own "
                             "single-element subset")
    parser.add_argument("--opt-levels", default=None, metavar="N[,N...]",
                        help="optimization levels crossed with --compilers "
                             "(default 2)")
    parser.add_argument("--generators", default=None, metavar="NAME[,NAME...]",
                        help="generation strategies raced as a matrix axis "
                             "(e.g. nnsmith,graphfuzzer,lemon); "
                             f"registered: {', '.join(registered_strategies())}")
    parser.add_argument("--oracle", default=DEFAULT_ORACLE,
                        help="test oracle judging every case; registered: "
                             f"{', '.join(registered_oracles())} "
                             f"(default {DEFAULT_ORACLE})")
    parser.add_argument("--oracles", default=None, metavar="NAME[,NAME...]",
                        help="test oracles raced as a matrix axis (e.g. "
                             "difftest,perf,gradcheck): every oracle judges "
                             "the same shard seed streams and the summary "
                             "slices found bugs per oracle; registered: "
                             f"{', '.join(registered_oracles())}")
    parser.add_argument("--pipelines", default=None, metavar="TOK[,TOK...]",
                        help="pass pipelines raced as a matrix axis: 'O0'/"
                             "'O1'/'O2' name the canonical opt-level "
                             "pipelines, 'random:<k>@<seed>' expands to k "
                             "deterministic sampled pass subsequences/"
                             "orderings (e.g. --pipelines O2,random:4@11); "
                             "sampled cells difftest equivalence-modulo-"
                             "passes against the canonical pipeline")
    parser.add_argument("--list-passes", action="store_true",
                        help="print the registered pass registry (per "
                             "backend stage, canonical order) and exit")
    parser.add_argument("--pool-mode", default="union",
                        choices=("union", "per-subset"),
                        help="operator-pool probing for --compilers matrices: "
                             "'union' bakes one shared pool into every cell "
                             "(apples-to-apples streams); 'per-subset' lets "
                             "each cell fuzz every operator its own subset "
                             "supports (default union)")
    parser.add_argument("--schedule", default=DEFAULT_SCHEDULER,
                        choices=registered_schedulers(),
                        help="lease scheduler: 'static' pre-plans cell "
                             "budgets, 'adaptive' lets idle workers steal "
                             "from slower cells, 'coverage' leases by "
                             "recent new-arc rate using per-iteration "
                             "coverage feedback (findings are identical "
                             "across schedulers; default "
                             f"{DEFAULT_SCHEDULER})")
    parser.add_argument("--adaptive", action="store_true",
                        help="alias for --schedule adaptive")
    parser.add_argument("--nodes", type=int, default=10,
                        help="operators per generated model (default 10)")
    parser.add_argument("--seed", type=int, default=0,
                        help="campaign seed (default 0)")
    parser.add_argument("--method", default="gradient_proxy",
                        choices=("sampling", "gradient", "gradient_proxy"),
                        help="value-search method (default gradient_proxy)")
    parser.add_argument("--time-budget", type=float, default=None,
                        help="wall-clock budget per shard in seconds")
    parser.add_argument("--checkpoint", default=None, metavar="PATH",
                        help="JSON checkpoint path; streams per-iteration "
                             "progress and resumes mid-cell")
    parser.add_argument("--checkpoint-every", type=int, default=1, metavar="N",
                        help="persist the checkpoint every N folded "
                             "iterations (default 1 = finest resume "
                             "granularity; raise for long campaigns — the "
                             "snapshot is rewritten in full on every save, "
                             "and with --schedule coverage it includes "
                             "every cell's cumulative arc set, so per-"
                             "iteration saves grow quadratic in coverage)")
    parser.add_argument("--deterministic", action="store_true",
                        help="step-bounded value search (machine-load "
                             "independent results)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress streamed per-finding progress")
    parser.add_argument("--verify-passes", action="store_true",
                        help="check IR well-formedness at every pass "
                             "boundary of every compile (repro.analysis); "
                             "ill-formed IR surfaces as 'verifier' findings "
                             "that no execution-based oracle can observe")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the hot-path caches (repro.core.cache); "
                             "findings are bit-identical either way — this "
                             "only benchmarks the cold path")
    parser.add_argument("--fault-tolerance", default="fail",
                        choices=("fail", "requeue"),
                        help="dead-worker policy: 'fail' aborts the campaign "
                             "loudly (default); 'requeue' redistributes a "
                             "dead worker's leases to the survivors — "
                             "findings are bit-identical either way")
    parser.add_argument("--stagnation-budget", type=float, default=None,
                        metavar="SECONDS",
                        help="early-terminate a cell whose coverage novelty "
                             "has been flat for this many compute seconds "
                             "(requires --schedule coverage)")
    return parser


def make_config(args: argparse.Namespace) -> FuzzerConfig:
    config = FuzzerConfig(
        generator=GeneratorConfig(n_nodes=args.nodes),
        max_iterations=args.iterations,
        time_budget=args.time_budget,
        value_search_method=args.method,
        seed=args.seed,
        oracle=getattr(args, "oracle", DEFAULT_ORACLE),
        enable_cache=not getattr(args, "no_cache", False),
        verify_passes=getattr(args, "verify_passes", False),
    )
    if args.deterministic:
        config = deterministic_config(config)
    return config


def parse_generators(args: argparse.Namespace) -> Optional[List[str]]:
    """The generator-axis strategies requested on the command line."""
    if not args.generators:
        return None
    names = [name.strip() for name in args.generators.split(",")
             if name.strip()]
    return names or None


def parse_oracles(args: argparse.Namespace) -> Optional[List[str]]:
    """The oracle-axis oracles requested on the command line."""
    if not getattr(args, "oracles", None):
        return None
    names = [name.strip() for name in args.oracles.split(",")
             if name.strip()]
    return names or None


def parse_pipelines(args: argparse.Namespace) -> Optional[List[str]]:
    """The pipeline-axis tokens requested on the command line."""
    if not getattr(args, "pipelines", None):
        return None
    names = [name.strip() for name in args.pipelines.split(",")
             if name.strip()]
    return names or None


def parse_compiler_sets(args: argparse.Namespace) -> Optional[List[List[str]]]:
    """The matrix columns requested on the command line, or None (flat)."""
    sets: List[List[str]] = []
    if args.compilers:
        for spec in args.compilers:
            names = [name.strip() for name in spec.split(",") if name.strip()]
            if names:
                sets.append(names)
    if args.matrix and not sets:
        sets = [[name] for name in registered_compilers()]
    return sets or None


def parse_opt_levels(args: argparse.Namespace) -> Optional[List[int]]:
    if args.opt_levels is None:
        return None
    return [int(level.strip()) for level in args.opt_levels.split(",")
            if level.strip()]


def print_summary(result: CampaignResult) -> None:
    print(f"\n{result.generated_models} models generated over "
          f"{result.iterations} iterations in {result.elapsed:.1f}s "
          f"({result.numerically_valid_models} numerically valid)")
    print(f"{len(result.reports)} deduplicated findings, "
          f"{len(result.seeded_bugs_found)} distinct seeded bugs hit")
    for report in result.reports:
        print(f"  [{report.compiler:<7}] {report.status:<8} ({report.phase}) "
              f"{first_line(report.message, 90)}")
    if result.seeded_bugs_found:
        print("\nGround-truth seeded bugs found:")
        for bug_id in sorted(result.seeded_bugs_found):
            spec = bug_spec(bug_id)
            print(f"  {bug_id:<38} {spec.system}/{spec.phase}/{spec.symptom}")
    print("\nPer-system counts:", result.bugs_by_system())
    if result.cache_stats:
        parts = []
        for stage in ("artifact", "shape_infer", "exec_plan", "plan",
                      "prefix"):
            counters = result.cache_stats.get(stage)
            if not counters:
                continue
            total = counters["hits"] + counters["misses"]
            parts.append(f"{stage} {counters['hits']}/{total} hits")
        if parts:
            print("Hot-path cache:", ", ".join(parts))
    if result.coverage_arcs:
        pass_arcs = sum(1 for arc in result.coverage_arcs
                        if is_pass_arc(arc))
        print(f"\nCompiler coverage: {len(result.coverage_arcs)} branch "
              f"arcs ({pass_arcs} in pass files) over "
              f"{len(result.coverage_timeline)} sampled iterations")
        if result.cells:
            for key in sorted(result.cells):
                cell = result.cells[key]
                if cell.coverage_arcs:
                    print(f"  [{key}] {len(cell.coverage_arcs)} arcs")
    if result.cells and any(cell.compilers for cell in result.cells.values()):
        print()
        print(format_venn_table(campaign_cell_sets(result, by="compiler_set"),
                                title="Seeded bugs by compiler subset:"))
        by_opt = campaign_cell_sets(result, by="opt_level")
        if len(by_opt) > 1:
            print()
            print(format_venn_table(by_opt,
                                    title="Seeded bugs by opt level:"))
    if result.cells and any(cell.generator for cell in result.cells.values()):
        print()
        print(format_venn_table(campaign_cell_sets(result, by="generator"),
                                title="Seeded bugs by generator:"))
    if result.cells and any(cell.oracle for cell in result.cells.values()):
        print()
        print(format_venn_table(campaign_cell_sets(result, by="oracle"),
                                title="Seeded bugs by oracle:"))
    if result.cells and any(cell.pipeline for cell in result.cells.values()):
        print()
        print(format_venn_table(campaign_cell_sets(result, by="pipeline"),
                                title="Seeded bugs by pipeline:"))


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] in ("serve", "worker", "status"):
        # Fabric subcommands (repro.core.fabric.service): the coordinator
        # service, a fleet worker, and the live-status client.  Dispatched
        # here rather than via subparsers so the historical flag-only
        # invocation (and every script parsing `build_parser()`) is
        # untouched.
        from repro.core.fabric.service import fabric_main

        return fabric_main(argv)
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_passes:
        from repro.compilers.pipeline import describe_pass_registry
        print(describe_pass_registry())
        return 0
    config = make_config(args)
    serial = args.serial or args.workers == 0
    n_workers = max(args.workers, 1)
    compiler_sets = parse_compiler_sets(args)
    opt_levels = parse_opt_levels(args)
    generators = parse_generators(args)
    oracles = parse_oracles(args)
    pipelines = parse_pipelines(args)
    if opt_levels is not None and compiler_sets is None:
        # Factory mode fixes its own opt levels; silently ignoring the flag
        # would hand the user an O2 campaign labeled as whatever they asked.
        parser.error("--opt-levels requires --compilers or --matrix")

    if serial:
        if args.checkpoint:
            # The reference path has no checkpoint pipeline; silently
            # ignoring the flag would look like resume support.  Refuse.
            parser.error("--checkpoint requires the parallel engine; "
                         "use --workers 1 for an in-process run with "
                         "checkpoint support")
        if compiler_sets or generators or oracles or pipelines:
            parser.error("--compilers/--matrix/--generators/--oracles/"
                         "--pipelines require the parallel engine; use "
                         "--workers 1 for an in-process matrix run")
        if args.schedule != DEFAULT_SCHEDULER or args.adaptive:
            # The reference path has no lease scheduler at all; silently
            # ignoring the flag would look like coverage-guided scheduling.
            parser.error("--schedule/--adaptive require the parallel "
                         "engine; use --workers 1 for an in-process run")
        print(f"Fuzzing graphrt, deepc, turbo for {args.iterations} "
              f"iterations serially ...")
        result = run_sharded_serial(config, n_workers)
        print_summary(result)
        return 0

    if compiler_sets:
        columns = " | ".join(",".join(subset) for subset in compiler_sets)
        levels = ",".join(str(level) for level in (opt_levels or [2]))
        mode = f"matrix [{columns}] x O[{levels}]"
    else:
        mode = "graphrt, deepc, turbo"
    if generators:
        mode += f" x gen[{','.join(generators)}]"
    if oracles:
        mode += f" x oracle[{','.join(oracles)}]"
    if pipelines:
        mode += f" x pipe[{','.join(pipelines)}]"
    how = "in-process" if n_workers == 1 else \
        f"across {n_workers} worker processes"
    schedule = "adaptive" if (args.adaptive and
                              args.schedule == DEFAULT_SCHEDULER) \
        else args.schedule
    print(f"Fuzzing {mode} for {args.iterations} iterations {how} "
          f"({schedule} scheduling) ...")

    def on_event(kind, cell_key, payload):
        if kind == "progress" and not args.quiet:
            print(f"  [{cell_key}] iteration {payload['iteration']} "
                  f"{payload['status']} in {payload['compiler']}")

    result = run_parallel_campaign(
        config=config,
        n_workers=n_workers,
        compiler_factory=default_compiler_factory,
        compiler_sets=compiler_sets,
        opt_levels=opt_levels,
        generators=generators,
        oracles=oracles,
        pipelines=pipelines,
        pool_mode=args.pool_mode,
        n_shards=args.shards,
        checkpoint_path=args.checkpoint,
        checkpoint_every=args.checkpoint_every,
        schedule=args.schedule,
        adaptive=args.adaptive,
        on_event=on_event,
        fault_tolerance=args.fault_tolerance,
        stagnation_budget=args.stagnation_budget,
    )
    print_summary(result)
    return 0


if __name__ == "__main__":
    sys.exit(main())
