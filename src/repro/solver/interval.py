"""Variable domains and simple interval tightening.

The solver keeps one :class:`Domain` per symbolic variable.  Before search,
atomic comparisons of the form ``var <op> constant`` (and the mirrored form)
are used to tighten domains — a cheap but effective preprocessing step given
that most NNSmith constraints involve explicit lower/upper bounds
(``kernel > 0``, binning constraints ``l <= attr <= r``, ...).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

from repro.solver.constraints import Comparison, Constraint
from repro.solver.expr import Const, SymVar

#: Default bounds for freshly created variables: dimensions and attributes of
#: generated DNNs are positive and kept small for fuzzing efficiency.
DEFAULT_MIN = 1
DEFAULT_MAX = 4096


@dataclass
class Domain:
    """An inclusive integer interval for one variable."""

    low: int = DEFAULT_MIN
    high: int = DEFAULT_MAX

    def clamp(self, value: int) -> int:
        """Project a value into the domain."""
        return max(self.low, min(self.high, value))

    def contains(self, value: int) -> bool:
        return self.low <= value <= self.high

    @property
    def width(self) -> int:
        return max(0, self.high - self.low + 1)

    def is_empty(self) -> bool:
        return self.high < self.low

    def candidates(self, limit: int = 256) -> List[int]:
        """Representative values to try during repair search.

        Enumerates the full interval when it is small; otherwise mixes the
        low end (small shapes dominate valid DNNs), geometric steps and the
        upper bound so that large attributes remain reachable.
        """
        if self.is_empty():
            return []
        if self.width <= limit:
            return list(range(self.low, self.high + 1))
        values = set(range(self.low, self.low + limit // 2))
        step = self.low if self.low > 0 else 1
        value = max(self.low, 1)
        while value <= self.high:
            values.add(int(value))
            value *= 2
        values.add(self.high)
        return sorted(v for v in values if self.contains(v))


def tighten(domains: Dict[str, Domain], constraints: Iterable[Constraint]) -> None:
    """Tighten domains in place using ``var <op> const`` shaped comparisons."""
    for constraint in constraints:
        if not isinstance(constraint, Comparison):
            continue
        lhs, rhs, op = constraint.lhs, constraint.rhs, constraint.op
        if isinstance(lhs, SymVar) and isinstance(rhs, Const):
            _apply(domains, lhs.name, op, rhs.value)
        elif isinstance(rhs, SymVar) and isinstance(lhs, Const):
            _apply(domains, rhs.name, _mirror(op), lhs.value)


def _mirror(op: str) -> str:
    return {"<": ">", ">": "<", "<=": ">=", ">=": "<=", "==": "==", "!=": "!="}[op]


def _apply(domains: Dict[str, Domain], name: str, op: str, bound: int) -> None:
    domain = domains.setdefault(name, Domain())
    if op == "==":
        domain.low = max(domain.low, bound)
        domain.high = min(domain.high, bound)
    elif op == "<=":
        domain.high = min(domain.high, bound)
    elif op == "<":
        domain.high = min(domain.high, bound - 1)
    elif op == ">=":
        domain.low = max(domain.low, bound)
    elif op == ">":
        domain.low = max(domain.low, bound + 1)
    # "!=" carries no useful interval information.
