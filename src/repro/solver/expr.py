"""Symbolic integer expressions.

Operator specifications describe shapes and attributes with symbolic integers
(:class:`SymVar`) combined through ordinary arithmetic.  Expressions support
the operators NNSmith's specifications need: ``+ - * // %`` as well as
``min``/``max``, and comparisons produce :mod:`repro.solver.constraints`
predicates.

The original NNSmith hands such expressions to Z3; here they are evaluated
and solved by :mod:`repro.solver.solver`.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Union

Assignment = Dict[str, int]
ExprLike = Union["Expr", int]


class Expr:
    """Base class of the symbolic integer expression AST."""

    def evaluate(self, assignment: Assignment) -> int:
        raise NotImplementedError

    def variables(self) -> FrozenSet[str]:
        raise NotImplementedError

    # -------------------------- arithmetic -------------------------- #
    def __add__(self, other: ExprLike) -> "Expr":
        return BinOp("+", self, to_expr(other))

    def __radd__(self, other: ExprLike) -> "Expr":
        return BinOp("+", to_expr(other), self)

    def __sub__(self, other: ExprLike) -> "Expr":
        return BinOp("-", self, to_expr(other))

    def __rsub__(self, other: ExprLike) -> "Expr":
        return BinOp("-", to_expr(other), self)

    def __mul__(self, other: ExprLike) -> "Expr":
        return BinOp("*", self, to_expr(other))

    def __rmul__(self, other: ExprLike) -> "Expr":
        return BinOp("*", to_expr(other), self)

    def __floordiv__(self, other: ExprLike) -> "Expr":
        return BinOp("//", self, to_expr(other))

    def __rfloordiv__(self, other: ExprLike) -> "Expr":
        return BinOp("//", to_expr(other), self)

    def __mod__(self, other: ExprLike) -> "Expr":
        return BinOp("%", self, to_expr(other))

    def __neg__(self) -> "Expr":
        return BinOp("-", Const(0), self)

    # -------------------------- comparisons ------------------------- #
    def __eq__(self, other: ExprLike):  # type: ignore[override]
        from repro.solver.constraints import Comparison
        return Comparison("==", self, to_expr(other))

    def __ne__(self, other: ExprLike):  # type: ignore[override]
        from repro.solver.constraints import Comparison
        return Comparison("!=", self, to_expr(other))

    def __le__(self, other: ExprLike):
        from repro.solver.constraints import Comparison
        return Comparison("<=", self, to_expr(other))

    def __lt__(self, other: ExprLike):
        from repro.solver.constraints import Comparison
        return Comparison("<", self, to_expr(other))

    def __ge__(self, other: ExprLike):
        from repro.solver.constraints import Comparison
        return Comparison(">=", self, to_expr(other))

    def __gt__(self, other: ExprLike):
        from repro.solver.constraints import Comparison
        return Comparison(">", self, to_expr(other))

    def __hash__(self) -> int:
        return hash(repr(self))


class SymVar(Expr):
    """A named symbolic integer variable."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def evaluate(self, assignment: Assignment) -> int:
        try:
            return int(assignment[self.name])
        except KeyError:
            raise KeyError(f"no value assigned to symbolic variable {self.name!r}") from None

    def variables(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def __repr__(self) -> str:
        return self.name

    def __hash__(self) -> int:
        return hash(("SymVar", self.name))


class Const(Expr):
    """A constant integer."""

    __slots__ = ("value",)

    def __init__(self, value: int) -> None:
        self.value = int(value)

    def evaluate(self, assignment: Assignment) -> int:
        return self.value

    def variables(self) -> FrozenSet[str]:
        return frozenset()

    def __repr__(self) -> str:
        return str(self.value)

    def __hash__(self) -> int:
        return hash(("Const", self.value))


class BinOp(Expr):
    """A binary arithmetic operation."""

    __slots__ = ("op", "lhs", "rhs")

    _OPS = {
        "+": lambda a, b: a + b,
        "-": lambda a, b: a - b,
        "*": lambda a, b: a * b,
        "//": lambda a, b: _floordiv(a, b),
        "%": lambda a, b: _mod(a, b),
        "min": min,
        "max": max,
    }

    def __init__(self, op: str, lhs: Expr, rhs: Expr) -> None:
        if op not in self._OPS:
            raise ValueError(f"unsupported operator {op!r}")
        self.op = op
        self.lhs = lhs
        self.rhs = rhs

    def evaluate(self, assignment: Assignment) -> int:
        return int(self._OPS[self.op](self.lhs.evaluate(assignment),
                                      self.rhs.evaluate(assignment)))

    def variables(self) -> FrozenSet[str]:
        return self.lhs.variables() | self.rhs.variables()

    def __repr__(self) -> str:
        if self.op in ("min", "max"):
            return f"{self.op}({self.lhs!r}, {self.rhs!r})"
        return f"({self.lhs!r} {self.op} {self.rhs!r})"

    def __hash__(self) -> int:
        return hash(("BinOp", self.op, hash(self.lhs), hash(self.rhs)))


def _floordiv(a: int, b: int) -> int:
    if b == 0:
        # Division by zero makes the enclosing constraint unsatisfied rather
        # than crashing the solver; the sentinel propagates as a huge value.
        return 1 << 62
    return a // b


def _mod(a: int, b: int) -> int:
    if b == 0:
        return 1 << 62
    return a % b


def to_expr(value: ExprLike) -> Expr:
    """Coerce a Python int (or an existing expression) to an :class:`Expr`."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):
        raise TypeError("booleans are not valid symbolic integers")
    if isinstance(value, int):
        return Const(value)
    raise TypeError(f"cannot convert {type(value).__name__} to a symbolic expression")


def sym_min(lhs: ExprLike, rhs: ExprLike) -> Expr:
    """Symbolic minimum of two expressions."""
    return BinOp("min", to_expr(lhs), to_expr(rhs))


def sym_max(lhs: ExprLike, rhs: ExprLike) -> Expr:
    """Symbolic maximum of two expressions."""
    return BinOp("max", to_expr(lhs), to_expr(rhs))


def product(terms: Iterable[ExprLike]) -> Expr:
    """Symbolic product of a sequence of expressions (1 when empty)."""
    result: Expr = Const(1)
    for term in terms:
        result = result * to_expr(term)
    return result
