"""A small incremental constraint solver over bounded integers (Z3 stand-in)."""

from repro.solver.constraints import And, Comparison, Constraint, Not, Or, conjunction
from repro.solver.expr import BinOp, Const, Expr, SymVar, product, sym_max, sym_min, to_expr
from repro.solver.interval import DEFAULT_MAX, DEFAULT_MIN, Domain
from repro.solver.solver import Solver, solve

__all__ = [
    "And",
    "BinOp",
    "Comparison",
    "Const",
    "Constraint",
    "DEFAULT_MAX",
    "DEFAULT_MIN",
    "Domain",
    "Expr",
    "Not",
    "Or",
    "Solver",
    "SymVar",
    "conjunction",
    "product",
    "solve",
    "sym_max",
    "sym_min",
    "to_expr",
]
