"""An incremental constraint solver for quantifier-free integer arithmetic.

This is the repo's stand-in for Z3.  NNSmith only ever poses satisfiability
queries over bounded positive integers (tensor dimensions and operator
attributes), so a complete SMT engine is unnecessary: a backtracking search
over bounded domains with constraint-readiness pruning, phase saving across
incremental calls and random restarts solves the constraint systems produced
during graph generation quickly.

The public surface mirrors how Algorithm 1 in the paper uses Z3:

* ``int_var(name)`` introduces a symbolic integer,
* ``add(constraints)`` asserts constraints permanently,
* ``try_add_constraints(constraints)`` asserts them only if the system stays
  satisfiable (used for both node insertion and attribute binning),
* ``model()`` returns the current satisfying assignment,
* ``push()/pop()`` manage scopes for speculative insertions.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.errors import UnsatisfiableError
from repro.solver.constraints import Constraint, all_satisfied
from repro.solver.expr import SymVar
from repro.solver.interval import DEFAULT_MAX, DEFAULT_MIN, Domain, tighten


class Solver:
    """Incremental satisfiability checker over bounded integer variables."""

    def __init__(self, seed: Optional[int] = None, max_nodes: int = 50_000,
                 max_restarts: int = 3, phase_saving: bool = True) -> None:
        self._rng = random.Random(seed)
        self.max_nodes = max_nodes
        self.max_restarts = max_restarts
        self.phase_saving = phase_saving
        self._constraints: List[Constraint] = []
        self._domains: Dict[str, Domain] = {}
        self._model: Dict[str, int] = {}
        self._scopes: List[int] = []
        #: Statistics useful for the solver ablation benchmark.
        self.stats = {"checks": 0, "nodes": 0, "restarts": 0, "rejected": 0}

    # ------------------------------------------------------------------ #
    # Variable and constraint management
    # ------------------------------------------------------------------ #
    def int_var(self, name: str, low: int = DEFAULT_MIN,
                high: int = DEFAULT_MAX) -> SymVar:
        """Introduce (or re-scope) an integer variable with inclusive bounds."""
        domain = self._domains.get(name)
        if domain is None:
            self._domains[name] = Domain(low, high)
        else:
            domain.low = max(domain.low, low)
            domain.high = min(domain.high, high)
        return SymVar(name)

    def add(self, constraints: Iterable[Constraint]) -> None:
        """Assert constraints unconditionally (no satisfiability check)."""
        for constraint in constraints:
            self._register_variables(constraint)
            self._constraints.append(constraint)

    def try_add_constraints(self, constraints: Sequence[Constraint],
                            budget: Optional[int] = None) -> bool:
        """Assert ``constraints`` if the system stays satisfiable.

        Returns True and keeps the constraints (updating the cached model) on
        success; returns False and leaves the solver state untouched when no
        model is found within the search budget.  ``budget`` temporarily
        overrides the node budget — callers that can cheaply live with a
        rejection (e.g. attribute binning) pass a small budget.
        """
        constraints = list(constraints)
        marker = len(self._constraints)
        self.add(constraints)
        saved_budget = self.max_nodes
        if budget is not None:
            self.max_nodes = budget
        try:
            model = self._solve()
        finally:
            self.max_nodes = saved_budget
        if model is None:
            del self._constraints[marker:]
            self.stats["rejected"] += 1
            return False
        self._model = model
        return True

    def check(self) -> bool:
        """Is the currently asserted system satisfiable?"""
        model = self._solve()
        if model is None:
            return False
        self._model = model
        return True

    def model(self) -> Dict[str, int]:
        """The satisfying assignment found by the last successful check.

        Raises:
            UnsatisfiableError: if no model is cached and solving fails.
        """
        padded = self._padded(self._model)
        if not self._model or not all_satisfied(self._constraints, padded):
            if not self.check():
                raise UnsatisfiableError("constraint system is unsatisfiable")
            padded = self._padded(self._model)
        return dict(padded)

    # ------------------------------------------------------------------ #
    # Scopes
    # ------------------------------------------------------------------ #
    def push(self) -> None:
        """Open a scope; constraints added after this can be undone by pop()."""
        self._scopes.append(len(self._constraints))

    def pop(self) -> None:
        """Discard constraints added since the matching push()."""
        if not self._scopes:
            raise UnsatisfiableError("pop() without matching push()")
        marker = self._scopes.pop()
        del self._constraints[marker:]

    @property
    def constraints(self) -> List[Constraint]:
        return list(self._constraints)

    # ------------------------------------------------------------------ #
    # Search
    # ------------------------------------------------------------------ #
    def _register_variables(self, constraint: Constraint) -> None:
        for name in constraint.variables():
            self._domains.setdefault(name, Domain())

    def _padded(self, assignment: Dict[str, int]) -> Dict[str, int]:
        """Extend an assignment with defaults for variables it lacks."""
        padded = dict(assignment)
        for name, domain in self._domains.items():
            if name not in padded:
                padded[name] = domain.clamp(1)
        return padded

    def _solve(self) -> Optional[Dict[str, int]]:
        """Backtracking search; returns None when the node budget runs out."""
        self.stats["checks"] += 1
        domains = {name: Domain(d.low, d.high) for name, d in self._domains.items()}
        tighten(domains, self._constraints)
        if any(domain.is_empty() for domain in domains.values()):
            return None
        constrained = set()
        for constraint in self._constraints:
            constrained |= constraint.variables()

        for restart in range(self.max_restarts):
            pinned = self._pinned_assignment(domains, restart)
            free = [name for name in sorted(constrained) if name not in pinned]
            result = self._backtrack(pinned, free, domains, randomize=restart > 0)
            if result is not None:
                for name, domain in domains.items():
                    result.setdefault(name, domain.clamp(1))
                return result
            self.stats["restarts"] += 1
        return None

    def _pinned_assignment(self, domains: Dict[str, Domain], restart: int) -> Dict[str, int]:
        """Start from the previous model and unpin variables in conflict.

        On the first restart only conflicting variables are re-solved (phase
        saving makes incremental ``try_add_constraints`` calls cheap); later
        restarts progressively drop the saved phase, and the final restart
        solves every variable from scratch.
        """
        if not self.phase_saving or restart >= self.max_restarts - 1:
            return {}
        pinned = {
            name: value
            for name, value in self._model.items()
            if name in domains and domains[name].contains(value)
        }
        if not pinned:
            return {}
        # Iteratively unpin variables participating in violated constraints.
        for _ in range(1 + restart * 2):
            padded = self._padded(pinned)
            conflicted: Set[str] = set()
            for constraint in self._constraints:
                if not constraint.satisfied(padded):
                    conflicted |= constraint.variables()
            if not conflicted:
                break
            before = len(pinned)
            pinned = {k: v for k, v in pinned.items() if k not in conflicted}
            if len(pinned) == before:
                break
        if restart > 0 and pinned:
            # Drop a random half of the phase to escape bad local regions.
            names = list(pinned)
            self._rng.shuffle(names)
            pinned = {name: pinned[name] for name in names[: len(names) // 2]}
        return pinned

    def _backtrack(self, pinned: Dict[str, int], free: List[str],
                   domains: Dict[str, Domain], randomize: bool) -> Optional[Dict[str, int]]:
        """Depth-first assignment of ``free`` variables with early pruning."""
        assignment = dict(pinned)
        if not free:
            return assignment if all_satisfied(self._constraints, self._padded(assignment)) else None

        # For pruning we check a constraint as soon as all of its variables
        # are assigned; compute, for every free variable, the constraints
        # that become checkable once it is assigned (given the chosen order).
        order = list(free)
        if randomize:
            self._rng.shuffle(order)
        assigned_after: Dict[str, List[Constraint]] = {name: [] for name in order}
        position = {name: i for i, name in enumerate(order)}
        pinned_names = set(pinned)
        for constraint in self._constraints:
            names = constraint.variables()
            frees = [n for n in names if n not in pinned_names]
            if not frees:
                if not constraint.satisfied(self._padded(dict(pinned))):
                    return None
                continue
            if any(n not in position for n in frees):
                # Involves a variable that is neither pinned nor free (no
                # domain registered yet) — checked at the end via _padded.
                continue
            last = max(frees, key=lambda n: position[n])
            assigned_after[last].append(constraint)

        budget = [self.max_nodes]

        def descend(index: int) -> Optional[Dict[str, int]]:
            if index == len(order):
                return assignment if all_satisfied(
                    self._constraints, self._padded(assignment)) else None
            name = order[index]
            candidates = domains[name].candidates()
            if randomize:
                self._rng.shuffle(candidates)
            saved = self._model.get(name)
            if self.phase_saving and saved is not None and domains[name].contains(saved):
                candidates = [saved] + [c for c in candidates if c != saved]
            checks = assigned_after[name]
            for value in candidates:
                budget[0] -= 1
                if budget[0] <= 0:
                    return None
                assignment[name] = value
                self.stats["nodes"] += 1
                if all(c.satisfied(assignment) for c in checks):
                    result = descend(index + 1)
                    if result is not None:
                        return result
                if budget[0] <= 0:
                    break
            assignment.pop(name, None)
            return None

        return descend(0)


def solve(constraints: Sequence[Constraint], seed: Optional[int] = None,
          bounds: Optional[Dict[str, tuple]] = None) -> Dict[str, int]:
    """One-shot convenience: solve a constraint list or raise.

    Args:
        constraints: the predicates to satisfy.
        seed: RNG seed for reproducibility.
        bounds: optional per-variable (low, high) bounds.

    Returns:
        A satisfying assignment mapping variable names to integers.

    Raises:
        UnsatisfiableError: when no model is found within the search budget.
    """
    solver = Solver(seed=seed)
    for name, (low, high) in (bounds or {}).items():
        solver.int_var(name, low, high)
    solver.add(constraints)
    if not solver.check():
        raise UnsatisfiableError("constraint system is unsatisfiable")
    return solver.model()
