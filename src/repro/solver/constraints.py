"""Constraints (logical predicates) over symbolic integer expressions.

A constraint is either an atomic comparison between two expressions or a
boolean combination (conjunction, disjunction, negation) of constraints.
Broadcast compatibility, for example, is expressed as a disjunction:
``(a == b) | (a == 1) | (b == 1)``.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Sequence

from repro.solver.expr import Assignment, Expr


class Constraint:
    """Base class for all predicates."""

    def satisfied(self, assignment: Assignment) -> bool:
        raise NotImplementedError

    def variables(self) -> FrozenSet[str]:
        raise NotImplementedError

    def __and__(self, other: "Constraint") -> "Constraint":
        return And([self, other])

    def __or__(self, other: "Constraint") -> "Constraint":
        return Or([self, other])

    def __invert__(self) -> "Constraint":
        return Not(self)


class Comparison(Constraint):
    """An atomic comparison between two symbolic expressions."""

    _OPS = {
        "==": lambda a, b: a == b,
        "!=": lambda a, b: a != b,
        "<=": lambda a, b: a <= b,
        "<": lambda a, b: a < b,
        ">=": lambda a, b: a >= b,
        ">": lambda a, b: a > b,
    }

    def __init__(self, op: str, lhs: Expr, rhs: Expr) -> None:
        if op not in self._OPS:
            raise ValueError(f"unsupported comparison {op!r}")
        self.op = op
        self.lhs = lhs
        self.rhs = rhs

    def satisfied(self, assignment: Assignment) -> bool:
        return bool(self._OPS[self.op](self.lhs.evaluate(assignment),
                                       self.rhs.evaluate(assignment)))

    def variables(self) -> FrozenSet[str]:
        return self.lhs.variables() | self.rhs.variables()

    def __repr__(self) -> str:
        return f"({self.lhs!r} {self.op} {self.rhs!r})"

    def __bool__(self) -> bool:
        # ``Expr.__eq__`` returns a Comparison, so accidental use of an
        # expression equality in a plain ``if`` would silently misbehave.
        raise TypeError(
            "symbolic comparisons have no truth value; add them to a solver")


class And(Constraint):
    """Conjunction of constraints."""

    def __init__(self, parts: Sequence[Constraint]) -> None:
        self.parts: List[Constraint] = list(parts)

    def satisfied(self, assignment: Assignment) -> bool:
        return all(part.satisfied(assignment) for part in self.parts)

    def variables(self) -> FrozenSet[str]:
        result: FrozenSet[str] = frozenset()
        for part in self.parts:
            result |= part.variables()
        return result

    def __repr__(self) -> str:
        return "(" + " & ".join(repr(p) for p in self.parts) + ")"


class Or(Constraint):
    """Disjunction of constraints."""

    def __init__(self, parts: Sequence[Constraint]) -> None:
        self.parts: List[Constraint] = list(parts)

    def satisfied(self, assignment: Assignment) -> bool:
        return any(part.satisfied(assignment) for part in self.parts)

    def variables(self) -> FrozenSet[str]:
        result: FrozenSet[str] = frozenset()
        for part in self.parts:
            result |= part.variables()
        return result

    def __repr__(self) -> str:
        return "(" + " | ".join(repr(p) for p in self.parts) + ")"


class Not(Constraint):
    """Negation of a constraint."""

    def __init__(self, inner: Constraint) -> None:
        self.inner = inner

    def satisfied(self, assignment: Assignment) -> bool:
        return not self.inner.satisfied(assignment)

    def variables(self) -> FrozenSet[str]:
        return self.inner.variables()

    def __repr__(self) -> str:
        return f"~{self.inner!r}"


TRUE = And([])


def conjunction(parts: Iterable[Constraint]) -> Constraint:
    """Combine constraints into one conjunction (TRUE for an empty sequence)."""
    materialized = list(parts)
    if len(materialized) == 1:
        return materialized[0]
    return And(materialized)


def all_satisfied(constraints: Iterable[Constraint], assignment: Assignment) -> bool:
    """Evaluate a collection of constraints under an assignment."""
    return all(c.satisfied(assignment) for c in constraints)
