"""Operator catalogue: registry, reference numpy semantics and shape inference."""

from repro.ops.registry import (
    SHAPE_PRESERVING_OPS,
    OpCategory,
    OpInfo,
    all_ops,
    is_registered,
    op_info,
    register_op,
)
from repro.ops.semantics import execute_node, has_kernel
from repro.ops.shape_infer import infer_output_types

__all__ = [
    "SHAPE_PRESERVING_OPS",
    "OpCategory",
    "OpInfo",
    "all_ops",
    "execute_node",
    "has_kernel",
    "infer_output_types",
    "is_registered",
    "op_info",
    "register_op",
]
