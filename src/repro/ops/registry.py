"""Operator registry: the catalogue of operator kinds known to the system.

The registry records, for every operator kind, its arity and a coarse
category.  Categories are used by:

* the DeepC compiler's property-based fusion pass (like TVM, it fuses by
  operator *property* — injective / reduction / complex — rather than by
  concrete operator kind);
* the baselines (LEMON only mutates shape-preserving operators);
* Figure 9's unique-operator-instance accounting.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.errors import UnsupportedOperatorError


class OpCategory(enum.Enum):
    """Coarse operator property, mirroring TVM's fusion classification."""

    elemwise = "elemwise"          # one-to-one, shape preserving
    broadcast = "broadcast"        # elementwise with numpy broadcasting
    injective = "injective"        # data movement (reshape, transpose, ...)
    reduction = "reduction"        # reduces one or more axes
    complex_ = "complex"           # conv / matmul / pooling and friends
    control = "control"            # everything else (where, cast, ...)


@dataclass(frozen=True)
class OpInfo:
    """Static facts about an operator kind."""

    name: str
    category: OpCategory
    min_inputs: int
    max_inputs: Optional[int]  # None means variadic
    n_outputs: int = 1

    @property
    def shape_preserving(self) -> bool:
        """True if every output has the same shape as the first input."""
        return self.category is OpCategory.elemwise


_REGISTRY: Dict[str, OpInfo] = {}


def register_op(name: str, category: OpCategory, min_inputs: int,
                max_inputs: Optional[int] = None, n_outputs: int = 1) -> OpInfo:
    """Register an operator kind; idempotent for identical re-registration."""
    if max_inputs is None:
        max_inputs = min_inputs
    info = OpInfo(name, category, min_inputs, max_inputs, n_outputs)
    existing = _REGISTRY.get(name)
    if existing is not None and existing != info:
        raise ValueError(f"conflicting registration for operator {name!r}")
    _REGISTRY[name] = info
    return info


def op_info(name: str) -> OpInfo:
    """Look up an operator kind; raises for unknown operators."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnsupportedOperatorError(f"unknown operator kind {name!r}") from None


def is_registered(name: str) -> bool:
    return name in _REGISTRY


def all_ops() -> Tuple[OpInfo, ...]:
    """All registered operators in deterministic (name) order."""
    return tuple(_REGISTRY[name] for name in sorted(_REGISTRY))


# --------------------------------------------------------------------------- #
# The operator catalogue.
# --------------------------------------------------------------------------- #
_E = OpCategory.elemwise
_B = OpCategory.broadcast
_I = OpCategory.injective
_R = OpCategory.reduction
_C = OpCategory.complex_
_X = OpCategory.control

# Elementwise unary.
for _name in [
    "Relu", "LeakyRelu", "Sigmoid", "Tanh", "Abs", "Neg", "Exp", "Log", "Log2",
    "Sqrt", "Sin", "Cos", "Asin", "Acos", "Atan", "Floor", "Ceil", "Round",
    "Identity", "Erf", "Softplus", "Sign", "Reciprocal",
]:
    register_op(_name, _E, 1)
register_op("Clip", _E, 1)
register_op("Softmax", _E, 1)
register_op("Not", _E, 1)
register_op("Cast", _X, 1)
register_op("Dropout", _E, 1)

# Elementwise binary with broadcasting.
for _name in ["Add", "Sub", "Mul", "Div", "Pow", "Max", "Min", "Mod"]:
    register_op(_name, _B, 2)
for _name in ["Equal", "Greater", "Less", "GreaterOrEqual", "LessOrEqual"]:
    register_op(_name, _B, 2)
for _name in ["And", "Or", "Xor"]:
    register_op(_name, _B, 2)
register_op("Where", _B, 3)

# Matrix / NN operators.
register_op("MatMul", _C, 2)
register_op("Gemm", _C, 2, 3)
register_op("Conv2d", _C, 2, 3)
register_op("MaxPool2d", _C, 1)
register_op("AvgPool2d", _C, 1)
register_op("BatchNorm", _C, 5)
register_op("Resize2d", _C, 1)
register_op("GlobalAvgPool2d", _R, 1)

# Data movement / injective operators.
register_op("Reshape", _I, 1)
register_op("Flatten", _I, 1)
register_op("Transpose", _I, 1)
register_op("Squeeze", _I, 1)
register_op("Unsqueeze", _I, 1)
register_op("Slice", _I, 1)
register_op("Pad", _I, 1)
register_op("BroadcastTo", _B, 1)
register_op("Concat", _I, 1, None)
register_op("Split", _I, 1, 1, n_outputs=2)
register_op("Tile", _I, 1)
register_op("Gather", _I, 2)

# Reductions.
for _name in ["ReduceSum", "ReduceMean", "ReduceMax", "ReduceMin", "ReduceProd"]:
    register_op(_name, _R, 1)
register_op("ArgMax", _R, 1)
register_op("ArgMin", _R, 1)

#: Operators whose output shape equals their (first) input shape regardless of
#: attributes; LEMON restricts itself to these.
SHAPE_PRESERVING_OPS = tuple(
    sorted(info.name for info in all_ops() if info.shape_preserving)
)


# --------------------------------------------------------------------------- #
# Attribute schemas.
# --------------------------------------------------------------------------- #
#: Declared attribute names per operator kind.  The pass-boundary IR verifier
#: (:mod:`repro.analysis`) checks attribute conformance against this table:
#: an attribute outside an operator's schema (and outside the shared
#: exemptions below) marks the IR as ill-formed.  Operators absent from the
#: table declare no attributes.
_ATTR_SCHEMAS: Dict[str, Tuple[str, ...]] = {}

#: Attribute names tolerated on *any* operator: ``opset_unsupported`` is the
#: exporter's opset-downgrade marker read by every backend front end, and
#: underscore-prefixed attributes are backend-internal kernel-selection hints
#: (e.g. ``_graphrt_repack_blocks``) exempted by convention.
SHARED_ATTRS: Tuple[str, ...] = ("opset_unsupported",)


def register_op_attrs(name: str, attrs: Sequence[str]) -> None:
    """Declare (or extend) the attribute schema of an operator kind."""
    merged = dict.fromkeys(_ATTR_SCHEMAS.get(name, ()))
    merged.update(dict.fromkeys(attrs))
    _ATTR_SCHEMAS[name] = tuple(merged)


def declared_attrs(name: str) -> Tuple[str, ...]:
    """The declared attribute names of an operator kind (may be empty)."""
    return _ATTR_SCHEMAS.get(name, ())


for _name, _attrs in {
    "Cast": ("to",),
    "LeakyRelu": ("alpha",),
    "Clip": ("min", "max"),
    "Dropout": ("ratio",),
    "Softmax": ("axis",),
    "Conv2d": ("stride", "padding", "dilation"),
    "MaxPool2d": ("kh", "kw", "stride", "padding"),
    "AvgPool2d": ("kh", "kw", "stride", "padding"),
    "BatchNorm": ("epsilon",),
    "Resize2d": ("scale_h", "scale_w"),
    "Reshape": ("shape",),
    "BroadcastTo": ("shape",),
    "Flatten": ("axis",),
    "Transpose": ("perm",),
    "Squeeze": ("axes",),
    "Unsqueeze": ("axes",),
    "Slice": ("starts", "ends", "axes", "steps"),
    "Pad": ("pads", "mode", "value"),
    "Concat": ("axis",),
    "Split": ("axis",),
    "Tile": ("repeats",),
    "Gather": ("axis",),
    "ReduceSum": ("axes", "keepdims"),
    "ReduceMean": ("axes", "keepdims"),
    "ReduceMax": ("axes", "keepdims"),
    "ReduceMin": ("axes", "keepdims"),
    "ReduceProd": ("axes", "keepdims"),
    "ArgMax": ("axis", "keepdims"),
    "ArgMin": ("axis", "keepdims"),
}.items():
    register_op_attrs(_name, _attrs)
