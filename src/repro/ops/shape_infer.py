"""Concrete shape and dtype inference for every operator kind.

``infer_output_types(node, input_types)`` mirrors the numpy kernels in
:mod:`repro.ops.semantics`: for every operator the inferred output type must
equal the type of the array the kernel would actually produce.  A property
test in ``tests/ops/test_consistency.py`` checks this agreement.

These rules serve two roles:

* the model validator (:mod:`repro.graph.validate`) — the "type checker"
  that DL compilers run on imported models, and
* the compilers' own shape-inference stages.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Sequence

from repro.dtypes import DType, promote
from repro.errors import ShapeInferenceError
from repro.graph.node import Node
from repro.graph.tensor_type import TensorType, broadcast_shapes

InferRule = Callable[[Node, List[TensorType]], List[TensorType]]

_RULES: Dict[str, InferRule] = {}


def rule(*names: str) -> Callable[[InferRule], InferRule]:
    def wrap(func: InferRule) -> InferRule:
        for name in names:
            _RULES[name] = func
        return func

    return wrap


#: Optional success-only memo installed by :mod:`repro.core.cache`.  Rules
#: are pure functions of ``(node.op, node.attrs, input_types)``, which is
#: exactly the memo key; errors are never cached (messages are the rare
#: path and may embed call-site specifics).
_MEMO = None


def install_memo(memo) -> None:
    """Install a memo object with ``key_for``/``get``/``put`` (or ``None``)."""
    global _MEMO
    _MEMO = memo


def infer_output_types(node: Node, input_types: Sequence[TensorType]) -> List[TensorType]:
    """Infer the output types of ``node`` given its concrete input types."""
    memo = _MEMO
    key = None if memo is None else memo.key_for(node, input_types)
    if key is not None:
        cached = memo.get(key)
        if cached is not None:
            return list(cached)
    func = _RULES.get(node.op)
    if func is None:
        raise ShapeInferenceError(f"no shape inference rule for operator {node.op!r}")
    try:
        result = func(node, list(input_types))
    except (ValueError, IndexError, ZeroDivisionError) as exc:
        raise ShapeInferenceError(f"{node.op}: {exc}") from exc
    if key is not None:
        memo.put(key, tuple(result))
    return result


def _float_like(dtype: DType) -> DType:
    """Match the kernel convention: float dtypes pass through, ints promote."""
    return dtype if dtype.is_float else DType.float64


def _expect_inputs(node: Node, input_types: Sequence[TensorType], count: int) -> None:
    if len(input_types) != count:
        raise ShapeInferenceError(
            f"{node.op} expects {count} inputs, got {len(input_types)}")


# --------------------------------------------------------------------------- #
# Elementwise
# --------------------------------------------------------------------------- #
@rule("Relu", "LeakyRelu", "Abs", "Neg", "Sign", "Floor", "Ceil", "Round",
      "Identity", "Dropout", "Clip")
def _same_type(node: Node, inputs: List[TensorType]) -> List[TensorType]:
    _expect_inputs(node, inputs, 1)
    return [inputs[0]]


@rule("Exp", "Log", "Log2", "Sqrt", "Sin", "Cos", "Asin", "Acos", "Atan",
      "Sigmoid", "Tanh", "Softplus", "Erf", "Reciprocal", "Softmax")
def _float_unary(node: Node, inputs: List[TensorType]) -> List[TensorType]:
    _expect_inputs(node, inputs, 1)
    return [TensorType(inputs[0].shape, _float_like(inputs[0].dtype))]


@rule("Not")
def _not_rule(node: Node, inputs: List[TensorType]) -> List[TensorType]:
    _expect_inputs(node, inputs, 1)
    return [TensorType(inputs[0].shape, DType.bool_)]


@rule("Cast")
def _cast_rule(node: Node, inputs: List[TensorType]) -> List[TensorType]:
    _expect_inputs(node, inputs, 1)
    return [TensorType(inputs[0].shape, DType.from_str(node.attrs["to"]))]


@rule("Add", "Sub", "Mul", "Div", "Max", "Min", "Mod")
def _binary_rule(node: Node, inputs: List[TensorType]) -> List[TensorType]:
    _expect_inputs(node, inputs, 2)
    shape = broadcast_shapes(inputs[0].shape, inputs[1].shape)
    return [TensorType(shape, promote(inputs[0].dtype, inputs[1].dtype))]


@rule("Pow")
def _pow_rule(node: Node, inputs: List[TensorType]) -> List[TensorType]:
    _expect_inputs(node, inputs, 2)
    shape = broadcast_shapes(inputs[0].shape, inputs[1].shape)
    dtype = promote(inputs[0].dtype, inputs[1].dtype)
    if not dtype.is_float:
        dtype = DType.float64
    return [TensorType(shape, dtype)]


@rule("Equal", "Greater", "Less", "GreaterOrEqual", "LessOrEqual",
      "And", "Or", "Xor")
def _compare_rule(node: Node, inputs: List[TensorType]) -> List[TensorType]:
    _expect_inputs(node, inputs, 2)
    shape = broadcast_shapes(inputs[0].shape, inputs[1].shape)
    return [TensorType(shape, DType.bool_)]


@rule("Where")
def _where_rule(node: Node, inputs: List[TensorType]) -> List[TensorType]:
    _expect_inputs(node, inputs, 3)
    cond, lhs, rhs = inputs
    shape = broadcast_shapes(broadcast_shapes(cond.shape, lhs.shape), rhs.shape)
    return [TensorType(shape, promote(lhs.dtype, rhs.dtype))]


# --------------------------------------------------------------------------- #
# Matrix / NN
# --------------------------------------------------------------------------- #
@rule("MatMul")
def _matmul_rule(node: Node, inputs: List[TensorType]) -> List[TensorType]:
    _expect_inputs(node, inputs, 2)
    lhs, rhs = inputs
    dtype = promote(lhs.dtype, rhs.dtype)
    a, b = lhs.shape, rhs.shape
    if len(a) == 0 or len(b) == 0:
        raise ShapeInferenceError("MatMul does not accept scalar inputs")
    if len(a) == 1 and len(b) == 1:
        if a[0] != b[0]:
            raise ShapeInferenceError(f"MatMul contraction mismatch {a} vs {b}")
        return [TensorType((), dtype)]
    if len(a) == 1:
        if a[0] != b[-2]:
            raise ShapeInferenceError(f"MatMul contraction mismatch {a} vs {b}")
        return [TensorType(b[:-2] + (b[-1],), dtype)]
    if len(b) == 1:
        if a[-1] != b[0]:
            raise ShapeInferenceError(f"MatMul contraction mismatch {a} vs {b}")
        return [TensorType(a[:-1], dtype)]
    if a[-1] != b[-2]:
        raise ShapeInferenceError(f"MatMul contraction mismatch {a} vs {b}")
    batch = broadcast_shapes(a[:-2], b[:-2])
    return [TensorType(batch + (a[-2], b[-1]), dtype)]


@rule("Gemm")
def _gemm_rule(node: Node, inputs: List[TensorType]) -> List[TensorType]:
    if len(inputs) not in (2, 3):
        raise ShapeInferenceError("Gemm expects 2 or 3 inputs")
    x, w = inputs[0], inputs[1]
    if x.rank != 2 or w.rank != 2:
        raise ShapeInferenceError("Gemm expects rank-2 inputs")
    if x.shape[1] != w.shape[0]:
        raise ShapeInferenceError(
            f"Gemm contraction mismatch {x.shape} vs {w.shape}")
    dtype = promote(x.dtype, w.dtype)
    if len(inputs) == 3 and inputs[2].shape not in ((w.shape[1],), (), (1,)):
        raise ShapeInferenceError("Gemm bias shape must be (N,)")
    return [TensorType((x.shape[0], w.shape[1]), dtype)]


@rule("Conv2d")
def _conv2d_rule(node: Node, inputs: List[TensorType]) -> List[TensorType]:
    if len(inputs) not in (2, 3):
        raise ShapeInferenceError("Conv2d expects 2 or 3 inputs")
    x, w = inputs[0], inputs[1]
    if x.rank != 4 or w.rank != 4:
        raise ShapeInferenceError("Conv2d expects rank-4 input and kernel")
    stride = int(node.attrs.get("stride", 1))
    padding = int(node.attrs.get("padding", 0))
    dilation = int(node.attrs.get("dilation", 1))
    batch, in_ch, in_h, in_w = x.shape
    out_ch, w_in_ch, k_h, k_w = w.shape
    if in_ch != w_in_ch:
        raise ShapeInferenceError(
            f"Conv2d channel mismatch: {in_ch} vs kernel {w_in_ch}")
    eff_kh = (k_h - 1) * dilation + 1
    eff_kw = (k_w - 1) * dilation + 1
    out_h = (in_h + 2 * padding - eff_kh) // stride + 1
    out_w = (in_w + 2 * padding - eff_kw) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ShapeInferenceError("Conv2d output would be empty")
    if len(inputs) == 3 and inputs[2].shape != (out_ch,):
        raise ShapeInferenceError("Conv2d bias must have shape (out_channels,)")
    return [TensorType((batch, out_ch, out_h, out_w), promote(x.dtype, w.dtype))]


def _pool_rule(node: Node, inputs: List[TensorType], average: bool) -> List[TensorType]:
    _expect_inputs(node, inputs, 1)
    x = inputs[0]
    if x.rank != 4:
        raise ShapeInferenceError("2-D pooling expects a rank-4 input")
    k_h, k_w = int(node.attrs["kh"]), int(node.attrs["kw"])
    stride = int(node.attrs.get("stride", 1))
    padding = int(node.attrs.get("padding", 0))
    batch, channels, in_h, in_w = x.shape
    out_h = (in_h + 2 * padding - k_h) // stride + 1
    out_w = (in_w + 2 * padding - k_w) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ShapeInferenceError("pooling output would be empty")
    dtype = x.dtype if x.dtype.is_float else DType.float64
    return [TensorType((batch, channels, out_h, out_w), dtype)]


@rule("MaxPool2d")
def _maxpool_rule(node: Node, inputs: List[TensorType]) -> List[TensorType]:
    return _pool_rule(node, inputs, average=False)


@rule("AvgPool2d")
def _avgpool_rule(node: Node, inputs: List[TensorType]) -> List[TensorType]:
    return _pool_rule(node, inputs, average=True)


@rule("GlobalAvgPool2d")
def _global_avgpool_rule(node: Node, inputs: List[TensorType]) -> List[TensorType]:
    _expect_inputs(node, inputs, 1)
    x = inputs[0]
    if x.rank != 4:
        raise ShapeInferenceError("GlobalAvgPool2d expects a rank-4 input")
    return [TensorType((x.shape[0], x.shape[1], 1, 1), _float_like(x.dtype))]


@rule("BatchNorm")
def _batchnorm_rule(node: Node, inputs: List[TensorType]) -> List[TensorType]:
    _expect_inputs(node, inputs, 5)
    x = inputs[0]
    if x.rank < 2:
        raise ShapeInferenceError("BatchNorm expects rank >= 2")
    channels = x.shape[1]
    for name, param in zip(("scale", "bias", "mean", "var"), inputs[1:]):
        if param.shape != (channels,):
            raise ShapeInferenceError(
                f"BatchNorm {name} must have shape ({channels},), got {param.shape}")
    return [TensorType(x.shape, _float_like(x.dtype))]


@rule("Resize2d")
def _resize_rule(node: Node, inputs: List[TensorType]) -> List[TensorType]:
    _expect_inputs(node, inputs, 1)
    x = inputs[0]
    if x.rank != 4:
        raise ShapeInferenceError("Resize2d expects a rank-4 input")
    scale_h = int(node.attrs.get("scale_h", 2))
    scale_w = int(node.attrs.get("scale_w", 2))
    if scale_h < 1 or scale_w < 1:
        raise ShapeInferenceError("Resize2d scales must be >= 1")
    shape = (x.shape[0], x.shape[1], x.shape[2] * scale_h, x.shape[3] * scale_w)
    return [TensorType(shape, x.dtype)]


# --------------------------------------------------------------------------- #
# Data movement
# --------------------------------------------------------------------------- #
@rule("Reshape")
def _reshape_rule(node: Node, inputs: List[TensorType]) -> List[TensorType]:
    _expect_inputs(node, inputs, 1)
    x = inputs[0]
    shape = [int(d) for d in node.attrs["shape"]]
    negative = [i for i, d in enumerate(shape) if d == -1]
    if len(negative) > 1:
        raise ShapeInferenceError("Reshape allows at most one -1 dimension")
    if negative:
        known = math.prod(d for d in shape if d != -1)
        if known == 0 or x.numel % known != 0:
            raise ShapeInferenceError(
                f"cannot infer -1 in Reshape target {shape} from {x.shape}")
        shape[negative[0]] = x.numel // known
    if math.prod(shape) != x.numel:
        raise ShapeInferenceError(
            f"Reshape element count mismatch: {x.shape} -> {shape}")
    return [TensorType(shape, x.dtype)]


@rule("Flatten")
def _flatten_rule(node: Node, inputs: List[TensorType]) -> List[TensorType]:
    _expect_inputs(node, inputs, 1)
    x = inputs[0]
    axis = int(node.attrs.get("axis", 1))
    if not 0 <= axis <= x.rank:
        raise ShapeInferenceError(f"Flatten axis {axis} out of range for rank {x.rank}")
    lead = math.prod(x.shape[:axis]) if axis > 0 else 1
    trail = math.prod(x.shape[axis:]) if axis < x.rank else 1
    return [TensorType((lead, trail), x.dtype)]


@rule("Transpose")
def _transpose_rule(node: Node, inputs: List[TensorType]) -> List[TensorType]:
    _expect_inputs(node, inputs, 1)
    x = inputs[0]
    perm = node.attrs.get("perm")
    perm = [int(p) for p in perm] if perm is not None else list(range(x.rank))[::-1]
    if sorted(perm) != list(range(x.rank)):
        raise ShapeInferenceError(f"invalid permutation {perm} for rank {x.rank}")
    return [TensorType(tuple(x.shape[p] for p in perm), x.dtype)]


@rule("Squeeze")
def _squeeze_rule(node: Node, inputs: List[TensorType]) -> List[TensorType]:
    _expect_inputs(node, inputs, 1)
    x = inputs[0]
    axes = node.attrs.get("axes")
    if axes is None:
        shape = tuple(d for d in x.shape if d != 1)
        return [TensorType(shape, x.dtype)]
    axes = {int(a) % max(x.rank, 1) for a in axes}
    for axis in axes:
        if x.shape[axis] != 1:
            raise ShapeInferenceError(
                f"cannot squeeze axis {axis} of size {x.shape[axis]}")
    shape = tuple(d for i, d in enumerate(x.shape) if i not in axes)
    return [TensorType(shape, x.dtype)]


@rule("Unsqueeze")
def _unsqueeze_rule(node: Node, inputs: List[TensorType]) -> List[TensorType]:
    _expect_inputs(node, inputs, 1)
    x = inputs[0]
    axes = sorted(int(a) for a in node.attrs["axes"])
    shape = list(x.shape)
    for axis in axes:
        if not 0 <= axis <= len(shape):
            raise ShapeInferenceError(f"Unsqueeze axis {axis} out of range")
        shape.insert(axis, 1)
    return [TensorType(shape, x.dtype)]


@rule("Slice")
def _slice_rule(node: Node, inputs: List[TensorType]) -> List[TensorType]:
    _expect_inputs(node, inputs, 1)
    x = inputs[0]
    starts = [int(v) for v in node.attrs["starts"]]
    ends = [int(v) for v in node.attrs["ends"]]
    axes = [int(v) for v in node.attrs.get("axes", range(len(starts)))]
    steps = [int(v) for v in node.attrs.get("steps", [1] * len(starts))]
    shape = list(x.shape)
    for start, end, axis, step in zip(starts, ends, axes, steps):
        if axis >= x.rank:
            raise ShapeInferenceError(f"Slice axis {axis} out of range")
        if step <= 0:
            raise ShapeInferenceError("Slice steps must be positive")
        length = shape[axis]
        start_clamped = min(max(start if start >= 0 else start + length, 0), length)
        end_clamped = min(max(end if end >= 0 else end + length, 0), length)
        extent = max(0, end_clamped - start_clamped)
        shape[axis] = (extent + step - 1) // step
    if any(d == 0 for d in shape):
        raise ShapeInferenceError("Slice produces an empty tensor")
    return [TensorType(shape, x.dtype)]


@rule("Pad")
def _pad_rule(node: Node, inputs: List[TensorType]) -> List[TensorType]:
    _expect_inputs(node, inputs, 1)
    x = inputs[0]
    pads = [int(p) for p in node.attrs["pads"]]
    if len(pads) != 2 * x.rank:
        raise ShapeInferenceError(
            f"Pad expects {2 * x.rank} pad values, got {len(pads)}")
    shape = []
    for i, dim in enumerate(x.shape):
        new_dim = dim + pads[i] + pads[i + x.rank]
        if new_dim <= 0:
            raise ShapeInferenceError("Pad produces an empty tensor")
        shape.append(new_dim)
    return [TensorType(shape, x.dtype)]


@rule("BroadcastTo")
def _broadcast_to_rule(node: Node, inputs: List[TensorType]) -> List[TensorType]:
    _expect_inputs(node, inputs, 1)
    x = inputs[0]
    shape = tuple(int(d) for d in node.attrs["shape"])
    expanded = broadcast_shapes(x.shape, shape)
    if expanded != shape:
        raise ShapeInferenceError(
            f"cannot broadcast {x.shape} to {shape}")
    return [TensorType(shape, x.dtype)]


@rule("Concat")
def _concat_rule(node: Node, inputs: List[TensorType]) -> List[TensorType]:
    if not inputs:
        raise ShapeInferenceError("Concat requires at least one input")
    axis = int(node.attrs.get("axis", 0))
    first = inputs[0]
    if not 0 <= axis < max(first.rank, 1):
        raise ShapeInferenceError(f"Concat axis {axis} out of range")
    dtype = first.dtype
    total = 0
    for t in inputs:
        if t.rank != first.rank:
            raise ShapeInferenceError("Concat inputs must have equal rank")
        for i in range(first.rank):
            if i != axis and t.shape[i] != first.shape[i]:
                raise ShapeInferenceError(
                    f"Concat inputs disagree on dimension {i}: {t.shape} vs {first.shape}")
        total += t.shape[axis]
        dtype = promote(dtype, t.dtype)
    shape = list(first.shape)
    shape[axis] = total
    return [TensorType(shape, dtype)]


@rule("Split")
def _split_rule(node: Node, inputs: List[TensorType]) -> List[TensorType]:
    _expect_inputs(node, inputs, 1)
    x = inputs[0]
    axis = int(node.attrs.get("axis", 0))
    if not 0 <= axis < max(x.rank, 1):
        raise ShapeInferenceError(f"Split axis {axis} out of range")
    if x.shape[axis] % 2 != 0:
        raise ShapeInferenceError("Split requires an even dimension")
    shape = list(x.shape)
    shape[axis] //= 2
    half = TensorType(shape, x.dtype)
    return [half, half]


@rule("Tile")
def _tile_rule(node: Node, inputs: List[TensorType]) -> List[TensorType]:
    _expect_inputs(node, inputs, 1)
    x = inputs[0]
    repeats = [int(r) for r in node.attrs["repeats"]]
    if len(repeats) != x.rank:
        raise ShapeInferenceError("Tile repeats must match input rank")
    if any(r < 1 for r in repeats):
        raise ShapeInferenceError("Tile repeats must be >= 1")
    return [TensorType(tuple(d * r for d, r in zip(x.shape, repeats)), x.dtype)]


@rule("Gather")
def _gather_rule(node: Node, inputs: List[TensorType]) -> List[TensorType]:
    _expect_inputs(node, inputs, 2)
    data, indices = inputs
    axis = int(node.attrs.get("axis", 0))
    if not 0 <= axis < max(data.rank, 1):
        raise ShapeInferenceError(f"Gather axis {axis} out of range")
    if not indices.dtype.is_int:
        raise ShapeInferenceError("Gather indices must be integers")
    shape = data.shape[:axis] + indices.shape + data.shape[axis + 1:]
    return [TensorType(shape, data.dtype)]


# --------------------------------------------------------------------------- #
# Reductions
# --------------------------------------------------------------------------- #
def _reduced_shape(shape, axes, keepdims):
    rank = len(shape)
    if axes is None:
        axes_set = set(range(rank))
    else:
        axes_set = {int(a) % rank if rank else 0 for a in axes}
    result = []
    for i, dim in enumerate(shape):
        if i in axes_set:
            if keepdims:
                result.append(1)
        else:
            result.append(dim)
    return tuple(result)


@rule("ReduceSum", "ReduceMax", "ReduceMin", "ReduceProd")
def _reduce_rule(node: Node, inputs: List[TensorType]) -> List[TensorType]:
    _expect_inputs(node, inputs, 1)
    x = inputs[0]
    shape = _reduced_shape(x.shape, node.attrs.get("axes"),
                           bool(node.attrs.get("keepdims", False)))
    return [TensorType(shape, x.dtype)]


@rule("ReduceMean")
def _reduce_mean_rule(node: Node, inputs: List[TensorType]) -> List[TensorType]:
    _expect_inputs(node, inputs, 1)
    x = inputs[0]
    shape = _reduced_shape(x.shape, node.attrs.get("axes"),
                           bool(node.attrs.get("keepdims", False)))
    return [TensorType(shape, _float_like(x.dtype))]


@rule("ArgMax", "ArgMin")
def _arg_rule(node: Node, inputs: List[TensorType]) -> List[TensorType]:
    _expect_inputs(node, inputs, 1)
    x = inputs[0]
    if x.rank == 0:
        raise ShapeInferenceError(f"{node.op} requires a non-scalar input")
    axis = int(node.attrs.get("axis", 0)) % x.rank
    keepdims = bool(node.attrs.get("keepdims", False))
    shape = list(x.shape)
    if keepdims:
        shape[axis] = 1
    else:
        shape.pop(axis)
    return [TensorType(shape, DType.int64)]
