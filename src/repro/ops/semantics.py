"""Reference numpy semantics for every operator kind.

These kernels define what each operator *means*.  They are used by:

* the reference interpreter (:mod:`repro.runtime.interpreter`) — the oracle
  of the differential-testing harness (the "PyTorch" of this repo), and
* the kernel libraries of the compilers under test — so that a compiler
  whose optimization passes are correct produces bit-identical results to the
  oracle, and any observed divergence is attributable to a (seeded or real)
  bug in its conversion/transformation logic.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Sequence

import numpy as np

from repro.dtypes import DType, promote
from repro.errors import ExecutionError, UnsupportedOperatorError
from repro.graph.node import Node

Kernel = Callable[[dict, List[np.ndarray]], List[np.ndarray]]

_KERNELS: Dict[str, Kernel] = {}


def kernel(name: str) -> Callable[[Kernel], Kernel]:
    """Decorator registering a kernel for an operator kind."""

    def wrap(func: Kernel) -> Kernel:
        _KERNELS[name] = func
        return func

    return wrap


def has_kernel(name: str) -> bool:
    return name in _KERNELS


def kernel_for(name: str):
    """The registered kernel for ``name``, or ``None`` (used by execution
    plans to resolve dispatch once per model instead of once per run)."""
    return _KERNELS.get(name)


def execute_node(node: Node, inputs: Sequence[np.ndarray]) -> List[np.ndarray]:
    """Execute one node on concrete input arrays."""
    func = _KERNELS.get(node.op)
    if func is None:
        raise UnsupportedOperatorError(f"no kernel for operator {node.op!r}")
    try:
        return func(node.attrs, [np.asarray(x) for x in inputs])
    except (ValueError, IndexError, ZeroDivisionError) as exc:
        raise ExecutionError(f"kernel {node.op} failed: {exc}") from exc


# --------------------------------------------------------------------------- #
# Helpers
# --------------------------------------------------------------------------- #
def _result_dtype(inputs: Sequence[np.ndarray]) -> np.dtype:
    result = DType.from_numpy(inputs[0].dtype)
    for array in inputs[1:]:
        result = promote(result, DType.from_numpy(array.dtype))
    return result.numpy


def _unary(func: Callable[[np.ndarray], np.ndarray]) -> Kernel:
    def run(attrs: dict, inputs: List[np.ndarray]) -> List[np.ndarray]:
        (x,) = inputs
        with np.errstate(all="ignore"):
            out = func(x.astype(np.float64) if x.dtype.kind in "iub" else x)
        return [np.asarray(out).astype(_float_like(x.dtype))]

    return run


def _float_like(dtype: np.dtype) -> np.dtype:
    """Float unary ops keep float dtype; integer inputs are promoted to f64."""
    if np.dtype(dtype).kind == "f":
        return np.dtype(dtype)
    return np.dtype(np.float64)


def _binary(func: Callable[[np.ndarray, np.ndarray], np.ndarray]) -> Kernel:
    def run(attrs: dict, inputs: List[np.ndarray]) -> List[np.ndarray]:
        lhs, rhs = inputs
        target = _result_dtype(inputs)
        with np.errstate(all="ignore"):
            out = func(lhs.astype(target), rhs.astype(target))
        return [np.asarray(out).astype(target)]

    return run


def _comparison(func: Callable[[np.ndarray, np.ndarray], np.ndarray]) -> Kernel:
    def run(attrs: dict, inputs: List[np.ndarray]) -> List[np.ndarray]:
        lhs, rhs = inputs
        target = _result_dtype(inputs)
        return [np.asarray(func(lhs.astype(target), rhs.astype(target)), dtype=np.bool_)]

    return run


def _logical(func: Callable[[np.ndarray, np.ndarray], np.ndarray]) -> Kernel:
    def run(attrs: dict, inputs: List[np.ndarray]) -> List[np.ndarray]:
        lhs, rhs = inputs
        return [np.asarray(func(lhs.astype(np.bool_), rhs.astype(np.bool_)), dtype=np.bool_)]

    return run


# --------------------------------------------------------------------------- #
# Elementwise unary
# --------------------------------------------------------------------------- #
@kernel("Relu")
def _relu(attrs: dict, inputs: List[np.ndarray]) -> List[np.ndarray]:
    (x,) = inputs
    return [np.maximum(x, np.asarray(0, dtype=x.dtype))]


@kernel("LeakyRelu")
def _leaky_relu(attrs: dict, inputs: List[np.ndarray]) -> List[np.ndarray]:
    (x,) = inputs
    alpha = float(attrs.get("alpha", 0.01))
    return [np.where(x >= 0, x, alpha * x).astype(x.dtype)]


@kernel("Sigmoid")
def _sigmoid(attrs: dict, inputs: List[np.ndarray]) -> List[np.ndarray]:
    (x,) = inputs
    with np.errstate(all="ignore"):
        out = 1.0 / (1.0 + np.exp(-x.astype(np.float64)))
    return [out.astype(_float_like(x.dtype))]


@kernel("Tanh")
def _tanh(attrs: dict, inputs: List[np.ndarray]) -> List[np.ndarray]:
    (x,) = inputs
    return [np.tanh(x).astype(_float_like(x.dtype))]


@kernel("Softplus")
def _softplus(attrs: dict, inputs: List[np.ndarray]) -> List[np.ndarray]:
    (x,) = inputs
    with np.errstate(all="ignore"):
        out = np.logaddexp(0.0, x.astype(np.float64))
    return [out.astype(_float_like(x.dtype))]


@kernel("Erf")
def _erf(attrs: dict, inputs: List[np.ndarray]) -> List[np.ndarray]:
    (x,) = inputs
    vec = np.vectorize(math.erf)
    return [vec(x.astype(np.float64)).astype(_float_like(x.dtype))]


@kernel("Abs")
def _abs(attrs: dict, inputs: List[np.ndarray]) -> List[np.ndarray]:
    (x,) = inputs
    return [np.abs(x)]


@kernel("Neg")
def _neg(attrs: dict, inputs: List[np.ndarray]) -> List[np.ndarray]:
    (x,) = inputs
    return [(-x).astype(x.dtype)]


@kernel("Sign")
def _sign(attrs: dict, inputs: List[np.ndarray]) -> List[np.ndarray]:
    (x,) = inputs
    return [np.sign(x).astype(x.dtype)]


@kernel("Reciprocal")
def _reciprocal(attrs: dict, inputs: List[np.ndarray]) -> List[np.ndarray]:
    (x,) = inputs
    with np.errstate(all="ignore"):
        out = 1.0 / x.astype(_float_like(x.dtype))
    return [out.astype(_float_like(x.dtype))]


_KERNELS["Exp"] = _unary(np.exp)
_KERNELS["Log"] = _unary(np.log)
_KERNELS["Log2"] = _unary(np.log2)
_KERNELS["Sqrt"] = _unary(np.sqrt)
_KERNELS["Sin"] = _unary(np.sin)
_KERNELS["Cos"] = _unary(np.cos)
_KERNELS["Asin"] = _unary(np.arcsin)
_KERNELS["Acos"] = _unary(np.arccos)
_KERNELS["Atan"] = _unary(np.arctan)


@kernel("Floor")
def _floor(attrs: dict, inputs: List[np.ndarray]) -> List[np.ndarray]:
    (x,) = inputs
    return [np.floor(x).astype(x.dtype)]


@kernel("Ceil")
def _ceil(attrs: dict, inputs: List[np.ndarray]) -> List[np.ndarray]:
    (x,) = inputs
    return [np.ceil(x).astype(x.dtype)]


@kernel("Round")
def _round(attrs: dict, inputs: List[np.ndarray]) -> List[np.ndarray]:
    (x,) = inputs
    return [np.round(x).astype(x.dtype)]


@kernel("Identity")
def _identity(attrs: dict, inputs: List[np.ndarray]) -> List[np.ndarray]:
    (x,) = inputs
    return [np.array(x, copy=True)]


@kernel("Dropout")
def _dropout(attrs: dict, inputs: List[np.ndarray]) -> List[np.ndarray]:
    # Inference-mode dropout is the identity.
    (x,) = inputs
    return [np.array(x, copy=True)]


@kernel("Not")
def _not(attrs: dict, inputs: List[np.ndarray]) -> List[np.ndarray]:
    (x,) = inputs
    return [np.logical_not(x.astype(np.bool_))]


@kernel("Clip")
def _clip(attrs: dict, inputs: List[np.ndarray]) -> List[np.ndarray]:
    (x,) = inputs
    lo = attrs.get("min")
    hi = attrs.get("max")
    lo = -np.inf if lo is None else lo
    hi = np.inf if hi is None else hi
    return [np.clip(x, lo, hi).astype(x.dtype)]


@kernel("Cast")
def _cast(attrs: dict, inputs: List[np.ndarray]) -> List[np.ndarray]:
    (x,) = inputs
    target = DType.from_str(attrs["to"])
    with np.errstate(all="ignore"):
        return [x.astype(target.numpy)]


@kernel("Softmax")
def _softmax(attrs: dict, inputs: List[np.ndarray]) -> List[np.ndarray]:
    (x,) = inputs
    axis = int(attrs.get("axis", -1))
    data = x.astype(_float_like(x.dtype))
    with np.errstate(all="ignore"):
        shifted = data - np.max(data, axis=axis, keepdims=True)
        exp = np.exp(shifted)
        out = exp / np.sum(exp, axis=axis, keepdims=True)
    return [out.astype(_float_like(x.dtype))]


# --------------------------------------------------------------------------- #
# Elementwise binary (broadcasting)
# --------------------------------------------------------------------------- #
_KERNELS["Add"] = _binary(np.add)
_KERNELS["Sub"] = _binary(np.subtract)
_KERNELS["Mul"] = _binary(np.multiply)
_KERNELS["Max"] = _binary(np.maximum)
_KERNELS["Min"] = _binary(np.minimum)
_KERNELS["Equal"] = _comparison(np.equal)
_KERNELS["Greater"] = _comparison(np.greater)
_KERNELS["Less"] = _comparison(np.less)
_KERNELS["GreaterOrEqual"] = _comparison(np.greater_equal)
_KERNELS["LessOrEqual"] = _comparison(np.less_equal)
_KERNELS["And"] = _logical(np.logical_and)
_KERNELS["Or"] = _logical(np.logical_or)
_KERNELS["Xor"] = _logical(np.logical_xor)


@kernel("Div")
def _div(attrs: dict, inputs: List[np.ndarray]) -> List[np.ndarray]:
    lhs, rhs = inputs
    target = _result_dtype(inputs)
    with np.errstate(all="ignore"):
        if np.dtype(target).kind in "iu":
            out = np.floor_divide(lhs.astype(np.int64), rhs.astype(np.int64))
        else:
            out = np.divide(lhs.astype(target), rhs.astype(target))
    return [np.asarray(out).astype(target)]


@kernel("Mod")
def _mod(attrs: dict, inputs: List[np.ndarray]) -> List[np.ndarray]:
    lhs, rhs = inputs
    target = _result_dtype(inputs)
    with np.errstate(all="ignore"):
        out = np.mod(lhs.astype(target), rhs.astype(target))
    return [np.asarray(out).astype(target)]


@kernel("Pow")
def _pow(attrs: dict, inputs: List[np.ndarray]) -> List[np.ndarray]:
    lhs, rhs = inputs
    target = _result_dtype(inputs)
    if np.dtype(target).kind in "iu":
        target = np.dtype(np.float64)
    with np.errstate(all="ignore"):
        out = np.power(lhs.astype(target), rhs.astype(target))
    return [np.asarray(out).astype(target)]


@kernel("Where")
def _where(attrs: dict, inputs: List[np.ndarray]) -> List[np.ndarray]:
    cond, lhs, rhs = inputs
    target = _result_dtype([lhs, rhs])
    return [np.where(cond.astype(np.bool_), lhs.astype(target), rhs.astype(target))]


# --------------------------------------------------------------------------- #
# Matrix / NN operators
# --------------------------------------------------------------------------- #
@kernel("MatMul")
def _matmul(attrs: dict, inputs: List[np.ndarray]) -> List[np.ndarray]:
    lhs, rhs = inputs
    target = _result_dtype(inputs)
    with np.errstate(all="ignore"):
        out = np.matmul(lhs.astype(target), rhs.astype(target))
    return [np.asarray(out).astype(target)]


@kernel("Gemm")
def _gemm(attrs: dict, inputs: List[np.ndarray]) -> List[np.ndarray]:
    x = inputs[0]
    w = inputs[1]
    target = _result_dtype(inputs[:2])
    with np.errstate(all="ignore"):
        out = np.matmul(x.astype(target), w.astype(target))
        if len(inputs) > 2:
            out = out + inputs[2].astype(target)
    return [np.asarray(out).astype(target)]


@kernel("Conv2d")
def _conv2d(attrs: dict, inputs: List[np.ndarray]) -> List[np.ndarray]:
    x, weight = inputs[0], inputs[1]
    bias = inputs[2] if len(inputs) > 2 else None
    stride = int(attrs.get("stride", 1))
    padding = int(attrs.get("padding", 0))
    dilation = int(attrs.get("dilation", 1))
    out = conv2d_reference(x, weight, bias, stride, padding, dilation)
    return [out]


def conv2d_reference(x: np.ndarray, weight: np.ndarray, bias, stride: int,
                     padding: int, dilation: int = 1) -> np.ndarray:
    """Direct (im2col) 2-D convolution used by every backend in the repo."""
    batch, in_ch, in_h, in_w = x.shape
    out_ch, w_in_ch, k_h, k_w = weight.shape
    if in_ch != w_in_ch:
        raise ExecutionError(
            f"Conv2d channel mismatch: input has {in_ch}, kernel expects {w_in_ch}"
        )
    eff_kh = (k_h - 1) * dilation + 1
    eff_kw = (k_w - 1) * dilation + 1
    out_h = (in_h + 2 * padding - eff_kh) // stride + 1
    out_w = (in_w + 2 * padding - eff_kw) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ExecutionError("Conv2d produces an empty output")
    target = _result_dtype([x, weight])
    padded = np.pad(
        x.astype(target),
        ((0, 0), (0, 0), (padding, padding), (padding, padding)),
        mode="constant",
    )
    columns = np.zeros((batch, in_ch, k_h, k_w, out_h, out_w), dtype=target)
    for i in range(k_h):
        for j in range(k_w):
            top = i * dilation
            left = j * dilation
            columns[:, :, i, j, :, :] = padded[
                :, :,
                top:top + stride * out_h:stride,
                left:left + stride * out_w:stride,
            ]
    flat_cols = columns.reshape(batch, in_ch * k_h * k_w, out_h * out_w)
    flat_weight = weight.astype(target).reshape(out_ch, in_ch * k_h * k_w)
    with np.errstate(all="ignore"):
        out = np.einsum("of,bfp->bop", flat_weight, flat_cols)
    out = out.reshape(batch, out_ch, out_h, out_w)
    if bias is not None:
        out = out + bias.astype(target).reshape(1, out_ch, 1, 1)
    return out.astype(target)


def _pool2d(x: np.ndarray, k_h: int, k_w: int, stride: int, padding: int,
            mode: str) -> np.ndarray:
    batch, channels, in_h, in_w = x.shape
    out_h = (in_h + 2 * padding - k_h) // stride + 1
    out_w = (in_w + 2 * padding - k_w) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ExecutionError("pooling produces an empty output")
    if mode == "max":
        fill = -np.inf if x.dtype.kind == "f" else np.iinfo(x.dtype).min
    else:
        fill = 0.0
    padded = np.pad(
        x, ((0, 0), (0, 0), (padding, padding), (padding, padding)),
        mode="constant", constant_values=fill,
    )
    windows = np.zeros((batch, channels, k_h * k_w, out_h, out_w), dtype=padded.dtype)
    for i in range(k_h):
        for j in range(k_w):
            windows[:, :, i * k_w + j, :, :] = padded[
                :, :, i:i + stride * out_h:stride, j:j + stride * out_w:stride]
    if mode == "max":
        out = windows.max(axis=2)
    else:
        out = windows.astype(np.float64).mean(axis=2)
    return out.astype(x.dtype if x.dtype.kind == "f" else np.float64)


@kernel("MaxPool2d")
def _maxpool(attrs: dict, inputs: List[np.ndarray]) -> List[np.ndarray]:
    (x,) = inputs
    return [_pool2d(x, int(attrs["kh"]), int(attrs["kw"]),
                    int(attrs.get("stride", 1)), int(attrs.get("padding", 0)), "max")]


@kernel("AvgPool2d")
def _avgpool(attrs: dict, inputs: List[np.ndarray]) -> List[np.ndarray]:
    (x,) = inputs
    return [_pool2d(x, int(attrs["kh"]), int(attrs["kw"]),
                    int(attrs.get("stride", 1)), int(attrs.get("padding", 0)), "avg")]


@kernel("GlobalAvgPool2d")
def _global_avgpool(attrs: dict, inputs: List[np.ndarray]) -> List[np.ndarray]:
    (x,) = inputs
    out = x.astype(np.float64).mean(axis=(2, 3), keepdims=True)
    return [out.astype(_float_like(x.dtype))]


@kernel("BatchNorm")
def _batchnorm(attrs: dict, inputs: List[np.ndarray]) -> List[np.ndarray]:
    x, scale, bias, mean, var = inputs
    epsilon = float(attrs.get("epsilon", 1e-5))
    target = _float_like(x.dtype)
    shape = (1, -1) + (1,) * (x.ndim - 2)
    with np.errstate(all="ignore"):
        normalized = (x.astype(target) - mean.astype(target).reshape(shape)) / np.sqrt(
            var.astype(target).reshape(shape) + epsilon)
        out = normalized * scale.astype(target).reshape(shape) + \
            bias.astype(target).reshape(shape)
    return [out.astype(target)]


@kernel("Resize2d")
def _resize2d(attrs: dict, inputs: List[np.ndarray]) -> List[np.ndarray]:
    (x,) = inputs
    scale_h = int(attrs.get("scale_h", 2))
    scale_w = int(attrs.get("scale_w", 2))
    out = np.repeat(np.repeat(x, scale_h, axis=2), scale_w, axis=3)
    return [out]


# --------------------------------------------------------------------------- #
# Data movement
# --------------------------------------------------------------------------- #
@kernel("Reshape")
def _reshape(attrs: dict, inputs: List[np.ndarray]) -> List[np.ndarray]:
    (x,) = inputs
    shape = [int(d) for d in attrs["shape"]]
    return [np.reshape(x, shape)]


@kernel("Flatten")
def _flatten(attrs: dict, inputs: List[np.ndarray]) -> List[np.ndarray]:
    (x,) = inputs
    axis = int(attrs.get("axis", 1))
    lead = int(np.prod(x.shape[:axis])) if axis > 0 else 1
    return [np.reshape(x, (lead, -1))]


@kernel("Transpose")
def _transpose(attrs: dict, inputs: List[np.ndarray]) -> List[np.ndarray]:
    (x,) = inputs
    perm = attrs.get("perm")
    perm = [int(p) for p in perm] if perm is not None else list(range(x.ndim))[::-1]
    return [np.transpose(x, perm)]


@kernel("Squeeze")
def _squeeze(attrs: dict, inputs: List[np.ndarray]) -> List[np.ndarray]:
    (x,) = inputs
    axes = attrs.get("axes")
    if axes is None:
        return [np.squeeze(x)]
    return [np.squeeze(x, axis=tuple(int(a) for a in axes))]


@kernel("Unsqueeze")
def _unsqueeze(attrs: dict, inputs: List[np.ndarray]) -> List[np.ndarray]:
    (x,) = inputs
    axes = sorted(int(a) for a in attrs["axes"])
    out = x
    for axis in axes:
        out = np.expand_dims(out, axis=axis)
    return [out]


@kernel("Slice")
def _slice(attrs: dict, inputs: List[np.ndarray]) -> List[np.ndarray]:
    (x,) = inputs
    starts = [int(v) for v in attrs["starts"]]
    ends = [int(v) for v in attrs["ends"]]
    axes = [int(v) for v in attrs.get("axes", range(len(starts)))]
    steps = [int(v) for v in attrs.get("steps", [1] * len(starts))]
    slices = [slice(None)] * x.ndim
    for start, end, axis, step in zip(starts, ends, axes, steps):
        slices[axis] = slice(start, end, step)
    return [x[tuple(slices)]]


@kernel("Pad")
def _pad(attrs: dict, inputs: List[np.ndarray]) -> List[np.ndarray]:
    (x,) = inputs
    pads = [int(p) for p in attrs["pads"]]
    mode = attrs.get("mode", "constant")
    value = attrs.get("value", 0)
    rank = x.ndim
    pairs = [(pads[i], pads[i + rank]) for i in range(rank)]
    # Negative pad widths crop.  Following ONNX semantics, the output extent
    # is ``dim + begin + end``: positive widths are applied first, then the
    # negative widths crop the padded result from the respective edge.
    nonneg = [(max(0, before), max(0, after)) for before, after in pairs]
    if mode == "constant":
        out = np.pad(x, nonneg, mode="constant", constant_values=value)
    elif mode == "reflect":
        out = np.pad(x, nonneg, mode="reflect")
    elif mode == "replicate":
        out = np.pad(x, nonneg, mode="edge")
    else:
        raise ExecutionError(f"unknown pad mode {mode!r}")
    crops = []
    for before, after in pairs:
        crop_before = max(0, -before)
        crop_after = max(0, -after)
        crops.append(slice(crop_before, None if crop_after == 0 else -crop_after))
    return [out[tuple(crops)]]


@kernel("BroadcastTo")
def _broadcast_to(attrs: dict, inputs: List[np.ndarray]) -> List[np.ndarray]:
    (x,) = inputs
    shape = [int(d) for d in attrs["shape"]]
    return [np.broadcast_to(x, shape).copy()]


@kernel("Concat")
def _concat(attrs: dict, inputs: List[np.ndarray]) -> List[np.ndarray]:
    axis = int(attrs.get("axis", 0))
    target = _result_dtype(inputs)
    return [np.concatenate([x.astype(target) for x in inputs], axis=axis)]


@kernel("Split")
def _split(attrs: dict, inputs: List[np.ndarray]) -> List[np.ndarray]:
    (x,) = inputs
    axis = int(attrs.get("axis", 0))
    parts = np.split(x, 2, axis=axis)
    return [np.ascontiguousarray(p) for p in parts]


@kernel("Tile")
def _tile(attrs: dict, inputs: List[np.ndarray]) -> List[np.ndarray]:
    (x,) = inputs
    repeats = [int(r) for r in attrs["repeats"]]
    return [np.tile(x, repeats)]


@kernel("Gather")
def _gather(attrs: dict, inputs: List[np.ndarray]) -> List[np.ndarray]:
    data, indices = inputs
    axis = int(attrs.get("axis", 0))
    return [np.take(data, indices.astype(np.int64), axis=axis)]


# --------------------------------------------------------------------------- #
# Reductions
# --------------------------------------------------------------------------- #
def _reduce(func: Callable[..., np.ndarray]) -> Kernel:
    def run(attrs: dict, inputs: List[np.ndarray]) -> List[np.ndarray]:
        (x,) = inputs
        axes = attrs.get("axes")
        keepdims = bool(attrs.get("keepdims", False))
        axis = tuple(int(a) for a in axes) if axes is not None else None
        with np.errstate(all="ignore"):
            out = func(x, axis=axis, keepdims=keepdims)
        return [np.asarray(out).astype(x.dtype if func is not np.mean else _float_like(x.dtype))]

    return run


_KERNELS["ReduceSum"] = _reduce(np.sum)
_KERNELS["ReduceMean"] = _reduce(np.mean)
_KERNELS["ReduceMax"] = _reduce(np.max)
_KERNELS["ReduceMin"] = _reduce(np.min)
_KERNELS["ReduceProd"] = _reduce(np.prod)


@kernel("ArgMax")
def _argmax(attrs: dict, inputs: List[np.ndarray]) -> List[np.ndarray]:
    (x,) = inputs
    axis = int(attrs.get("axis", 0))
    keepdims = bool(attrs.get("keepdims", False))
    out = np.argmax(x, axis=axis)
    if keepdims:
        out = np.expand_dims(out, axis=axis)
    return [out.astype(np.int64)]


@kernel("ArgMin")
def _argmin(attrs: dict, inputs: List[np.ndarray]) -> List[np.ndarray]:
    (x,) = inputs
    axis = int(attrs.get("axis", 0))
    keepdims = bool(attrs.get("keepdims", False))
    out = np.argmin(x, axis=axis)
    if keepdims:
        out = np.expand_dims(out, axis=axis)
    return [out.astype(np.int64)]
