"""DeepC's front end: convert an interchange model into the DeepC graph IR.

This is the *conversion phase* of the compiler (§2.2 of the paper).  Every
operator kind has an import handler; several handlers contain seeded
conversion bugs mirroring the TVM importer bugs found by NNSmith (scalar
handling in reduce operators, three-way broadcasting in ``Where``,
single-rank broadcasting ``MatMul``, silent dtype casts).
"""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np

from repro.compilers.bugs import BugConfig
from repro.compilers.deepc.ir import DGraph
from repro.dtypes import DType
from repro.errors import ConversionError, ShapeInferenceError
from repro.graph.model import Model
from repro.graph.node import Node
from repro.graph.tensor_type import TensorType
from repro.ops.registry import is_registered, op_info
from repro.ops.shape_infer import infer_output_types
from repro.ops.semantics import has_kernel


class ConversionContext:
    """State threaded through one model import."""

    def __init__(self, bugs: BugConfig) -> None:
        self.bugs = bugs
        self.triggered_bugs: List[str] = []

    def record_bug(self, bug_id: str) -> None:
        if bug_id not in self.triggered_bugs:
            self.triggered_bugs.append(bug_id)


#: DeepC does not implement kernels for every interchange operator; this
#: mirrors how real compilers support different operator subsets, which the
#: fuzzer discovers by probing (§4).
UNSUPPORTED_OPS = frozenset({"Erf", "Softplus", "Mod", "Tile"})


def supported_operators() -> List[str]:
    from repro.ops.registry import all_ops

    return sorted(info.name for info in all_ops()
                  if has_kernel(info.name) and info.name not in UNSUPPORTED_OPS)


def convert_model(model: Model, bugs: BugConfig) -> "tuple[DGraph, List[str]]":
    """Import a model, returning the DeepC graph and triggered conversion bugs.

    Raises:
        ConversionError: when the model uses unsupported constructs or when a
            (seeded or genuine) importer limitation is hit.
    """
    ctx = ConversionContext(bugs)
    graph = DGraph(f"{model.name}.deepc")

    for name in model.inputs:
        graph.add_input(name, model.type_of(name))
    for name, array in model.initializers.items():
        graph.add_initializer(name, np.array(array, copy=True))

    for node in model.topological_order():
        _check_operator_supported(node)
        if node.attrs.get("opset_unsupported"):
            raise ConversionError(
                f"DeepC: node {node.name!r} ({node.op}) uses a construct this "
                "model-format version does not allow")
        handler = _IMPORT_HANDLERS.get(node.op, _import_generic)
        handler(graph, model, node, ctx)

    for name in model.outputs:
        graph.mark_output(name)
    return graph, ctx.triggered_bugs


def _check_operator_supported(node: Node) -> None:
    if not is_registered(node.op):
        raise ConversionError(f"DeepC: unknown operator {node.op!r}")
    if node.op in UNSUPPORTED_OPS or not has_kernel(node.op):
        raise ConversionError(f"DeepC: operator {node.op!r} is not implemented")


def _import_generic(graph: DGraph, model: Model, node: Node,
                    ctx: ConversionContext) -> None:
    """Default import: re-infer output types and annotate the pattern kind."""
    imported = node.clone()
    input_types = [graph.type_of(name) for name in imported.inputs]
    try:
        output_types = infer_output_types(imported, input_types)
    except ShapeInferenceError as exc:
        raise ConversionError(f"DeepC import of {node.op}: {exc}") from exc
    graph.add_node(imported, output_types)
    graph.annotate(imported, pattern=op_info(node.op).category)


def _import_reduce(graph: DGraph, model: Model, node: Node,
                   ctx: ConversionContext) -> None:
    """Reduce operators; seeded bug for scalar (rank-0) results."""
    input_type = graph.type_of(node.inputs[0])
    keepdims = bool(node.attrs.get("keepdims", False))
    axes = node.attrs.get("axes")
    reduces_all = axes is None or len(set(int(a) % max(input_type.rank, 1)
                                          for a in axes)) == input_type.rank
    if ctx.bugs.enabled("deepc-import-scalar-reduce") and reduces_all and not keepdims:
        ctx.record_bug("deepc-import-scalar-reduce")
        raise ConversionError(
            f"[deepc-import-scalar-reduce] DeepC importer cannot handle "
            f"{node.op} producing a scalar result")
    _import_generic(graph, model, node, ctx)


def _import_where(graph: DGraph, model: Model, node: Node,
                  ctx: ConversionContext) -> None:
    """Where; seeded bug ignores the lowest-ranked operand's shape."""
    cond, lhs, rhs = (graph.type_of(name) for name in node.inputs)
    ranks = [cond.rank, lhs.rank, rhs.rank]
    if ctx.bugs.enabled("deepc-import-where-broadcast-rank"):
        lowest = min(ranks)
        if ranks.count(lowest) == 1 and lowest < max(ranks):
            # The buggy importer infers the output shape from only the two
            # higher-ranked operands; if the ignored operand actually
            # contributes a dimension, later type checking fails.
            from repro.graph.tensor_type import broadcast_shapes

            shapes = sorted([cond.shape, lhs.shape, rhs.shape], key=len)
            partial = broadcast_shapes(shapes[1], shapes[2])
            full = broadcast_shapes(partial, shapes[0])
            if partial != full:
                ctx.record_bug("deepc-import-where-broadcast-rank")
                raise ConversionError(
                    "[deepc-import-where-broadcast-rank] DeepC importer "
                    "inferred an incomplete broadcast shape for Where")
    _import_generic(graph, model, node, ctx)


def _import_matmul(graph: DGraph, model: Model, node: Node,
                   ctx: ConversionContext) -> None:
    """MatMul; seeded bug rejects rank-1 (vector) operands."""
    lhs, rhs = (graph.type_of(name) for name in node.inputs)
    if ctx.bugs.enabled("deepc-import-matmul-vector") and 1 in (lhs.rank, rhs.rank):
        ctx.record_bug("deepc-import-matmul-vector")
        raise ConversionError(
            "[deepc-import-matmul-vector] DeepC importer does not support "
            "MatMul with single-rank broadcasting")
    _import_generic(graph, model, node, ctx)


def _import_argextreme(graph: DGraph, model: Model, node: Node,
                       ctx: ConversionContext) -> None:
    """ArgMax/ArgMin; seeded bug flips tie-breaking for bool inputs."""
    input_type = graph.type_of(node.inputs[0])
    if ctx.bugs.enabled("deepc-import-bool-cast-argmax") and input_type.dtype is DType.bool_:
        ctx.record_bug("deepc-import-bool-cast-argmax")
        imported = node.clone()
        # Buggy: the importer silently swaps ArgMax and ArgMin while casting
        # bool inputs, flipping which index wins ties.
        imported.op = "ArgMin" if node.op == "ArgMax" else "ArgMax"
        output_types = infer_output_types(
            imported, [graph.type_of(name) for name in imported.inputs])
        graph.add_node(imported, output_types)
        graph.annotate(imported, pattern=op_info(imported.op).category)
        return
    _import_generic(graph, model, node, ctx)


_IMPORT_HANDLERS: Dict[str, Callable] = {
    "ReduceSum": _import_reduce,
    "ReduceMean": _import_reduce,
    "ReduceMax": _import_reduce,
    "ReduceMin": _import_reduce,
    "ReduceProd": _import_reduce,
    "Where": _import_where,
    "MatMul": _import_matmul,
    "ArgMax": _import_argextreme,
    "ArgMin": _import_argextreme,
}
