"""The DeepC compiler: conversion, graph passes, lowering, low passes, codegen."""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

import numpy as np

from repro.compilers.base import (CompiledModel, Compiler, CompileOptions,
                                  register_compiler)
from repro.compilers.deepc import codegen, converter
from repro.compilers.deepc.lowering import lower_graph
from repro.compilers.deepc.lowir import LowModule
from repro.compilers.deepc.lowpasses import LowPassContext
from repro.compilers.deepc.passes import DeepCPassContext
from repro.compilers.pipeline import canonical_spec, run_pass_pipeline
from repro.errors import ExecutionError, ReproError
from repro.graph.model import Model


class DeepCExecutable(CompiledModel):
    """A fully lowered and "code generated" DeepC program."""

    def __init__(self, model: Model, module: LowModule,
                 applied_passes: Sequence[str],
                 triggered_bugs: Sequence[str] = (),
                 modified_by: Sequence[str] = ()) -> None:
        super().__init__(model, applied_passes, modified_by)
        self.module = module
        self.triggered_bugs = list(triggered_bugs)

    def run(self, inputs: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
        try:
            return codegen.execute_module(self.module, inputs)
        except ReproError:
            raise
        except (ValueError, IndexError, KeyError) as exc:
            raise ExecutionError(f"DeepC runtime failure: {exc}") from exc


@register_compiler
class DeepCCompiler(Compiler):
    """TVM analogue: end-to-end compiler with graph and loop-level passes."""

    name = "deepc"
    open_source = True

    def __init__(self, options: CompileOptions = None) -> None:
        super().__init__(options)

    def compile_model(self, model: Model) -> DeepCExecutable:
        triggered: List[str] = []
        spec = self.options.pipeline or canonical_spec(self.options.opt_level)

        # Conversion phase.
        graph, conversion_bugs = converter.convert_model(model, self.options.bugs)
        triggered.extend(conversion_bugs)

        # Graph-level transformation phase.
        applied: List[str] = []
        graph_ctx = DeepCPassContext(bugs=self.options.bugs,
                                     opt_level=self.options.opt_level,
                                     verify=self.options.verify_passes)
        applied.extend(run_pass_pipeline("deepc-graph", graph, graph_ctx,
                                         spec.passes("deepc-graph")))
        triggered.extend(graph_ctx.triggered_bugs)

        # Lowering to the loop-level IR.
        module, lowering_bugs = lower_graph(graph, self.options.bugs)
        triggered.extend(lowering_bugs)

        # Low-level transformation phase.
        low_ctx = LowPassContext(bugs=self.options.bugs,
                                 opt_level=self.options.opt_level,
                                 verify=self.options.verify_passes)
        applied.extend(run_pass_pipeline("deepc-low", module, low_ctx,
                                         spec.passes("deepc-low")))
        triggered.extend(low_ctx.triggered_bugs)

        return DeepCExecutable(model, module, applied, triggered,
                               graph_ctx.modified_by + low_ctx.modified_by)

    def supported_ops(self, candidate_ops: Sequence[str]) -> List[str]:
        available = set(converter.supported_operators())
        return [op for op in candidate_ops if op in available]
