"""Lowering: turn an optimized DeepC graph into the low-level IR.

Each fusion group becomes one :class:`~repro.compilers.deepc.lowir.Kernel`.
Lowering chooses the index dtype of every kernel and materializes per-
instruction loop extents.  Two seeded bugs reproduce the int32/int64 shape
arithmetic mismatches the paper reports as a recurring TVM pain point: large
``Reshape`` targets and high-rank ``BroadcastTo`` expansions make the
(buggy) index-dtype selection inconsistent and abort compilation.
"""

from __future__ import annotations

from typing import Dict, List

from repro.compilers.bugs import BugConfig
from repro.compilers.deepc.ir import DGraph
from repro.compilers.deepc.lowir import Buffer, Kernel, LowModule, TensorInstr
from repro.errors import TransformationError

#: Tensors at least this large conceptually require 64-bit index arithmetic in
#: the (scaled-down) DeepC lowering model.
I64_ELEMENT_THRESHOLD = 1024


class LoweringContext:
    def __init__(self, bugs: BugConfig) -> None:
        self.bugs = bugs
        self.triggered_bugs: List[str] = []

    def record_bug(self, bug_id: str) -> None:
        if bug_id not in self.triggered_bugs:
            self.triggered_bugs.append(bug_id)


def lower_graph(graph: DGraph, bugs: BugConfig) -> "tuple[LowModule, List[str]]":
    """Lower a DeepC graph to a :class:`LowModule`.

    Raises:
        TransformationError: for seeded int32/int64 lowering failures.
    """
    ctx = LoweringContext(bugs)
    groups = _ordered_groups(graph)
    kernels: List[Kernel] = []
    for index, group in enumerate(groups):
        kernels.append(_lower_group(graph, group, index, ctx))
    module = LowModule(
        name=f"{graph.name}.lowered",
        kernels=kernels,
        graph_inputs=list(graph.inputs),
        graph_outputs=list(graph.outputs),
        params={name: array for name, array in graph.initializers.items()},
        value_types=dict(graph.value_types),
    )
    return module, ctx.triggered_bugs


def _ordered_groups(graph: DGraph) -> List[List[str]]:
    """Fusion groups ordered so producer groups come before consumer groups.

    When the fusion pass has not run (opt level 0) every node forms its own
    group.  Groups are scheduled by a topological sort of the group-level
    dependency graph (a group depends on every group producing one of its
    external inputs).
    """
    order = graph.topological_order()
    if not graph.fusion_groups:
        return [[node.name] for node in order]
    position = {node.name: i for i, node in enumerate(order)}
    groups = [sorted(group, key=lambda name: position[name])
              for group in graph.fusion_groups if group]

    producer_group: dict = {}
    for index, group in enumerate(groups):
        for node_name in group:
            for output in graph.node_by_name(node_name).outputs:
                producer_group[output] = index

    dependencies: List[set] = [set() for _ in groups]
    for index, group in enumerate(groups):
        members = set(group)
        for node_name in group:
            for input_name in graph.node_by_name(node_name).inputs:
                source = producer_group.get(input_name)
                if source is not None and source != index:
                    dependencies[index].add(source)

    scheduled: List[int] = []
    ready = sorted((i for i, deps in enumerate(dependencies) if not deps),
                   key=lambda i: position[groups[i][0]])
    remaining = {i: set(deps) for i, deps in enumerate(dependencies) if deps}
    while ready:
        current = ready.pop(0)
        scheduled.append(current)
        newly_ready = []
        for index, deps in list(remaining.items()):
            deps.discard(current)
            if not deps:
                newly_ready.append(index)
                del remaining[index]
        ready.extend(sorted(newly_ready, key=lambda i: position[groups[i][0]]))
    if remaining:
        raise TransformationError(
            "operator fusion produced cyclically dependent kernel groups")
    return [groups[index] for index in scheduled]


def _lower_group(graph: DGraph, group: List[str], index: int,
                 ctx: LoweringContext) -> Kernel:
    nodes = [graph.node_by_name(name) for name in group]
    produced = {output for node in nodes for output in node.outputs}
    consumed_elsewhere = set(graph.outputs)
    for other in graph.nodes:
        if other.name in group:
            continue
        consumed_elsewhere.update(other.inputs)

    buffers: Dict[str, Buffer] = {}
    kernel_inputs: List[str] = []
    kernel_outputs: List[str] = []

    def declare(name: str, kind: str) -> None:
        if name in buffers:
            if kind == "output" and buffers[name].kind == "intermediate":
                buffers[name].kind = "output"
            return
        buffers[name] = Buffer(name, graph.type_of(name), kind)
        if kind == "input":
            kernel_inputs.append(name)
        elif kind == "param":
            kernel_inputs.append(name)
        elif kind == "output":
            kernel_outputs.append(name)

    instrs: List[TensorInstr] = []
    for node in nodes:
        for input_name in node.inputs:
            if input_name in produced:
                continue
            kind = "param" if graph.is_constant(input_name) else "input"
            declare(input_name, kind)
        for output_name in node.outputs:
            kind = "output" if output_name in consumed_elsewhere else "intermediate"
            declare(output_name, kind)
        instr = TensorInstr(
            op=node.op,
            name=node.name,
            inputs=list(node.inputs),
            outputs=list(node.outputs),
            attrs=dict(node.attrs),
            loop_extent=graph.type_of(node.outputs[0]).numel,
        )
        _check_index_dtype(graph, node, instr, ctx)
        instrs.append(instr)

    index_dtype = "int64" if any(
        buf.numel >= I64_ELEMENT_THRESHOLD for buf in buffers.values()) else "int32"
    for instr in instrs:
        instr.index_dtype = index_dtype
    return Kernel(
        name=f"fused_kernel_{index}",
        instrs=instrs,
        buffers=buffers,
        inputs=kernel_inputs,
        outputs=kernel_outputs,
        index_dtype=index_dtype,
    )


def _check_index_dtype(graph: DGraph, node, instr: TensorInstr,
                       ctx: LoweringContext) -> None:
    """Seeded int32/int64 shape-arithmetic mismatches."""
    if node.op == "Reshape" and ctx.bugs.enabled("deepc-i64-reshape-mismatch"):
        target_numel = graph.type_of(node.outputs[0]).numel
        if target_numel >= I64_ELEMENT_THRESHOLD:
            ctx.record_bug("deepc-i64-reshape-mismatch")
            raise TransformationError(
                "[deepc-i64-reshape-mismatch] Reshape shape expression mixes "
                "int32 and int64 index arithmetic")
    if node.op == "BroadcastTo" and ctx.bugs.enabled("deepc-i64-broadcastto-mismatch"):
        out_type = graph.type_of(node.outputs[0])
        in_type = graph.type_of(node.inputs[0])
        expansion = out_type.numel // max(in_type.numel, 1)
        if out_type.rank >= 4 and expansion >= 8:
            ctx.record_bug("deepc-i64-broadcastto-mismatch")
            raise TransformationError(
                "[deepc-i64-broadcastto-mismatch] BroadcastTo shape constant "
                "materialized as int32 but the fused expression expects int64")
