"""DeepC's low-level IR: kernels of tensor instructions.

After graph-level optimization DeepC *lowers* each fusion group into a
:class:`Kernel`: an ordered list of :class:`TensorInstr` operating on named
:class:`Buffer` objects, annotated with the loop-level metadata the low-level
passes manipulate (loop extents, index dtype, vector width).  The whole
program is a :class:`LowModule`, which the code generator turns into an
executable.

This IR is also the mutation target of the Tzer-like baseline fuzzer
(:mod:`repro.baselines.tzer`), mirroring how the original Tzer mutates TVM's
TIR rather than graph-level models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.graph.tensor_type import TensorType


@dataclass
class Buffer:
    """A named tensor storage location inside a kernel."""

    name: str
    ttype: TensorType
    kind: str = "intermediate"  # "input" | "param" | "intermediate" | "output"

    @property
    def numel(self) -> int:
        return self.ttype.numel


@dataclass
class TensorInstr:
    """One tensor operation inside a kernel.

    Attributes:
        op: operator kind (interchange operators plus DeepC-internal ones).
        name: original graph-node name (used for bug attribution/debugging).
        inputs: buffer names read by the instruction.
        outputs: buffer names written by the instruction.
        attrs: operator attributes.
        loop_extent: number of elements of the (first) output; the nominal
            iteration count of the generated loop nest.
        index_dtype: ``"int32"`` or ``"int64"`` index arithmetic.
        vector_width: when set, the innermost loop is processed in blocks of
            this many elements.
        drop_remainder: set by the (buggy) vectorization pass; the code
            generator then leaves the tail elements unwritten.
        loop_id: identifier of the fused loop nest this instruction joined.
    """

    op: str
    name: str
    inputs: List[str]
    outputs: List[str]
    attrs: Dict[str, object] = field(default_factory=dict)
    loop_extent: int = 0
    index_dtype: str = "int32"
    vector_width: Optional[int] = None
    drop_remainder: bool = False
    loop_id: Optional[int] = None

    def clone(self) -> "TensorInstr":
        return TensorInstr(self.op, self.name, list(self.inputs), list(self.outputs),
                           dict(self.attrs), self.loop_extent, self.index_dtype,
                           self.vector_width, self.drop_remainder, self.loop_id)


@dataclass
class Kernel:
    """A lowered fusion group."""

    name: str
    instrs: List[TensorInstr]
    buffers: Dict[str, Buffer]
    inputs: List[str]
    outputs: List[str]
    index_dtype: str = "int32"

    def buffer(self, name: str) -> Buffer:
        return self.buffers[name]

    def intermediate_buffers(self) -> List[Buffer]:
        return [b for b in self.buffers.values() if b.kind == "intermediate"]

    def text(self) -> str:
        """A textual dump of the kernel (used by the Tzer baseline and tests)."""
        lines = [f"kernel {self.name} (index={self.index_dtype}):"]
        for buf in self.buffers.values():
            lines.append(f"  buffer {buf.kind:<12} {buf.name}: {buf.ttype}")
        for instr in self.instrs:
            vec = f" vec={instr.vector_width}" if instr.vector_width else ""
            rem = " drop_remainder" if instr.drop_remainder else ""
            lines.append(
                f"  {', '.join(instr.outputs)} = {instr.op}({', '.join(instr.inputs)})"
                f" extent={instr.loop_extent}{vec}{rem}")
        return "\n".join(lines)


@dataclass
class LowModule:
    """The fully lowered program: an ordered list of kernels."""

    name: str
    kernels: List[Kernel]
    graph_inputs: List[str]
    graph_outputs: List[str]
    params: Dict[str, np.ndarray]
    value_types: Dict[str, TensorType]

    def kernel_by_name(self, name: str) -> Kernel:
        for kernel in self.kernels:
            if kernel.name == name:
                return kernel
        raise KeyError(name)

    def text(self) -> str:
        return "\n".join(kernel.text() for kernel in self.kernels)

    def instr_count(self) -> int:
        return sum(len(kernel.instrs) for kernel in self.kernels)

    def clone(self) -> "LowModule":
        return LowModule(
            self.name,
            [Kernel(k.name, [i.clone() for i in k.instrs], dict(k.buffers),
                    list(k.inputs), list(k.outputs), k.index_dtype)
             for k in self.kernels],
            list(self.graph_inputs),
            list(self.graph_outputs),
            dict(self.params),
            dict(self.value_types),
        )
