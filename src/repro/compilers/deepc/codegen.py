"""Code generation: turn a lowered DeepC module into an executable.

Real TVM emits LLVM/C source here; the scaled-down DeepC instead generates a
Python execution plan whose per-instruction behaviour honours the loop-level
metadata the low-level passes produced (in particular the vector width and
the buggy ``drop_remainder`` flag, which leaves tail elements unwritten —
zero, since buffers are zero-initialized).
"""

from __future__ import annotations

from typing import Dict, List, Mapping

import numpy as np

from repro.compilers.deepc.lowir import Kernel, LowModule, TensorInstr
from repro.errors import ExecutionError, UnsupportedOperatorError
from repro.graph.node import Node
from repro.ops import semantics


def pack_nchw4c(array: np.ndarray) -> np.ndarray:
    """NCHW -> NCHW4c packing (channels must be divisible by four)."""
    batch, channels, height, width = array.shape
    if channels % 4 != 0:
        raise ExecutionError("cannot pack a channel count not divisible by 4")
    reshaped = array.reshape(batch, channels // 4, 4, height, width)
    return np.transpose(reshaped, (0, 1, 3, 4, 2)).copy()


def unpack_nchw4c(array: np.ndarray) -> np.ndarray:
    """NCHW4c -> NCHW unpacking."""
    batch, chunks, height, width, lanes = array.shape
    transposed = np.transpose(array, (0, 1, 4, 2, 3))
    return transposed.reshape(batch, chunks * lanes, height, width).copy()


def _run_internal(instr: TensorInstr, inputs: List[np.ndarray]) -> List[np.ndarray]:
    if instr.op == "LayoutPack4c":
        return [pack_nchw4c(inputs[0])]
    if instr.op == "LayoutUnpack4c":
        return [unpack_nchw4c(inputs[0])]
    if instr.op == "Conv2dNCHW4c":
        unpacked = unpack_nchw4c(inputs[0])
        node = Node("Conv2d", instr.name, [], [], instr.attrs)
        outputs = semantics.execute_node(node, [unpacked] + list(inputs[1:]))
        return [pack_nchw4c(outputs[0])]
    raise UnsupportedOperatorError(f"DeepC codegen: unknown internal op {instr.op!r}")


_INTERNAL_OPS = {"LayoutPack4c", "LayoutUnpack4c", "Conv2dNCHW4c"}


def execute_instr(instr: TensorInstr, inputs: List[np.ndarray]) -> List[np.ndarray]:
    """Execute one lowered instruction, honouring its loop metadata."""
    if instr.op in _INTERNAL_OPS:
        outputs = _run_internal(instr, inputs)
    else:
        node = Node(instr.op, instr.name, [], [], instr.attrs)
        outputs = semantics.execute_node(node, inputs)
    if instr.drop_remainder and instr.vector_width:
        processed = (instr.loop_extent // instr.vector_width) * instr.vector_width
        patched = []
        for array in outputs:
            flat = np.array(array, copy=True).reshape(-1)
            # The buggy vectorized loop never writes the tail elements; the
            # zero-initialized output buffer shows through.
            flat[processed:] = 0
            patched.append(flat.reshape(array.shape).astype(array.dtype))
        outputs = patched
    return outputs


def execute_kernel(kernel: Kernel, inputs: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
    """Execute one kernel given its external input buffers."""
    values: Dict[str, np.ndarray] = {}
    for name in kernel.inputs:
        if name not in inputs:
            raise ExecutionError(f"kernel {kernel.name}: missing input {name!r}")
        values[name] = np.asarray(inputs[name])
    for instr in kernel.instrs:
        instr_inputs = [values[name] for name in instr.inputs]
        results = execute_instr(instr, instr_inputs)
        values.update(zip(instr.outputs, results))
    missing = [name for name in kernel.outputs if name not in values]
    if missing:
        raise ExecutionError(f"kernel {kernel.name}: outputs never written: {missing}")
    return {name: values[name] for name in kernel.outputs}


def execute_module(module: LowModule, inputs: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
    """Execute the whole lowered program."""
    values: Dict[str, np.ndarray] = {}
    for name in module.graph_inputs:
        if name not in inputs:
            raise ExecutionError(f"missing graph input {name!r}")
        values[name] = np.asarray(inputs[name],
                                  dtype=module.value_types[name].dtype.numpy)
    for name, array in module.params.items():
        values[name] = np.asarray(array)

    for kernel in module.kernels:
        kernel_inputs = {name: values[name] for name in kernel.inputs if name in values}
        results = execute_kernel(kernel, kernel_inputs)
        values.update(results)

    missing = [name for name in module.graph_outputs if name not in values]
    if missing:
        raise ExecutionError(f"graph outputs never produced: {missing}")
    return {name: values[name] for name in module.graph_outputs}
