"""Property-based operator fusion.

DeepC fuses operators by their *pattern kind* (injective, broadcast,
reduction, complex), not by concrete operator identity — the same design TVM
uses and the reason the paper observes that TVM's coverage is less sensitive
to graph-pattern diversity than ONNXRuntime's (§5.2).

A fusion group is a connected chain of elementwise / broadcast / injective
operators, optionally ending in one reduction, or one complex operator
(Conv2d, MatMul, ...) followed by elementwise epilogues.  Groups become one
lowered kernel each.

Seeded bug: a *full* reduction (scalar output) fused with injective
consumers cannot be emitted by the lowering stage; the buggy fusion pass
builds such groups anyway, and compilation crashes.
"""

from __future__ import annotations

from typing import Dict, List

from repro.compilers.deepc.ir import DGraph
from repro.compilers.deepc.passes import DeepCPass, DeepCPassContext
from repro.errors import TransformationError
from repro.graph.node import Node
from repro.ops.registry import OpCategory

#: Pattern kinds that may join an existing fusion group as "epilogue" ops.
_FUSABLE = (OpCategory.elemwise, OpCategory.broadcast, OpCategory.injective)
#: Pattern kinds that may start a group and absorb epilogues.
_ANCHORS = (OpCategory.complex_, OpCategory.reduction)


class FuseOps(DeepCPass):
    """Greedy fusion of operator chains into kernel groups."""

    max_group_size = 6

    def run(self, graph: DGraph, ctx: DeepCPassContext) -> bool:
        order = graph.topological_order()
        consumer_map = graph.consumer_map()
        group_of: Dict[str, int] = {}
        groups: List[List[str]] = []

        for node in order:
            kind = graph.pattern_kind(node)
            upstream_group = self._joinable_group(graph, node, group_of, groups,
                                                  consumer_map, ctx)
            if upstream_group is not None:
                groups[upstream_group].append(node.name)
                group_of[node.name] = upstream_group
                continue
            if kind in _FUSABLE or kind in _ANCHORS:
                groups.append([node.name])
                group_of[node.name] = len(groups) - 1
            else:
                groups.append([node.name])
                group_of[node.name] = len(groups) - 1

        changed = groups != graph.fusion_groups
        graph.fusion_groups = groups
        for node in order:
            graph.annotate(node, fusion_group=group_of[node.name])
        return changed

    def _joinable_group(self, graph: DGraph, node: Node, group_of: Dict[str, int],
                        groups: List[List[str]], consumer_map, ctx: DeepCPassContext):
        """Can ``node`` join the fusion group of one of its producers?"""
        kind = graph.pattern_kind(node)
        if kind not in _FUSABLE:
            return None
        producers = graph.producer_map()
        candidate = None
        for input_name in node.inputs:
            producer = producers.get(input_name)
            if producer is None:
                continue
            group_index = group_of.get(producer.name)
            if group_index is None:
                continue
            group = groups[group_index]
            if len(group) >= self.max_group_size:
                continue
            producer_kind = graph.pattern_kind(producer)
            if producer_kind is OpCategory.reduction:
                scalar_output = graph.type_of(producer.outputs[0]).rank == 0
                if scalar_output:
                    if ctx.bugs.enabled("deepc-fusion-scalar-reduce"):
                        # BUG: lowering cannot emit a fused kernel whose
                        # intermediate collapses to a scalar; building the
                        # group anyway fails compilation.
                        ctx.record_bug("deepc-fusion-scalar-reduce")
                        raise TransformationError(
                            "[deepc-fusion-scalar-reduce] cannot emit fused "
                            "kernel for a full reduction with injective "
                            "consumers")
                    continue
                # Non-scalar reductions may absorb elementwise epilogues
                # (TVM's kCommReduce output fusion); fall through to the
                # privacy check below.
            # The whole group must produce values only consumed inside the
            # group or by this node; otherwise keep kernels separate so the
            # intermediate stays materialized.
            if not self._group_output_private(graph, group, node, consumer_map):
                continue
            candidate = group_index
            break
        return candidate

    @staticmethod
    def _group_output_private(graph: DGraph, group: List[str], node: Node,
                              consumer_map) -> bool:
        members = set(group) | {node.name}
        for member_name in group:
            member = graph.node_by_name(member_name)
            for output in member.outputs:
                if output in graph.outputs:
                    return False
                for consumer in consumer_map.get(output, []):
                    if consumer.name not in members:
                        return False
        return True
