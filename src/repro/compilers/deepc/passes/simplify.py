"""Arithmetic simplification and constant folding for DeepC."""

from __future__ import annotations

import numpy as np

from repro.compilers.deepc.ir import DGraph
from repro.compilers.deepc.passes import DeepCPass, DeepCPassContext
from repro.errors import ExecutionError, TransformationError
from repro.graph.node import Node
from repro.ops.semantics import execute_node


class SimplifyExpressions(DeepCPass):
    """Algebraic rewrites on the graph.

    Implements the usual identities (``x+0``, ``x*1``, ``--x``) plus the
    division/multiplication reassociation whose integer variant carries a
    seeded semantic bug: ``(x*c)/c`` is rewritten to ``x`` even for integer
    (truncating) division, mirroring the wrong expression simplification the
    paper reports in TVM's arithmetic pass.
    """

    def run(self, graph: DGraph, ctx: DeepCPassContext) -> bool:
        changed = False
        producers = graph.producer_map()
        for node in list(graph.nodes):
            if node.outputs[0] in graph.outputs:
                continue
            target = None
            if node.op in ("Add", "Sub") and self._is_const_value(graph, node.inputs[1], 0):
                target = node.inputs[0]
            elif node.op == "Add" and self._is_const_value(graph, node.inputs[0], 0):
                target = node.inputs[1]
            elif node.op == "Mul" and self._is_const_value(graph, node.inputs[1], 1):
                target = node.inputs[0]
            elif node.op == "Mul" and self._is_const_value(graph, node.inputs[0], 1):
                target = node.inputs[1]
            elif node.op == "Div":
                target = self._simplify_div(graph, node, producers, ctx)
            elif node.op == "Neg":
                upstream = producers.get(node.inputs[0])
                if upstream is not None and upstream.op == "Neg":
                    target = upstream.inputs[0]
            if target is None:
                continue
            if graph.type_of(target) != graph.type_of(node.outputs[0]):
                continue
            graph.replace_uses(node.outputs[0], target)
            graph.remove_node(node)
            producers = graph.producer_map()
            changed = True
        if changed:
            graph.prune_dead_nodes()
        return changed

    @staticmethod
    def _is_const_value(graph: DGraph, name: str, value: float) -> bool:
        array = graph.initializers.get(name)
        return array is not None and array.size > 0 and bool(np.all(array == value))

    @staticmethod
    def _simplify_div(graph: DGraph, node: Node, producers, ctx: DeepCPassContext):
        """Handle ``x/1`` and the (possibly buggy) ``(x*c)/c -> x`` rewrite."""
        if SimplifyExpressions._is_const_value(graph, node.inputs[1], 1):
            return node.inputs[0]
        divisor = graph.initializers.get(node.inputs[1])
        upstream = producers.get(node.inputs[0])
        if divisor is None or upstream is None or upstream.op != "Mul":
            return None
        multiplier = graph.initializers.get(upstream.inputs[1])
        source = upstream.inputs[0]
        if multiplier is None:
            multiplier = graph.initializers.get(upstream.inputs[0])
            source = upstream.inputs[1]
        if multiplier is None or multiplier.shape != divisor.shape:
            return None
        if not np.array_equal(multiplier, divisor):
            return None
        dtype = graph.type_of(node.outputs[0]).dtype
        if dtype.is_int:
            if not ctx.bugs.enabled("deepc-simplify-divmul-int"):
                # Correct behaviour: integer division truncates, so (x*c)/c is
                # not equivalent to x when x*c overflows or c divides unevenly
                # elsewhere in the expression; DeepC conservatively keeps it.
                return None
            ctx.record_bug("deepc-simplify-divmul-int")
        return source if graph.type_of(source) == graph.type_of(node.outputs[0]) else None


class FoldConstants(DeepCPass):
    """Evaluate constant subgraphs at compile time.

    Seeded bug: folding a ``Pad`` with negative (cropping) pad widths raises.
    """

    max_folded_elements = 1 << 16

    def run(self, graph: DGraph, ctx: DeepCPassContext) -> bool:
        changed = False
        for node in list(graph.topological_order()):
            if node.op == "Split" or not node.inputs:
                continue
            if not all(graph.is_constant(name) for name in node.inputs):
                continue
            if node.op == "Pad" and ctx.bugs.enabled("deepc-constfold-pad-negative"):
                pads = [int(p) for p in node.attrs.get("pads", [])]
                if any(p < 0 for p in pads):
                    ctx.record_bug("deepc-constfold-pad-negative")
                    raise TransformationError(
                        "[deepc-constfold-pad-negative] constant folding does "
                        "not support negative pad widths")
            inputs = [graph.initializers[name] for name in node.inputs]
            try:
                outputs = execute_node(node, inputs)
            except ExecutionError:
                continue
            if sum(int(np.size(out)) for out in outputs) > self.max_folded_elements:
                continue
            for output_name, array in zip(node.outputs, outputs):
                expected = graph.type_of(output_name)
                graph.initializers[output_name] = np.asarray(
                    array, dtype=expected.dtype.numpy)
            graph.remove_node(node)
            changed = True
        return changed
