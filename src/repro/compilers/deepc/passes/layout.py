"""Memory-layout optimization: rewrite convolutions to the NCHW4c layout.

Mirrors TVM's AlterOpLayout: the most profitable operators (Conv2d) are
rewritten to a SIMD-friendly packed layout (``N C//4 H W 4c``) and the
surrounding operators must adapt.  Two seeded bugs reproduce the layout
bug patterns the paper reports:

* a broadcasting ``Add`` whose other operand has lower rank cannot adapt the
  packed layout, but the buggy pass pushes the layout past it anyway;
* a ``Slice`` over the channel axis with stride greater than one crashes the
  layout rewriter.
"""

from __future__ import annotations

from typing import Optional

from repro.compilers.deepc.ir import DGraph
from repro.compilers.deepc.passes import DeepCPass, DeepCPassContext
from repro.errors import ShapeInferenceError, TransformationError
from repro.graph.node import Node
from repro.graph.tensor_type import TensorType
from repro.ops.registry import OpCategory, register_op_attrs
from repro.ops.shape_infer import infer_output_types, rule


def packed_type(ttype: TensorType) -> TensorType:
    """The NCHW4c type corresponding to an NCHW tensor type."""
    batch, channels, height, width = ttype.shape
    return TensorType((batch, channels // 4, height, width, 4), ttype.dtype)


# Type rules for the internal packed-layout operators, so structural
# validation (and the pass-boundary verifier) can check layout-optimized
# graphs like any other IR.
@rule("LayoutPack4c")
def _layout_pack_rule(node: Node, inputs) -> list:
    x, = inputs
    if x.rank != 4 or x.shape[1] % 4 != 0:
        raise ShapeInferenceError(
            "LayoutPack4c expects an NCHW input with channels divisible by 4")
    return [packed_type(x)]


@rule("LayoutUnpack4c")
def _layout_unpack_rule(node: Node, inputs) -> list:
    x, = inputs
    if x.rank != 5 or x.shape[4] != 4:
        raise ShapeInferenceError("LayoutUnpack4c expects an NCHW4c input")
    batch, packed_ch, height, width, _lanes = x.shape
    return [TensorType((batch, packed_ch * 4, height, width), x.dtype)]


@rule("Conv2dNCHW4c")
def _conv2d_nchw4c_rule(node: Node, inputs) -> list:
    x = inputs[0]
    if x.rank != 5 or x.shape[4] != 4:
        raise ShapeInferenceError("Conv2dNCHW4c expects an NCHW4c input")
    unpacked = TensorType((x.shape[0], x.shape[1] * 4, x.shape[2], x.shape[3]),
                          x.dtype)
    # Same arithmetic as Conv2d on the unpacked type, then repack.
    proxy = Node("Conv2d", node.name, list(node.inputs), list(node.outputs),
                 dict(node.attrs))
    output, = infer_output_types(proxy, [unpacked] + list(inputs[1:]))
    if output.shape[1] % 4 != 0:
        raise ShapeInferenceError(
            "Conv2dNCHW4c output channels must be divisible by 4")
    return [packed_type(output)]


register_op_attrs("LayoutPack4c", ())
register_op_attrs("LayoutUnpack4c", ())
register_op_attrs("Conv2dNCHW4c", ("stride", "padding", "dilation"))


class AlterConvLayout(DeepCPass):
    """Rewrite eligible Conv2d nodes to the packed NCHW4c layout."""

    def run(self, graph: DGraph, ctx: DeepCPassContext) -> bool:
        changed = False
        for node in list(graph.nodes):
            if node.op != "Conv2d":
                continue
            input_type = graph.type_of(node.inputs[0])
            output_type = graph.type_of(node.outputs[0])
            if input_type.shape[1] % 4 != 0 or output_type.shape[1] % 4 != 0:
                continue
            self._check_consumers(graph, node, ctx)
            self._rewrite_conv(graph, node)
            changed = True
        return changed

    # ------------------------------------------------------------------ #
    def _check_consumers(self, graph: DGraph, conv: Node, ctx: DeepCPassContext) -> None:
        """Layout analysis of the operators downstream of a packed Conv2d."""
        consumers = graph.consumer_map().get(conv.outputs[0], [])
        for consumer in consumers:
            kind = graph.pattern_kind(consumer)
            if consumer.op == "Slice":
                axes = [int(a) for a in consumer.attrs.get(
                    "axes", range(len(consumer.attrs.get("starts", []))))]
                steps = [int(s) for s in consumer.attrs.get(
                    "steps", [1] * len(axes))]
                channel_strided = any(axis == 1 and step > 1
                                      for axis, step in zip(axes, steps))
                if channel_strided and ctx.bugs.enabled("deepc-layout-conv-slice-stride"):
                    ctx.record_bug("deepc-layout-conv-slice-stride")
                    raise TransformationError(
                        "[deepc-layout-conv-slice-stride] cannot adapt strided "
                        "channel Slice to the NCHW4c layout")
            if kind is OpCategory.broadcast and consumer.op in ("Add", "Sub", "Mul",
                                                                "Div", "Max", "Min"):
                other = next((name for name in consumer.inputs
                              if name != conv.outputs[0]), None)
                if other is None:
                    continue
                other_rank = graph.type_of(other).rank
                if other_rank not in (0, 4) and \
                        ctx.bugs.enabled("deepc-layout-broadcast-add"):
                    # BUG: the packed layout is pushed past a broadcasting
                    # elementwise op whose other operand cannot be packed.
                    ctx.record_bug("deepc-layout-broadcast-add")
                    raise TransformationError(
                        "[deepc-layout-broadcast-add] layout analysis failed "
                        "to adapt a lower-rank broadcast operand to NCHW4c")

    def _rewrite_conv(self, graph: DGraph, conv: Node) -> None:
        """Insert pack/unpack nodes around the convolution and retag it."""
        input_name = conv.inputs[0]
        input_type = graph.type_of(input_name)
        output_name = conv.outputs[0]
        output_type = graph.type_of(output_name)

        packed_in = graph.fresh_value_name("packed_in")
        graph.value_types[packed_in] = packed_type(input_type)
        pack = Node("LayoutPack4c", graph.fresh_node_name("layout_pack"),
                    [input_name], [packed_in], {})
        packed_out = graph.fresh_value_name("packed_out")
        graph.value_types[packed_out] = packed_type(output_type)

        conv.op = "Conv2dNCHW4c"
        conv.inputs = [packed_in] + conv.inputs[1:]
        conv.outputs = [packed_out]

        unpack = Node("LayoutUnpack4c", graph.fresh_node_name("layout_unpack"),
                      [packed_out], [output_name], {})

        index = graph.nodes.index(conv)
        graph.nodes.insert(index, pack)
        graph.nodes.insert(index + 2, unpack)
        graph.layouts[packed_in] = "NCHW4c"
        graph.layouts[packed_out] = "NCHW4c"
        graph.annotate(pack, pattern=OpCategory.injective)
        graph.annotate(unpack, pattern=OpCategory.injective)
        graph.annotate(conv, pattern=OpCategory.complex_, layout="NCHW4c")
