"""Structural folding and cleanup passes for DeepC."""

from __future__ import annotations

from typing import Dict

from repro.compilers.deepc.ir import DGraph
from repro.compilers.deepc.passes import DeepCPass, DeepCPassContext


class FoldTransposeIntoReshape(DeepCPass):
    """Fold ``Transpose`` directly followed by ``Reshape`` into the reshape.

    The rewrite is only valid when the transpose permutation is the identity
    on the non-unit dimensions (the reshape then reads elements in the same
    order).  Seeded bug: the permutation check is skipped entirely.
    """

    def run(self, graph: DGraph, ctx: DeepCPassContext) -> bool:
        changed = False
        producers = graph.producer_map()
        for node in list(graph.nodes):
            if node.op != "Reshape":
                continue
            upstream = producers.get(node.inputs[0])
            if upstream is None or upstream.op != "Transpose":
                continue
            consumers = graph.consumer_map().get(upstream.outputs[0], [])
            if len(consumers) != 1 or upstream.outputs[0] in graph.outputs:
                continue
            source_type = graph.type_of(upstream.inputs[0])
            perm = [int(p) for p in upstream.attrs.get(
                "perm", range(source_type.rank)[::-1])]
            if ctx.bugs.enabled("deepc-fold-transpose-reshape"):
                ctx.record_bug("deepc-fold-transpose-reshape")
                permutation_ok = True  # BUG: never checks the permutation.
            else:
                permutation_ok = self._order_preserving(perm, source_type.shape)
            if not permutation_ok:
                continue
            node.inputs = [upstream.inputs[0]]
            graph.remove_node(upstream)
            producers = graph.producer_map()
            changed = True
        if changed:
            graph.prune_dead_nodes()
        return changed

    @staticmethod
    def _order_preserving(perm, shape) -> bool:
        """True when transposing by ``perm`` keeps the linear element order."""
        significant = [axis for axis in perm if shape[axis] != 1]
        return significant == sorted(significant)


class EliminateCommonSubexpr(DeepCPass):
    """Merge identical nodes fed by identical inputs."""

    def run(self, graph: DGraph, ctx: DeepCPassContext) -> bool:
        changed = False
        seen: Dict[str, str] = {}
        for node in list(graph.topological_order()):
            if node.op == "Split":
                continue
            key = f"{node.op}|{','.join(node.inputs)}|{node.signature()}"
            if key in seen and node.outputs[0] not in graph.outputs:
                graph.replace_uses(node.outputs[0], seen[key])
                graph.remove_node(node)
                changed = True
            else:
                seen.setdefault(key, node.outputs[0])
        return changed


class RemoveDeadNodes(DeepCPass):
    """Drop nodes that do not contribute to any graph output."""

    def run(self, graph: DGraph, ctx: DeepCPassContext) -> bool:
        live = set(graph.outputs)
        changed = False
        for node in reversed(graph.topological_order()):
            if any(output in live for output in node.outputs):
                live.update(node.inputs)
            else:
                graph.remove_node(node)
                changed = True
        return changed
