"""Graph-level pass framework and default pipeline of the DeepC compiler.

Unlike GraphRT's pattern-specific rewrites, DeepC's graph passes are mostly
*general*: fusion is driven by operator properties (injective / reduction /
complex) rather than concrete operator kinds, mirroring the design difference
between TVM and ONNXRuntime the paper uses to explain their differing
coverage sensitivity (§5.2).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import List

from repro.compilers.bugs import BugConfig
from repro.compilers.deepc.ir import DGraph


@dataclass
class DeepCPassContext:
    """State shared by the graph passes of one DeepC compilation."""

    bugs: BugConfig = field(default_factory=BugConfig.none)
    opt_level: int = 2
    triggered_bugs: List[str] = field(default_factory=list)
    modified_by: List[str] = field(default_factory=list)

    def record_bug(self, bug_id: str) -> None:
        if bug_id not in self.triggered_bugs:
            self.triggered_bugs.append(bug_id)


class DeepCPass(abc.ABC):
    """One DeepC graph-level transformation."""

    min_opt_level: int = 1

    @property
    def name(self) -> str:
        return type(self).__name__

    @abc.abstractmethod
    def run(self, graph: DGraph, ctx: DeepCPassContext) -> bool:
        """Apply the pass in place; return True when the graph changed."""


def default_pipeline() -> List[DeepCPass]:
    """The DeepC graph-optimization pipeline, in application order."""
    from repro.compilers.deepc.passes import fold, fusion, layout, simplify

    return [
        simplify.SimplifyExpressions(),
        simplify.FoldConstants(),
        fold.FoldTransposeIntoReshape(),
        layout.AlterConvLayout(),
        fusion.FuseOps(),
        fold.EliminateCommonSubexpr(),
        fold.RemoveDeadNodes(),
    ]


def run_pipeline(graph: DGraph, ctx: DeepCPassContext) -> List[str]:
    """Run every applicable pass once, returning the applied pass names."""
    applied: List[str] = []
    for graph_pass in default_pipeline():
        if ctx.opt_level < graph_pass.min_opt_level:
            continue
        changed = graph_pass.run(graph, ctx)
        applied.append(graph_pass.name)
        if changed:
            ctx.modified_by.append(graph_pass.name)
    return applied
