"""Graph-level pass framework and default pipeline of the DeepC compiler.

Unlike GraphRT's pattern-specific rewrites, DeepC's graph passes are mostly
*general*: fusion is driven by operator properties (injective / reduction /
complex) rather than concrete operator kinds, mirroring the design difference
between TVM and ONNXRuntime the paper uses to explain their differing
coverage sensitivity (§5.2).

The pass machinery lives in the shared :mod:`repro.compilers.pipeline`
layer; this package contributes the ``"deepc-graph"`` stage's passes.
"""

from __future__ import annotations

import abc
from typing import List

from repro.compilers.deepc.ir import DGraph
from repro.compilers.pipeline import (PipelineContext, PipelinePass,
                                      run_pass_pipeline)

#: Historical name: state shared by the graph passes of one compilation.
DeepCPassContext = PipelineContext


class DeepCPass(PipelinePass):
    """One DeepC graph-level transformation."""

    @abc.abstractmethod
    def run(self, graph: DGraph, ctx: DeepCPassContext) -> bool:
        """Apply the pass in place; return True when the graph changed."""


def default_pipeline() -> List[DeepCPass]:
    """The DeepC graph-optimization pipeline, in application order."""
    from repro.compilers.deepc.passes import fold, fusion, layout, simplify

    return [
        simplify.SimplifyExpressions(),
        simplify.FoldConstants(),
        fold.FoldTransposeIntoReshape(),
        layout.AlterConvLayout(),
        fusion.FuseOps(),
        fold.EliminateCommonSubexpr(),
        fold.RemoveDeadNodes(),
    ]


def run_pipeline(graph: DGraph, ctx: DeepCPassContext) -> List[str]:
    """Run the canonical graph pipeline of ``ctx.opt_level`` once."""
    return run_pass_pipeline("deepc-graph", graph, ctx)
