"""Inner-loop vectorization.

Elementwise loop bodies are processed in blocks of four elements.  The
correct transformation also emits a scalar tail loop for the remaining
``extent % 4`` elements; the seeded bug omits the tail loop, leaving those
elements unwritten (a semantic bug observable by differential testing).
"""

from __future__ import annotations

from repro.compilers.deepc.lowir import LowModule
from repro.compilers.deepc.lowpasses import LowPass, LowPassContext
from repro.ops.registry import OpCategory, is_registered, op_info

_VECTOR_WIDTH = 4

_VECTORIZABLE = {OpCategory.elemwise, OpCategory.broadcast}


class VectorizeInnerLoop(LowPass):
    """Mark elementwise instructions for 4-wide vector execution."""

    min_opt_level = 2

    def run(self, module: LowModule, ctx: LowPassContext) -> bool:
        changed = False
        for kernel in module.kernels:
            for instr in kernel.instrs:
                if not is_registered(instr.op):
                    continue
                if op_info(instr.op).category not in _VECTORIZABLE:
                    continue
                if instr.loop_extent < _VECTOR_WIDTH:
                    continue
                if instr.vector_width == _VECTOR_WIDTH:
                    continue
                instr.vector_width = _VECTOR_WIDTH
                remainder = instr.loop_extent % _VECTOR_WIDTH
                if remainder and ctx.bugs.enabled("deepc-lowlevel-vectorize-remainder"):
                    # BUG: the scalar tail loop is never emitted.
                    instr.drop_remainder = True
                    ctx.record_bug("deepc-lowlevel-vectorize-remainder")
                changed = True
        return changed
