"""Loop-structure passes: extent simplification and elementwise loop fusion."""

from __future__ import annotations

from repro.compilers.deepc.lowir import LowModule
from repro.compilers.deepc.lowpasses import LowPass, LowPassContext
from repro.errors import TransformationError
from repro.ops.registry import OpCategory, is_registered, op_info

#: Operators whose lowered loop body is a pure elementwise statement.
_ELEMENTWISE_LIKE = {OpCategory.elemwise, OpCategory.broadcast}


def _instr_category(op: str):
    if is_registered(op):
        return op_info(op).category
    return OpCategory.control


class SimplifyLoopExtents(LowPass):
    """Recompute loop extents from buffer shapes and drop stale metadata."""

    def run(self, module: LowModule, ctx: LowPassContext) -> bool:
        changed = False
        for kernel in module.kernels:
            for instr in kernel.instrs:
                extent = kernel.buffer(instr.outputs[0]).numel
                if instr.loop_extent != extent:
                    instr.loop_extent = extent
                    changed = True
                if instr.vector_width is not None and extent < instr.vector_width:
                    instr.vector_width = None
                    changed = True
        return changed


class FuseElementwiseLoops(LowPass):
    """Assign adjacent elementwise instructions to a shared loop nest.

    The fused loop nest is recorded via ``loop_id`` — the code generator
    treats instructions with the same id as a single kernel-internal loop.
    Seeded bug: an instruction whose output keeps a unit-extent reduced
    dimension (``keepdims=True``) makes the fusion emit an inconsistent loop
    nest, aborting compilation.
    """

    def run(self, module: LowModule, ctx: LowPassContext) -> bool:
        changed = False
        next_loop_id = 0
        for kernel in module.kernels:
            has_keepdims_reduce = any(
                instr.op.startswith("Reduce") and bool(instr.attrs.get("keepdims", False))
                for instr in kernel.instrs)
            if has_keepdims_reduce and len(kernel.instrs) > 1 and \
                    ctx.bugs.enabled("deepc-lowlevel-unitloop-fusion"):
                # BUG: a fused kernel mixing a keepdims reduction with other
                # loop nests produces an inconsistent unit-extent loop.
                ctx.record_bug("deepc-lowlevel-unitloop-fusion")
                raise TransformationError(
                    "[deepc-lowlevel-unitloop-fusion] loop fusion produced "
                    "a mismatched unit-extent loop nest")
            previous = None
            for instr in kernel.instrs:
                category = _instr_category(instr.op)
                if category in _ELEMENTWISE_LIKE and previous is not None and \
                        _instr_category(previous.op) in _ELEMENTWISE_LIKE and \
                        previous.loop_extent == instr.loop_extent:
                    if previous.loop_id is None:
                        previous.loop_id = next_loop_id
                        next_loop_id += 1
                    instr.loop_id = previous.loop_id
                    changed = True
                previous = instr
        return changed
