"""Low-level optimization passes over DeepC's lowered IR.

These are the analogue of TVM's TIR-level transformations: they run after
lowering and manipulate loop-level metadata (extents, vector widths, fused
loop nests) on :class:`~repro.compilers.deepc.lowir.LowModule`.  The Tzer
baseline fuzzer drives exactly this layer.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import List

from repro.compilers.bugs import BugConfig
from repro.compilers.deepc.lowir import LowModule


@dataclass
class LowPassContext:
    """State shared by low-level passes of one compilation."""

    bugs: BugConfig = field(default_factory=BugConfig.none)
    opt_level: int = 2
    triggered_bugs: List[str] = field(default_factory=list)
    modified_by: List[str] = field(default_factory=list)

    def record_bug(self, bug_id: str) -> None:
        if bug_id not in self.triggered_bugs:
            self.triggered_bugs.append(bug_id)


class LowPass(abc.ABC):
    """One low-level transformation."""

    min_opt_level: int = 1

    @property
    def name(self) -> str:
        return type(self).__name__

    @abc.abstractmethod
    def run(self, module: LowModule, ctx: LowPassContext) -> bool:
        """Apply the pass in place; return True when the module changed."""


def default_low_pipeline() -> List[LowPass]:
    from repro.compilers.deepc.lowpasses import loops, memory, vectorize

    return [
        loops.SimplifyLoopExtents(),
        loops.FuseElementwiseLoops(),
        vectorize.VectorizeInnerLoop(),
        memory.DeadStoreElimination(),
        memory.PlanBufferReuse(),
    ]


def run_low_pipeline(module: LowModule, ctx: LowPassContext) -> List[str]:
    """Run every applicable low-level pass once."""
    applied: List[str] = []
    for low_pass in default_low_pipeline():
        if ctx.opt_level < low_pass.min_opt_level:
            continue
        changed = low_pass.run(module, ctx)
        applied.append(low_pass.name)
        if changed:
            ctx.modified_by.append(low_pass.name)
    return applied
