"""Low-level optimization passes over DeepC's lowered IR.

These are the analogue of TVM's TIR-level transformations: they run after
lowering and manipulate loop-level metadata (extents, vector widths, fused
loop nests) on :class:`~repro.compilers.deepc.lowir.LowModule`.  The Tzer
baseline fuzzer drives exactly this layer.

The pass machinery lives in the shared :mod:`repro.compilers.pipeline`
layer; this package contributes the ``"deepc-low"`` stage's passes.
"""

from __future__ import annotations

import abc
from typing import List

from repro.compilers.deepc.lowir import LowModule
from repro.compilers.pipeline import (PipelineContext, PipelinePass,
                                      run_pass_pipeline)

#: Historical name: state shared by low-level passes of one compilation.
LowPassContext = PipelineContext


class LowPass(PipelinePass):
    """One low-level transformation."""

    @abc.abstractmethod
    def run(self, module: LowModule, ctx: LowPassContext) -> bool:
        """Apply the pass in place; return True when the module changed."""


def default_low_pipeline() -> List[LowPass]:
    from repro.compilers.deepc.lowpasses import loops, memory, vectorize

    return [
        loops.SimplifyLoopExtents(),
        loops.FuseElementwiseLoops(),
        vectorize.VectorizeInnerLoop(),
        memory.DeadStoreElimination(),
        memory.PlanBufferReuse(),
    ]


def run_low_pipeline(module: LowModule, ctx: LowPassContext) -> List[str]:
    """Run the canonical low-level pipeline of ``ctx.opt_level`` once."""
    return run_pass_pipeline("deepc-low", module, ctx)
