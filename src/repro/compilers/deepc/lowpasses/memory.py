"""Memory-oriented low-level passes: dead stores and buffer reuse planning."""

from __future__ import annotations

from typing import Dict, List, Set

from repro.compilers.deepc.lowir import LowModule
from repro.compilers.deepc.lowpasses import LowPass, LowPassContext


class DeadStoreElimination(LowPass):
    """Remove instructions whose results are never read."""

    def run(self, module: LowModule, ctx: LowPassContext) -> bool:
        changed = False
        for kernel in module.kernels:
            live: Set[str] = set(kernel.outputs)
            keep = []
            for instr in reversed(kernel.instrs):
                if any(output in live for output in instr.outputs):
                    keep.append(instr)
                    live.update(instr.inputs)
                else:
                    changed = True
            keep.reverse()
            kernel.instrs = keep
        return changed


class PlanBufferReuse(LowPass):
    """Annotate intermediate buffers that can share storage.

    A purely analytical pass (it records a reuse plan in the kernel buffers'
    ``kind`` untouched and stores the plan on the module via instruction
    metadata); it exists because real compilers spend substantial pass code
    on memory planning and it widens the covered surface for the coverage
    experiments without changing semantics.
    """

    min_opt_level = 2

    def run(self, module: LowModule, ctx: LowPassContext) -> bool:
        changed = False
        for kernel in module.kernels:
            last_use: Dict[str, int] = {}
            for index, instr in enumerate(kernel.instrs):
                for name in instr.inputs:
                    last_use[name] = index
            free_pool: List[str] = []
            reuse_plan: Dict[str, str] = {}
            for index, instr in enumerate(kernel.instrs):
                for output in instr.outputs:
                    buffer = kernel.buffers.get(output)
                    if buffer is None or buffer.kind != "intermediate":
                        continue
                    for candidate in list(free_pool):
                        if kernel.buffers[candidate].ttype == buffer.ttype:
                            reuse_plan[output] = candidate
                            free_pool.remove(candidate)
                            break
                for name in instr.inputs:
                    buffer = kernel.buffers.get(name)
                    if buffer is None or buffer.kind != "intermediate":
                        continue
                    if last_use.get(name) == index:
                        free_pool.append(name)
            if reuse_plan:
                changed = True
                for instr in kernel.instrs:
                    reused = {out: reuse_plan[out] for out in instr.outputs
                              if out in reuse_plan}
                    if reused:
                        instr.attrs.setdefault("_buffer_reuse", reused)
        return changed
