"""DeepC: the TVM analogue (graph IR, layout transform, lowering, codegen)."""

from repro.compilers.deepc.compiler import DeepCCompiler, DeepCExecutable

__all__ = ["DeepCCompiler", "DeepCExecutable"]
