"""DeepC's graph-level intermediate representation.

DeepC (the TVM analogue) does not operate on the interchange
:class:`~repro.graph.model.Model` directly: its front end *converts* the
model into this internal graph IR, mirroring how TVM imports ONNX into Relay.
The IR reuses the interchange :class:`~repro.graph.tensor_type.TensorType`
and :class:`~repro.graph.node.Node` containers but adds the annotations the
DeepC pass pipeline needs:

* an operator *pattern kind* (elementwise / broadcast / injective / reduction
  / complex), which drives the property-based fusion pass;
* a *layout* tag per value (``"NCHW"`` vs ``"NCHW4c"``) maintained by the
  layout-transform pass;
* *fusion groups* assigned by the fusion pass and consumed by lowering.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.graph.model import Model
from repro.graph.node import Node
from repro.ops.registry import OpCategory, is_registered, op_info

#: Internal DeepC operators introduced by its own passes (not part of the
#: interchange operator set).
INTERNAL_OPS = {
    "LayoutPack4c": OpCategory.injective,
    "LayoutUnpack4c": OpCategory.injective,
    "Conv2dNCHW4c": OpCategory.complex_,
}


class DGraph(Model):
    """DeepC's typed dataflow graph.

    Inherits the structural machinery of :class:`Model` (values, nodes,
    topological order, mutation helpers) and adds DeepC-specific analysis
    state.  Subclassing is an implementation convenience; conceptually this
    is a different IR, which is why models must go through
    :mod:`repro.compilers.deepc.converter` rather than being used directly.
    """

    def __init__(self, name: str = "dgraph") -> None:
        super().__init__(name)
        #: Per-value layout tag; values without an entry are in natural layout.
        self.layouts: Dict[str, str] = {}
        #: Fusion groups: list of lists of node names (set by the fusion pass).
        self.fusion_groups: List[List[str]] = []
        #: Free-form per-node annotations (pattern kind, lowering hints).
        self.annotations: Dict[str, Dict[str, object]] = {}

    # ------------------------------------------------------------------ #
    def pattern_kind(self, node: Node) -> OpCategory:
        """The fusion property of a node's operator."""
        note = self.annotations.get(node.name, {})
        if "pattern" in note:
            return note["pattern"]
        if node.op in INTERNAL_OPS:
            return INTERNAL_OPS[node.op]
        if is_registered(node.op):
            return op_info(node.op).category
        return OpCategory.control

    def annotate(self, node: Node, **entries: object) -> None:
        self.annotations.setdefault(node.name, {}).update(entries)

    def annotation(self, node: Node, key: str, default=None):
        return self.annotations.get(node.name, {}).get(key, default)

    def layout_of(self, value: str) -> str:
        return self.layouts.get(value, "NCHW")

    def group_of(self, node_name: str) -> Optional[int]:
        """Index of the fusion group containing a node (None before fusion)."""
        for index, group in enumerate(self.fusion_groups):
            if node_name in group:
                return index
        return None

    def clone(self) -> "DGraph":
        copy = DGraph(self.name)
        copy.nodes = [node.clone() for node in self.nodes]
        copy.value_types = dict(self.value_types)
        copy.inputs = list(self.inputs)
        copy.outputs = list(self.outputs)
        copy.initializers = {k: v.copy() for k, v in self.initializers.items()}
        copy.layouts = dict(self.layouts)
        copy.fusion_groups = [list(group) for group in self.fusion_groups]
        copy.annotations = {k: dict(v) for k, v in self.annotations.items()}
        return copy

    def remove_node(self, node: Node) -> None:
        super().remove_node(node)
        self.annotations.pop(node.name, None)
        # Drop layout annotations of values whose type entry just vanished —
        # a stale layouts key would point at a value the graph no longer
        # declares (the pass-boundary verifier checks exactly this).
        for value in list(self.layouts):
            if value not in self.value_types:
                del self.layouts[value]
        for group in self.fusion_groups:
            if node.name in group:
                group.remove(node.name)
        self.fusion_groups = [group for group in self.fusion_groups if group]
