"""Common interfaces for the compilers under test.

Every compiler in :mod:`repro.compilers` follows the same two-phase shape the
paper describes (§2.2):

1. **conversion** — the serialized model is imported into the compiler's own
   intermediate representation;
2. **transformation** — optimization passes rewrite the IR, after which the
   model is "code generated" into an executable.

``compile_model`` covers both phases and returns a :class:`CompiledModel`
whose ``run`` method executes the optimized program.  Compilers accept an
optimization level so the differential-testing harness can re-compile at
"O0" to localize faults, exactly as §4 describes.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import (TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence,
                    Tuple, Type)

import numpy as np

from repro.compilers.bugs import BugConfig
from repro.graph.model import Model

if TYPE_CHECKING:
    from repro.compilers.pipeline import PipelineSpec


@dataclass
class CompileOptions:
    """Options shared by every compiler."""

    opt_level: int = 2          # 0 disables every optimization pass
    bugs: BugConfig = field(default_factory=BugConfig.all)
    #: Explicit pass sequence overriding the canonical pipeline of
    #: ``opt_level`` (see :mod:`repro.compilers.pipeline`).  ``None`` means
    #: "the canonical spec of opt_level" — the historical behavior.
    pipeline: Optional["PipelineSpec"] = None
    #: Check IR well-formedness at every pass boundary (``--verify-passes``);
    #: violations raise :class:`repro.errors.IRVerificationError` out of
    #: ``compile_model``.
    verify_passes: bool = False


class CompiledModel(abc.ABC):
    """An executable produced by a compiler."""

    def __init__(self, model: Model, applied_passes: Sequence[str],
                 modified_by: Sequence[str] = ()) -> None:
        self.model = model
        self.applied_passes = list(applied_passes)
        #: Pass provenance: which of the applied passes actually rewrote the
        #: IR.  Threaded into verdicts and bug reports by the oracles.
        self.modified_by = list(modified_by)

    @abc.abstractmethod
    def run(self, inputs: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Execute the compiled model on concrete inputs.

        Returns a mapping from graph-output name to array.  Raises
        :class:`repro.errors.ExecutionError` on runtime failures.
        """


class Compiler(abc.ABC):
    """Base class for every system under test."""

    #: Short identifier used in bug reports and experiment tables.
    name: str = "compiler"
    #: Whether source coverage of this compiler can be measured (TensorRT's
    #: stand-in is treated as closed source, like in the paper).
    open_source: bool = True

    def __init__(self, options: Optional[CompileOptions] = None) -> None:
        self.options = options or CompileOptions()

    @abc.abstractmethod
    def compile_model(self, model: Model) -> CompiledModel:
        """Convert, optimize and code-generate ``model``.

        Raises:
            ConversionError: for failures while importing the model.
            TransformationError: for failures inside optimization passes.
        """

    def supported_ops(self, candidate_ops: Sequence[str]) -> List[str]:
        """Which of ``candidate_ops`` this compiler can compile.

        NNSmith probes compilers with single-operator models to learn their
        support matrix and avoid "Not-Implemented" errors (§4).  The default
        implementation reports everything as supported; compilers override
        this with their real kernel tables.
        """
        return list(candidate_ops)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(opt_level={self.options.opt_level})"


# --------------------------------------------------------------------------- #
# Named factory registry
# --------------------------------------------------------------------------- #
# The matrix campaign engine schedules work units over *compiler subsets*
# identified by name.  Names (unlike compiler instances or factory callables)
# are trivially picklable and diffable, so they travel through worker
# processes and checkpoint fingerprints unchanged.
_COMPILER_REGISTRY: Dict[str, Type["Compiler"]] = {}


def register_compiler(cls: Type["Compiler"]) -> Type["Compiler"]:
    """Class decorator adding a compiler to the named factory registry.

    Idempotent for re-registration of the same class; a different class under
    an already-taken name is a configuration error.
    """
    name = cls.name
    existing = _COMPILER_REGISTRY.get(name)
    if existing is not None and existing is not cls:
        raise ValueError(f"compiler name {name!r} already registered "
                         f"by {existing.__name__}")
    _COMPILER_REGISTRY[name] = cls
    return cls


def _ensure_builtin_compilers() -> None:
    """Import the in-repo compiler packages so they self-register."""
    import repro.compilers  # noqa: F401  (side effect: registration)


def registered_compilers() -> Tuple[str, ...]:
    """Names of every registered compiler, in deterministic order."""
    _ensure_builtin_compilers()
    return tuple(sorted(_COMPILER_REGISTRY))


def create_compiler(name: str, options: Optional[CompileOptions] = None) -> "Compiler":
    """Instantiate a registered compiler by its short name."""
    _ensure_builtin_compilers()
    try:
        cls = _COMPILER_REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown compiler {name!r}; available: "
                       f"{sorted(_COMPILER_REGISTRY)}") from None
    return cls(options)


def build_compiler_set(names: Sequence[str], opt_level: int = 2,
                       bugs: Optional[BugConfig] = None,
                       pipeline: Optional["PipelineSpec"] = None,
                       verify_passes: bool = False) -> List["Compiler"]:
    """Instantiate one compiler per name, all at the same optimization level.

    This is the per-cell factory of the matrix campaign engine: a
    ``(shard, compiler_subset, opt_level)`` cell materializes its systems
    under test through this function inside the worker process.  An explicit
    ``pipeline`` spec (the pipeline matrix axis) overrides the canonical
    pass sequence of ``opt_level`` for every backend that has pipeline
    stages; backends without any (e.g. Turbo) ignore it.
    """
    bugs = bugs if bugs is not None else BugConfig.all()
    return [create_compiler(name, CompileOptions(opt_level=opt_level,
                                                 bugs=bugs,
                                                 pipeline=pipeline,
                                                 verify_passes=verify_passes))
            for name in names]
