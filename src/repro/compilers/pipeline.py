"""Unified pass-pipeline layer shared by every compiler backend.

Historically GraphRT's graph passes, DeepC's graph passes and DeepC's
low-level passes were three structurally identical but independent
frameworks (base class + context dataclass + hard-coded ``default_pipeline``
with per-pass ``min_opt_level`` gating).  This module hoists the shared
machinery into one place:

* :class:`PipelinePass` / :class:`PipelineContext` — the common pass
  interface and per-compilation state (bug recording, ``modified_by``
  provenance);
* a **registry of passes per stage** (``graphrt``, ``deepc-graph``,
  ``deepc-low``) that user code can extend with :func:`register_pass`;
* :class:`PipelineSpec` — a named, serializable pass sequence per stage.
  Optimization levels are no longer scattered ``min_opt_level`` checks
  inside three pipeline runners; they are three *canonical specs*
  (:func:`canonical_spec`) computed by spec-level filtering in exactly one
  place;
* :func:`run_pass_pipeline` — the single pipeline runner all backends use;
* the **pipeline matrix axis** vocabulary: pipeline *tokens* are short
  strings that travel through worker processes and checkpoint fingerprints
  (like compiler names do).  ``"O0"``/``"O1"``/``"O2"`` name the canonical
  specs; ``"rand:<seed>:<index>"`` names a deterministically sampled
  ordering/subset (:func:`sample_spec`); the CLI-facing sampler syntax
  ``"random:<k>@<seed>"`` expands into ``k`` self-contained ``rand:`` tokens
  via :func:`expand_pipeline_tokens` (mixing in the campaign seed, so the
  draw is a pure function of ``(config, cell)``).
"""

from __future__ import annotations

import abc
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Type

import numpy as np

from repro.compilers.bugs import BugConfig

#: The pipeline stages of the in-repo backends.  GraphRT has a single
#: graph-rewrite stage; DeepC optimizes its graph IR, lowers, then optimizes
#: the loop-level IR.
STAGES: Tuple[str, ...] = ("graphrt", "deepc-graph", "deepc-low")

#: Probability that :func:`sample_spec` keeps any given registered pass.
#: High enough that sampled pipelines stay "mostly real" optimization
#: sequences, low enough that subsets vary.
SAMPLE_KEEP_PROBABILITY = 0.75


@dataclass
class PipelineContext:
    """State shared by the passes of one compilation (any stage)."""

    bugs: BugConfig = field(default_factory=BugConfig.none)
    opt_level: int = 2
    #: Seeded bugs whose buggy path actually executed during this compilation.
    triggered_bugs: List[str] = field(default_factory=list)
    #: Names of passes that modified the IR, in application order.
    modified_by: List[str] = field(default_factory=list)
    #: When True, :func:`run_pass_pipeline` checks IR well-formedness at
    #: every pass boundary (``--verify-passes``) and raises
    #: :class:`repro.errors.IRVerificationError` on the first violation.
    verify: bool = False

    def record_bug(self, bug_id: str) -> None:
        if bug_id not in self.triggered_bugs:
            self.triggered_bugs.append(bug_id)


class PipelinePass(abc.ABC):
    """One IR-rewriting pass (graph- or loop-level).

    Passes mutate the IR in place and return True when they changed it.
    """

    #: Minimum optimization level at which this pass appears in the
    #: *canonical* specs.  Sampled pipelines ignore this — the whole point of
    #: the pipeline axis is to run passes outside their hand-blessed context.
    min_opt_level: int = 1

    @property
    def name(self) -> str:
        return type(self).__name__

    @abc.abstractmethod
    def run(self, ir, ctx: PipelineContext) -> bool:
        """Apply the pass; return True if the IR was modified."""


# --------------------------------------------------------------------------- #
# Per-stage pass registry
# --------------------------------------------------------------------------- #
#: stage -> pass name -> class, in registration order (canonical passes are
#: registered first, in canonical application order).
_REGISTRY: Dict[str, Dict[str, Type[PipelinePass]]] = {s: {} for s in STAGES}
#: stage -> canonical application order (the backend's hand-tuned pipeline).
_CANONICAL: Dict[str, List[str]] = {s: [] for s in STAGES}
_BUILTINS_LOADED = False


def register_pass(stage: str, cls: Type[PipelinePass], *,
                  canonical: bool = False) -> Type[PipelinePass]:
    """Add a pass class to a stage's registry.

    Idempotent for the same class; a different class under a taken name is a
    configuration error.  ``canonical=True`` additionally appends the pass to
    the stage's canonical application order (builtin pipelines only — user
    passes join the samplable pool but not the canonical specs).
    """
    if stage not in _REGISTRY:
        raise KeyError(f"unknown pipeline stage {stage!r}; "
                       f"available: {list(STAGES)}")
    name = cls.__name__
    existing = _REGISTRY[stage].get(name)
    if existing is not None and existing is not cls:
        raise ValueError(f"pass name {name!r} already registered in stage "
                         f"{stage!r} by {existing.__module__}")
    _REGISTRY[stage][name] = cls
    if canonical and name not in _CANONICAL[stage]:
        _CANONICAL[stage].append(name)
    return cls


def _ensure_builtin_passes() -> None:
    """Import the backend pass packages so their pipelines self-register."""
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    _BUILTINS_LOADED = True
    from repro.compilers.deepc import lowpasses as deepc_lowpasses
    from repro.compilers.deepc import passes as deepc_passes
    from repro.compilers.graphrt import passes as graphrt_passes

    for stage, pipeline in (
            ("graphrt", graphrt_passes.default_pipeline()),
            ("deepc-graph", deepc_passes.default_pipeline()),
            ("deepc-low", deepc_lowpasses.default_low_pipeline())):
        for instance in pipeline:
            register_pass(stage, type(instance), canonical=True)


def registered_passes(stage: str) -> Tuple[str, ...]:
    """Every registered pass name of a stage (canonical ones first)."""
    _ensure_builtin_passes()
    if stage not in _REGISTRY:
        raise KeyError(f"unknown pipeline stage {stage!r}; "
                       f"available: {list(STAGES)}")
    return tuple(_REGISTRY[stage])


def canonical_order(stage: str) -> Tuple[str, ...]:
    """The backend's hand-tuned application order for a stage."""
    _ensure_builtin_passes()
    return tuple(_CANONICAL[stage])


def create_pass(stage: str, name: str) -> PipelinePass:
    """Instantiate a registered pass by name."""
    _ensure_builtin_passes()
    try:
        cls = _REGISTRY[stage][name]
    except KeyError:
        raise KeyError(f"unknown pass {name!r} in stage {stage!r}; "
                       f"available: {list(_REGISTRY.get(stage, ()))}") \
            from None
    return cls()


# --------------------------------------------------------------------------- #
# PipelineSpec: a named, serializable pass sequence
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class PipelineSpec:
    """A named pass sequence: for each stage, the pass names to run in order.

    Specs are plain data (picklable, JSON-serializable) so they can travel to
    worker processes, into checkpoints and into corpus entries.  Stages
    absent from ``stages`` run no passes.
    """

    name: str
    stages: Tuple[Tuple[str, Tuple[str, ...]], ...]

    def passes(self, stage: str) -> Tuple[str, ...]:
        for entry_stage, names in self.stages:
            if entry_stage == stage:
                return names
        return ()

    def to_dict(self) -> Dict:
        return {"name": self.name,
                "stages": {stage: list(names) for stage, names in self.stages}}

    @classmethod
    def from_dict(cls, payload: Dict) -> "PipelineSpec":
        return cls(name=payload["name"],
                   stages=tuple((stage, tuple(names)) for stage, names
                                in payload["stages"].items()))

    @classmethod
    def from_stage_map(cls, name: str,
                       stages: Dict[str, Sequence[str]]) -> "PipelineSpec":
        return cls(name=name, stages=tuple(
            (stage, tuple(names)) for stage, names in stages.items()))

    def validate(self) -> "PipelineSpec":
        """Check every referenced pass exists; returns self for chaining."""
        for stage, names in self.stages:
            if stage not in STAGES:
                raise KeyError(f"pipeline {self.name!r}: unknown stage "
                               f"{stage!r}; available: {list(STAGES)}")
            for name in names:
                create_pass(stage, name)
        return self


def canonical_spec(opt_level: int) -> PipelineSpec:
    """The canonical pipeline of an optimization level.

    This is the *single* place optimization levels are interpreted: O0 runs
    nothing, higher levels run every canonical pass whose ``min_opt_level``
    the level reaches.  (The per-pass ``min_opt_level`` gating that each of
    the three old pipeline runners duplicated lives here now.)
    """
    _ensure_builtin_passes()
    if opt_level <= 0:
        return PipelineSpec(name="O0", stages=tuple(
            (stage, ()) for stage in STAGES))
    stages = []
    for stage in STAGES:
        names = tuple(name for name in _CANONICAL[stage]
                      if _REGISTRY[stage][name].min_opt_level <= opt_level)
        stages.append((stage, names))
    return PipelineSpec(name=f"O{opt_level}", stages=tuple(stages))


def run_pass_pipeline(stage: str, ir, ctx: PipelineContext,
                      names: Optional[Sequence[str]] = None) -> List[str]:
    """Run a pass sequence over an IR; returns the names of the passes run.

    With ``names=None`` the canonical spec of ``ctx.opt_level`` is used —
    this is the back-compat path of the three historical ``run_pipeline``
    entry points.  There is deliberately no per-pass opt-level gating here:
    the sequence *is* the policy.
    """
    if names is None:
        names = canonical_spec(ctx.opt_level).passes(stage)
    if ctx.verify:
        # Imported lazily: repro.analysis.verify imports this module for the
        # stage vocabulary.
        from repro.analysis.verify import check_pass_boundary
        check_pass_boundary(stage, ir, after=None)
    applied: List[str] = []
    for name in names:
        pipeline_pass = create_pass(stage, name)
        changed = pipeline_pass.run(ir, ctx)
        applied.append(pipeline_pass.name)
        if changed:
            ctx.modified_by.append(pipeline_pass.name)
        if ctx.verify:
            check_pass_boundary(stage, ir, after=pipeline_pass.name)
    return applied


# --------------------------------------------------------------------------- #
# Pipeline tokens: the matrix-axis vocabulary
# --------------------------------------------------------------------------- #
_OPT_TOKEN = re.compile(r"O(\d+)")
_RAND_TOKEN = re.compile(r"rand:(\d+):(\d+)")
_SAMPLER_TOKEN = re.compile(r"random:(\d+)@(\d+)")


def sample_spec(seed: int, index: int) -> PipelineSpec:
    """Deterministically draw one valid pipeline (subset + ordering).

    Pure function of ``(seed, index)``: every stage independently keeps each
    registered pass with probability :data:`SAMPLE_KEEP_PROBABILITY` (at
    least one survives) and permutes the survivors.  User-registered passes
    participate in the draw alongside the builtin ones.
    """
    _ensure_builtin_passes()
    rng = np.random.default_rng(
        np.random.SeedSequence(entropy=(int(seed), int(index))))
    stages = []
    for stage in STAGES:
        pool = list(_REGISTRY[stage])
        keep = [name for name in pool
                if rng.random() < SAMPLE_KEEP_PROBABILITY]
        if not keep:
            keep = [pool[int(rng.integers(len(pool)))]]
        order = rng.permutation(len(keep))
        stages.append((stage, tuple(keep[i] for i in order)))
    return PipelineSpec(name=f"rand:{seed}:{index}", stages=tuple(stages))


def resolve_pipeline(token: str) -> PipelineSpec:
    """Turn a self-contained pipeline token into its spec.

    Accepts ``"O<k>"`` (canonical spec of that opt level) and
    ``"rand:<seed>:<index>"`` (deterministic sample).  The sampler syntax
    ``"random:<k>@<seed>"`` is *not* self-contained (it needs the campaign
    seed) — run it through :func:`expand_pipeline_tokens` first.
    """
    match = _OPT_TOKEN.fullmatch(token)
    if match:
        return canonical_spec(int(match.group(1)))
    match = _RAND_TOKEN.fullmatch(token)
    if match:
        return sample_spec(int(match.group(1)), int(match.group(2)))
    if _SAMPLER_TOKEN.fullmatch(token):
        raise KeyError(
            f"pipeline token {token!r} is a sampler, not a pipeline; expand "
            f"it with expand_pipeline_tokens(tokens, campaign_seed) first")
    raise KeyError(f"unknown pipeline token {token!r}; expected 'O<k>', "
                   f"'rand:<seed>:<index>' or 'random:<k>@<seed>'")


def expand_pipeline_tokens(tokens: Sequence[str],
                           campaign_seed: int) -> List[str]:
    """Expand sampler tokens into self-contained ones; validate the rest.

    ``"random:<k>@<seed>"`` becomes ``k`` tokens ``"rand:<mixed>:<i>"``
    where ``mixed`` derives from ``(campaign_seed, <seed>)`` — the
    expansion happens coordinator-side because the parallel engine replaces
    each shard's seed, so worker-side tokens must be self-contained.
    Duplicates are dropped (first occurrence wins), matching the other
    matrix axes.
    """
    expanded: List[str] = []
    for token in tokens:
        match = _SAMPLER_TOKEN.fullmatch(token)
        if match:
            count, sampler_seed = int(match.group(1)), int(match.group(2))
            if count <= 0:
                raise ValueError(f"pipeline sampler {token!r} must draw at "
                                 f"least one pipeline")
            mixed = int(np.random.SeedSequence(
                entropy=(int(campaign_seed), sampler_seed)
            ).generate_state(1, np.uint64)[0])
            expanded.extend(f"rand:{mixed}:{index}"
                            for index in range(count))
        else:
            resolve_pipeline(token)  # raises on unknown syntax
            expanded.append(token)
    deduped: List[str] = []
    for token in expanded:
        if token not in deduped:
            deduped.append(token)
    return deduped


def describe_pass_registry() -> str:
    """Human-readable dump of both backends' pass registries (CLI
    ``--list-passes``)."""
    _ensure_builtin_passes()
    lines: List[str] = []
    for stage in STAGES:
        canonical = canonical_order(stage)
        names = registered_passes(stage)
        lines.append(f"{stage}: {len(names)} passes "
                     f"({len(canonical)} canonical)")
        for name in canonical:
            cls = _REGISTRY[stage][name]
            suffix = (f"  [O{cls.min_opt_level}+]"
                      if cls.min_opt_level > 1 else "")
            lines.append(f"  {name}{suffix}")
        for name in names:
            if name not in canonical:
                lines.append(f"  {name}  [user-registered]")
    return "\n".join(lines)
