"""Seeded-bug registry for the compilers under test.

The original paper evaluates NNSmith by the real-world bugs it finds in TVM,
ONNXRuntime, TensorRT and the PyTorch exporter (Table 3, §5.4).  Since this
reproduction builds its own compilers, the ground-truth bug population is
*seeded*: each optimization pass / importer contains deliberately buggy code
paths, guarded by this registry, whose trigger conditions mirror the bug
patterns reported in the paper (wrong expression simplification, layout
analysis over non-shape-preserving operators, int32/int64 mismatches, scalar
handling, broadcasting, dtype mishandling, ...).

Every bug carries the *generator features* required to trigger it, which the
bug-study experiment uses for the paper's reachability analysis ("49 of 72
bugs cannot be triggered by LEMON's or GraphFuzzer's designs").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

# Feature labels describing what a model generator must be able to produce.
FEATURE_MULTI_OP = "multi_op"                    # graphs with several operators
FEATURE_NON_SHAPE_PRESERVING = "non_shape_preserving"
FEATURE_BROADCAST = "broadcast"                  # mismatched-but-broadcastable shapes
FEATURE_ATTR_DIVERSITY = "attr_diversity"        # non-default attributes (stride>1, ...)
FEATURE_SCALAR = "scalar"                        # rank-0 tensors
FEATURE_INT_DTYPE = "int_dtype"                  # integer tensors
FEATURE_FLOAT64 = "float64"                      # double precision tensors
FEATURE_VECTOR_MATMUL = "vector_matmul"          # rank-1 MatMul operands
FEATURE_SHAPE_OPS = "shape_ops"                  # Reshape / BroadcastTo / Slice ...
FEATURE_MULTI_INPUT = "multi_input"              # several graph inputs


@dataclass(frozen=True)
class BugSpec:
    """A single seeded bug.

    ``symptom`` names the oracle class that can observe the bug: ``crash``
    and ``semantic`` are visible to differential testing, ``perf``
    (optimized build slower than O0) only to the performance-regression
    oracle, ``gradient`` (wrong backward pass) only to the autodiff
    gradient-check oracle, and ``verifier`` (executing-but-ill-formed IR)
    only to the pass-boundary IR verifier (``--verify-passes``).
    """

    bug_id: str
    system: str              # "graphrt" | "deepc" | "turbo" | "exporter" | "autodiff"
    phase: str               # "transformation" | "conversion" | "unclassified"
    symptom: str             # "crash" | "semantic" | "perf" | "gradient" | "verifier"
    description: str
    required_features: FrozenSet[str] = frozenset()
    fixed: bool = True       # whether the analogue real-world bug was fixed

    def __post_init__(self) -> None:
        if self.phase not in ("transformation", "conversion", "unclassified"):
            raise ValueError(f"invalid phase {self.phase!r}")
        if self.symptom not in ("crash", "semantic", "perf", "gradient",
                                "verifier"):
            raise ValueError(f"invalid symptom {self.symptom!r}")


_ALL_BUGS: Dict[str, BugSpec] = {}


def _bug(bug_id: str, system: str, phase: str, symptom: str, description: str,
         features: Iterable[str] = (), fixed: bool = True) -> BugSpec:
    spec = BugSpec(bug_id, system, phase, symptom, description,
                   frozenset(features), fixed)
    _ALL_BUGS[bug_id] = spec
    return spec


def all_bugs() -> Tuple[BugSpec, ...]:
    """Every seeded bug, in registration order."""
    return tuple(_ALL_BUGS.values())


def bug_spec(bug_id: str) -> BugSpec:
    return _ALL_BUGS[bug_id]


def bugs_of_system(system: str) -> Tuple[BugSpec, ...]:
    return tuple(spec for spec in _ALL_BUGS.values() if spec.system == system)


class BugConfig:
    """Which seeded bugs are active for a compiler instance.

    The default configuration enables every seeded bug (the fuzzing
    campaigns hunt for all of them); tests that verify a pass's *correct*
    behaviour use :meth:`none`, and targeted tests enable a single bug.
    """

    def __init__(self, enabled: Optional[Iterable[str]] = None) -> None:
        if enabled is None:
            self._enabled = frozenset(_ALL_BUGS)
        else:
            unknown = set(enabled) - set(_ALL_BUGS)
            if unknown:
                raise KeyError(f"unknown bug ids: {sorted(unknown)}")
            self._enabled = frozenset(enabled)

    @classmethod
    def all(cls) -> "BugConfig":
        return cls()

    @classmethod
    def none(cls) -> "BugConfig":
        return cls(enabled=())

    @classmethod
    def only(cls, *bug_ids: str) -> "BugConfig":
        return cls(enabled=bug_ids)

    def enabled(self, bug_id: str) -> bool:
        if bug_id not in _ALL_BUGS:
            raise KeyError(f"unknown bug id {bug_id!r}")
        return bug_id in self._enabled

    def enabled_ids(self) -> FrozenSet[str]:
        return self._enabled

    def __contains__(self, bug_id: str) -> bool:
        return self.enabled(bug_id)

    def __repr__(self) -> str:
        if len(self._enabled) == len(_ALL_BUGS):
            return "BugConfig.all()"
        return f"BugConfig({sorted(self._enabled)})"


# --------------------------------------------------------------------------- #
# GraphRT (ONNXRuntime analogue) — pattern-specific graph optimizations.
# --------------------------------------------------------------------------- #
_bug("graphrt-fuse-matmul-scale-1x1", "graphrt", "transformation", "crash",
     "FuseMatMulScale rewrites (sa*A)@(sb*B) into (sa*sb)*(A@B) but mistakes a "
     "1x1 matrix operand for a scalar, producing an illegal MatMul.",
     [FEATURE_MULTI_OP, FEATURE_NON_SHAPE_PRESERVING, FEATURE_ATTR_DIVERSITY])
_bug("graphrt-relu-clip-fusion-f64", "graphrt", "transformation", "semantic",
     "Fusing Relu into a following Clip mishandles double-precision bounds and "
     "drops the lower bound.",
     [FEATURE_MULTI_OP, FEATURE_FLOAT64])
_bug("graphrt-gemm-fusion-bias-broadcast", "graphrt", "transformation", "semantic",
     "MatMul+Add is fused into Gemm even when the addend broadcasts over rows, "
     "silently reducing it to a per-column bias.",
     [FEATURE_MULTI_OP, FEATURE_NON_SHAPE_PRESERVING, FEATURE_BROADCAST])
_bug("graphrt-transpose-elimination-perm", "graphrt", "transformation", "semantic",
     "Back-to-back Transpose nodes are removed without checking that the "
     "permutations compose to the identity.",
     [FEATURE_MULTI_OP, FEATURE_NON_SHAPE_PRESERVING, FEATURE_ATTR_DIVERSITY])
_bug("graphrt-constfold-pow-overflow", "graphrt", "unclassified", "crash",
     "Constant folding of Pow with a large constant exponent raises an "
     "internal overflow error.",
     [FEATURE_MULTI_OP, FEATURE_ATTR_DIVERSITY])
_bug("graphrt-slice-merge-negative-step", "graphrt", "transformation", "crash",
     "Merging adjacent Slice nodes asserts that every step is 1.",
     [FEATURE_MULTI_OP, FEATURE_NON_SHAPE_PRESERVING, FEATURE_ATTR_DIVERSITY])
_bug("graphrt-constfold-internal-biassoftmax", "graphrt", "transformation",
     "crash",
     "ConstantFolding assumes it runs on importer-produced graphs and "
     "crashes on the internal BiasSoftmax node that BiasSoftmaxFusion "
     "introduces.  The canonical pipeline folds constants long before the "
     "fusion pass, so the crash only surfaces under a non-canonical pass "
     "ordering that runs BiasSoftmaxFusion before ConstantFolding.",
     [FEATURE_MULTI_OP])
_bug("graphrt-biassoftmax-fusion-note", "graphrt", "transformation", "verifier",
     "BiasSoftmaxFusion leaves a provenance-note attribute on the fused "
     "node, outside the BiasSoftmax schema.  Every kernel ignores it and "
     "results stay bit-identical, so no execution-based oracle (difftest, "
     "perf, gradcheck) can observe the corruption; only the pass-boundary "
     "IR verifier's attribute-conformance invariant reports it.",
     [FEATURE_MULTI_OP])
_bug("graphrt-matmul-repack-small", "graphrt", "transformation", "perf",
     "MatMulRepackSelection rewrites MatMul/Gemm onto a 'cache-friendly' "
     "repacked kernel, but its cost model is inverted for small operands: "
     "the selected kernel recomputes the product once per output block, "
     "making the optimized build far slower than O0 while producing "
     "bit-identical results (invisible to differential testing).",
     [FEATURE_MULTI_OP, FEATURE_NON_SHAPE_PRESERVING])

# --------------------------------------------------------------------------- #
# DeepC (TVM analogue) — conversion + graph passes + low-level passes.
# --------------------------------------------------------------------------- #
_bug("deepc-layout-conv-slice-stride", "deepc", "transformation", "crash",
     "NCHW -> NCHW4c layout rewriting crashes when a Conv2d is followed by a "
     "Slice whose channel stride is greater than one.",
     [FEATURE_MULTI_OP, FEATURE_NON_SHAPE_PRESERVING, FEATURE_ATTR_DIVERSITY])
_bug("deepc-layout-broadcast-add", "deepc", "transformation", "crash",
     "Layout analysis cannot adapt a broadcasting Add whose other operand has "
     "lower rank than the convolution output (the paper's M0 example).",
     [FEATURE_MULTI_OP, FEATURE_NON_SHAPE_PRESERVING, FEATURE_BROADCAST])
_bug("deepc-simplify-divmul-int", "deepc", "transformation", "semantic",
     "Arithmetic simplification rewrites (x * c) / c to x even for integer "
     "division, changing results when intermediate products truncate.",
     [FEATURE_MULTI_OP, FEATURE_INT_DTYPE])
_bug("deepc-i64-reshape-mismatch", "deepc", "transformation", "crash",
     "Lowering assumes 32-bit shape arithmetic; Reshape targets whose element "
     "count needs 64-bit indices raise an int32/int64 mismatch.",
     [FEATURE_MULTI_OP, FEATURE_SHAPE_OPS, FEATURE_ATTR_DIVERSITY])
_bug("deepc-i64-broadcastto-mismatch", "deepc", "transformation", "crash",
     "BroadcastTo shape attributes are materialized as int32 while the fused "
     "expression expects int64, failing type checking in lowering.",
     [FEATURE_MULTI_OP, FEATURE_SHAPE_OPS, FEATURE_BROADCAST])
_bug("deepc-fusion-scalar-reduce", "deepc", "transformation", "crash",
     "Operator fusion groups a full reduction (scalar output) with injective "
     "consumers and then fails to emit the fused kernel.",
     [FEATURE_MULTI_OP, FEATURE_NON_SHAPE_PRESERVING, FEATURE_SCALAR])
_bug("deepc-fold-transpose-reshape", "deepc", "transformation", "semantic",
     "Folding a Transpose into a following Reshape ignores the permutation "
     "when it is not the identity.",
     [FEATURE_MULTI_OP, FEATURE_NON_SHAPE_PRESERVING, FEATURE_ATTR_DIVERSITY])
_bug("deepc-lowlevel-vectorize-remainder", "deepc", "transformation", "semantic",
     "The low-level vectorization pass processes the innermost dimension in "
     "blocks of four and drops the remainder elements.",
     [FEATURE_MULTI_OP, FEATURE_ATTR_DIVERSITY])
_bug("deepc-lowlevel-unitloop-fusion", "deepc", "transformation", "crash",
     "Low-level loop fusion mishandles unit-extent loops produced by "
     "keepdims reductions.",
     [FEATURE_MULTI_OP, FEATURE_NON_SHAPE_PRESERVING, FEATURE_ATTR_DIVERSITY])
_bug("deepc-constfold-pad-negative", "deepc", "transformation", "crash",
     "Constant folding of Pad rejects negative (cropping) pad widths.",
     [FEATURE_MULTI_OP, FEATURE_NON_SHAPE_PRESERVING, FEATURE_ATTR_DIVERSITY])
_bug("deepc-import-scalar-reduce", "deepc", "conversion", "crash",
     "The importer mishandles reduce operators that produce scalars "
     "(keepdims=False over all axes).",
     [FEATURE_NON_SHAPE_PRESERVING, FEATURE_SCALAR])
_bug("deepc-import-where-broadcast-rank", "deepc", "conversion", "crash",
     "Importing a three-way broadcasting Where ignores the lowest-ranked "
     "operand during shape inference and later fails.",
     [FEATURE_MULTI_OP, FEATURE_BROADCAST])
_bug("deepc-import-matmul-vector", "deepc", "conversion", "crash",
     "MatMul with a rank-1 operand (vector broadcasting) is rejected by the "
     "importer.",
     [FEATURE_NON_SHAPE_PRESERVING, FEATURE_VECTOR_MATMUL])
_bug("deepc-import-bool-cast-argmax", "deepc", "conversion", "semantic",
     "Importing ArgMax over a bool tensor silently casts through int32 and "
     "flips tie-breaking order.",
     [FEATURE_INT_DTYPE, FEATURE_NON_SHAPE_PRESERVING])

# --------------------------------------------------------------------------- #
# Turbo (TensorRT analogue) — closed-source stand-in, bug counting only.
# --------------------------------------------------------------------------- #
_bug("turbo-clip-int32-dtype", "turbo", "conversion", "semantic",
     "Accepts int32 Clip nodes the model format does not allow and interprets "
     "the bounds as unsigned.",
     [FEATURE_INT_DTYPE])
_bug("turbo-pow-kernel-large-exponent", "turbo", "transformation", "crash",
     "Kernel selection for Pow with exponent tensors of rank >= 3 fails.",
     [FEATURE_MULTI_OP, FEATURE_BROADCAST])
_bug("turbo-pool-pad-exceeds-kernel", "turbo", "unclassified", "crash",
     "Pooling with padding larger than half the kernel aborts the builder.",
     [FEATURE_ATTR_DIVERSITY, FEATURE_NON_SHAPE_PRESERVING])
_bug("turbo-softmax-axis0-fusion", "turbo", "unclassified", "semantic",
     "Softmax over axis 0 fused with a preceding Add produces unnormalized "
     "outputs.",
     [FEATURE_MULTI_OP, FEATURE_ATTR_DIVERSITY])
_bug("turbo-concat-many-inputs", "turbo", "transformation", "crash",
     "Concat with more than four inputs overflows an internal buffer "
     "descriptor.",
     [FEATURE_MULTI_OP, FEATURE_MULTI_INPUT])
_bug("turbo-batchnorm-fold-var0", "turbo", "transformation", "semantic",
     "Folding BatchNorm into a preceding Conv2d divides by the raw variance "
     "without the epsilon term.",
     [FEATURE_MULTI_OP, FEATURE_NON_SHAPE_PRESERVING])

# --------------------------------------------------------------------------- #
# Exporter (PyTorch->ONNX exporter analogue) — conversion bugs found as a
# by-product of model generation.
# --------------------------------------------------------------------------- #
_bug("exporter-log2-scalar-rank", "exporter", "conversion", "semantic",
     "Exporting Log2 with a scalar input records a rank-1 output type instead "
     "of a scalar.",
     [FEATURE_SCALAR])
_bug("exporter-clip-int32-opset", "exporter", "conversion", "crash",
     "Clip over int32 tensors is exported even though the target format "
     "version does not support it; well-formed importers reject the model.",
     [FEATURE_INT_DTYPE])
_bug("exporter-squeeze-empty-axes", "exporter", "conversion", "crash",
     "Exporting Squeeze without an explicit axes attribute emits an empty "
     "axes list, which downstream importers reject.",
     [FEATURE_NON_SHAPE_PRESERVING, FEATURE_SHAPE_OPS])
_bug("exporter-pad-reflect-rank2", "exporter", "conversion", "crash",
     "Reflect padding of rank-2 tensors is exported with transposed pad "
     "pairs.",
     [FEATURE_NON_SHAPE_PRESERVING, FEATURE_ATTR_DIVERSITY])

# --------------------------------------------------------------------------- #
# Autodiff (the repo's "autograd") — wrong-VJP bugs, visible only to the
# gradient-check oracle: forward results (and therefore differential
# testing) are unaffected, only the backward pass is wrong.
# --------------------------------------------------------------------------- #
_bug("autodiff-tanh-grad-linear", "autodiff", "unclassified", "gradient",
     "The Tanh VJP drops the square of the activation: it propagates "
     "g * (1 - y) instead of g * (1 - y^2), overestimating gradients "
     "everywhere except at y = 0.",
     [FEATURE_MULTI_OP])
_bug("autodiff-sigmoid-grad-unscaled", "autodiff", "unclassified", "gradient",
     "The Sigmoid VJP forgets the activation factor: it propagates "
     "g * (1 - y) instead of g * y * (1 - y), inflating gradients for "
     "small activations.",
     [FEATURE_MULTI_OP])

#: Systems that participate in differential testing / bug counting.
SYSTEMS = ("graphrt", "deepc", "turbo", "exporter", "autodiff")
