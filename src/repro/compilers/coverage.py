"""Branch (line-arc) coverage tracing for the compilers under test.

The paper measures C++ source branch coverage of TVM and ONNXRuntime with
Clang instrumentation.  The analogous measurement for the in-repo compilers
is Python *arc* coverage — pairs of consecutive executed line numbers inside
the compiler packages — collected with ``sys.settrace``.  An arc corresponds
to one control-flow edge, which is the closest Python equivalent of a taken
branch.

Two scopes are supported, matching the paper's "all files" and "pass-only"
views:

* **all files** — every module under ``repro.compilers.<system>``;
* **pass-only** — only modules whose path contains a ``passes`` directory
  (``graphrt/passes/...``, ``deepc/passes/...``), mirroring the paper's
  instrumentation of ``onnxruntime/core/optimizer`` and TVM's ``transforms``
  folders.
"""

from __future__ import annotations

import os
import sys
from typing import Dict, FrozenSet, Iterable, Optional, Set, Tuple

Arc = Tuple[str, int, int]

_PACKAGE_ROOT = os.path.dirname(os.path.abspath(__file__))


class CoverageTracer:
    """Collects executed line arcs inside the compiler packages."""

    def __init__(self, systems: Optional[Iterable[str]] = None) -> None:
        self.systems = tuple(systems) if systems is not None else ("graphrt", "deepc")
        self._prefixes = tuple(
            os.path.join(_PACKAGE_ROOT, system) + os.sep for system in self.systems
        )
        self.arcs: Set[Arc] = set()
        self._previous_trace = None
        self._active = False

    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Begin collecting coverage (nested starts are not supported)."""
        if self._active:
            return
        self._previous_trace = sys.gettrace()
        sys.settrace(self._trace_call)
        self._active = True

    def stop(self) -> None:
        """Stop collecting coverage."""
        if not self._active:
            return
        sys.settrace(self._previous_trace)
        self._previous_trace = None
        self._active = False

    def __enter__(self) -> "CoverageTracer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def reset(self) -> None:
        """Forget every collected arc."""
        self.arcs.clear()

    # ------------------------------------------------------------------ #
    def snapshot(self) -> FrozenSet[Arc]:
        """The set of arcs observed so far."""
        return frozenset(self.arcs)

    def count(self, pass_only: bool = False) -> int:
        """Number of distinct arcs (optionally restricted to pass files)."""
        if not pass_only:
            return len(self.arcs)
        return sum(1 for arc in self.arcs if is_pass_file(arc[0]))

    def arcs_by_scope(self, pass_only: bool = False) -> FrozenSet[Arc]:
        if not pass_only:
            return frozenset(self.arcs)
        return frozenset(arc for arc in self.arcs if is_pass_file(arc[0]))

    # ------------------------------------------------------------------ #
    def _relevant(self, filename: str) -> bool:
        return filename.startswith(_PACKAGE_ROOT) and \
            any(filename.startswith(prefix) for prefix in self._prefixes)

    def _trace_call(self, frame, event, arg):
        if event != "call":
            return None
        filename = frame.f_code.co_filename
        if not self._relevant(filename):
            return None
        short = _shorten(filename)
        previous_line = [frame.f_lineno]
        arcs = self.arcs

        def trace_line(inner_frame, inner_event, inner_arg):
            if inner_event == "line":
                arcs.add((short, previous_line[0], inner_frame.f_lineno))
                previous_line[0] = inner_frame.f_lineno
            return trace_line

        return trace_line


def _shorten(filename: str) -> str:
    """Store file names relative to the compilers package."""
    return os.path.relpath(filename, _PACKAGE_ROOT)


def is_pass_file(short_filename: str) -> bool:
    """Does this (shortened) file belong to the pass-only scope?"""
    parts = short_filename.split(os.sep)
    return "passes" in parts or "lowpasses" in parts


def estimate_total_arcs(systems: Iterable[str] = ("graphrt", "deepc"),
                        pass_only: bool = False) -> int:
    """A static proxy for the coverage denominator ("total branches").

    Counts executable source lines of the instrumented modules; used only to
    report coverage percentages comparable in spirit to the paper's
    "11579/64854 = 17.9%" annotations.
    """
    total = 0
    for system in systems:
        root = os.path.join(_PACKAGE_ROOT, system)
        for dirpath, _dirnames, filenames in os.walk(root):
            for filename in filenames:
                if not filename.endswith(".py"):
                    continue
                short = _shorten(os.path.join(dirpath, filename))
                if pass_only and not is_pass_file(short):
                    continue
                with open(os.path.join(dirpath, filename), "r", encoding="utf-8") as fh:
                    for line in fh:
                        stripped = line.strip()
                        if stripped and not stripped.startswith("#"):
                            total += 1
    return total


class CoverageTimeline:
    """Accumulates (elapsed seconds, iteration, total arcs) samples.

    Used by the coverage experiments to reproduce the coverage-over-time
    (Figure 4/6) and coverage-over-iterations (Figure 5) curves.
    """

    def __init__(self) -> None:
        self.samples: list = []

    def record(self, elapsed: float, iteration: int, total_arcs: int,
               pass_arcs: int) -> None:
        self.samples.append(
            {"elapsed": elapsed, "iteration": iteration,
             "total": total_arcs, "pass_only": pass_arcs})

    def final_total(self) -> int:
        return self.samples[-1]["total"] if self.samples else 0

    def final_pass_only(self) -> int:
        return self.samples[-1]["pass_only"] if self.samples else 0

    def as_series(self, key: str = "total") -> Dict[str, list]:
        return {
            "elapsed": [s["elapsed"] for s in self.samples],
            "iteration": [s["iteration"] for s in self.samples],
            key: [s[key] for s in self.samples],
        }
