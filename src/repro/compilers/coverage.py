"""Branch (line-arc) coverage tracing for the compilers under test.

The paper measures C++ source branch coverage of TVM and ONNXRuntime with
Clang instrumentation.  The analogous measurement for the in-repo compilers
is Python *arc* coverage — pairs of consecutive executed line numbers inside
the compiler packages — collected with ``sys.settrace``.  An arc corresponds
to one control-flow edge, which is the closest Python equivalent of a taken
branch.

Two scopes are supported, matching the paper's "all files" and "pass-only"
views:

* **all files** — every module under ``repro.compilers.<system>``;
* **pass-only** — only modules whose path contains a ``passes`` directory
  (``graphrt/passes/...``, ``deepc/passes/...``), mirroring the paper's
  instrumentation of ``onnxruntime/core/optimizer`` and TVM's ``transforms``
  folders.

Besides the tracer itself this module provides the **feedback channel**
primitives the campaign engine streams between workers and the coordinator:
arcs have a compact string encoding (:func:`arc_to_str`), and
:class:`CoverageFeedback` keys each iteration's arcs against a worker-local
seen-set so the worker→coordinator queue carries *deltas* (the new arcs of
one iteration), never full cumulative sets.
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass
from types import CodeType
from typing import (Dict, FrozenSet, Iterable, Optional, Sequence, Set,
                    Tuple)

Arc = Tuple[str, int, int]

_PACKAGE_ROOT = os.path.dirname(os.path.abspath(__file__))

#: Separator of the compact arc encoding.  Safe because it cannot occur in a
#: relative source path or a line number.
_ARC_SEP = "|"


def arc_to_str(arc: Arc) -> str:
    """Compact, picklable/JSON-friendly encoding of one arc."""
    return f"{arc[0]}{_ARC_SEP}{arc[1]}{_ARC_SEP}{arc[2]}"


def arc_from_str(encoded: str) -> Arc:
    """Inverse of :func:`arc_to_str`."""
    filename, start, end = encoded.rsplit(_ARC_SEP, 2)
    return (filename, int(start), int(end))


def is_pass_arc(encoded: str) -> bool:
    """Does an encoded arc belong to the pass-only scope?"""
    return is_pass_file(encoded.rsplit(_ARC_SEP, 2)[0])


class CoverageTracer:
    """Collects executed line arcs inside the compiler packages."""

    def __init__(self, systems: Optional[Iterable[str]] = None) -> None:
        self.systems = tuple(systems) if systems is not None else ("graphrt", "deepc")
        self._prefixes = tuple(
            os.path.join(_PACKAGE_ROOT, system) + os.sep for system in self.systems
        )
        self.arcs: Set[Arc] = set()
        self._previous_trace = None
        #: The exact trace function object installed by :meth:`start`
        #: (``self._trace_call`` creates a *fresh* bound method on every
        #: attribute access, so identity checks must use this).
        self._installed = None
        self._active = False

    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Begin collecting coverage.

        Nested starts of the same tracer are a caller bug — the second
        ``stop`` would silently disable tracing halfway through the outer
        region — and raise instead of silently no-opping.
        """
        if self._active:
            raise RuntimeError(
                "CoverageTracer.start() while already tracing; nested "
                "starts are not supported (use a second tracer instance)")
        self._previous_trace = sys.gettrace()
        self._installed = self._trace_call
        sys.settrace(self._installed)
        self._active = True

    def stop(self) -> None:
        """Stop collecting coverage.

        Raises if another trace function was installed since :meth:`start`:
        blindly restoring ``_previous_trace`` would silently disable that
        other tracer, corrupting both measurements.
        """
        if not self._active:
            return
        current = sys.gettrace()
        if current is not self._installed:
            self._active = False
            self._installed = None
            raise RuntimeError(
                "another trace function was installed while this "
                "CoverageTracer was active; refusing to overwrite it")
        sys.settrace(self._previous_trace)
        self._previous_trace = None
        self._installed = None
        self._active = False

    def __enter__(self) -> "CoverageTracer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def reset(self) -> None:
        """Forget every collected arc."""
        self.arcs.clear()

    # ------------------------------------------------------------------ #
    def snapshot(self) -> FrozenSet[Arc]:
        """The set of arcs observed so far."""
        return frozenset(self.arcs)

    def count(self, pass_only: bool = False) -> int:
        """Number of distinct arcs (optionally restricted to pass files)."""
        if not pass_only:
            return len(self.arcs)
        return sum(1 for arc in self.arcs if is_pass_file(arc[0]))

    def arcs_by_scope(self, pass_only: bool = False) -> FrozenSet[Arc]:
        if not pass_only:
            return frozenset(self.arcs)
        return frozenset(arc for arc in self.arcs if is_pass_file(arc[0]))

    # ------------------------------------------------------------------ #
    def _relevant(self, filename: str) -> bool:
        return filename.startswith(_PACKAGE_ROOT) and \
            any(filename.startswith(prefix) for prefix in self._prefixes)

    def _trace_call(self, frame, event, arg):
        if event != "call":
            return None
        filename = frame.f_code.co_filename
        if not self._relevant(filename):
            return None
        short = _shorten(filename)
        previous_line = [frame.f_lineno]
        arcs = self.arcs

        def trace_line(inner_frame, inner_event, inner_arg):
            if inner_event == "line":
                arcs.add((short, previous_line[0], inner_frame.f_lineno))
                previous_line[0] = inner_frame.f_lineno
            return trace_line

        return trace_line


def _shorten(filename: str) -> str:
    """Store file names relative to the compilers package."""
    return os.path.relpath(filename, _PACKAGE_ROOT)


def is_pass_file(short_filename: str) -> bool:
    """Does this (shortened) file belong to the pass-only scope?"""
    parts = short_filename.split(os.sep)
    return "passes" in parts or "lowpasses" in parts


def executable_line_count(source: str, filename: str = "<coverage>") -> int:
    """Number of *executable* lines of a Python source text.

    Compiles the source and walks every code object's ``co_lines`` table,
    so the count is exactly the set of lines the interpreter can attribute
    instructions to — docstring bodies, continuation-only lines, comments
    and blanks are excluded.  (The previous heuristic counted every
    non-blank, non-``#`` line, which systematically inflated the coverage
    denominator with docstring and continuation lines.)
    """
    try:
        code = compile(source, filename, "exec")
    except SyntaxError:
        return 0
    lines: Set[int] = set()
    stack = [code]
    while stack:
        current = stack.pop()
        for const in current.co_consts:
            if isinstance(const, CodeType):
                stack.append(const)
        for _start, _end, line in current.co_lines():
            if line is not None and line > 0:
                lines.add(line)
    return len(lines)


def estimate_total_arcs(systems: Iterable[str] = ("graphrt", "deepc"),
                        pass_only: bool = False) -> int:
    """A static proxy for the coverage denominator ("total branches").

    Counts executable source lines (per :func:`executable_line_count`) of
    the instrumented modules; used only to report coverage percentages
    comparable in spirit to the paper's "11579/64854 = 17.9%" annotations.
    """
    total = 0
    for system in systems:
        root = os.path.join(_PACKAGE_ROOT, system)
        for dirpath, _dirnames, filenames in os.walk(root):
            for filename in filenames:
                if not filename.endswith(".py"):
                    continue
                path = os.path.join(dirpath, filename)
                short = _shorten(path)
                if pass_only and not is_pass_file(short):
                    continue
                with open(path, "r", encoding="utf-8") as fh:
                    total += executable_line_count(fh.read(), path)
    return total


# --------------------------------------------------------------------------- #
# The worker → coordinator feedback channel
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class CoverageDelta:
    """One iteration's *new* arcs, keyed against a worker-local seen-set.

    Arcs are encoded strings (:func:`arc_to_str`) so deltas are picklable,
    JSON-serializable and cheap to union on the coordinator side.  Because
    the emitting :class:`CoverageFeedback` subtracts everything it already
    reported, a delta carries only novelty — the queue traffic is
    proportional to coverage *growth*, not cumulative coverage.
    """

    arcs: Tuple[str, ...] = ()

    def __len__(self) -> int:
        return len(self.arcs)

    @property
    def pass_arcs(self) -> int:
        return sum(1 for arc in self.arcs if is_pass_arc(arc))


class CoverageFeedback:
    """Worker-local coverage channel for one matrix cell.

    Wraps a :class:`CoverageTracer` over the cell's compiler systems plus
    the seen-set that turns per-iteration snapshots into deltas: the engine
    runs each oracle call under :attr:`tracer` and calls :meth:`flush`
    after the iteration to obtain the arcs that are new *to this worker's
    view of the cell*.  The coordinator re-deduplicates across workers (a
    stolen chunk's worker starts with a fresh seen-set), so deltas may
    overlap between workers but never within one.
    """

    def __init__(self, systems: Sequence[str]) -> None:
        self.tracer = CoverageTracer(systems=tuple(systems))
        self._seen: Set[Arc] = set()

    def flush(self) -> CoverageDelta:
        """Drain the tracer into a delta of not-yet-reported arcs."""
        new = self.tracer.arcs - self._seen
        self._seen |= new
        self.tracer.reset()
        return CoverageDelta(arcs=tuple(sorted(arc_to_str(arc)
                                               for arc in new)))


class CoverageTimeline:
    """Accumulates (elapsed seconds, iteration, total arcs) samples.

    Used by the coverage experiments to reproduce the coverage-over-time
    (Figure 4/6) and coverage-over-iterations (Figure 5) curves.
    """

    def __init__(self) -> None:
        self.samples: list = []

    def record(self, elapsed: float, iteration: int, total_arcs: int,
               pass_arcs: int) -> None:
        self.samples.append(
            {"elapsed": elapsed, "iteration": iteration,
             "total": total_arcs, "pass_only": pass_arcs})

    def final_total(self) -> int:
        return self.samples[-1]["total"] if self.samples else 0

    def final_pass_only(self) -> int:
        return self.samples[-1]["pass_only"] if self.samples else 0

    def as_series(self, key: str = "total") -> Dict[str, list]:
        return {
            "elapsed": [s["elapsed"] for s in self.samples],
            "iteration": [s["iteration"] for s in self.samples],
            key: [s[key] for s in self.samples],
        }
