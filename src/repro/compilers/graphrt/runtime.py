"""GraphRT's kernel-dispatch runtime.

Like ONNXRuntime, GraphRT does not generate code: after graph optimization
every node is dispatched to a pre-compiled kernel.  Most kernels are shared
with the reference semantics; fused internal operators introduced by the
optimizer (e.g. ``BiasSoftmax``) have their own kernels here.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping

import numpy as np

from repro.errors import ExecutionError, UnsupportedOperatorError
from repro.graph.model import Model
from repro.graph.node import Node
from repro.ops import semantics

InternalKernel = Callable[[dict, List[np.ndarray]], List[np.ndarray]]


def _bias_softmax(attrs: dict, inputs: List[np.ndarray]) -> List[np.ndarray]:
    x, bias = inputs
    axis = int(attrs.get("axis", -1))
    combined = x.astype(np.float64) + bias.astype(np.float64)
    shifted = combined - np.max(combined, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    out = exp / np.sum(exp, axis=axis, keepdims=True)
    target = x.dtype if x.dtype.kind == "f" else np.float64
    return [out.astype(target)]


#: Kernels for GraphRT-internal fused operators.
INTERNAL_KERNELS: Dict[str, InternalKernel] = {
    "BiasSoftmax": _bias_softmax,
}


def execute_graph(model: Model, inputs: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
    """Run an (optimized) GraphRT graph on concrete inputs."""
    values: Dict[str, np.ndarray] = {}
    for name in model.inputs:
        if name not in inputs:
            raise ExecutionError(f"missing graph input {name!r}")
        values[name] = np.asarray(inputs[name], dtype=model.type_of(name).dtype.numpy)
    for name, array in model.initializers.items():
        values[name] = np.asarray(array)

    for node in model.topological_order():
        node_inputs = [values[name] for name in node.inputs]
        values.update(zip(node.outputs, _dispatch(node, node_inputs)))

    missing = [name for name in model.outputs if name not in values]
    if missing:
        raise ExecutionError(f"graph outputs never produced: {missing}")
    return {name: values[name] for name in model.outputs}


def execute_graph_profiled(model: Model, inputs: Mapping[str, np.ndarray],
                           timer: Callable[[], float]
                           ) -> tuple:
    """:func:`execute_graph` with every node's dispatch timed.

    Returns ``(outputs, [(node_name, op, seconds), ...])`` — the perf
    oracle's slow-node attribution runs both the optimized and the O0
    executable through this to bisect which node carries a flagged
    regression.
    """
    values: Dict[str, np.ndarray] = {}
    for name in model.inputs:
        if name not in inputs:
            raise ExecutionError(f"missing graph input {name!r}")
        values[name] = np.asarray(inputs[name], dtype=model.type_of(name).dtype.numpy)
    for name, array in model.initializers.items():
        values[name] = np.asarray(array)

    times: List[tuple] = []
    for node in model.topological_order():
        node_inputs = [values[name] for name in node.inputs]
        began = timer()
        results = _dispatch(node, node_inputs)
        times.append((node.name, node.op, timer() - began))
        values.update(zip(node.outputs, results))

    missing = [name for name in model.outputs if name not in values]
    if missing:
        raise ExecutionError(f"graph outputs never produced: {missing}")
    return {name: values[name] for name in model.outputs}, times


def _dispatch(node: Node, inputs: List[np.ndarray]) -> List[np.ndarray]:
    internal = INTERNAL_KERNELS.get(node.op)
    if internal is not None:
        return internal(node.attrs, inputs)
    if not semantics.has_kernel(node.op):
        raise UnsupportedOperatorError(
            f"GraphRT has no kernel for operator {node.op!r}")
    repack_blocks = int(node.attrs.get("_graphrt_repack_blocks", 0))
    if repack_blocks > 0:
        # The mis-selected repacked kernel (see MatMulRepackSelection):
        # recomputes the full product once per output block.  Results are
        # bit-identical — the bug is purely a performance regression.
        for _ in range(repack_blocks - 1):
            semantics.execute_node(node, inputs)
    return semantics.execute_node(node, inputs)


def supported_operators() -> List[str]:
    """Operator kinds GraphRT can execute (registry kernels + internal ones)."""
    from repro.ops.registry import all_ops

    names = [info.name for info in all_ops() if semantics.has_kernel(info.name)]
    names.extend(INTERNAL_KERNELS)
    return sorted(set(names))
