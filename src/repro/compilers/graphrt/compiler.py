"""The GraphRT compiler: importer + optimization pipeline + runtime binding."""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

import numpy as np

from repro.compilers.base import (CompiledModel, Compiler, CompileOptions,
                                  register_compiler)
from repro.compilers.graphrt import runtime
from repro.compilers.graphrt.passes import PassContext
from repro.compilers.pipeline import canonical_spec, run_pass_pipeline
from repro.errors import ConversionError, ExecutionError, ReproError
from repro.graph.model import Model
from repro.graph.validate import validation_errors
from repro.ops.registry import is_registered


class GraphRTExecutable(CompiledModel):
    """A graph optimized by GraphRT, executed by kernel dispatch."""

    def __init__(self, model: Model, applied_passes: Sequence[str],
                 triggered_bugs: Sequence[str] = (),
                 modified_by: Sequence[str] = ()) -> None:
        super().__init__(model, applied_passes, modified_by)
        self.triggered_bugs = list(triggered_bugs)

    def run(self, inputs: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
        try:
            return runtime.execute_graph(self.model, inputs)
        except ReproError:
            raise
        except (ValueError, IndexError, KeyError) as exc:
            raise ExecutionError(f"GraphRT runtime failure: {exc}") from exc

    def profile_nodes(self, inputs: Mapping[str, np.ndarray], timer):
        """Per-node dispatch times: ``[(node_name, op, seconds), ...]``.

        The duck-typed hook :func:`repro.runtime.compiled_plan.
        attribute_slow_nodes` looks for; backends without it (codegen
        compilers) simply get no slow-node provenance.
        """
        _outputs, times = runtime.execute_graph_profiled(self.model, inputs,
                                                         timer)
        return times


@register_compiler
class GraphRTCompiler(Compiler):
    """ONNXRuntime analogue: graph-optimizing runtime without code generation."""

    name = "graphrt"
    open_source = True

    def __init__(self, options: CompileOptions = None) -> None:
        super().__init__(options)

    # ------------------------------------------------------------------ #
    def compile_model(self, model: Model) -> GraphRTExecutable:
        imported = self._import(model)
        spec = self.options.pipeline or canonical_spec(self.options.opt_level)
        ctx = PassContext(bugs=self.options.bugs,
                          opt_level=self.options.opt_level,
                          verify=self.options.verify_passes)
        applied: List[str] = run_pass_pipeline("graphrt", imported, ctx,
                                               spec.passes("graphrt"))
        return GraphRTExecutable(imported, applied, ctx.triggered_bugs,
                                 ctx.modified_by)

    # ------------------------------------------------------------------ #
    def _import(self, model: Model) -> Model:
        """Conversion phase: structural and type checking of the input model."""
        supported = set(runtime.supported_operators())
        for node in model.nodes:
            if not is_registered(node.op) and node.op not in supported:
                raise ConversionError(f"GraphRT: unknown operator {node.op!r}")
            if node.op not in supported:
                raise ConversionError(
                    f"GraphRT: operator {node.op!r} is not implemented")
            if node.attrs.get("opset_unsupported"):
                raise ConversionError(
                    f"GraphRT: node {node.name!r} ({node.op}) uses a dtype that "
                    "this model-format version does not allow")
        problems = validation_errors(model)
        if problems:
            raise ConversionError(
                "GraphRT: model failed import-time type checking: " + problems[0])
        return model.clone()

    def supported_ops(self, candidate_ops: Sequence[str]) -> List[str]:
        available = set(runtime.supported_operators())
        return [op for op in candidate_ops if op in available]
