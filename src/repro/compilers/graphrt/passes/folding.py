"""Folding and algebraic simplification passes."""

from __future__ import annotations

import numpy as np

from repro.compilers.graphrt.passes import GraphPass, PassContext
from repro.errors import ExecutionError, TransformationError
from repro.graph.model import Model
from repro.graph.node import Node
from repro.ops.semantics import execute_node


class ConstantFolding(GraphPass):
    """Evaluate nodes whose inputs are all initializers at compile time."""

    #: Folding very large constants is not worth the model-size increase.
    max_folded_elements = 1 << 16

    def run(self, model: Model, ctx: PassContext) -> bool:
        changed = False
        for node in list(model.topological_order()):
            if node.op == "BiasSoftmax" and \
                    ctx.bugs.enabled("graphrt-constfold-internal-biassoftmax"):
                # BUG: the folder's operator table predates the fused kernel;
                # reachable only when a pipeline runs BiasSoftmaxFusion
                # before ConstantFolding (canonically folding runs first).
                ctx.record_bug("graphrt-constfold-internal-biassoftmax")
                raise TransformationError(
                    "[graphrt-constfold-internal-biassoftmax] constant "
                    "folding cannot evaluate internal operator 'BiasSoftmax'")
            if node.op in ("Split",):
                continue
            if not node.inputs:
                continue
            if not all(model.is_constant(name) for name in node.inputs):
                continue
            if node.op == "Pow" and ctx.bugs.enabled("graphrt-constfold-pow-overflow"):
                exponent = model.initializers[node.inputs[1]]
                if np.size(exponent) > 0 and float(np.max(np.abs(exponent))) >= 16:
                    ctx.record_bug("graphrt-constfold-pow-overflow")
                    raise TransformationError(
                        "[graphrt-constfold-pow-overflow] constant folding "
                        "overflowed while evaluating Pow")
            inputs = [model.initializers[name] for name in node.inputs]
            try:
                outputs = execute_node(node, inputs)
            except ExecutionError:
                continue
            if sum(int(np.size(out)) for out in outputs) > self.max_folded_elements:
                continue
            for output_name, array in zip(node.outputs, outputs):
                if output_name in model.initializers:
                    continue
                expected = model.type_of(output_name)
                model.initializers[output_name] = np.asarray(
                    array, dtype=expected.dtype.numpy)
            model.remove_node(node)
            # Re-declare the folded outputs so type bookkeeping stays intact.
            for output_name, array in zip(node.outputs, outputs):
                if output_name not in model.value_types:
                    from repro.dtypes import DType
                    from repro.graph.tensor_type import TensorType
                    model.value_types[output_name] = TensorType(
                        array.shape, DType.from_numpy(array.dtype))
            changed = True
        return changed


class ArithmeticSimplification(GraphPass):
    """Remove arithmetic no-ops: ``x+0``, ``x-0``, ``x*1``, ``x/1``."""

    def run(self, model: Model, ctx: PassContext) -> bool:
        changed = False
        for node in list(model.nodes):
            if node.outputs[0] in model.outputs:
                continue
            replacement = self._simplify(model, node)
            if replacement is None:
                continue
            if model.type_of(replacement) != model.type_of(node.outputs[0]):
                # Dropping the node would change the output type (e.g. the
                # constant operand broadcasts x up); not a no-op after all.
                continue
            model.replace_uses(node.outputs[0], replacement)
            model.remove_node(node)
            changed = True
        if changed:
            model.prune_dead_nodes()
        return changed

    @staticmethod
    def _simplify(model: Model, node: Node):
        if node.op not in ("Add", "Sub", "Mul", "Div"):
            return None
        lhs, rhs = node.inputs
        rhs_const = model.initializers.get(rhs)
        lhs_const = model.initializers.get(lhs)
        if node.op in ("Add", "Sub") and rhs_const is not None and np.all(rhs_const == 0):
            return lhs
        if node.op == "Add" and lhs_const is not None and np.all(lhs_const == 0):
            return rhs
        if node.op in ("Mul", "Div") and rhs_const is not None and np.all(rhs_const == 1):
            return lhs
        if node.op == "Mul" and lhs_const is not None and np.all(lhs_const == 1):
            return rhs
        return None


class PowToMul(GraphPass):
    """Rewrite ``Pow(x, 2)`` with a constant exponent into ``Mul(x, x)``."""

    def run(self, model: Model, ctx: PassContext) -> bool:
        changed = False
        for node in model.nodes:
            if node.op != "Pow":
                continue
            exponent = model.initializers.get(node.inputs[1])
            if exponent is None or np.size(exponent) != 1:
                continue
            if float(np.asarray(exponent).reshape(-1)[0]) != 2.0:
                continue
            if model.type_of(node.inputs[0]) != model.type_of(node.outputs[0]):
                # Pow promotes integer inputs to float; Mul would not.
                continue
            node.op = "Mul"
            node.inputs = [node.inputs[0], node.inputs[0]]
            node.attrs = {}
            changed = True
        return changed
