"""Pass framework and default pipeline of the GraphRT compiler.

GraphRT mirrors ONNXRuntime's architecture: a large collection of
*pattern-specific* graph rewrites (fusions, eliminations, foldings) applied
to the imported graph, after which the optimized graph is executed by a
kernel-dispatch runtime (no code generation).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import List

from repro.compilers.bugs import BugConfig
from repro.graph.model import Model


@dataclass
class PassContext:
    """State shared by the passes of one compilation."""

    bugs: BugConfig = field(default_factory=BugConfig.none)
    opt_level: int = 2
    #: Seeded bugs whose buggy path actually executed during this compilation.
    triggered_bugs: List[str] = field(default_factory=list)
    #: Names of passes that modified the graph.
    modified_by: List[str] = field(default_factory=list)

    def record_bug(self, bug_id: str) -> None:
        if bug_id not in self.triggered_bugs:
            self.triggered_bugs.append(bug_id)


class GraphPass(abc.ABC):
    """One graph-rewriting pass.

    Passes mutate the model in place and return True when they changed it.
    """

    #: Minimum optimization level at which this pass runs.
    min_opt_level: int = 1

    @property
    def name(self) -> str:
        return type(self).__name__

    @abc.abstractmethod
    def run(self, model: Model, ctx: PassContext) -> bool:
        """Apply the pass; return True if the model was modified."""


def default_pipeline() -> List[GraphPass]:
    """The standard GraphRT optimization pipeline, in application order."""
    from repro.compilers.graphrt.passes import cleanup, folding, fusion, reorder

    return [
        cleanup.EliminateIdentity(),
        cleanup.EliminateCast(),
        folding.ConstantFolding(),
        folding.ArithmeticSimplification(),
        folding.PowToMul(),
        reorder.TransposeElimination(),
        reorder.ReshapeMerge(),
        reorder.SliceMerge(),
        reorder.PadConvFusion(),
        fusion.MatMulScaleFusion(),
        fusion.GemmFusion(),
        # After GemmFusion: kernel selection must see the final MatMul/Gemm
        # population (GemmFusion replaces MatMul+Add with a fresh Gemm node,
        # which would silently shed an earlier repack tag).
        fusion.MatMulRepackSelection(),
        fusion.ReluClipFusion(),
        fusion.BiasSoftmaxFusion(),
        fusion.ConvBatchNormFolding(),
        cleanup.CommonSubexpressionElimination(),
        cleanup.DeadCodeElimination(),
    ]


def run_pipeline(model: Model, ctx: PassContext) -> List[str]:
    """Run every applicable pass once; returns the names of applied passes."""
    applied: List[str] = []
    for graph_pass in default_pipeline():
        if ctx.opt_level < graph_pass.min_opt_level:
            continue
        changed = graph_pass.run(model, ctx)
        applied.append(graph_pass.name)
        if changed:
            ctx.modified_by.append(graph_pass.name)
    return applied
