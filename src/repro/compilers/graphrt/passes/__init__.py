"""Pass framework and default pipeline of the GraphRT compiler.

GraphRT mirrors ONNXRuntime's architecture: a large collection of
*pattern-specific* graph rewrites (fusions, eliminations, foldings) applied
to the imported graph, after which the optimized graph is executed by a
kernel-dispatch runtime (no code generation).

The pass machinery itself (context, base class, runner, registry) lives in
the shared :mod:`repro.compilers.pipeline` layer; this package contributes
the ``"graphrt"`` stage's passes and keeps the historical names importable.
"""

from __future__ import annotations

import abc
from typing import List

from repro.compilers.pipeline import (PipelineContext, PipelinePass,
                                      run_pass_pipeline)
from repro.graph.model import Model

#: Historical name: state shared by the passes of one compilation.
PassContext = PipelineContext


class GraphPass(PipelinePass):
    """One graph-rewriting pass.

    Passes mutate the model in place and return True when they changed it.
    """

    @abc.abstractmethod
    def run(self, model: Model, ctx: PassContext) -> bool:
        """Apply the pass; return True if the model was modified."""


def default_pipeline() -> List[GraphPass]:
    """The standard GraphRT optimization pipeline, in application order."""
    from repro.compilers.graphrt.passes import cleanup, folding, fusion, reorder

    return [
        cleanup.EliminateIdentity(),
        cleanup.EliminateCast(),
        folding.ConstantFolding(),
        folding.ArithmeticSimplification(),
        folding.PowToMul(),
        reorder.TransposeElimination(),
        reorder.ReshapeMerge(),
        reorder.SliceMerge(),
        reorder.PadConvFusion(),
        fusion.MatMulScaleFusion(),
        fusion.GemmFusion(),
        # After GemmFusion: kernel selection must see the final MatMul/Gemm
        # population (GemmFusion replaces MatMul+Add with a fresh Gemm node,
        # which would silently shed an earlier repack tag).
        fusion.MatMulRepackSelection(),
        fusion.ReluClipFusion(),
        fusion.BiasSoftmaxFusion(),
        fusion.ConvBatchNormFolding(),
        cleanup.CommonSubexpressionElimination(),
        cleanup.DeadCodeElimination(),
    ]


def run_pipeline(model: Model, ctx: PassContext) -> List[str]:
    """Run the canonical pipeline of ``ctx.opt_level`` once.

    Kept for back compatibility; the shared runner with an explicit pass
    sequence is :func:`repro.compilers.pipeline.run_pass_pipeline`.
    """
    return run_pass_pipeline("graphrt", model, ctx)
