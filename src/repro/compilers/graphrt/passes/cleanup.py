"""Cleanup passes: identity/cast elimination, CSE, dead-code elimination."""

from __future__ import annotations

from typing import Dict

from repro.compilers.graphrt.passes import GraphPass, PassContext
from repro.dtypes import DType
from repro.graph.model import Model


class EliminateIdentity(GraphPass):
    """Remove Identity and inference-mode Dropout nodes."""

    def run(self, model: Model, ctx: PassContext) -> bool:
        changed = False
        for node in list(model.nodes):
            if node.op not in ("Identity", "Dropout"):
                continue
            source = node.inputs[0]
            target = node.outputs[0]
            if target in model.outputs:
                # Graph output names are part of the model's interface and
                # must be preserved.
                continue
            model.replace_uses(target, source)
            model.remove_node(node)
            changed = True
        return changed


class EliminateCast(GraphPass):
    """Remove no-op casts and collapse cast chains."""

    def run(self, model: Model, ctx: PassContext) -> bool:
        changed = False
        producers = model.producer_map()
        for node in list(model.nodes):
            if node.op != "Cast":
                continue
            input_type = model.type_of(node.inputs[0])
            target = DType.from_str(node.attrs["to"])
            if input_type.dtype == target and node.outputs[0] not in model.outputs:
                # Cast to the same dtype is the identity.
                model.replace_uses(node.outputs[0], node.inputs[0])
                model.remove_node(node)
                changed = True
                continue
            upstream = producers.get(node.inputs[0])
            if upstream is not None and upstream.op == "Cast":
                intermediate = DType.from_str(upstream.attrs["to"])
                if intermediate.is_float and target.is_float:
                    # float->float->float chains collapse to a single cast.
                    node.inputs[0] = upstream.inputs[0]
                    changed = True
        if changed:
            model.prune_dead_nodes()
        return changed


class CommonSubexpressionElimination(GraphPass):
    """Merge structurally identical nodes with identical inputs."""

    def run(self, model: Model, ctx: PassContext) -> bool:
        changed = False
        seen: Dict[str, str] = {}
        for node in list(model.topological_order()):
            if node.op in ("Split",):
                continue
            key = f"{node.op}|{','.join(node.inputs)}|{node.signature()}"
            if key in seen:
                existing_output = seen[key]
                if node.outputs[0] in model.outputs:
                    continue
                model.replace_uses(node.outputs[0], existing_output)
                model.remove_node(node)
                changed = True
            else:
                seen[key] = node.outputs[0]
        return changed


class DeadCodeElimination(GraphPass):
    """Drop nodes whose results never reach a graph output."""

    def run(self, model: Model, ctx: PassContext) -> bool:
        live = set(model.outputs)
        changed_any = False
        # Walk backwards: a node is live if any output feeds a live value.
        for node in reversed(model.topological_order()):
            if any(output in live for output in node.outputs):
                live.update(node.inputs)
            else:
                model.remove_node(node)
                changed_any = True
        return changed_any
