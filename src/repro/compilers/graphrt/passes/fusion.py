"""Operator-fusion passes of GraphRT.

These mirror ONNXRuntime's pattern-specific fusions; several carry seeded
bugs whose trigger conditions follow the bug patterns reported in §5.4 of
the paper.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.compilers.graphrt.passes import GraphPass, PassContext
from repro.dtypes import DType, promote
from repro.errors import TransformationError
from repro.graph.model import Model
from repro.graph.node import Node
from repro.graph.tensor_type import TensorType
from repro.ops.registry import register_op_attrs
from repro.ops.shape_infer import rule


@rule("BiasSoftmax")
def _bias_softmax_rule(node, inputs):
    """Type rule for the internal fused op: the fusion replaces
    ``Softmax(Add(x, bias))``, so the output type is the softmax of the
    promoted addition."""
    x, bias = inputs
    dtype = promote(x.dtype, bias.dtype)
    return [TensorType(x.shape, dtype if dtype.is_float else DType.float64)]


register_op_attrs("BiasSoftmax", ("axis",))


def _single_consumer(model: Model, value: str) -> Optional[Node]:
    consumers = model.consumer_map().get(value, [])
    if len(consumers) == 1 and value not in model.outputs:
        return consumers[0]
    return None


class MatMulScaleFusion(GraphPass):
    """Hoist scalar scales out of MatMul operands.

    ``(sa*A) @ (sb*B)`` is rewritten to ``(sa*sb) * (A @ B)``, saving one
    full-tensor multiplication.  Seeded bug: a 1x1 matrix operand is mistaken
    for a scalar, producing an illegal rewrite (compiler exception), like the
    FuseMatMulScale bug the paper found in ONNXRuntime.
    """

    def run(self, model: Model, ctx: PassContext) -> bool:
        changed = False
        producers = model.producer_map()
        for node in list(model.nodes):
            if node.op != "MatMul":
                continue
            scale_value = 1.0
            new_inputs = list(node.inputs)
            matched = False
            for index, operand in enumerate(node.inputs):
                producer = producers.get(operand)
                if producer is None or producer.op != "Mul":
                    continue
                scalar_name = None
                tensor_name = None
                for mul_input in producer.inputs:
                    if model.is_constant(mul_input) and \
                            model.type_of(mul_input).numel == 1:
                        scalar_name = mul_input
                    else:
                        tensor_name = mul_input
                if scalar_name is None or tensor_name is None:
                    continue
                if _single_consumer(model, operand) is not node:
                    continue
                other = node.inputs[1 - index]
                other_type = model.type_of(other)
                if ctx.bugs.enabled("graphrt-fuse-matmul-scale-1x1") and \
                        other_type.rank == 2 and other_type.numel == 1:
                    ctx.record_bug("graphrt-fuse-matmul-scale-1x1")
                    raise TransformationError(
                        "[graphrt-fuse-matmul-scale-1x1] FuseMatMulScale "
                        "rewrote a 1x1 matrix operand as a scalar, producing "
                        "an illegal MatMul")
                if model.type_of(tensor_name).dtype != model.type_of(operand).dtype:
                    continue
                scale_value *= float(np.asarray(
                    model.initializers[scalar_name]).reshape(-1)[0])
                new_inputs[index] = tensor_name
                matched = True
            if not matched:
                continue
            output = node.outputs[0]
            output_type = model.type_of(output)
            matmul_value = model.fresh_value_name("fused_matmul")
            model.value_types[matmul_value] = output_type
            node.inputs = new_inputs
            node.outputs = [matmul_value]
            scale_name = model.fresh_value_name("fused_scale")
            model.add_initializer(
                scale_name, np.asarray(scale_value, dtype=output_type.dtype.numpy))
            scale_node = Node("Mul", model.fresh_node_name("matmul_scale"),
                              [matmul_value, scale_name], [output], {})
            model.nodes.append(scale_node)
            model.prune_dead_nodes()
            producers = model.producer_map()
            changed = True
        return changed


class GemmFusion(GraphPass):
    """Fuse ``MatMul`` followed by ``Add`` into a single ``Gemm``.

    Seeded bug: when the addend broadcasts as a scalar the buggy path fuses
    anyway and silently drops it, changing results.
    """

    def run(self, model: Model, ctx: PassContext) -> bool:
        changed = False
        for node in list(model.nodes):
            if node.op != "MatMul":
                continue
            lhs_type = model.type_of(node.inputs[0])
            rhs_type = model.type_of(node.inputs[1])
            if lhs_type.rank != 2 or rhs_type.rank != 2:
                continue
            consumer = _single_consumer(model, node.outputs[0])
            if consumer is None or consumer.op != "Add":
                continue
            addend = next((name for name in consumer.inputs
                           if name != node.outputs[0]), None)
            if addend is None:
                continue
            addend_type = model.type_of(addend)
            columns = rhs_type.shape[1]
            fuse_correct = addend_type.shape in ((columns,), (1, columns))
            fuse_buggy = (ctx.bugs.enabled("graphrt-gemm-fusion-bias-broadcast")
                          and addend_type.numel == 1)
            if not fuse_correct and not fuse_buggy:
                continue
            if addend_type.dtype != model.type_of(consumer.outputs[0]).dtype:
                continue
            gemm_inputs = [node.inputs[0], node.inputs[1]]
            if fuse_correct:
                bias = addend
                if addend_type.shape == (1, columns):
                    bias = model.fresh_value_name("gemm_bias")
                    if model.is_constant(addend):
                        model.add_initializer(
                            bias, model.initializers[addend].reshape(columns))
                    else:
                        reshape = Node("Reshape", model.fresh_node_name("gemm_bias_reshape"),
                                       [addend], [bias], {"shape": [columns]})
                        model.value_types[bias] = TensorType(
                            (columns,), addend_type.dtype)
                        model.nodes.append(reshape)
                    if bias not in model.value_types:
                        model.value_types[bias] = TensorType(
                            (columns,), addend_type.dtype)
                gemm_inputs.append(bias)
            else:
                # Buggy: the scalar addend is dropped entirely.
                ctx.record_bug("graphrt-gemm-fusion-bias-broadcast")
            gemm = Node("Gemm", model.fresh_node_name("gemm"), gemm_inputs,
                        [consumer.outputs[0]], {})
            model.nodes.append(gemm)
            model.remove_node(consumer)
            model.remove_node(node)
            model.prune_dead_nodes()
            changed = True
        return changed


class ReluClipFusion(GraphPass):
    """Fuse ``Relu`` followed by ``Clip`` into a single ``Clip``.

    Seeded bug: for double-precision tensors the fused Clip keeps the
    original (possibly negative) lower bound instead of raising it to zero.
    """

    def run(self, model: Model, ctx: PassContext) -> bool:
        changed = False
        for node in list(model.nodes):
            if node.op != "Relu":
                continue
            consumer = _single_consumer(model, node.outputs[0])
            if consumer is None or consumer.op != "Clip":
                continue
            dtype = model.type_of(node.inputs[0]).dtype
            low = consumer.attrs.get("min")
            high = consumer.attrs.get("max")
            if ctx.bugs.enabled("graphrt-relu-clip-fusion-f64") and dtype == DType.float64:
                fused_min = low  # BUG: forgets to clamp the lower bound at 0.
                ctx.record_bug("graphrt-relu-clip-fusion-f64")
            else:
                fused_min = 0.0 if low is None else max(0.0, float(low))
            consumer.inputs = [node.inputs[0]]
            consumer.attrs["min"] = fused_min
            consumer.attrs["max"] = high
            model.remove_node(node)
            model.prune_dead_nodes()
            changed = True
        return changed


class BiasSoftmaxFusion(GraphPass):
    """Fuse ``Add`` followed by ``Softmax`` into the internal BiasSoftmax op.

    Seeded bug (``graphrt-biassoftmax-fusion-note``): the buggy path leaves a
    provenance-note attribute on the fused node — outside the BiasSoftmax
    schema, ignored by every kernel, invisible to the graph fingerprint.  The
    IR executes bit-identically, so no execution-based oracle can see it;
    only the pass-boundary verifier's attribute-conformance invariant does.
    """

    def run(self, model: Model, ctx: PassContext) -> bool:
        changed = False
        for node in list(model.nodes):
            if node.op != "Add":
                continue
            consumer = _single_consumer(model, node.outputs[0])
            if consumer is None or consumer.op != "Softmax":
                continue
            lhs, rhs = model.type_of(node.inputs[0]), model.type_of(node.inputs[1])
            if lhs.shape != model.type_of(node.outputs[0]).shape:
                continue
            attrs = {"axis": int(consumer.attrs.get("axis", -1))}
            if ctx.bugs.enabled("graphrt-biassoftmax-fusion-note"):
                # BUG: a debugging note shipped to production.  The constant
                # value keeps CSE decisions unchanged; the marker inside it
                # is what bug attribution recovers from verifier reports.
                attrs["fused_from"] = \
                    "[graphrt-biassoftmax-fusion-note] Add+Softmax"
            fused = Node("BiasSoftmax", model.fresh_node_name("bias_softmax"),
                         list(node.inputs), [consumer.outputs[0]], attrs)
            model.nodes.append(fused)
            model.remove_node(consumer)
            model.remove_node(node)
            model.prune_dead_nodes()
            changed = True
        return changed


class ConvBatchNormFolding(GraphPass):
    """Fold an inference-mode BatchNorm into the preceding Conv2d weights."""

    def run(self, model: Model, ctx: PassContext) -> bool:
        changed = False
        for node in list(model.nodes):
            if node.op != "Conv2d":
                continue
            if not model.is_constant(node.inputs[1]):
                continue
            consumer = _single_consumer(model, node.outputs[0])
            if consumer is None or consumer.op != "BatchNorm":
                continue
            param_names = consumer.inputs[1:]
            if not all(model.is_constant(name) for name in param_names):
                continue
            scale, bias, mean, var = (model.initializers[name] for name in param_names)
            epsilon = float(consumer.attrs.get("epsilon", 1e-5))
            weight = model.initializers[node.inputs[1]].astype(np.float64)
            factor = scale.astype(np.float64) / np.sqrt(var.astype(np.float64) + epsilon)
            folded_weight = weight * factor.reshape(-1, 1, 1, 1)
            conv_bias = np.zeros(weight.shape[0], dtype=np.float64)
            if len(node.inputs) > 2 and model.is_constant(node.inputs[2]):
                conv_bias = model.initializers[node.inputs[2]].astype(np.float64)
            folded_bias = (conv_bias - mean.astype(np.float64)) * factor + \
                bias.astype(np.float64)
            weight_dtype = model.initializers[node.inputs[1]].dtype
            new_weight = model.fresh_value_name("folded_conv_w")
            new_bias = model.fresh_value_name("folded_conv_b")
            model.add_initializer(new_weight, folded_weight.astype(weight_dtype))
            model.add_initializer(new_bias, folded_bias.astype(
                model.type_of(consumer.outputs[0]).dtype.numpy))
            node.inputs = [node.inputs[0], new_weight, new_bias]
            node.outputs = [consumer.outputs[0]]
            model.remove_node(consumer)
            model.prune_dead_nodes()
            changed = True
        return changed


class MatMulRepackSelection(GraphPass):
    """Select a repacked ("cache-friendly") kernel for MatMul/Gemm nodes.

    The repacked kernel tiles the product into output blocks.  Seeded bug:
    the selection cost model is inverted for small operands, so small
    matrix products are routed onto a kernel that recomputes the product
    once per output block — the optimized build gets dramatically *slower*
    than O0 while producing bit-identical results.  Invisible to crash and
    differential-testing oracles by construction; only a performance-
    regression oracle can observe it.
    """

    #: Blocks the mis-selected kernel recomputes (the slowdown factor).
    REPACK_BLOCKS = 256
    #: "Small operand" bound of the inverted cost model (total elements).
    SMALL_OPERAND_NUMEL = 4096

    def run(self, model: Model, ctx: PassContext) -> bool:
        if not ctx.bugs.enabled("graphrt-matmul-repack-small"):
            return False
        changed = False
        for node in model.nodes:
            if node.op not in ("MatMul", "Gemm"):
                continue
            if not model.type_of(node.outputs[0]).dtype.is_float:
                continue
            operand_numel = sum(model.type_of(name).numel
                                for name in node.inputs[:2])
            if operand_numel > self.SMALL_OPERAND_NUMEL:
                continue
            # BUG: small products belong on the plain kernel; the inverted
            # cost model sends them to the per-block recompute path.
            ctx.record_bug("graphrt-matmul-repack-small")
            node.attrs["_graphrt_repack_blocks"] = self.REPACK_BLOCKS
            changed = True
        return changed
