"""Data-movement simplification passes: transposes, reshapes, slices, pads."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.compilers.graphrt.passes import GraphPass, PassContext
from repro.errors import TransformationError
from repro.graph.model import Model
from repro.graph.node import Node


def _only_consumer(model: Model, value: str) -> Optional[Node]:
    consumers = model.consumer_map().get(value, [])
    if len(consumers) == 1 and value not in model.outputs:
        return consumers[0]
    return None


class TransposeElimination(GraphPass):
    """Collapse back-to-back Transpose nodes.

    The correct rewrite composes the two permutations (and removes both when
    the composition is the identity).  Seeded bug: both transposes are
    removed without checking the composed permutation.
    """

    def run(self, model: Model, ctx: PassContext) -> bool:
        changed = False
        producers = model.producer_map()
        for node in list(model.nodes):
            if node.op != "Transpose" or node.outputs[0] in model.outputs:
                continue
            upstream = producers.get(node.inputs[0])
            if upstream is None or upstream.op != "Transpose":
                continue
            if _only_consumer(model, upstream.outputs[0]) is not node:
                continue
            source = upstream.inputs[0]
            rank = model.type_of(source).rank
            inner = [int(p) for p in upstream.attrs.get("perm", range(rank)[::-1])]
            outer = [int(p) for p in node.attrs.get("perm", range(rank)[::-1])]
            composed = [inner[p] for p in outer]
            if ctx.bugs.enabled("graphrt-transpose-elimination-perm"):
                ctx.record_bug("graphrt-transpose-elimination-perm")
                # BUG: assumes the pair always cancels.
                model.replace_uses(node.outputs[0], source)
                model.remove_node(node)
                model.remove_node(upstream)
                model.prune_dead_nodes()
                producers = model.producer_map()
                changed = True
                continue
            if composed == list(range(rank)):
                if model.type_of(source) == model.type_of(node.outputs[0]):
                    model.replace_uses(node.outputs[0], source)
                    model.remove_node(node)
                    model.remove_node(upstream)
            else:
                node.inputs = [source]
                node.attrs["perm"] = composed
                model.remove_node(upstream)
            model.prune_dead_nodes()
            producers = model.producer_map()
            changed = True
        return changed


class ReshapeMerge(GraphPass):
    """Collapse Reshape chains into the last reshape."""

    def run(self, model: Model, ctx: PassContext) -> bool:
        changed = False
        producers = model.producer_map()
        for node in list(model.nodes):
            if node.op != "Reshape":
                continue
            upstream = producers.get(node.inputs[0])
            if upstream is None or upstream.op != "Reshape":
                continue
            if _only_consumer(model, upstream.outputs[0]) is not node:
                continue
            node.inputs = [upstream.inputs[0]]
            model.remove_node(upstream)
            model.prune_dead_nodes()
            producers = model.producer_map()
            changed = True
        return changed


class SliceMerge(GraphPass):
    """Merge back-to-back Slice nodes over disjoint axes.

    Seeded bug: the merge asserts every step is one and raises otherwise.
    """

    def run(self, model: Model, ctx: PassContext) -> bool:
        changed = False
        producers = model.producer_map()
        for node in list(model.nodes):
            if node.op != "Slice":
                continue
            upstream = producers.get(node.inputs[0])
            if upstream is None or upstream.op != "Slice":
                continue
            if _only_consumer(model, upstream.outputs[0]) is not node:
                continue
            up_axes = [int(a) for a in upstream.attrs.get(
                "axes", range(len(upstream.attrs["starts"])))]
            down_axes = [int(a) for a in node.attrs.get(
                "axes", range(len(node.attrs["starts"])))]
            if set(up_axes) & set(down_axes):
                continue
            up_steps = [int(s) for s in upstream.attrs.get("steps", [1] * len(up_axes))]
            down_steps = [int(s) for s in node.attrs.get("steps", [1] * len(down_axes))]
            if ctx.bugs.enabled("graphrt-slice-merge-negative-step") and \
                    any(step != 1 for step in up_steps + down_steps):
                ctx.record_bug("graphrt-slice-merge-negative-step")
                raise TransformationError(
                    "[graphrt-slice-merge-negative-step] slice merge requires "
                    "unit steps")
            node.attrs["starts"] = [int(v) for v in upstream.attrs["starts"]] + \
                [int(v) for v in node.attrs["starts"]]
            node.attrs["ends"] = [int(v) for v in upstream.attrs["ends"]] + \
                [int(v) for v in node.attrs["ends"]]
            node.attrs["axes"] = up_axes + down_axes
            node.attrs["steps"] = up_steps + down_steps
            node.inputs = [upstream.inputs[0]]
            model.remove_node(upstream)
            model.prune_dead_nodes()
            producers = model.producer_map()
            changed = True
        return changed


class PadConvFusion(GraphPass):
    """Fold a zero-valued constant Pad over H/W into the Conv2d padding attr."""

    def run(self, model: Model, ctx: PassContext) -> bool:
        changed = False
        for node in list(model.nodes):
            if node.op != "Pad":
                continue
            if node.attrs.get("mode", "constant") != "constant":
                continue
            if float(node.attrs.get("value", 0)) != 0.0:
                continue
            input_type = model.type_of(node.inputs[0])
            if input_type.rank != 4:
                continue
            pads = [int(p) for p in node.attrs["pads"]]
            before, after = pads[:4], pads[4:]
            if before[0] or before[1] or after[0] or after[1]:
                continue
            if before[2] != after[2] or before[3] != after[3] or before[2] != before[3]:
                continue
            amount = before[2]
            if amount <= 0:
                continue
            consumer = _only_consumer(model, node.outputs[0])
            if consumer is None or consumer.op != "Conv2d":
                continue
            if consumer.inputs[0] != node.outputs[0]:
                continue
            consumer.attrs["padding"] = int(consumer.attrs.get("padding", 0)) + amount
            consumer.inputs[0] = node.inputs[0]
            model.remove_node(node)
            model.prune_dead_nodes()
            changed = True
        return changed
