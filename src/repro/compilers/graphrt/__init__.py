"""GraphRT: the ONNXRuntime analogue (graph-optimizing DNN runtime)."""

from repro.compilers.graphrt.compiler import GraphRTCompiler, GraphRTExecutable

__all__ = ["GraphRTCompiler", "GraphRTExecutable"]
