"""The systems under test: GraphRT, DeepC and Turbo, plus shared infrastructure."""

from repro.compilers.base import CompiledModel, Compiler, CompileOptions
from repro.compilers.bugs import BugConfig, BugSpec, all_bugs, bug_spec, bugs_of_system
from repro.compilers.coverage import CoverageTracer, CoverageTimeline, estimate_total_arcs
from repro.compilers.deepc import DeepCCompiler, DeepCExecutable
from repro.compilers.graphrt import GraphRTCompiler, GraphRTExecutable
from repro.compilers.turbo import TurboCompiler, TurboEngine

__all__ = [
    "BugConfig",
    "BugSpec",
    "CompileOptions",
    "CompiledModel",
    "Compiler",
    "CoverageTimeline",
    "CoverageTracer",
    "DeepCCompiler",
    "DeepCExecutable",
    "GraphRTCompiler",
    "GraphRTExecutable",
    "TurboCompiler",
    "TurboEngine",
    "all_bugs",
    "bug_spec",
    "bugs_of_system",
    "estimate_total_arcs",
]


def make_compiler(name: str, options: CompileOptions = None) -> Compiler:
    """Instantiate a compiler under test by its short name."""
    registry = {
        "graphrt": GraphRTCompiler,
        "deepc": DeepCCompiler,
        "turbo": TurboCompiler,
    }
    try:
        return registry[name](options)
    except KeyError:
        raise KeyError(f"unknown compiler {name!r}; available: {sorted(registry)}") from None
