"""The systems under test: GraphRT, DeepC and Turbo, plus shared infrastructure."""

from repro.compilers.base import (
    CompiledModel,
    Compiler,
    CompileOptions,
    build_compiler_set,
    create_compiler,
    register_compiler,
    registered_compilers,
)
from repro.compilers.bugs import BugConfig, BugSpec, all_bugs, bug_spec, bugs_of_system
from repro.compilers.coverage import CoverageTracer, CoverageTimeline, estimate_total_arcs
from repro.compilers.deepc import DeepCCompiler, DeepCExecutable
from repro.compilers.graphrt import GraphRTCompiler, GraphRTExecutable
from repro.compilers.turbo import TurboCompiler, TurboEngine

__all__ = [
    "BugConfig",
    "BugSpec",
    "CompileOptions",
    "CompiledModel",
    "Compiler",
    "CoverageTimeline",
    "CoverageTracer",
    "DeepCCompiler",
    "DeepCExecutable",
    "GraphRTCompiler",
    "GraphRTExecutable",
    "TurboCompiler",
    "TurboEngine",
    "all_bugs",
    "bug_spec",
    "bugs_of_system",
    "build_compiler_set",
    "create_compiler",
    "estimate_total_arcs",
    "make_compiler",
    "register_compiler",
    "registered_compilers",
]


def make_compiler(name: str, options: CompileOptions = None) -> Compiler:
    """Instantiate a compiler under test by its short name.

    Back-compat alias for :func:`repro.compilers.base.create_compiler`; the
    named registry is populated by the ``@register_compiler`` decorators on
    the compiler classes themselves.
    """
    return create_compiler(name, options)
