"""Turbo: the closed-source GPU-compiler stand-in (TensorRT analogue).

Turbo participates in differential testing and bug counting (Table 3) but —
like TensorRT in the paper — is excluded from coverage measurement.  Its
"builder" selects a kernel implementation per node and applies a small set of
aggressive fusions; several seeded bugs live in that selection logic.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

import numpy as np

from repro.compilers.base import (CompiledModel, Compiler, CompileOptions,
                                  register_compiler)
from repro.dtypes import DType
from repro.errors import ConversionError, ExecutionError, ReproError, TransformationError
from repro.graph.model import Model
from repro.graph.node import Node
from repro.graph.validate import validation_errors
from repro.ops import semantics


class TurboEngine(CompiledModel):
    """A Turbo "engine": the optimized graph plus kernel substitutions."""

    def __init__(self, model: Model, applied_passes: Sequence[str],
                 triggered_bugs: Sequence[str] = ()) -> None:
        super().__init__(model, applied_passes)
        self.triggered_bugs = list(triggered_bugs)

    def run(self, inputs: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
        values: Dict[str, np.ndarray] = {}
        for name in self.model.inputs:
            if name not in inputs:
                raise ExecutionError(f"missing graph input {name!r}")
            values[name] = np.asarray(
                inputs[name], dtype=self.model.type_of(name).dtype.numpy)
        for name, array in self.model.initializers.items():
            values[name] = np.asarray(array)
        try:
            for node in self.model.topological_order():
                node_inputs = [values[name] for name in node.inputs]
                results = self._dispatch(node, node_inputs)
                values.update(zip(node.outputs, results))
        except ReproError:
            raise
        except (ValueError, IndexError, KeyError) as exc:
            raise ExecutionError(f"Turbo runtime failure: {exc}") from exc
        return {name: values[name] for name in self.model.outputs}

    def _dispatch(self, node: Node, inputs: List[np.ndarray]) -> List[np.ndarray]:
        if node.op == "Clip" and node.attrs.get("_turbo_unsigned_bounds"):
            # Seeded semantic bug: int32 Clip bounds interpreted as unsigned.
            (x,) = inputs
            low = node.attrs.get("min")
            high = node.attrs.get("max")
            low = 0 if low is None else abs(int(low))
            high = np.iinfo(np.int64).max if high is None else abs(int(high))
            return [np.clip(x, low, high).astype(x.dtype)]
        if node.op == "BatchNorm" and node.attrs.get("_turbo_fold_no_epsilon"):
            # Seeded semantic bug: Conv+BN folding forgets the epsilon term.
            x, scale, bias, mean, var = inputs
            shape = (1, -1) + (1,) * (x.ndim - 2)
            out = (x - mean.reshape(shape)) / np.sqrt(var.reshape(shape)) * \
                scale.reshape(shape) + bias.reshape(shape)
            return [out.astype(np.float64 if x.dtype.kind != "f" else x.dtype)]
        if node.op == "Softmax" and node.attrs.get("_turbo_unnormalized"):
            # Seeded semantic bug: fused Add+Softmax skips re-normalization.
            (x,) = inputs
            axis = int(node.attrs.get("axis", -1))
            shifted = x - np.max(x, axis=axis, keepdims=True)
            return [np.exp(shifted).astype(x.dtype if x.dtype.kind == "f" else np.float64)]
        return semantics.execute_node(node, inputs)


@register_compiler
class TurboCompiler(Compiler):
    """TensorRT analogue: kernel-selecting builder, closed source."""

    name = "turbo"
    open_source = False

    def __init__(self, options: CompileOptions = None) -> None:
        super().__init__(options)

    def compile_model(self, model: Model) -> TurboEngine:
        triggered: List[str] = []
        engine_graph = self._import(model, triggered)
        applied = []
        if self.options.opt_level > 0:
            applied = self._build(engine_graph, triggered)
        return TurboEngine(engine_graph, applied, triggered)

    # ------------------------------------------------------------------ #
    def _import(self, model: Model, triggered: List[str]) -> Model:
        problems = validation_errors(model)
        if problems:
            raise ConversionError("Turbo: model failed import: " + problems[0])
        imported = model.clone()
        for node in imported.nodes:
            if node.op == "Clip" and node.attrs.get("opset_unsupported"):
                dtype = imported.type_of(node.inputs[0]).dtype
                if dtype in (DType.int32, DType.int64) and \
                        self.options.bugs.enabled("turbo-clip-int32-dtype"):
                    # BUG: the ill-formed node is accepted and mis-lowered.
                    triggered.append("turbo-clip-int32-dtype")
                    node.attrs["_turbo_unsigned_bounds"] = True
                    node.attrs.pop("opset_unsupported", None)
                    continue
                raise ConversionError(
                    "Turbo: model uses a construct this format version "
                    "does not allow")
            if node.attrs.get("opset_unsupported"):
                raise ConversionError(
                    "Turbo: model uses a construct this format version does "
                    "not allow")
        return imported

    def _build(self, graph: Model, triggered: List[str]) -> List[str]:
        """The "builder" phase: kernel selection and aggressive fusion."""
        applied = ["KernelSelection"]
        for node in list(graph.nodes):
            if node.op == "Pow" and self.options.bugs.enabled(
                    "turbo-pow-kernel-large-exponent"):
                exponent_type = graph.type_of(node.inputs[1])
                if exponent_type.rank >= 3:
                    triggered.append("turbo-pow-kernel-large-exponent")
                    raise TransformationError(
                        "[turbo-pow-kernel-large-exponent] no kernel "
                        "implementation for high-rank exponent tensors")
            if node.op in ("MaxPool2d", "AvgPool2d") and self.options.bugs.enabled(
                    "turbo-pool-pad-exceeds-kernel"):
                padding = int(node.attrs.get("padding", 0))
                kernel = min(int(node.attrs["kh"]), int(node.attrs["kw"]))
                if padding * 2 > kernel:
                    triggered.append("turbo-pool-pad-exceeds-kernel")
                    raise TransformationError(
                        "[turbo-pool-pad-exceeds-kernel] pooling padding "
                        "exceeds half the kernel size")
            if node.op == "Concat" and self.options.bugs.enabled(
                    "turbo-concat-many-inputs"):
                if len(node.inputs) > 4:
                    triggered.append("turbo-concat-many-inputs")
                    raise TransformationError(
                        "[turbo-concat-many-inputs] concat descriptor "
                        "overflow for more than four inputs")
        applied.extend(self._fuse(graph, triggered))
        return applied

    def _fuse(self, graph: Model, triggered: List[str]) -> List[str]:
        applied = []
        producers = graph.producer_map()
        for node in list(graph.nodes):
            if node.op == "Softmax" and int(node.attrs.get("axis", -1)) == 0 and \
                    self.options.bugs.enabled("turbo-softmax-axis0-fusion"):
                upstream = producers.get(node.inputs[0])
                if upstream is not None and upstream.op == "Add":
                    # BUG: the fused Add+Softmax kernel skips normalization.
                    triggered.append("turbo-softmax-axis0-fusion")
                    node.attrs["_turbo_unnormalized"] = True
                    applied.append("FuseAddSoftmax")
            if node.op == "BatchNorm" and self.options.bugs.enabled(
                    "turbo-batchnorm-fold-var0"):
                upstream = producers.get(node.inputs[0])
                if upstream is not None and upstream.op == "Conv2d":
                    # BUG: folding drops the epsilon stabilizer.
                    triggered.append("turbo-batchnorm-fold-var0")
                    node.attrs["_turbo_fold_no_epsilon"] = True
                    applied.append("FoldConvBatchNorm")
        return applied
