"""Turbo: the TensorRT analogue (closed-source stand-in; bug counting only)."""

from repro.compilers.turbo.compiler import TurboCompiler, TurboEngine

__all__ = ["TurboCompiler", "TurboEngine"]
