"""Stage-aware IR verifier: well-formedness checks at pass boundaries.

The generator guarantees well-formed models *by construction*; nothing
guarantees the compilers keep them that way.  A pass can leave a dangling
value reference, a stale recorded type or an attribute outside the operator
schema and the IR will often still execute — the "silently corrupted IR"
gap this verifier closes.

Each pipeline stage (see :data:`repro.compilers.pipeline.STAGES`) has an
*adapter*: an ordered list of invariant checkers over that stage's IR type —

* ``"graphrt"`` — the interchange :class:`repro.graph.model.Model`;
* ``"deepc-graph"`` — :class:`repro.compilers.deepc.ir.DGraph`;
* ``"deepc-low"`` — :class:`repro.compilers.deepc.lowir.LowModule`.

Each checker returns a list of problem strings (empty when the invariant
holds).  :func:`verify_ir` aggregates them in registration order, so
multi-error reports have a deterministic, pinnable order.
:func:`check_pass_boundary` is the hook :func:`~repro.compilers.pipeline.run_pass_pipeline`
calls when verification is enabled; it raises
:class:`~repro.errors.IRVerificationError` naming the offending pass.

Invariants are either *errors* (raise at pass boundaries) or *advisory*
(reported by :func:`verify_ir` with ``include_advisory=True`` only) —
unreachable nodes are advisory because a mid-pipeline IR legitimately
carries dead nodes until dead-code elimination runs.  User code can add
project-specific invariants with :func:`register_invariant` (see
``examples/custom_lint.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.compilers.pipeline import STAGES
from repro.errors import IRVerificationError
from repro.graph.model import Model
from repro.graph.validate import node_label, validation_errors
from repro.ops.registry import SHARED_ATTRS, declared_attrs

#: Buffer kinds a lowered kernel may declare.
_BUFFER_KINDS = ("input", "param", "intermediate", "output")


@dataclass(frozen=True)
class Invariant:
    """One named well-formedness check over a stage's IR."""

    name: str
    check: Callable[[object], List[str]]
    advisory: bool = False


_INVARIANTS: Dict[str, List[Invariant]] = {stage: [] for stage in STAGES}


def register_invariant(stage: str, check: Callable[[object], List[str]], *,
                       name: Optional[str] = None,
                       advisory: bool = False) -> Callable[[object], List[str]]:
    """Add an invariant checker to a stage's adapter.

    ``check(ir)`` must return a list of problem strings (empty when the
    invariant holds).  Advisory invariants never fail a pass boundary.
    Returns ``check`` so it can be used as a decorator.
    """
    if stage not in _INVARIANTS:
        raise KeyError(f"unknown pipeline stage {stage!r}; "
                       f"available: {list(STAGES)}")
    _INVARIANTS[stage].append(
        Invariant(name or check.__name__, check, advisory))
    return check


def registered_invariants(stage: str) -> List[Invariant]:
    """The invariants of a stage's adapter, in aggregation order."""
    if stage not in _INVARIANTS:
        raise KeyError(f"unknown pipeline stage {stage!r}; "
                       f"available: {list(STAGES)}")
    return list(_INVARIANTS[stage])


def verify_ir(stage: str, ir, *, include_advisory: bool = False) -> List[str]:
    """Run a stage's adapter over an IR; returns every problem found.

    Problems appear in (invariant registration, discovery) order so that
    multi-error reports are deterministic.
    """
    problems: List[str] = []
    for invariant in registered_invariants(stage):
        if invariant.advisory and not include_advisory:
            continue
        problems.extend(invariant.check(ir))
    return problems


def check_pass_boundary(stage: str, ir, after: Optional[str]) -> None:
    """Raise :class:`IRVerificationError` when an IR is ill-formed.

    ``after`` names the pass that just ran (``None`` means the pipeline
    entry — the front end handed the pipeline a broken IR).
    """
    problems = verify_ir(stage, ir)
    if not problems:
        return
    where = f"after pass {after}" if after else "at pipeline entry"
    raise IRVerificationError(
        f"{stage} IR verification failed {where}: " + "; ".join(problems))


# --------------------------------------------------------------------------- #
# Shared model-IR invariants (graphrt model IR and DeepC graph IR)
# --------------------------------------------------------------------------- #
def _structure_and_types(model: Model) -> List[str]:
    """Topological soundness, dangling refs, recorded-vs-inferred types.

    Delegates to :func:`repro.graph.validate.validation_errors`, which the
    compilers also run at import time; internal fused operators participate
    because their packages register shape-inference rules alongside their
    kernels.
    """
    return validation_errors(model)


def _duplicate_defs(model: Model) -> List[str]:
    """Every value has exactly one definition site; node names are unique."""
    problems: List[str] = []
    seen_nodes: Dict[str, str] = {}
    producers: Dict[str, str] = {}
    sources = set(model.inputs) | set(model.initializers)
    for node in model.nodes:
        label = node_label(model, node)
        if node.name in seen_nodes:
            problems.append(f"{label}: duplicate node name "
                            f"(also used by {seen_nodes[node.name]})")
        seen_nodes.setdefault(node.name, label)
        for output_name in node.outputs:
            if output_name in producers:
                problems.append(
                    f"{label}: output {output_name!r} already produced by "
                    f"{producers[output_name]}")
            elif output_name in sources:
                problems.append(
                    f"{label}: output {output_name!r} shadows a graph "
                    f"input/initializer")
            producers.setdefault(output_name, label)
    duplicated = set(model.inputs) & set(model.initializers)
    for name in sorted(duplicated):
        problems.append(
            f"value {name!r} is declared both graph input and initializer")
    return problems


def _attribute_conformance(model: Model) -> List[str]:
    """Node attributes stay inside the operator registry's schemas.

    Underscore-prefixed attributes are backend-internal hints (kernel
    selection tags like ``_graphrt_repack_blocks``) and exempt, as are the
    :data:`~repro.ops.registry.SHARED_ATTRS` every front end understands.
    """
    problems: List[str] = []
    for node in model.nodes:
        allowed = set(declared_attrs(node.op))
        allowed.update(SHARED_ATTRS)
        for key in sorted(node.attrs):
            if key.startswith("_") or key in allowed:
                continue
            problems.append(
                f"{node_label(model, node)}: unknown attribute "
                f"{key}={node.attrs[key]!r} outside the {node.op} schema")
    return problems


def _initializer_discipline(model: Model) -> List[str]:
    """Initializers and graph inputs are read-only and never aliased."""
    problems: List[str] = []
    read_only = set(model.inputs) | set(model.initializers)
    for node in model.nodes:
        for output_name in node.outputs:
            if output_name in read_only:
                problems.append(
                    f"{node_label(model, node)}: writes read-only value "
                    f"{output_name!r}")
    names = sorted(model.initializers)
    for i, first in enumerate(names):
        for second in names[i + 1:]:
            if model.initializers[first] is model.initializers[second]:
                problems.append(
                    f"initializers {first!r} and {second!r} alias the same "
                    f"array object")
    return problems


def _unreachable_nodes(model: Model) -> List[str]:
    """Nodes that cannot reach any graph output (advisory: DCE's job)."""
    try:
        producers = model.producer_map()
    except Exception:  # structurally broken; the error invariants report it
        return []
    live = set(model.outputs)
    frontier = [name for name in model.outputs]
    while frontier:
        value = frontier.pop()
        node = producers.get(value)
        if node is None:
            continue
        for input_name in node.inputs:
            if input_name not in live:
                live.add(input_name)
                frontier.append(input_name)
    live_nodes = {id(node) for node in producers.values()
                  if any(out in live for out in node.outputs)}
    return [f"{node_label(model, node)}: unreachable from any graph output"
            for node in model.nodes if id(node) not in live_nodes]


# --------------------------------------------------------------------------- #
# DeepC graph-IR invariants (annotation/layout/fusion-group integrity)
# --------------------------------------------------------------------------- #
def _dgraph_annotations(graph) -> List[str]:
    """Layouts, fusion groups and annotations reference live IR objects."""
    problems: List[str] = []
    node_names = {node.name for node in graph.nodes}
    for value in sorted(graph.layouts):
        if value not in graph.value_types:
            problems.append(f"layout tag on unknown value {value!r}")
        elif graph.layouts[value] not in ("NCHW", "NCHW4c"):
            problems.append(f"value {value!r} has unknown layout "
                            f"{graph.layouts[value]!r}")
    grouped: Dict[str, int] = {}
    for index, group in enumerate(graph.fusion_groups):
        if not group:
            problems.append(f"fusion group #{index} is empty")
        for member in group:
            if member not in node_names:
                problems.append(
                    f"fusion group #{index} references unknown node {member!r}")
            elif member in grouped:
                problems.append(
                    f"node {member!r} appears in fusion groups "
                    f"#{grouped[member]} and #{index}")
            grouped.setdefault(member, index)
    for name in sorted(graph.annotations):
        if name not in node_names:
            problems.append(f"annotation on unknown node {name!r}")
    return problems


# --------------------------------------------------------------------------- #
# DeepC low-IR invariants
# --------------------------------------------------------------------------- #
def _low_structure(module) -> List[str]:
    """Buffer references resolve, defs precede uses, kernels are consistent."""
    problems: List[str] = []
    seen_kernels: Dict[str, int] = {}
    for k_index, kernel in enumerate(module.kernels):
        prefix = f"kernel #{k_index} {kernel.name}"
        if kernel.name in seen_kernels:
            problems.append(f"{prefix}: duplicate kernel name (also kernel "
                            f"#{seen_kernels[kernel.name]})")
        seen_kernels.setdefault(kernel.name, k_index)
        for name, buf in kernel.buffers.items():
            if buf.name != name:
                problems.append(f"{prefix}: buffer registered as {name!r} "
                                f"but named {buf.name!r}")
            if buf.kind not in _BUFFER_KINDS:
                problems.append(f"{prefix}: buffer {name!r} has unknown kind "
                                f"{buf.kind!r}")
        for role, names in (("input", kernel.inputs), ("output", kernel.outputs)):
            for name in names:
                if name not in kernel.buffers:
                    problems.append(f"{prefix}: declared {role} {name!r} has "
                                    f"no buffer")
        written = {name for name in kernel.inputs}
        written.update(name for name, buf in kernel.buffers.items()
                       if buf.kind in ("input", "param"))
        for i_index, instr in enumerate(kernel.instrs):
            where = f"{prefix} instr #{i_index} {instr.name} ({instr.op})"
            for name in instr.inputs:
                if name not in kernel.buffers:
                    problems.append(f"{where}: reads unknown buffer {name!r}")
                elif name not in written:
                    problems.append(f"{where}: reads buffer {name!r} before "
                                    f"it is written")
            for name in instr.outputs:
                if name not in kernel.buffers:
                    problems.append(f"{where}: writes unknown buffer {name!r}")
                elif kernel.buffers[name].kind in ("input", "param"):
                    problems.append(f"{where}: writes read-only "
                                    f"{kernel.buffers[name].kind} buffer {name!r}")
                written.add(name)
            if instr.loop_extent < 0:
                problems.append(f"{where}: negative loop extent "
                                f"{instr.loop_extent}")
            if instr.vector_width is not None and instr.vector_width < 1:
                problems.append(f"{where}: invalid vector width "
                                f"{instr.vector_width}")
            if instr.index_dtype not in ("int32", "int64"):
                problems.append(f"{where}: unknown index dtype "
                                f"{instr.index_dtype!r}")
        for name in kernel.outputs:
            if name in kernel.buffers and name not in written:
                problems.append(f"{prefix}: declared output {name!r} is never "
                                f"written")
    for name in module.graph_outputs:
        if name not in module.value_types:
            problems.append(f"module output {name!r} has no recorded type")
    for name in sorted(module.params):
        if name not in module.value_types:
            problems.append(f"module param {name!r} has no recorded type")
    return problems


# --------------------------------------------------------------------------- #
# Adapter registration (aggregation order is the pinned report order)
# --------------------------------------------------------------------------- #
for _stage in ("graphrt", "deepc-graph"):
    register_invariant(_stage, _structure_and_types, name="structure-and-types")
    register_invariant(_stage, _duplicate_defs, name="duplicate-defs")
    register_invariant(_stage, _attribute_conformance,
                       name="attribute-conformance")
    register_invariant(_stage, _initializer_discipline,
                       name="initializer-discipline")
    register_invariant(_stage, _unreachable_nodes, name="unreachable-nodes",
                       advisory=True)
register_invariant("deepc-graph", _dgraph_annotations,
                   name="annotation-integrity")
register_invariant("deepc-low", _low_structure, name="low-structure")
