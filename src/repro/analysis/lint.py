"""AST-based contract linter for the repro engine's own source.

Differential fuzzing only works when the harness itself is deterministic
and side-effect free: a kernel that mutates its input arrays corrupts the
interpreter's value environment, an unseeded global random draw breaks
bit-identical finding replay, a raw wall-clock read outside the injectable
timer seam makes perf verdicts machine-dependent, and iterating an
unordered ``set`` into a wire frame or finding makes coordinator/worker
runs diverge.  This module walks the Python AST of the engine's sources
and reports violations of those contracts:

``kernel-input-mutation``
    A function registered with :func:`repro.ops.semantics.kernel` (or any
    ``@kernel("...")`` decorator) assigns into, augments, or calls a known
    in-place-mutating method on one of its parameters or a value unpacked
    from them.  Kernels must allocate their outputs.

``unseeded-global-random``
    A draw from the process-global RNG (``np.random.rand(...)``,
    ``random.random()``, ...) instead of an explicit seeded generator
    (``np.random.default_rng(seed)``, ``random.Random(seed)``).

``wall-clock-call``
    A direct *call* of ``time.time``/``monotonic``/``perf_counter``/
    ``process_time`` or ``datetime.now``/``utcnow``/``today``.  Passing
    the function itself (``timer or time.perf_counter``) is the injectable
    seam and stays legal — only reading the clock inline is flagged.

``set-order-escape``
    An unordered set's iteration order escaping into ordered output:
    ``tuple(...)``/``list(...)``/``"".join(...)`` over a set expression,
    or a ``for``/comprehension iterating one, without ``sorted``.

Findings are ratcheted against a committed baseline
(``tools/lint_baseline.json``): per ``(rule, file)`` counts may only go
*down*.  New violations fail the run (and the tier-1 smoke test); fixing
old ones and re-running with ``--update-baseline`` burns the debt down.

Usage::

    PYTHONPATH=src python -m repro.analysis.lint [paths...] \\
        [--baseline tools/lint_baseline.json] [--update-baseline]

Third-party checks plug in through :func:`register_lint_rule` — see
``examples/custom_lint.py``.
"""

from __future__ import annotations

import argparse
import ast
import json
import os
import sys
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

#: numpy.random constructors that are fine to touch: they *build* seeded
#: generators rather than drawing from the global state.
_NP_RANDOM_OK = {"default_rng", "SeedSequence", "Generator", "BitGenerator",
                 "RandomState", "PCG64", "Philox", "SFC64", "MT19937"}
#: stdlib ``random`` module members that draw from the global instance.
_STDLIB_RANDOM_DRAWS = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate", "betavariate",
    "expovariate", "triangular", "getrandbits", "seed",
}
#: Direct clock reads; passing these functions (no call) is the seam.
_CLOCK_CALLS = {
    ("time", "time"), ("time", "monotonic"), ("time", "perf_counter"),
    ("time", "process_time"), ("time", "monotonic_ns"), ("time", "time_ns"),
    ("time", "perf_counter_ns"),
    ("datetime", "now"), ("datetime", "utcnow"), ("datetime", "today"),
}
#: ndarray/list methods that mutate their receiver in place.
_MUTATING_METHODS = {"sort", "fill", "resize", "put", "partition",
                     "setflags", "itemset", "append", "extend", "insert",
                     "remove", "pop", "clear", "update", "setdefault"}


@dataclass(frozen=True)
class LintFinding:
    """One contract violation at a source location."""

    rule: str
    path: str          # as given on the command line (relative-friendly)
    line: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


#: rule name -> checker(tree, path) -> iterable of findings.
RuleChecker = Callable[[ast.AST, str], Iterable[LintFinding]]
_RULES: Dict[str, RuleChecker] = {}


def register_lint_rule(name: str) -> Callable[[RuleChecker], RuleChecker]:
    """Decorator registering a lint rule (extension point).

    The checker receives the parsed module tree and the file path and
    yields :class:`LintFinding`.  User rules registered before
    :func:`lint_paths` runs participate exactly like the builtin ones,
    including the ratchet baseline.
    """

    def wrap(func: RuleChecker) -> RuleChecker:
        _RULES[name] = func
        return func

    return wrap


def registered_lint_rules() -> Tuple[str, ...]:
    return tuple(_RULES)


# --------------------------------------------------------------------------- #
# Shared AST helpers
# --------------------------------------------------------------------------- #
def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for an attribute/name chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_set_expr(node: ast.AST) -> bool:
    """Does this expression statically evaluate to an unordered set?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) and \
            node.func.id in ("set", "frozenset"):
        return True
    if isinstance(node, ast.BinOp) and \
            isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


def _walk_functions(tree: ast.AST):
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


# --------------------------------------------------------------------------- #
# Builtin rules
# --------------------------------------------------------------------------- #
def _is_kernel_decorator(decorator: ast.AST) -> bool:
    if not isinstance(decorator, ast.Call):
        return False
    name = _dotted(decorator.func)
    return name is not None and name.split(".")[-1] == "kernel"


@register_lint_rule("kernel-input-mutation")
def _check_kernel_mutation(tree: ast.AST, path: str):
    """Kernels must not mutate their input arrays in place."""
    for func in _walk_functions(tree):
        if not any(_is_kernel_decorator(d) for d in func.decorator_list):
            continue
        params = {arg.arg for arg in func.args.args + func.args.kwonlyargs}
        # Track names bound *from* the parameters (``x, = inputs`` /
        # ``x = inputs[0]``): mutating those mutates caller-owned arrays.
        derived = set(params)
        for node in ast.walk(func):
            if isinstance(node, ast.Assign) and _reads_only(node.value, derived):
                for target in node.targets:
                    for name_node in ast.walk(target):
                        if isinstance(name_node, ast.Name):
                            derived.add(name_node.id)
        for node in ast.walk(func):
            target = None
            if isinstance(node, ast.AugAssign):
                target = node.target
            elif isinstance(node, ast.Assign):
                for tgt in node.targets:
                    if isinstance(tgt, ast.Subscript):
                        target = tgt
            elif isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute) and \
                    node.func.attr in _MUTATING_METHODS:
                target = node.func.value
            if target is None:
                continue
            base = target
            while isinstance(base, (ast.Subscript, ast.Attribute)):
                base = base.value
            if isinstance(base, ast.Name) and base.id in derived and (
                    isinstance(target, ast.Subscript) or
                    isinstance(node, (ast.Call, ast.AugAssign))):
                yield LintFinding(
                    "kernel-input-mutation", path, node.lineno,
                    f"kernel {func.name!r} mutates input-derived value "
                    f"{base.id!r} in place; kernels must allocate outputs")


def _reads_only(expr: ast.AST, names: set) -> bool:
    """Is ``expr`` just a read of one of ``names`` (subscript/attr ok)?"""
    base = expr
    while isinstance(base, (ast.Subscript, ast.Attribute, ast.Starred)):
        base = base.value
    return isinstance(base, ast.Name) and base.id in names


@register_lint_rule("unseeded-global-random")
def _check_global_random(tree: ast.AST, path: str):
    """No draws from the process-global RNG — findings must replay."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        name = _dotted(node.func)
        if name is None:
            continue
        parts = name.split(".")
        if len(parts) >= 2 and parts[-2] == "random" and \
                parts[0] in ("np", "numpy") and \
                parts[-1] not in _NP_RANDOM_OK:
            yield LintFinding(
                "unseeded-global-random", path, node.lineno,
                f"global numpy RNG draw {name}(); use a seeded "
                f"np.random.default_rng(...) generator")
        elif parts == ["random"] or (
                len(parts) == 2 and parts[0] == "random"
                and parts[1] in _STDLIB_RANDOM_DRAWS):
            yield LintFinding(
                "unseeded-global-random", path, node.lineno,
                f"global stdlib RNG draw {name}(); use a seeded "
                f"random.Random(...) instance")


@register_lint_rule("wall-clock-call")
def _check_wall_clock(tree: ast.AST, path: str):
    """Clock reads must go through an injectable timer seam."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        name = _dotted(node.func)
        if name is None:
            continue
        parts = name.split(".")
        if len(parts) >= 2 and (parts[-2], parts[-1]) in _CLOCK_CALLS:
            yield LintFinding(
                "wall-clock-call", path, node.lineno,
                f"direct clock read {name}(); route it through an "
                f"injectable timer (pass the function, call the seam)")


@register_lint_rule("set-order-escape")
def _check_set_order(tree: ast.AST, path: str):
    """Unordered set iteration must not reach ordered output."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Name) and \
                node.func.id in ("tuple", "list") and \
                node.args and _is_set_expr(node.args[0]):
            yield LintFinding(
                "set-order-escape", path, node.lineno,
                f"{node.func.id}() over a set expression leaks arbitrary "
                f"iteration order; wrap it in sorted(...)")
        elif isinstance(node, ast.For) and _is_set_expr(node.iter):
            yield LintFinding(
                "set-order-escape", path, node.lineno,
                "for-loop over a set expression has arbitrary order; "
                "iterate sorted(...) instead")
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            for comp in node.generators:
                if _is_set_expr(comp.iter):
                    yield LintFinding(
                        "set-order-escape", path, node.lineno,
                        "comprehension over a set expression has arbitrary "
                        "order; iterate sorted(...) instead")


# --------------------------------------------------------------------------- #
# Driver + ratchet baseline
# --------------------------------------------------------------------------- #
def lint_file(path: str, root: Optional[str] = None) -> List[LintFinding]:
    """All findings for one Python source file, in (line, rule) order."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    tree = ast.parse(source, filename=path)
    shown = os.path.relpath(path, root) if root else path
    findings: List[LintFinding] = []
    for checker in _RULES.values():
        findings.extend(checker(tree, shown))
    return sorted(findings, key=lambda f: (f.line, f.rule))


def lint_paths(paths: Sequence[str],
               root: Optional[str] = None) -> List[LintFinding]:
    """Lint files and directories (recursively, ``*.py`` only)."""
    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames.sort()
                files.extend(os.path.join(dirpath, name)
                             for name in sorted(filenames)
                             if name.endswith(".py"))
        else:
            files.append(path)
    findings: List[LintFinding] = []
    for path in files:
        findings.extend(lint_file(path, root=root))
    return findings


def findings_by_bucket(findings: Iterable[LintFinding]) -> Dict[str, int]:
    """Ratchet buckets: ``"<rule>:<path>" -> count``."""
    buckets: Dict[str, int] = {}
    for finding in findings:
        key = f"{finding.rule}:{finding.path.replace(os.sep, '/')}"
        buckets[key] = buckets.get(key, 0) + 1
    return buckets


def compare_to_baseline(buckets: Dict[str, int],
                        baseline: Dict[str, int]) -> Tuple[List[str], List[str]]:
    """(regressions, improvements) relative to the committed baseline.

    A bucket above its baselined count is a regression — new debt is not
    allowed.  A bucket below it is an improvement the caller should fold
    into the baseline (``--update-baseline``) so the ratchet only turns
    one way.
    """
    regressions = []
    improvements = []
    for key in sorted(set(buckets) | set(baseline)):
        have, allowed = buckets.get(key, 0), baseline.get(key, 0)
        if have > allowed:
            regressions.append(f"{key}: {have} findings > {allowed} baselined")
        elif have < allowed:
            improvements.append(f"{key}: {have} findings < {allowed} "
                                f"baselined — ratchet the baseline down")
    return regressions, improvements


def load_baseline(path: str) -> Dict[str, int]:
    if not os.path.exists(path):
        return {}
    with open(path, "r", encoding="utf-8") as handle:
        return {str(k): int(v) for k, v in json.load(handle).items()}


def write_baseline(path: str, buckets: Dict[str, int]) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(dict(sorted(buckets.items())), handle, indent=2,
                  sort_keys=True)
        handle.write("\n")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="Contract linter for the repro engine sources "
                    "(determinism / purity invariants, ratchet baseline).")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--baseline", default=None,
                        help="ratchet baseline JSON "
                             "(default: tools/lint_baseline.json when it "
                             "exists relative to the working directory)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline to the current counts "
                             "(use after burning debt down)")
    parser.add_argument("--list", action="store_true", dest="list_all",
                        help="print every finding, baselined or not")
    args = parser.parse_args(argv)

    baseline_path = args.baseline or os.path.join("tools",
                                                  "lint_baseline.json")
    baseline = load_baseline(baseline_path)
    findings = lint_paths(args.paths or ["src"])
    buckets = findings_by_bucket(findings)

    if args.update_baseline:
        write_baseline(baseline_path, buckets)
        print(f"baseline updated: {baseline_path} "
              f"({sum(buckets.values())} findings in {len(buckets)} buckets)")
        return 0

    regressions, improvements = compare_to_baseline(buckets, baseline)
    if args.list_all:
        for finding in findings:
            print(finding.format())
    elif regressions:
        # Show the findings in regressed buckets so the offender is obvious.
        bad = {entry.split(": ", 1)[0] for entry in regressions}
        for finding in findings:
            key = f"{finding.rule}:{finding.path.replace(os.sep, '/')}"
            if key in bad:
                print(finding.format())
    for line in improvements:
        print(f"note: {line}")
    if regressions:
        print(f"\n{len(regressions)} bucket(s) above the ratchet baseline "
              f"({baseline_path}):")
        for line in regressions:
            print(f"  {line}")
        return 1
    print(f"lint clean: {sum(buckets.values())} baselined finding(s), "
          f"0 above the ratchet ({len(findings)} total across "
          f"{len(_RULES)} rules)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
