"""Static analysis over the system itself.

Two tools live here:

* :mod:`repro.analysis.verify` — the stage-aware IR verifier that checks
  well-formedness of each compiler's IR at every pass boundary
  (``--verify-passes``);
* :mod:`repro.analysis.lint` — the AST-based contract linter over the
  repo's own pass/kernel/fabric code (``python -m repro.analysis.lint``).
"""

from repro.analysis.verify import (check_pass_boundary, register_invariant,
                                   verify_ir)

__all__ = ["LintFinding", "check_pass_boundary", "lint_file", "lint_paths",
           "register_invariant", "register_lint_rule", "verify_ir"]

_LINT_EXPORTS = ("LintFinding", "lint_file", "lint_paths",
                 "register_lint_rule")


def __getattr__(name):
    # The linter is re-exported lazily so `python -m repro.analysis.lint`
    # does not import the module twice (runpy's double-import warning).
    if name in _LINT_EXPORTS:
        from repro.analysis import lint
        return getattr(lint, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
