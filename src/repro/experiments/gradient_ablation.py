"""Value-search ablation: Figure 11 and the §2.3/§3.3 NaN-rate statistics.

Model groups of a fixed size (10/20/30 operators in the paper) that contain
at least one vulnerable operator are generated once; each search method
(random sampling, gradient search without proxy derivatives, gradient search
with proxy derivatives) is then run on the *same* models with the *same*
initial values and an increasing per-model time budget, recording the success
rate and the average searching time.

Everything routes through the registry-backed campaign engine: model groups
are produced by a *registered generation strategy* with the engine's pure
``(config, iteration)`` seed streams (:func:`generate_for_iteration`), the
per-model search RNGs come from the engine's value-search stream
(:func:`iteration_rng`), and :func:`run_gradcheck_comparison` runs the
difftest-vs-``gradcheck`` oracle comparison as one oracle-axis matrix
campaign sliced per oracle — the same engine that runs every other
experiment, not a bespoke loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from repro.core.fuzzer import (FuzzerConfig, generate_for_iteration,
                               iteration_rng)
from repro.core.generator import GeneratorConfig
from repro.core.losses import is_vulnerable
from repro.core.strategy import DEFAULT_STRATEGY, build_strategy
from repro.core.value_search import search_values
from repro.graph.model import Model
from repro.runtime.interpreter import Interpreter, random_inputs, random_weights


def _group_config(n_nodes: int, seed: int, strategy: str) -> FuzzerConfig:
    """The engine config whose iteration stream a model group is drawn from."""
    return FuzzerConfig(
        generator=GeneratorConfig(n_nodes=n_nodes),
        seed=seed,
        strategy=strategy,
        probe_operator_support=False,
    )


def build_model_group(n_nodes: int, count: int, seed: int = 0,
                      require_vulnerable: bool = True,
                      max_attempts: Optional[int] = None,
                      strategy: str = DEFAULT_STRATEGY) -> List[Model]:
    """Generate ``count`` models of ``n_nodes`` operators each.

    When ``require_vulnerable`` is set, only models containing at least one
    vulnerable operator (restricted numerical domain) are kept, mirroring the
    paper's Figure 11 setup.  Models come from the registered ``strategy``
    through the campaign engine's per-iteration seed streams, so a group is
    exactly the model population a campaign with the same config would
    explore.
    """
    config = _group_config(n_nodes, seed, strategy)
    generation_strategy = build_strategy(strategy, config)
    models: List[Model] = []
    attempts = 0
    budget = max_attempts if max_attempts is not None else count * 20
    while len(models) < count and attempts < budget:
        attempts += 1
        generated = generate_for_iteration(config, attempts,
                                           generation_strategy)
        if generated is None:
            continue
        if require_vulnerable and not any(
                is_vulnerable(node.op) for node in generated.model.nodes):
            continue
        models.append(generated.model)
    return models


@dataclass
class MethodCurve:
    """Success rate vs average search time for one method (one Fig. 11 line)."""

    method: str
    budgets: List[float] = field(default_factory=list)
    success_rates: List[float] = field(default_factory=list)
    average_times: List[float] = field(default_factory=list)


@dataclass
class GradientAblationResult:
    """Figure 11 data for one model-size group."""

    n_nodes: int
    n_models: int
    curves: Dict[str, MethodCurve] = field(default_factory=dict)

    def best_success_rate(self, method: str) -> float:
        curve = self.curves[method]
        return max(curve.success_rates) if curve.success_rates else 0.0


def run_gradient_ablation(n_nodes: int = 10, n_models: int = 12,
                          budgets_ms: Optional[List[float]] = None,
                          seed: int = 0,
                          methods=("sampling", "gradient", "gradient_proxy"),
                          ) -> GradientAblationResult:
    """Run every search method over one model group with increasing budgets."""
    budgets_ms = budgets_ms or [8.0 * i for i in range(1, 5)]
    models = build_model_group(n_nodes, n_models, seed=seed)
    result = GradientAblationResult(n_nodes=n_nodes, n_models=len(models))
    for method in methods:
        # One engine config per method: the per-model search RNGs are the
        # campaign engine's value-search streams (stream 1 of the iteration
        # seed mix), identical across methods so every method searches the
        # same models from the same starting randomness.
        config = FuzzerConfig(
            generator=GeneratorConfig(n_nodes=n_nodes),
            value_search_method=method,
            seed=seed,
        )
        curve = MethodCurve(method=method)
        for budget_ms in budgets_ms:
            successes = 0
            total_time = 0.0
            for index, model in enumerate(models):
                rng = iteration_rng(config, index + 1)
                search = search_values(model, method=method, rng=rng,
                                       time_budget=budget_ms / 1000.0)
                successes += int(search.success)
                total_time += search.elapsed
            curve.budgets.append(budget_ms)
            curve.success_rates.append(successes / len(models) if models else 0.0)
            curve.average_times.append(
                total_time / len(models) * 1000.0 if models else 0.0)
        result.curves[method] = curve
    return result


# --------------------------------------------------------------------------- #
# Gradient-check comparison (oracle-axis campaign)
# --------------------------------------------------------------------------- #
@dataclass
class GradcheckComparisonResult:
    """Per-oracle seeded-bug sets from one oracle-axis matrix campaign."""

    iterations: int
    #: Oracle name -> seeded bug ids that oracle's cells found.
    bugs_by_oracle: Dict[str, Set[str]] = field(default_factory=dict)

    def gradcheck_only(self) -> Set[str]:
        """Bugs only the gradient check saw (invisible to every other
        oracle in the comparison) — the wrong-VJP class."""
        others: Set[str] = set()
        for oracle, bugs in self.bugs_by_oracle.items():
            if oracle != "gradcheck":
                others |= bugs
        return self.bugs_by_oracle.get("gradcheck", set()) - others


def run_gradcheck_comparison(max_iterations: int = 24, n_nodes: int = 6,
                             seed: int = 0, n_workers: int = 1,
                             oracles: Sequence[str] = ("difftest",
                                                       "gradcheck"),
                             bugs=None) -> GradcheckComparisonResult:
    """Race ``difftest`` against the ``gradcheck`` oracle on shared streams.

    One registry-backed oracle-axis matrix campaign: every oracle judges
    the identical shard seed streams, and the per-oracle Venn slice
    (:func:`repro.experiments.venn.campaign_cell_sets`) shows which seeded
    bugs only the gradient check can see.  This replaces any bespoke
    gradient-experiment loop — the campaign engine owns scheduling,
    checkpointing and provenance.
    """
    from repro.compilers.bugs import BugConfig
    from repro.core.parallel import deterministic_config, run_parallel_campaign
    from repro.experiments.venn import campaign_cell_sets

    config = deterministic_config(FuzzerConfig(
        generator=GeneratorConfig(n_nodes=n_nodes),
        max_iterations=max_iterations,
        bugs=bugs if bugs is not None else BugConfig.all(),
        seed=seed,
    ))
    campaign = run_parallel_campaign(config=config, n_workers=n_workers,
                                     oracles=list(oracles))
    return GradcheckComparisonResult(
        iterations=campaign.iterations,
        bugs_by_oracle=campaign_cell_sets(campaign, by="oracle"))


@dataclass
class NanRateResult:
    """§2.3 statistic: fraction of models whose naive execution hits NaN/Inf."""

    n_nodes: int
    n_models: int
    exceptional_models: int

    @property
    def rate(self) -> float:
        return self.exceptional_models / self.n_models if self.n_models else 0.0


def measure_nan_rate(n_nodes: int = 20, n_models: int = 20,
                     seed: int = 0) -> NanRateResult:
    """How often do default-initialized weights/inputs produce NaN/Inf?

    The paper measures this with PyTorch's default weight initializer, which
    draws values centred on zero; the equivalent here is a standard-normal
    initialization (so operators such as Log, Sqrt and Asin routinely see
    out-of-domain values).
    """
    models = build_model_group(n_nodes, n_models, seed=seed,
                               require_vulnerable=False)
    interpreter = Interpreter(record_intermediates=False)
    exceptional = 0
    for index, model in enumerate(models):
        rng = np.random.default_rng(seed * 17 + index)
        work = model.clone()
        for name, value in random_weights(model, rng, low=-3.0, high=3.0).items():
            work.initializers[name] = value
        inputs = random_inputs(model, rng, low=-3.0, high=3.0)
        run = interpreter.run_detailed(work, inputs)
        exceptional += int(not run.numerically_valid)
    return NanRateResult(n_nodes=n_nodes, n_models=len(models),
                         exceptional_models=exceptional)
