"""Value-search ablation: Figure 11 and the §2.3/§3.3 NaN-rate statistics.

Model groups of a fixed size (10/20/30 operators in the paper) that contain
at least one vulnerable operator are generated once; each search method
(random sampling, gradient search without proxy derivatives, gradient search
with proxy derivatives) is then run on the *same* models with the *same*
initial values and an increasing per-model time budget, recording the success
rate and the average searching time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.generator import GeneratorConfig, generate_model
from repro.core.losses import is_vulnerable
from repro.core.value_search import search_values
from repro.errors import ReproError
from repro.graph.model import Model
from repro.runtime.interpreter import Interpreter, random_inputs, random_weights


def build_model_group(n_nodes: int, count: int, seed: int = 0,
                      require_vulnerable: bool = True,
                      max_attempts: Optional[int] = None) -> List[Model]:
    """Generate ``count`` models of ``n_nodes`` operators each.

    When ``require_vulnerable`` is set, only models containing at least one
    vulnerable operator (restricted numerical domain) are kept, mirroring the
    paper's Figure 11 setup.
    """
    models: List[Model] = []
    attempts = 0
    budget = max_attempts if max_attempts is not None else count * 20
    while len(models) < count and attempts < budget:
        attempts += 1
        try:
            generated = generate_model(GeneratorConfig(
                n_nodes=n_nodes, seed=seed * 104_729 + attempts))
        except ReproError:
            continue
        if require_vulnerable and not any(
                is_vulnerable(node.op) for node in generated.model.nodes):
            continue
        models.append(generated.model)
    return models


@dataclass
class MethodCurve:
    """Success rate vs average search time for one method (one Fig. 11 line)."""

    method: str
    budgets: List[float] = field(default_factory=list)
    success_rates: List[float] = field(default_factory=list)
    average_times: List[float] = field(default_factory=list)


@dataclass
class GradientAblationResult:
    """Figure 11 data for one model-size group."""

    n_nodes: int
    n_models: int
    curves: Dict[str, MethodCurve] = field(default_factory=dict)

    def best_success_rate(self, method: str) -> float:
        curve = self.curves[method]
        return max(curve.success_rates) if curve.success_rates else 0.0


def run_gradient_ablation(n_nodes: int = 10, n_models: int = 12,
                          budgets_ms: Optional[List[float]] = None,
                          seed: int = 0,
                          methods=("sampling", "gradient", "gradient_proxy"),
                          ) -> GradientAblationResult:
    """Run every search method over one model group with increasing budgets."""
    budgets_ms = budgets_ms or [8.0 * i for i in range(1, 5)]
    models = build_model_group(n_nodes, n_models, seed=seed)
    result = GradientAblationResult(n_nodes=n_nodes, n_models=len(models))
    for method in methods:
        curve = MethodCurve(method=method)
        for budget_ms in budgets_ms:
            successes = 0
            total_time = 0.0
            for index, model in enumerate(models):
                rng = np.random.default_rng(seed * 31 + index)
                search = search_values(model, method=method, rng=rng,
                                       time_budget=budget_ms / 1000.0)
                successes += int(search.success)
                total_time += search.elapsed
            curve.budgets.append(budget_ms)
            curve.success_rates.append(successes / len(models) if models else 0.0)
            curve.average_times.append(
                total_time / len(models) * 1000.0 if models else 0.0)
        result.curves[method] = curve
    return result


@dataclass
class NanRateResult:
    """§2.3 statistic: fraction of models whose naive execution hits NaN/Inf."""

    n_nodes: int
    n_models: int
    exceptional_models: int

    @property
    def rate(self) -> float:
        return self.exceptional_models / self.n_models if self.n_models else 0.0


def measure_nan_rate(n_nodes: int = 20, n_models: int = 20,
                     seed: int = 0) -> NanRateResult:
    """How often do default-initialized weights/inputs produce NaN/Inf?

    The paper measures this with PyTorch's default weight initializer, which
    draws values centred on zero; the equivalent here is a standard-normal
    initialization (so operators such as Log, Sqrt and Asin routinely see
    out-of-domain values).
    """
    models = build_model_group(n_nodes, n_models, seed=seed,
                               require_vulnerable=False)
    interpreter = Interpreter(record_intermediates=False)
    exceptional = 0
    for index, model in enumerate(models):
        rng = np.random.default_rng(seed * 17 + index)
        work = model.clone()
        for name, value in random_weights(model, rng, low=-3.0, high=3.0).items():
            work.initializers[name] = value
        inputs = random_inputs(model, rng, low=-3.0, high=3.0)
        run = interpreter.run_detailed(work, inputs)
        exceptional += int(not run.numerically_valid)
    return NanRateResult(n_nodes=n_nodes, n_models=len(models),
                         exceptional_models=exceptional)
