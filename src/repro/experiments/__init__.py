"""Experiment drivers regenerating every table and figure of the paper."""

from repro.experiments.binning_ablation import (
    BinningCoverageResult,
    InstanceDiversityResult,
    run_binning_coverage,
    run_instance_diversity,
)
from repro.experiments.bug_study import (
    BugTable,
    CrashComparisonResult,
    crash_comparison,
    reachability_analysis,
    run_bug_study,
)
from repro.experiments.coverage_experiment import (
    CoverageCampaignResult,
    NNSmithCaseGenerator,
    StrategyCaseGenerator,
    make_case_generator,
    run_coverage_campaign,
    run_fuzzer_comparison,
    run_tzer_campaign,
)
# NOTE: repro.experiments.table2 is intentionally NOT imported here — it is
# a `python -m` entry point (`make table2`), and importing it from the
# package __init__ would trigger runpy's double-import warning.  Import it
# directly: `from repro.experiments.table2 import run_table2`.
from repro.experiments.gradient_ablation import (
    GradcheckComparisonResult,
    GradientAblationResult,
    NanRateResult,
    build_model_group,
    measure_nan_rate,
    run_gradcheck_comparison,
    run_gradient_ablation,
)
from repro.experiments.venn import (
    campaign_cell_sets,
    campaign_venn,
    format_venn_table,
    totals,
    unique_counts,
    venn_regions,
)

__all__ = [
    "BinningCoverageResult",
    "BugTable",
    "CoverageCampaignResult",
    "CrashComparisonResult",
    "GradcheckComparisonResult",
    "GradientAblationResult",
    "InstanceDiversityResult",
    "NNSmithCaseGenerator",
    "NanRateResult",
    "StrategyCaseGenerator",
    "build_model_group",
    "crash_comparison",
    "campaign_cell_sets",
    "campaign_venn",
    "format_venn_table",
    "make_case_generator",
    "measure_nan_rate",
    "reachability_analysis",
    "run_binning_coverage",
    "run_bug_study",
    "run_coverage_campaign",
    "run_fuzzer_comparison",
    "run_gradcheck_comparison",
    "run_gradient_ablation",
    "run_instance_diversity",
    "run_tzer_campaign",
    "totals",
    "unique_counts",
    "venn_regions",
]
