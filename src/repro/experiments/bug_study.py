"""Bug study: Table 3 and the §5.4 comparisons.

Three analyses reproduce the paper's bug-finding evaluation against the
seeded-bug population:

* :func:`run_bug_study` — a fuzzing campaign with every seeded bug enabled;
  found bugs are attributed to their system / phase / symptom, producing the
  Table 3 distribution;
* :func:`reachability_analysis` — the design-level argument ("49 of 72 bugs
  cannot be triggered by LEMON's or GraphFuzzer's designs"): a bug is
  reachable by a generator design iff the design provides every model feature
  the bug's trigger requires;
* :func:`crash_comparison` — the empirical head-to-head: run every tool for
  the same budget and count unique crashes per compiler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set

from repro.compilers import CompileOptions, DeepCCompiler, GraphRTCompiler, TurboCompiler
from repro.compilers.bugs import (
    FEATURE_ATTR_DIVERSITY,
    FEATURE_BROADCAST,
    FEATURE_FLOAT64,
    FEATURE_INT_DTYPE,
    FEATURE_MULTI_INPUT,
    FEATURE_MULTI_OP,
    FEATURE_NON_SHAPE_PRESERVING,
    FEATURE_SCALAR,
    FEATURE_SHAPE_OPS,
    FEATURE_VECTOR_MATMUL,
    BugConfig,
    BugSpec,
    all_bugs,
    bug_spec,
)
from repro.core.fuzzer import CampaignResult, Fuzzer, FuzzerConfig
from repro.core.generator import GeneratorConfig

#: Model features each generator design can produce (used for reachability).
GENERATOR_FEATURES: Dict[str, FrozenSet[str]] = {
    "nnsmith": frozenset({
        FEATURE_MULTI_OP, FEATURE_NON_SHAPE_PRESERVING, FEATURE_BROADCAST,
        FEATURE_ATTR_DIVERSITY, FEATURE_SCALAR, FEATURE_INT_DTYPE,
        FEATURE_FLOAT64, FEATURE_VECTOR_MATMUL, FEATURE_SHAPE_OPS,
        FEATURE_MULTI_INPUT,
    }),
    # GraphFuzzer connects non-unary operators but only in shape-preserving
    # configurations, aligns shapes with slicing, uses default attributes and
    # float32/float64 tensors; it never produces scalars, broadcasts, integer
    # tensors or diverse attributes.
    "graphfuzzer": frozenset({
        FEATURE_MULTI_OP, FEATURE_MULTI_INPUT, FEATURE_SHAPE_OPS, FEATURE_FLOAT64,
    }),
    # LEMON only mutates shape-preserving unary layers of float32 seed models.
    "lemon": frozenset({FEATURE_MULTI_OP, FEATURE_MULTI_INPUT}),
}


def make_compilers(bugs: BugConfig):
    """The three systems under test with a shared bug configuration."""
    return [
        GraphRTCompiler(CompileOptions(opt_level=2, bugs=bugs)),
        DeepCCompiler(CompileOptions(opt_level=2, bugs=bugs)),
        TurboCompiler(CompileOptions(opt_level=2, bugs=bugs)),
    ]


# --------------------------------------------------------------------------- #
# Table 3
# --------------------------------------------------------------------------- #
@dataclass
class BugTable:
    """The Table 3 analogue: bug counts per system and phase."""

    found: Set[str] = field(default_factory=set)
    campaign: Optional[CampaignResult] = None

    def specs(self) -> List[BugSpec]:
        return [bug_spec(bug_id) for bug_id in sorted(self.found)]

    def count(self, system: Optional[str] = None, phase: Optional[str] = None,
              symptom: Optional[str] = None) -> int:
        total = 0
        for spec in self.specs():
            if system is not None and spec.system != system:
                continue
            if phase is not None and spec.phase != phase:
                continue
            if symptom is not None and spec.symptom != symptom:
                continue
            total += 1
        return total

    def rows(self) -> List[Dict[str, object]]:
        """Rows matching the paper's Table 3 layout."""
        display = {"graphrt": "GraphRT", "deepc": "DeepC", "turbo": "Turbo",
                   "exporter": "Exporter"}
        rows = []
        for system in ("graphrt", "deepc", "turbo", "exporter"):
            rows.append({
                "system": display[system],
                "transformation": self.count(system, "transformation"),
                "conversion": self.count(system, "conversion"),
                "unclassified": self.count(system, "unclassified"),
                "total": self.count(system),
            })
        rows.append({
            "system": "Total",
            "transformation": self.count(phase="transformation"),
            "conversion": self.count(phase="conversion"),
            "unclassified": self.count(phase="unclassified"),
            "total": self.count(),
        })
        return rows

    def crash_semantic_split(self):
        return self.count(symptom="crash"), self.count(symptom="semantic")


def run_bug_study(max_iterations: int = 120, n_nodes: int = 10,
                  seed: int = 0,
                  time_budget: Optional[float] = None) -> BugTable:
    """Fuzz all three compilers with every seeded bug enabled."""
    bugs = BugConfig.all()
    fuzzer = Fuzzer(make_compilers(bugs), FuzzerConfig(
        generator=GeneratorConfig(n_nodes=n_nodes),
        max_iterations=max_iterations,
        time_budget=time_budget,
        bugs=bugs,
        seed=seed,
    ))
    campaign = fuzzer.run()
    # Table 3 counts the differential-testing bug classes.  Oracle-only
    # bugs (perf regressions, wrong gradients) can ride along in a failing
    # verdict's trigger set without having been *detected* here — keep the
    # table to the symptoms this campaign's oracle can actually observe.
    found = {bug_id for bug_id in campaign.seeded_bugs_found
             if bug_spec(bug_id).symptom in ("crash", "semantic")}
    return BugTable(found=found, campaign=campaign)


# --------------------------------------------------------------------------- #
# Design-level reachability (the "49 of 72 bugs" argument)
# --------------------------------------------------------------------------- #
def reachable_bugs(design: str) -> Set[str]:
    """Bugs whose required features are all provided by a generator design."""
    features = GENERATOR_FEATURES[design]
    return {spec.bug_id for spec in all_bugs()
            if spec.required_features <= features}


def reachability_analysis() -> Dict[str, object]:
    """Summary of which seeded bugs each generator design can trigger."""
    nnsmith = reachable_bugs("nnsmith")
    graphfuzzer = reachable_bugs("graphfuzzer")
    lemon = reachable_bugs("lemon")
    total = {spec.bug_id for spec in all_bugs()}
    return {
        "total_bugs": len(total),
        "nnsmith": len(nnsmith),
        "graphfuzzer": len(graphfuzzer),
        "lemon": len(lemon),
        "unreachable_by_baselines": len(total - graphfuzzer - lemon),
        "baseline_only": sorted((graphfuzzer | lemon) - nnsmith),
    }


# --------------------------------------------------------------------------- #
# Empirical head-to-head (unique crashes per tool within one budget)
# --------------------------------------------------------------------------- #
@dataclass
class CrashComparisonResult:
    """Unique crashes per fuzzer and compiler (the §5.4 four-hour run)."""

    iterations: int
    unique_crashes: Dict[str, Dict[str, int]] = field(default_factory=dict)
    seeded_found: Dict[str, Set[str]] = field(default_factory=dict)


def crash_comparison(max_iterations: int = 40, seed: int = 0,
                     n_nodes: int = 10, workers: int = 1,
                     fuzzers: Sequence[str] = ("nnsmith", "graphfuzzer",
                                               "lemon")
                     ) -> CrashComparisonResult:
    """Run every fuzzer for the same iteration budget — as *one* campaign.

    Instead of three bespoke serial loops, the comparison is a single
    generator-axis matrix campaign: every strategy in ``fuzzers`` runs the
    full budget against the factory compiler trio through the registry-
    backed engine, and the per-cell provenance is sliced into per-fuzzer
    unique-crash counts and seeded-bug sets.  Strategies that declare
    ``needs_value_search`` (NNSmith) go through the full pipeline, the
    mutation baselines are tested on plain random inputs — exactly the
    old per-tool loops, now sharded, resumable and parallel
    (``workers > 1`` spawns worker processes; the default runs in-process).

    One deliberate semantic tightening vs the pre-registry loops:
    ``seeded_found`` counts bugs *detected* (attached to a crash/semantic
    verdict), matching ``CampaignResult.seeded_bugs_found`` everywhere else
    in the engine.  The old bespoke loops also counted bugs whose buggy
    path merely executed without a detectable symptom (e.g. on
    numerically-invalid mutants), which inflated the baselines relative to
    what a fuzzer user would actually observe.
    """
    from repro.core.parallel import run_parallel_campaign

    bugs = BugConfig.all()
    config = FuzzerConfig(generator=GeneratorConfig(n_nodes=n_nodes),
                          max_iterations=max_iterations, bugs=bugs, seed=seed)
    campaign = run_parallel_campaign(config=config,
                                     n_workers=max(workers, 1),
                                     generators=list(fuzzers))

    result = CrashComparisonResult(iterations=max_iterations)
    compilers = ("graphrt", "deepc", "turbo")
    for name in fuzzers:
        crashes: Dict[str, Set[str]] = {compiler: set()
                                        for compiler in compilers}
        found: Set[str] = set()
        for cell in campaign.cells.values():
            if cell.generator != name:
                continue
            found |= cell.seeded_bugs_found
            for key in cell.report_keys:
                compiler, status, message = key.split("|", 2)
                if status == "crash" and compiler in crashes:
                    crashes[compiler].add(message)
        result.unique_crashes[name] = {compiler: len(messages)
                                       for compiler, messages in crashes.items()}
        result.seeded_found[name] = found
    return result
