"""Bug study: Table 3 and the §5.4 comparisons.

Three analyses reproduce the paper's bug-finding evaluation against the
seeded-bug population:

* :func:`run_bug_study` — a fuzzing campaign with every seeded bug enabled;
  found bugs are attributed to their system / phase / symptom, producing the
  Table 3 distribution;
* :func:`reachability_analysis` — the design-level argument ("49 of 72 bugs
  cannot be triggered by LEMON's or GraphFuzzer's designs"): a bug is
  reachable by a generator design iff the design provides every model feature
  the bug's trigger requires;
* :func:`crash_comparison` — the empirical head-to-head: run every tool for
  the same budget and count unique crashes per compiler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set

import numpy as np

from repro.baselines.graphfuzzer import GraphFuzzerGenerator
from repro.baselines.lemon import LemonGenerator
from repro.compilers import CompileOptions, DeepCCompiler, GraphRTCompiler, TurboCompiler
from repro.compilers.bugs import (
    FEATURE_ATTR_DIVERSITY,
    FEATURE_BROADCAST,
    FEATURE_FLOAT64,
    FEATURE_INT_DTYPE,
    FEATURE_MULTI_INPUT,
    FEATURE_MULTI_OP,
    FEATURE_NON_SHAPE_PRESERVING,
    FEATURE_SCALAR,
    FEATURE_SHAPE_OPS,
    FEATURE_VECTOR_MATMUL,
    BugConfig,
    BugSpec,
    all_bugs,
    bug_spec,
)
from repro.core.difftest import DifferentialTester, first_line
from repro.core.fuzzer import CampaignResult, Fuzzer, FuzzerConfig
from repro.core.generator import GeneratorConfig
from repro.errors import ReproError
from repro.runtime.interpreter import random_inputs

#: Model features each generator design can produce (used for reachability).
GENERATOR_FEATURES: Dict[str, FrozenSet[str]] = {
    "nnsmith": frozenset({
        FEATURE_MULTI_OP, FEATURE_NON_SHAPE_PRESERVING, FEATURE_BROADCAST,
        FEATURE_ATTR_DIVERSITY, FEATURE_SCALAR, FEATURE_INT_DTYPE,
        FEATURE_FLOAT64, FEATURE_VECTOR_MATMUL, FEATURE_SHAPE_OPS,
        FEATURE_MULTI_INPUT,
    }),
    # GraphFuzzer connects non-unary operators but only in shape-preserving
    # configurations, aligns shapes with slicing, uses default attributes and
    # float32/float64 tensors; it never produces scalars, broadcasts, integer
    # tensors or diverse attributes.
    "graphfuzzer": frozenset({
        FEATURE_MULTI_OP, FEATURE_MULTI_INPUT, FEATURE_SHAPE_OPS, FEATURE_FLOAT64,
    }),
    # LEMON only mutates shape-preserving unary layers of float32 seed models.
    "lemon": frozenset({FEATURE_MULTI_OP, FEATURE_MULTI_INPUT}),
}


def make_compilers(bugs: BugConfig):
    """The three systems under test with a shared bug configuration."""
    return [
        GraphRTCompiler(CompileOptions(opt_level=2, bugs=bugs)),
        DeepCCompiler(CompileOptions(opt_level=2, bugs=bugs)),
        TurboCompiler(CompileOptions(opt_level=2, bugs=bugs)),
    ]


# --------------------------------------------------------------------------- #
# Table 3
# --------------------------------------------------------------------------- #
@dataclass
class BugTable:
    """The Table 3 analogue: bug counts per system and phase."""

    found: Set[str] = field(default_factory=set)
    campaign: Optional[CampaignResult] = None

    def specs(self) -> List[BugSpec]:
        return [bug_spec(bug_id) for bug_id in sorted(self.found)]

    def count(self, system: Optional[str] = None, phase: Optional[str] = None,
              symptom: Optional[str] = None) -> int:
        total = 0
        for spec in self.specs():
            if system is not None and spec.system != system:
                continue
            if phase is not None and spec.phase != phase:
                continue
            if symptom is not None and spec.symptom != symptom:
                continue
            total += 1
        return total

    def rows(self) -> List[Dict[str, object]]:
        """Rows matching the paper's Table 3 layout."""
        display = {"graphrt": "GraphRT", "deepc": "DeepC", "turbo": "Turbo",
                   "exporter": "Exporter"}
        rows = []
        for system in ("graphrt", "deepc", "turbo", "exporter"):
            rows.append({
                "system": display[system],
                "transformation": self.count(system, "transformation"),
                "conversion": self.count(system, "conversion"),
                "unclassified": self.count(system, "unclassified"),
                "total": self.count(system),
            })
        rows.append({
            "system": "Total",
            "transformation": self.count(phase="transformation"),
            "conversion": self.count(phase="conversion"),
            "unclassified": self.count(phase="unclassified"),
            "total": self.count(),
        })
        return rows

    def crash_semantic_split(self):
        return self.count(symptom="crash"), self.count(symptom="semantic")


def run_bug_study(max_iterations: int = 120, n_nodes: int = 10,
                  seed: int = 0,
                  time_budget: Optional[float] = None) -> BugTable:
    """Fuzz all three compilers with every seeded bug enabled."""
    bugs = BugConfig.all()
    fuzzer = Fuzzer(make_compilers(bugs), FuzzerConfig(
        generator=GeneratorConfig(n_nodes=n_nodes),
        max_iterations=max_iterations,
        time_budget=time_budget,
        bugs=bugs,
        seed=seed,
    ))
    campaign = fuzzer.run()
    return BugTable(found=set(campaign.seeded_bugs_found), campaign=campaign)


# --------------------------------------------------------------------------- #
# Design-level reachability (the "49 of 72 bugs" argument)
# --------------------------------------------------------------------------- #
def reachable_bugs(design: str) -> Set[str]:
    """Bugs whose required features are all provided by a generator design."""
    features = GENERATOR_FEATURES[design]
    return {spec.bug_id for spec in all_bugs()
            if spec.required_features <= features}


def reachability_analysis() -> Dict[str, object]:
    """Summary of which seeded bugs each generator design can trigger."""
    nnsmith = reachable_bugs("nnsmith")
    graphfuzzer = reachable_bugs("graphfuzzer")
    lemon = reachable_bugs("lemon")
    total = {spec.bug_id for spec in all_bugs()}
    return {
        "total_bugs": len(total),
        "nnsmith": len(nnsmith),
        "graphfuzzer": len(graphfuzzer),
        "lemon": len(lemon),
        "unreachable_by_baselines": len(total - graphfuzzer - lemon),
        "baseline_only": sorted((graphfuzzer | lemon) - nnsmith),
    }


# --------------------------------------------------------------------------- #
# Empirical head-to-head (unique crashes per tool within one budget)
# --------------------------------------------------------------------------- #
@dataclass
class CrashComparisonResult:
    """Unique crashes per fuzzer and compiler (the §5.4 four-hour run)."""

    iterations: int
    unique_crashes: Dict[str, Dict[str, int]] = field(default_factory=dict)
    seeded_found: Dict[str, Set[str]] = field(default_factory=dict)


def crash_comparison(max_iterations: int = 40, seed: int = 0,
                     n_nodes: int = 10) -> CrashComparisonResult:
    """Run NNSmith, GraphFuzzer and LEMON for the same iteration budget."""
    bugs = BugConfig.all()
    result = CrashComparisonResult(iterations=max_iterations)

    # NNSmith goes through the full pipeline (value search included).
    fuzzer = Fuzzer(make_compilers(bugs), FuzzerConfig(
        generator=GeneratorConfig(n_nodes=n_nodes),
        max_iterations=max_iterations, bugs=bugs, seed=seed))
    campaign = fuzzer.run()
    result.unique_crashes["nnsmith"] = {
        name: campaign.unique_crashes(name) for name in ("graphrt", "deepc", "turbo")}
    result.seeded_found["nnsmith"] = set(campaign.seeded_bugs_found)

    # Baselines: generate models and push them through the same tester.
    for name, generator in (("graphfuzzer", GraphFuzzerGenerator(seed=seed, n_nodes=n_nodes)),
                            ("lemon", LemonGenerator(seed=seed))):
        tester = DifferentialTester(make_compilers(bugs), bugs=bugs)
        crashes: Dict[str, Set[str]] = {"graphrt": set(), "deepc": set(), "turbo": set()}
        found: Set[str] = set()
        rng = np.random.default_rng(seed)
        for _ in range(max_iterations):
            try:
                model = generator.next_case()
                case = tester.run_case(model, inputs=random_inputs(model, rng))
            except ReproError:
                continue
            for verdict in case.verdicts:
                found.update(verdict.triggered_bugs)
                if verdict.status == "crash":
                    crashes[verdict.compiler].add(first_line(verdict.message))
        result.unique_crashes[name] = {k: len(v) for k, v in crashes.items()}
        result.seeded_found[name] = found
    return result
