"""The fuzzer-comparison summary (the paper's Table 2 / §5.4 head-to-head).

Runs one generator-axis matrix campaign — every registered fuzzing strategy
against the factory compiler trio over identical budgets — and renders the
per-fuzzer comparison the paper tabulates: unique crashes per compiler,
distinct seeded bugs found, and the design-level reachability bound from
:func:`repro.experiments.bug_study.reachability_analysis`.

Run scaled-down from the command line (the ``make table2`` target)::

    PYTHONPATH=src python -m repro.experiments.table2 [iterations] [workers]
"""

from __future__ import annotations

import sys
from typing import Optional, Sequence

from repro.experiments.bug_study import (CrashComparisonResult,
                                         crash_comparison,
                                         reachability_analysis)
from repro.experiments.reporting import format_table

DEFAULT_FUZZERS = ("nnsmith", "graphfuzzer", "lemon", "targeted")


def format_fuzzer_comparison(result: CrashComparisonResult,
                             title: str = "Fuzzer comparison") -> str:
    """Render a crash-comparison result as the paper-style summary table."""
    rows = []
    for fuzzer, per_compiler in result.unique_crashes.items():
        row = {"fuzzer": fuzzer}
        row.update(per_compiler)
        row["seeded bugs"] = len(result.seeded_found.get(fuzzer, ()))
        rows.append(row)
    columns = ["fuzzer"] + sorted(
        {key for row in rows for key in row if key != "fuzzer"} - {"seeded bugs"}
    ) + ["seeded bugs"]
    return format_table(rows, columns, title=title)


def run_table2(max_iterations: int = 36, seed: int = 0, n_nodes: int = 8,
               workers: int = 2,
               fuzzers: Sequence[str] = DEFAULT_FUZZERS) -> str:
    """Run the comparison campaign and return the formatted summary."""
    comparison = crash_comparison(max_iterations=max_iterations, seed=seed,
                                  n_nodes=n_nodes, workers=workers,
                                  fuzzers=fuzzers)
    lines = [format_fuzzer_comparison(
        comparison,
        title=f"Fuzzer comparison ({max_iterations} iterations each, "
              f"one generator-axis campaign):")]
    reach = reachability_analysis()
    lines.append("")
    lines.append(f"Design-level reachability: nnsmith {reach['nnsmith']}, "
                 f"graphfuzzer {reach['graphfuzzer']}, "
                 f"lemon {reach['lemon']} of {reach['total_bugs']} seeded "
                 f"bugs ({reach['unreachable_by_baselines']} unreachable by "
                 "both baseline designs)")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    max_iterations = int(argv[0]) if argv else 36
    workers = int(argv[1]) if len(argv) > 1 else 2
    print(run_table2(max_iterations=max_iterations, workers=workers))
    return 0


if __name__ == "__main__":
    sys.exit(main())
