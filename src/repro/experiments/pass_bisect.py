"""Pass-sequence bisection: shrink a pipeline-axis finding to a minimal
pass subsequence.

A finding from a ``--pipelines random:<k>@<seed>`` campaign cell says "this
model fails under *this sampled pass sequence*" — typically dozens of
passes, of which one or two actually interact.  This module runs
deterministic delta debugging (ddmin) over the flattened pass sequence of
the failing pipeline: it repeatedly compiles the model under candidate
subsequences (relative pass order preserved — ordering is usually the whole
point) and keeps the smallest subsequence that still reproduces the same
failure.

The result is the pipeline-axis analogue of test-case reduction: instead
of shrinking the *model*, it shrinks the *pass schedule*, attributing the
finding to e.g. ``[BiasSoftmaxFusion, ConstantFolding]`` — "the fusion
introduces an internal operator the folder cannot evaluate when it runs
afterwards" — which no per-pass unit test and no canonical ``-O<k>``
pipeline (where the folder runs first) would surface.

Typical use, straight from a campaign finding::

    from repro.compilers.pipeline import resolve_pipeline
    from repro.experiments.pass_bisect import bisect_finding

    result = bisect_finding(model, "graphrt", "rand:12345:0")
    print(result.minimal)   # (("graphrt", "BiasSoftmaxFusion"),
                            #  ("graphrt", "ConstantFolding"))

Everything is deterministic: ddmin's probe order is a pure function of the
input sequence, and each probe compiles with the same model/inputs, so the
attribution is stable across reruns and machines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.compilers.base import build_compiler_set
from repro.compilers.bugs import BugConfig
from repro.compilers.pipeline import PipelineSpec, resolve_pipeline
from repro.core.difftest import (
    ABSOLUTE_TOLERANCE,
    RELATIVE_TOLERANCE,
    _bugs_from_error,
    compare_outputs,
    first_line,
)
from repro.errors import IRVerificationError, ReproError
from repro.graph.model import Model
from repro.runtime.exporter import export_model
from repro.runtime.interpreter import Interpreter, random_inputs

#: A pass in a flattened pipeline: ``(stage, pass name)``.
PassRef = Tuple[str, str]


@dataclass
class Failure:
    """The observable signature of one failing compile/run probe."""

    #: ``"crash"``, ``"semantic"`` or ``"verifier"``.
    status: str
    #: Seeded-bug ids recovered from the crash message (may be empty).
    bug_ids: Tuple[str, ...]
    #: First line of the crash/mismatch message (diagnostic only).
    message: str

    def matches(self, other: "Failure") -> bool:
        """Same failure for bisection purposes?

        Two crashes match when they share a seeded-bug id (or neither
        carries one — real-world crashes have no ground-truth labels);
        semantic mismatches match by status alone, since the numeric
        detail varies with which passes ran.
        """
        if self.status != other.status:
            return False
        if self.bug_ids and other.bug_ids:
            return bool(set(self.bug_ids) & set(other.bug_ids))
        return True


@dataclass
class BisectResult:
    """Outcome of a pass-sequence bisection."""

    #: Minimal failing subsequence, in pipeline order.
    minimal: Tuple[PassRef, ...]
    #: The minimal subsequence as a runnable spec (same failure guaranteed).
    spec: PipelineSpec
    #: The failure signature the minimal subsequence reproduces.
    failure: Optional[Failure]
    #: Whether the full input pipeline reproduced a failure at all.
    reproduced: bool
    #: Number of candidate pipelines compiled during the search.
    probes: int = 0


def flatten_spec(spec: PipelineSpec) -> Tuple[PassRef, ...]:
    """The spec's passes as one ordered ``(stage, name)`` sequence."""
    return tuple((stage, name) for stage, names in spec.stages
                 for name in names)


def spec_from_passes(name: str, passes: Sequence[PassRef]) -> PipelineSpec:
    """Rebuild a spec from a flattened subsequence (stage order preserved)."""
    stages: Dict[str, List[str]] = {}
    for stage, pass_name in passes:
        stages.setdefault(stage, []).append(pass_name)
    return PipelineSpec.from_stage_map(name, stages)


def minimize_passes(reproduces: Callable[[Sequence[PassRef]], bool],
                    passes: Sequence[PassRef]) -> Tuple[Tuple[PassRef, ...], int]:
    """Deterministic ddmin over an ordered pass sequence.

    ``reproduces(subsequence)`` must return True when the failure still
    shows under exactly that subsequence.  Returns the 1-minimal
    subsequence (removing any single remaining chunk un-reproduces) and
    the number of probes spent.  Probe order is a pure function of the
    input, so attribution is bit-stable.
    """
    current = list(passes)
    probes = 0
    granularity = 2
    while len(current) >= 2:
        chunk = max(1, len(current) // granularity)
        reduced = False
        start = 0
        while start < len(current):
            candidate = current[:start] + current[start + chunk:]
            probes += 1
            if reproduces(candidate):
                current = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
                # Re-scan from the front: removals can enable each other.
                start = 0
            else:
                start += chunk
        if not reduced:
            if granularity >= len(current):
                break
            granularity = min(len(current), granularity * 2)
    return tuple(current), probes


def bisect_finding(model: Model, compiler_name: str,
                   pipeline, *,
                   opt_level: int = 2,
                   bugs: Optional[BugConfig] = None,
                   inputs: Optional[Dict[str, np.ndarray]] = None,
                   rtol: float = RELATIVE_TOLERANCE,
                   atol: float = ABSOLUTE_TOLERANCE,
                   verify_passes: bool = False) -> BisectResult:
    """Shrink a pipeline-axis finding to its minimal pass subsequence.

    ``pipeline`` is the failing cell's pipeline token (``"rand:<s>:<i>"``)
    or an already-resolved :class:`PipelineSpec`.  The model is compiled
    under the full pipeline first to capture the failure signature
    (crash with seeded-bug ids, semantic mismatch versus the reference
    interpreter, or — with ``verify_passes=True``, matching the campaign
    cell that produced a ``verifier`` finding — an ill-formed-IR report
    from the pass-boundary verifier), then ddmin probes subsequences
    until 1-minimal.
    """
    bugs = bugs if bugs is not None else BugConfig.all()
    spec = pipeline if isinstance(pipeline, PipelineSpec) \
        else resolve_pipeline(pipeline)
    if inputs is None:
        inputs = random_inputs(model, np.random.default_rng(0))
    oracle = Interpreter(record_intermediates=False).run_detailed(model, inputs)
    exported = export_model(model, bugs=bugs)

    def probe(candidate: Sequence[PassRef]) -> Optional[Failure]:
        candidate_spec = spec_from_passes(f"{spec.name}|bisect", candidate)
        compiler = build_compiler_set([compiler_name], opt_level=opt_level,
                                      bugs=bugs, pipeline=candidate_spec,
                                      verify_passes=verify_passes)[0]
        try:
            compiled = compiler.compile_model(exported)
            outputs = compiled.run(inputs)
        except IRVerificationError as exc:
            return Failure("verifier", tuple(_bugs_from_error(exc)),
                           first_line(str(exc)))
        except ReproError as exc:
            return Failure("crash", tuple(_bugs_from_error(exc)),
                           first_line(str(exc)))
        if not oracle.numerically_valid:
            return None
        mismatch = compare_outputs(oracle.outputs, outputs, rtol, atol)
        if mismatch is None:
            return None
        return Failure("semantic", (), first_line(mismatch))

    full = flatten_spec(spec)
    baseline = probe(full)
    if baseline is None:
        return BisectResult(minimal=full, spec=spec, failure=None,
                            reproduced=False, probes=1)

    def reproduces(candidate: Sequence[PassRef]) -> bool:
        failure = probe(candidate)
        return failure is not None and failure.matches(baseline)

    minimal, probes = minimize_passes(reproduces, full)
    return BisectResult(minimal=minimal,
                        spec=spec_from_passes(f"{spec.name}|min", minimal),
                        failure=baseline, reproduced=True, probes=probes + 1)
