"""Plain-text rendering of experiment results (the "figures" of this repo).

Every benchmark prints its table/series through these helpers so that the
regenerated results are easy to eyeball next to the paper's figures.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence


def format_table(rows: Sequence[Mapping[str, object]],
                 columns: Sequence[str], title: str = "") -> str:
    """Fixed-width text table."""
    widths = {col: max(len(str(col)),
                       max((len(str(row.get(col, ""))) for row in rows), default=0))
              for col in columns}
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(str(col).ljust(widths[col]) for col in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append("  ".join(str(row.get(col, "")).ljust(widths[col])
                               for col in columns))
    return "\n".join(lines)


def format_series(name: str, xs: Iterable[float], ys: Iterable[float],
                  x_label: str = "x", y_label: str = "y",
                  max_points: int = 12) -> str:
    """A compact textual rendering of one curve (downsampled)."""
    xs = list(xs)
    ys = list(ys)
    if len(xs) > max_points:
        step = max(1, len(xs) // max_points)
        indices = list(range(0, len(xs), step))
        if indices[-1] != len(xs) - 1:
            indices.append(len(xs) - 1)
        xs = [xs[i] for i in indices]
        ys = [ys[i] for i in indices]
    pairs = ", ".join(f"({x:.3g}, {y:.3g})" for x, y in zip(xs, ys))
    return f"{name}: {x_label} -> {y_label}: {pairs}"


def format_ratio_bars(ratios: Mapping[str, float], title: str = "",
                      width: int = 30) -> str:
    """Horizontal bar chart in text form (used for Figure 9)."""
    lines = [title] if title else []
    if not ratios:
        return title
    peak = max(ratios.values()) or 1.0
    for name, value in sorted(ratios.items(), key=lambda item: item[1]):
        bar = "#" * max(1, int(width * value / peak))
        lines.append(f"  {name:<18} {value:5.2f}x {bar}")
    return "\n".join(lines)


def summarize_counts(counts: Mapping[str, int], title: str = "") -> str:
    lines = [title] if title else []
    for name, value in counts.items():
        lines.append(f"  {name:<20} {value}")
    return "\n".join(lines)
