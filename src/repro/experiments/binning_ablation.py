"""Attribute-binning ablation: Figures 9 and 10.

Two campaigns are compared — NNSmith with binning and NNSmith without — on
(1) the number of *unique operator instances* generated (instances are keyed
by operator kind, input types and attributes, like the paper's use of Relay's
type system) and (2) branch coverage of the compilers under test.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List

from repro.core.generator import GeneratorConfig, generate_model
from repro.errors import ReproError
from repro.experiments.coverage_experiment import (
    CoverageCampaignResult,
    NNSmithCaseGenerator,
    run_coverage_campaign,
)


@dataclass
class InstanceDiversityResult:
    """Figure 9 data: unique operator instances with and without binning."""

    iterations: int
    with_binning: Counter = field(default_factory=Counter)
    without_binning: Counter = field(default_factory=Counter)

    def unique_instances(self, binned: bool) -> int:
        source = self.with_binning if binned else self.without_binning
        return len(source)

    def normalized_ratio_by_op(self) -> Dict[str, float]:
        """Per-operator improvement ratio (the bar heights of Figure 9)."""
        ratios: Dict[str, float] = {}
        ops = {key.split("(")[0] for key in
               list(self.with_binning) + list(self.without_binning)}
        for op in sorted(ops):
            binned = len({k for k in self.with_binning if k.split("(")[0] == op})
            plain = len({k for k in self.without_binning if k.split("(")[0] == op})
            ratios[op] = binned / plain if plain else float(binned)
        return ratios

    def overall_ratio(self) -> float:
        plain = self.unique_instances(False)
        return self.unique_instances(True) / plain if plain else 0.0


def run_instance_diversity(iterations: int = 30, n_nodes: int = 10,
                           seed: int = 0) -> InstanceDiversityResult:
    """Generate two model populations and count unique operator instances."""
    result = InstanceDiversityResult(iterations=iterations)
    for use_binning, counter in ((True, result.with_binning),
                                 (False, result.without_binning)):
        for index in range(iterations):
            try:
                generated = generate_model(GeneratorConfig(
                    n_nodes=n_nodes,
                    seed=seed * 7_919 + index,
                    use_binning=use_binning,
                ))
            except ReproError:
                continue
            counter.update(generated.op_instances)
    return result


@dataclass
class BinningCoverageResult:
    """Figure 10 data: coverage with and without binning, per compiler."""

    compiler: str
    with_binning: CoverageCampaignResult = None
    without_binning: CoverageCampaignResult = None

    def coverage_sets(self) -> Dict[str, FrozenSet]:
        return {
            "w/ binning": self.with_binning.arcs,
            "no binning": self.without_binning.arcs,
        }


def run_binning_coverage(compiler_name: str, max_iterations: int = 30,
                         seed: int = 0) -> BinningCoverageResult:
    """Coverage campaigns for NNSmith with and without attribute binning."""
    with_binning = run_coverage_campaign(
        NNSmithCaseGenerator(seed=seed, use_binning=True), compiler_name,
        max_iterations=max_iterations, seed=seed)
    without_binning = run_coverage_campaign(
        NNSmithCaseGenerator(seed=seed, use_binning=False), compiler_name,
        max_iterations=max_iterations, seed=seed)
    return BinningCoverageResult(compiler_name, with_binning, without_binning)
