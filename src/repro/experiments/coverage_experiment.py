"""Coverage campaigns: the machinery behind Figures 4–8.

These experiments used to run bespoke serial loops (generate → export →
compile → run under a tracer, one loop per fuzzer).  They now ride the
matrix campaign engine: :func:`run_fuzzer_comparison` is **one** matrix
campaign with a generator axis and the ``coverage`` scheduler — workers
trace compiler branch arcs per iteration and stream deltas up the feedback
channel, the coordinator records per-cell and global coverage-over-time
series, and the per-fuzzer :class:`CoverageCampaignResult` views are sliced
out of the merged result's per-cell provenance.  One engine, one
checkpointable campaign, same figures.

Generators come from the strategy registry (:mod:`repro.core.strategy`):
:class:`StrategyCaseGenerator` adapts any registered
:class:`~repro.core.strategy.GenerationStrategy` to the historical
``next_case()`` protocol (and carries the campaign config the engine path
reuses).  :func:`make_case_generator` and :class:`NNSmithCaseGenerator`
survive as thin back-compat shims; third-party objects implementing the
bare :class:`CaseGenerator` protocol still run through the legacy serial
loop.

Tzer is driven through its own entry point because it mutates DeepC's
low-level IR directly rather than producing models.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Protocol, Sequence

import numpy as np

from repro.baselines.tzer import TzerFuzzer
from repro.compilers import CompileOptions, make_compiler
from repro.compilers.bugs import BugConfig
from repro.compilers.coverage import (CoverageTimeline, CoverageTracer,
                                      arc_from_str)
from repro.core.generator import GeneratorConfig
from repro.core.strategy import build_strategy
from repro.errors import ReproError
from repro.graph.model import Model
from repro.runtime.exporter import export_model
from repro.runtime.interpreter import random_inputs


class CaseGenerator(Protocol):
    """Anything that can produce one test model per iteration."""

    name: str

    def next_case(self) -> Model:  # pragma: no cover - protocol signature
        ...


class StrategyCaseGenerator:
    """A registered generation strategy behind the CaseGenerator protocol.

    Seeds each iteration exactly like the campaign engine
    (:func:`repro.core.fuzzer.iteration_seed`), so a coverage experiment and
    a bug-finding campaign with the same seed explore the same model
    streams.
    """

    def __init__(self, name: str, seed: int = 0, n_nodes: int = 10,
                 use_binning: bool = True) -> None:
        from repro.core.fuzzer import FuzzerConfig

        self.name = name
        self._config = FuzzerConfig(
            generator=GeneratorConfig(n_nodes=n_nodes,
                                      use_binning=use_binning),
            seed=seed, strategy=name)
        self._strategy = build_strategy(name, self._config)
        self._iteration = 0
        #: operator-instance signatures of every generated model (Figure 9).
        self.op_instances: List[str] = []

    def next_case(self) -> Model:
        from repro.core.fuzzer import iteration_seed

        self._iteration += 1
        generated = self._strategy.generate(
            iteration_seed(self._config.seed, self._config.generator.seed,
                           self._iteration, strategy=self.name),
            self._iteration)
        self.op_instances.extend(generated.op_instances)
        return generated.model


class NNSmithCaseGenerator(StrategyCaseGenerator):
    """Back-compat shim: the NNSmith strategy as a case generator."""

    def __init__(self, seed: int = 0, n_nodes: int = 10,
                 use_binning: bool = True) -> None:
        super().__init__("nnsmith", seed=seed, n_nodes=n_nodes,
                         use_binning=use_binning)


def make_case_generator(name: str, seed: int = 0, n_nodes: int = 10,
                        use_binning: bool = True) -> CaseGenerator:
    """Instantiate a case generator by its short name.

    Deprecated alias for :class:`StrategyCaseGenerator`: any strategy in the
    registry (including ``targeted`` and third-party registrations) is
    accepted, not just the original three names.
    """
    return StrategyCaseGenerator(name, seed=seed, n_nodes=n_nodes,
                                 use_binning=use_binning)


@dataclass
class CoverageCampaignResult:
    """Outcome of one fuzzer-vs-compiler coverage campaign."""

    fuzzer: str
    compiler: str
    iterations: int
    elapsed: float
    arcs: FrozenSet = frozenset()
    pass_arcs: FrozenSet = frozenset()
    timeline: CoverageTimeline = field(default_factory=CoverageTimeline)
    crashes: int = 0

    @property
    def total_coverage(self) -> int:
        return len(self.arcs)

    @property
    def pass_coverage(self) -> int:
        return len(self.pass_arcs)


#: LEMON mutates full real-world models, which the paper reports as up to two
#: orders of magnitude slower per test case than NNSmith; the scaled-down
#: zoo does not reproduce that cost by itself, so a per-iteration penalty
#: models it (only wall-clock throughput is affected, never coverage math).
LEMON_ITERATION_PENALTY = 0.05


def run_coverage_campaign(generator: CaseGenerator, compiler_name: str,
                          max_iterations: Optional[int] = 50,
                          time_budget: Optional[float] = None,
                          seed: int = 0) -> CoverageCampaignResult:
    """Fuzz one compiler with one generator while tracing branch coverage.

    Registry-backed generators (:class:`StrategyCaseGenerator` and its
    shims) run as a single-cell campaign on the matrix engine with the
    coverage feedback channel; ``seed`` is the campaign seed there (it
    drives the per-iteration generation *and* input streams — the
    generator's construction seed only fixes its config defaults), matching
    every in-repo caller, which passes the same seed to both.  Bare
    :class:`CaseGenerator` protocol objects fall back to the legacy serial
    loop, where ``seed`` only feeds the random-input RNG.
    """
    if isinstance(generator, StrategyCaseGenerator):
        config = dataclasses.replace(
            generator._config,
            max_iterations=max_iterations,
            time_budget=time_budget,
            seed=seed)
        result = _run_coverage_matrix(config, compiler_name,
                                      generators=None, n_workers=1)
        return _slice_fuzzer_result(result, generator.name,
                                    compiler_name,
                                    match_generator=None)
    return _legacy_coverage_loop(generator, compiler_name,
                                 max_iterations=max_iterations,
                                 time_budget=time_budget, seed=seed)


def _legacy_coverage_loop(generator: CaseGenerator, compiler_name: str,
                          max_iterations: Optional[int] = 50,
                          time_budget: Optional[float] = None,
                          seed: int = 0) -> CoverageCampaignResult:
    """The historical serial loop, kept for third-party case generators."""
    compiler = make_compiler(compiler_name,
                             CompileOptions(opt_level=2, bugs=BugConfig.none()))
    tracer = CoverageTracer(systems=(compiler_name,))
    timeline = CoverageTimeline()
    rng = np.random.default_rng(seed)
    crashes = 0
    start = time.monotonic()
    iteration = 0

    while True:
        if max_iterations is not None and iteration >= max_iterations:
            break
        if time_budget is not None and (time.monotonic() - start) >= time_budget:
            break
        iteration += 1
        try:
            model = generator.next_case()
        except ReproError:
            continue
        if generator.name == "lemon":
            time.sleep(LEMON_ITERATION_PENALTY)
        try:
            exported = export_model(model, bugs=BugConfig.none())
        except ReproError:
            continue
        with tracer:
            try:
                compiled = compiler.compile_model(exported)
                compiled.run(random_inputs(exported, rng))
            except ReproError:
                crashes += 1
        timeline.record(time.monotonic() - start, iteration,
                        tracer.count(), tracer.count(pass_only=True))

    return CoverageCampaignResult(
        fuzzer=generator.name,
        compiler=compiler_name,
        iterations=iteration,
        elapsed=time.monotonic() - start,
        arcs=tracer.arcs_by_scope(pass_only=False),
        pass_arcs=tracer.arcs_by_scope(pass_only=True),
        timeline=timeline,
        crashes=crashes,
    )


def run_tzer_campaign(max_iterations: Optional[int] = 50,
                      time_budget: Optional[float] = None,
                      seed: int = 0) -> CoverageCampaignResult:
    """Run the Tzer baseline against DeepC's low-level pipeline (Figure 8)."""
    fuzzer = TzerFuzzer(seed=seed, bugs=BugConfig.none())
    tracer = CoverageTracer(systems=("deepc",))
    timeline = CoverageTimeline()
    crashes = 0
    start = time.monotonic()
    iteration = 0
    while True:
        if max_iterations is not None and iteration >= max_iterations:
            break
        if time_budget is not None and (time.monotonic() - start) >= time_budget:
            break
        iteration += 1
        with tracer:
            if fuzzer.run_iteration(tracer):
                crashes += 1
        timeline.record(time.monotonic() - start, iteration,
                        tracer.count(), tracer.count(pass_only=True))
    return CoverageCampaignResult(
        fuzzer="tzer",
        compiler="deepc",
        iterations=iteration,
        elapsed=time.monotonic() - start,
        arcs=tracer.arcs_by_scope(pass_only=False),
        pass_arcs=tracer.arcs_by_scope(pass_only=True),
        timeline=timeline,
        crashes=crashes,
    )


def _run_coverage_matrix(config, compiler_name: str,
                         generators: Optional[Sequence[str]],
                         n_workers: int):
    """One coverage-scheduled matrix campaign over a single compiler column.

    The campaign config is normalized for coverage measurement: seeded
    bugs off (the paper traces *correct* compilers), the cheap ``crash``
    oracle (no reference-interpreter diffing — coverage needs compile +
    run only), no operator-support probing (the historical loops generated
    from the full pool), and step-bounded value search so the explored
    streams — and hence the arcs — are machine-load independent.
    """
    from repro.core.parallel import deterministic_config, \
        run_parallel_campaign

    config = deterministic_config(dataclasses.replace(
        config,
        generator=dataclasses.replace(config.generator),
        bugs=BugConfig.none(),
        oracle="crash",
        probe_operator_support=False), max_steps=8)
    return run_parallel_campaign(
        config=config,
        n_workers=max(1, n_workers),
        n_shards=1,
        compiler_sets=[[compiler_name]],
        opt_levels=[2],
        generators=list(generators) if generators else None,
        schedule="coverage",
    )


def _slice_fuzzer_result(result, fuzzer: str, compiler_name: str,
                         match_generator: Optional[str]
                         ) -> CoverageCampaignResult:
    """Project one fuzzer's :class:`CoverageCampaignResult` view out of a
    merged campaign result, using the per-cell coverage provenance.

    ``match_generator`` is the cell's ``generator`` tag to select (None
    selects untagged cells — single-strategy campaigns without a generator
    axis).  Arc strings are decoded back to ``(file, from, to)`` tuples so
    the result stays set-compatible with :func:`run_tzer_campaign` and the
    Venn tooling.  The time axis is each sample's ``cell_elapsed`` — the
    cell's *own* cumulative compute seconds — not the campaign's shared
    coordinator clock, which would charge a fuzzer for the gaps other
    fuzzers' interleaved leases spent running (exactly what the replaced
    per-fuzzer serial loops measured).  LEMON's per-iteration penalty is
    applied on top (see ``LEMON_ITERATION_PENALTY`` — wall-clock only,
    never coverage math).  ``crashes`` counts *deduplicated* crash
    signatures (the engine streams deduplicated reports), not crashing
    iterations like the legacy serial loop — a deliberate semantic change,
    consistent with how the campaign engine counts findings everywhere.
    """
    cells = {key: cell for key, cell in result.cells.items()
             if cell.generator == match_generator}
    cell_keys = set(cells)
    arcs = frozenset(arc_from_str(arc) for cell in cells.values()
                     for arc in cell.coverage_arcs)
    pass_arcs = frozenset(arc for arc in arcs if _is_pass(arc))
    samples = sorted((s for s in result.coverage_timeline
                      if s["cell"] in cell_keys),
                     key=lambda s: (s["cell_elapsed"], s["iteration"]))
    penalty = LEMON_ITERATION_PENALTY if fuzzer == "lemon" else 0.0
    timeline = CoverageTimeline()
    for sample in samples:
        timeline.record(
            elapsed=(sample["cell_elapsed"]
                     + penalty * sample["iteration"]),
            iteration=int(sample["iteration"]),
            total_arcs=int(sample["total"]),
            pass_arcs=int(sample["pass_only"]))
    elapsed = (timeline.samples[-1]["elapsed"] if timeline.samples
               else result.elapsed)
    crashes = len({key for cell in cells.values()
                   for key in cell.report_keys if "|crash|" in key})
    return CoverageCampaignResult(
        fuzzer=fuzzer,
        compiler=compiler_name,
        iterations=sum(cell.iterations for cell in cells.values()),
        elapsed=elapsed,
        arcs=arcs,
        pass_arcs=pass_arcs,
        timeline=timeline,
        crashes=crashes,
    )


def _is_pass(arc) -> bool:
    from repro.compilers.coverage import is_pass_file

    return is_pass_file(arc[0])


def run_fuzzer_comparison(compiler_name: str,
                          fuzzers: Sequence[str] = ("nnsmith", "graphfuzzer",
                                                    "lemon"),
                          max_iterations: int = 40,
                          time_budget: Optional[float] = None,
                          seed: int = 0,
                          workers: Optional[int] = None
                          ) -> Dict[str, CoverageCampaignResult]:
    """Run every fuzzer against one compiler (the per-subplot data of Fig. 4-7).

    This is now **one** matrix campaign with a generator axis and the
    ``coverage`` scheduler, replacing the historical one-serial-loop-per-
    fuzzer design: every fuzzer is a matrix cell sharing the engine's seed
    discipline, workers ship per-iteration arc deltas up the feedback
    channel, and the per-fuzzer results are sliced from the merged
    per-cell coverage provenance.  ``workers=1`` runs in-process; the
    default races one worker per fuzzer.  Streams are deterministic
    (step-bounded value search), so worker count never changes the arcs.
    """
    from repro.core.fuzzer import FuzzerConfig

    config = FuzzerConfig(
        generator=GeneratorConfig(n_nodes=10),
        max_iterations=max_iterations,
        time_budget=time_budget,
        seed=seed,
    )
    n_workers = len(fuzzers) if workers is None else workers
    try:
        result = _run_coverage_matrix(config, compiler_name,
                                      generators=fuzzers,
                                      n_workers=n_workers)
    except (OSError, multiprocessing.ProcessError):
        if n_workers <= 1:
            raise
        # No subprocess support here (sandboxes, restricted environments):
        # the streams are deterministic, so the in-process path produces
        # identical arcs — just slower.
        result = _run_coverage_matrix(config, compiler_name,
                                      generators=fuzzers, n_workers=1)
    return {name: _slice_fuzzer_result(result, name, compiler_name,
                                       match_generator=name)
            for name in fuzzers}
