"""Coverage campaigns: the machinery behind Figures 4–8.

A *case generator* produces one model per iteration; every model is
exported, compiled by the instrumented compiler and executed, while the
coverage tracer accumulates branch arcs.  The result is a coverage timeline
(arcs over wall-clock time and over iterations) plus the final arc set,
from which the figures' curves and Venn decompositions are derived.

Generators come from the strategy registry (:mod:`repro.core.strategy`):
:class:`StrategyCaseGenerator` adapts any registered
:class:`~repro.core.strategy.GenerationStrategy` to the historical
``next_case()`` protocol, and :func:`run_fuzzer_comparison` runs every
fuzzer's coverage campaign in parallel worker processes, each rebuilding
its generator by name.  :func:`make_case_generator` and
:class:`NNSmithCaseGenerator` survive as thin back-compat shims.

Tzer is driven through its own entry point because it mutates DeepC's
low-level IR directly rather than producing models.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Protocol, Sequence

import numpy as np

from repro.baselines.tzer import TzerFuzzer
from repro.compilers import CompileOptions, make_compiler
from repro.compilers.bugs import BugConfig
from repro.compilers.coverage import CoverageTimeline, CoverageTracer
from repro.core.generator import GeneratorConfig
from repro.core.strategy import build_strategy
from repro.errors import ReproError
from repro.graph.model import Model
from repro.runtime.exporter import export_model
from repro.runtime.interpreter import random_inputs


class CaseGenerator(Protocol):
    """Anything that can produce one test model per iteration."""

    name: str

    def next_case(self) -> Model:  # pragma: no cover - protocol signature
        ...


class StrategyCaseGenerator:
    """A registered generation strategy behind the CaseGenerator protocol.

    Seeds each iteration exactly like the campaign engine
    (:func:`repro.core.fuzzer.iteration_seed`), so a coverage experiment and
    a bug-finding campaign with the same seed explore the same model
    streams.
    """

    def __init__(self, name: str, seed: int = 0, n_nodes: int = 10,
                 use_binning: bool = True) -> None:
        from repro.core.fuzzer import FuzzerConfig

        self.name = name
        self._config = FuzzerConfig(
            generator=GeneratorConfig(n_nodes=n_nodes,
                                      use_binning=use_binning),
            seed=seed, strategy=name)
        self._strategy = build_strategy(name, self._config)
        self._iteration = 0
        #: operator-instance signatures of every generated model (Figure 9).
        self.op_instances: List[str] = []

    def next_case(self) -> Model:
        from repro.core.fuzzer import iteration_seed

        self._iteration += 1
        generated = self._strategy.generate(
            iteration_seed(self._config.seed, self._config.generator.seed,
                           self._iteration, strategy=self.name),
            self._iteration)
        self.op_instances.extend(generated.op_instances)
        return generated.model


class NNSmithCaseGenerator(StrategyCaseGenerator):
    """Back-compat shim: the NNSmith strategy as a case generator."""

    def __init__(self, seed: int = 0, n_nodes: int = 10,
                 use_binning: bool = True) -> None:
        super().__init__("nnsmith", seed=seed, n_nodes=n_nodes,
                         use_binning=use_binning)


def make_case_generator(name: str, seed: int = 0, n_nodes: int = 10,
                        use_binning: bool = True) -> CaseGenerator:
    """Instantiate a case generator by its short name.

    Deprecated alias for :class:`StrategyCaseGenerator`: any strategy in the
    registry (including ``targeted`` and third-party registrations) is
    accepted, not just the original three names.
    """
    return StrategyCaseGenerator(name, seed=seed, n_nodes=n_nodes,
                                 use_binning=use_binning)


@dataclass
class CoverageCampaignResult:
    """Outcome of one fuzzer-vs-compiler coverage campaign."""

    fuzzer: str
    compiler: str
    iterations: int
    elapsed: float
    arcs: FrozenSet = frozenset()
    pass_arcs: FrozenSet = frozenset()
    timeline: CoverageTimeline = field(default_factory=CoverageTimeline)
    crashes: int = 0

    @property
    def total_coverage(self) -> int:
        return len(self.arcs)

    @property
    def pass_coverage(self) -> int:
        return len(self.pass_arcs)


#: LEMON mutates full real-world models, which the paper reports as up to two
#: orders of magnitude slower per test case than NNSmith; the scaled-down
#: zoo does not reproduce that cost by itself, so a per-iteration penalty
#: models it (only wall-clock throughput is affected, never coverage math).
LEMON_ITERATION_PENALTY = 0.05


def run_coverage_campaign(generator: CaseGenerator, compiler_name: str,
                          max_iterations: Optional[int] = 50,
                          time_budget: Optional[float] = None,
                          seed: int = 0) -> CoverageCampaignResult:
    """Fuzz one compiler with one generator while tracing branch coverage."""
    compiler = make_compiler(compiler_name,
                             CompileOptions(opt_level=2, bugs=BugConfig.none()))
    tracer = CoverageTracer(systems=(compiler_name,))
    timeline = CoverageTimeline()
    rng = np.random.default_rng(seed)
    crashes = 0
    start = time.monotonic()
    iteration = 0

    while True:
        if max_iterations is not None and iteration >= max_iterations:
            break
        if time_budget is not None and (time.monotonic() - start) >= time_budget:
            break
        iteration += 1
        try:
            model = generator.next_case()
        except ReproError:
            continue
        if generator.name == "lemon":
            time.sleep(LEMON_ITERATION_PENALTY)
        try:
            exported = export_model(model, bugs=BugConfig.none())
        except ReproError:
            continue
        with tracer:
            try:
                compiled = compiler.compile_model(exported)
                compiled.run(random_inputs(exported, rng))
            except ReproError:
                crashes += 1
        timeline.record(time.monotonic() - start, iteration,
                        tracer.count(), tracer.count(pass_only=True))

    return CoverageCampaignResult(
        fuzzer=generator.name,
        compiler=compiler_name,
        iterations=iteration,
        elapsed=time.monotonic() - start,
        arcs=tracer.arcs_by_scope(pass_only=False),
        pass_arcs=tracer.arcs_by_scope(pass_only=True),
        timeline=timeline,
        crashes=crashes,
    )


def run_tzer_campaign(max_iterations: Optional[int] = 50,
                      time_budget: Optional[float] = None,
                      seed: int = 0) -> CoverageCampaignResult:
    """Run the Tzer baseline against DeepC's low-level pipeline (Figure 8)."""
    fuzzer = TzerFuzzer(seed=seed, bugs=BugConfig.none())
    tracer = CoverageTracer(systems=("deepc",))
    timeline = CoverageTimeline()
    crashes = 0
    start = time.monotonic()
    iteration = 0
    while True:
        if max_iterations is not None and iteration >= max_iterations:
            break
        if time_budget is not None and (time.monotonic() - start) >= time_budget:
            break
        iteration += 1
        with tracer:
            if fuzzer.run_iteration(tracer):
                crashes += 1
        timeline.record(time.monotonic() - start, iteration,
                        tracer.count(), tracer.count(pass_only=True))
    return CoverageCampaignResult(
        fuzzer="tzer",
        compiler="deepc",
        iterations=iteration,
        elapsed=time.monotonic() - start,
        arcs=tracer.arcs_by_scope(pass_only=False),
        pass_arcs=tracer.arcs_by_scope(pass_only=True),
        timeline=timeline,
        crashes=crashes,
    )


def _comparison_job(args) -> CoverageCampaignResult:
    """One fuzzer-vs-compiler coverage campaign (module-level: picklable).

    The generator is rebuilt from its registry name inside the worker, the
    same way matrix-campaign cells rebuild strategies — instances never
    cross the process boundary, results (frozen arc sets and timelines) do.
    """
    name, compiler_name, max_iterations, time_budget, seed = args
    generator = StrategyCaseGenerator(name, seed=seed)
    return run_coverage_campaign(generator, compiler_name,
                                 max_iterations=max_iterations,
                                 time_budget=time_budget, seed=seed)


def run_fuzzer_comparison(compiler_name: str,
                          fuzzers: Sequence[str] = ("nnsmith", "graphfuzzer",
                                                    "lemon"),
                          max_iterations: int = 40,
                          time_budget: Optional[float] = None,
                          seed: int = 0,
                          workers: Optional[int] = None
                          ) -> Dict[str, CoverageCampaignResult]:
    """Run every fuzzer against one compiler (the per-subplot data of Fig. 4-7).

    The per-fuzzer campaigns are independent, so they run concurrently in a
    small worker pool (one process per fuzzer by default; ``workers=1``
    forces the serial in-process path).  Coverage arcs are traced inside
    each worker and shipped back as frozen sets, so the merged results are
    identical to the serial loop's.
    """
    jobs = [(name, compiler_name, max_iterations, time_budget, seed)
            for name in fuzzers]
    n_workers = len(jobs) if workers is None else workers
    if n_workers > 1 and len(jobs) > 1:
        try:
            with multiprocessing.get_context().Pool(
                    processes=min(n_workers, len(jobs))) as pool:
                results = pool.map(_comparison_job, jobs)
            return dict(zip(fuzzers, results))
        except (OSError, multiprocessing.ProcessError):
            pass  # no subprocess support here: fall back to in-process
    return {name: _comparison_job(job) for name, job in zip(fuzzers, jobs)}
