"""Coverage campaigns: the machinery behind Figures 4–8.

A *case generator* (NNSmith, LEMON, GraphFuzzer) produces one model per
iteration; every model is exported, compiled by the instrumented compiler and
executed, while the coverage tracer accumulates branch arcs.  The result is a
coverage timeline (arcs over wall-clock time and over iterations) plus the
final arc set, from which the figures' curves and Venn decompositions are
derived.

Tzer is driven through its own entry point because it mutates DeepC's
low-level IR directly rather than producing models.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Protocol

import numpy as np

from repro.baselines.graphfuzzer import GraphFuzzerGenerator
from repro.baselines.lemon import LemonGenerator
from repro.baselines.tzer import TzerFuzzer
from repro.compilers import CompileOptions, make_compiler
from repro.compilers.bugs import BugConfig
from repro.compilers.coverage import CoverageTimeline, CoverageTracer
from repro.core.generator import GeneratorConfig, generate_model
from repro.errors import ReproError
from repro.graph.model import Model
from repro.runtime.exporter import export_model
from repro.runtime.interpreter import random_inputs


class CaseGenerator(Protocol):
    """Anything that can produce one test model per iteration."""

    name: str

    def next_case(self) -> Model:  # pragma: no cover - protocol signature
        ...


class NNSmithCaseGenerator:
    """Adapter exposing the NNSmith generator through the CaseGenerator protocol."""

    name = "nnsmith"

    def __init__(self, seed: int = 0, n_nodes: int = 10,
                 use_binning: bool = True) -> None:
        self.seed = seed
        self.n_nodes = n_nodes
        self.use_binning = use_binning
        self._iteration = 0
        #: operator-instance signatures of every generated model (Figure 9).
        self.op_instances: List[str] = []

    def next_case(self) -> Model:
        self._iteration += 1
        generated = generate_model(GeneratorConfig(
            n_nodes=self.n_nodes,
            seed=self.seed * 1_000_003 + self._iteration,
            use_binning=self.use_binning,
        ))
        self.op_instances.extend(generated.op_instances)
        return generated.model


def make_case_generator(name: str, seed: int = 0, n_nodes: int = 10,
                        use_binning: bool = True) -> CaseGenerator:
    """Instantiate a case generator by its short name."""
    if name == "nnsmith":
        return NNSmithCaseGenerator(seed=seed, n_nodes=n_nodes, use_binning=use_binning)
    if name == "graphfuzzer":
        return GraphFuzzerGenerator(seed=seed, n_nodes=n_nodes)
    if name == "lemon":
        return LemonGenerator(seed=seed)
    raise KeyError(f"unknown case generator {name!r}")


@dataclass
class CoverageCampaignResult:
    """Outcome of one fuzzer-vs-compiler coverage campaign."""

    fuzzer: str
    compiler: str
    iterations: int
    elapsed: float
    arcs: FrozenSet = frozenset()
    pass_arcs: FrozenSet = frozenset()
    timeline: CoverageTimeline = field(default_factory=CoverageTimeline)
    crashes: int = 0

    @property
    def total_coverage(self) -> int:
        return len(self.arcs)

    @property
    def pass_coverage(self) -> int:
        return len(self.pass_arcs)


#: LEMON mutates full real-world models, which the paper reports as up to two
#: orders of magnitude slower per test case than NNSmith; the scaled-down
#: zoo does not reproduce that cost by itself, so a per-iteration penalty
#: models it (only wall-clock throughput is affected, never coverage math).
LEMON_ITERATION_PENALTY = 0.05


def run_coverage_campaign(generator: CaseGenerator, compiler_name: str,
                          max_iterations: Optional[int] = 50,
                          time_budget: Optional[float] = None,
                          seed: int = 0) -> CoverageCampaignResult:
    """Fuzz one compiler with one generator while tracing branch coverage."""
    compiler = make_compiler(compiler_name,
                             CompileOptions(opt_level=2, bugs=BugConfig.none()))
    tracer = CoverageTracer(systems=(compiler_name,))
    timeline = CoverageTimeline()
    rng = np.random.default_rng(seed)
    crashes = 0
    start = time.monotonic()
    iteration = 0

    while True:
        if max_iterations is not None and iteration >= max_iterations:
            break
        if time_budget is not None and (time.monotonic() - start) >= time_budget:
            break
        iteration += 1
        try:
            model = generator.next_case()
        except ReproError:
            continue
        if generator.name == "lemon":
            time.sleep(LEMON_ITERATION_PENALTY)
        try:
            exported = export_model(model, bugs=BugConfig.none())
        except ReproError:
            continue
        with tracer:
            try:
                compiled = compiler.compile_model(exported)
                compiled.run(random_inputs(exported, rng))
            except ReproError:
                crashes += 1
        timeline.record(time.monotonic() - start, iteration,
                        tracer.count(), tracer.count(pass_only=True))

    return CoverageCampaignResult(
        fuzzer=generator.name,
        compiler=compiler_name,
        iterations=iteration,
        elapsed=time.monotonic() - start,
        arcs=tracer.arcs_by_scope(pass_only=False),
        pass_arcs=tracer.arcs_by_scope(pass_only=True),
        timeline=timeline,
        crashes=crashes,
    )


def run_tzer_campaign(max_iterations: Optional[int] = 50,
                      time_budget: Optional[float] = None,
                      seed: int = 0) -> CoverageCampaignResult:
    """Run the Tzer baseline against DeepC's low-level pipeline (Figure 8)."""
    fuzzer = TzerFuzzer(seed=seed, bugs=BugConfig.none())
    tracer = CoverageTracer(systems=("deepc",))
    timeline = CoverageTimeline()
    crashes = 0
    start = time.monotonic()
    iteration = 0
    while True:
        if max_iterations is not None and iteration >= max_iterations:
            break
        if time_budget is not None and (time.monotonic() - start) >= time_budget:
            break
        iteration += 1
        with tracer:
            if fuzzer.run_iteration(tracer):
                crashes += 1
        timeline.record(time.monotonic() - start, iteration,
                        tracer.count(), tracer.count(pass_only=True))
    return CoverageCampaignResult(
        fuzzer="tzer",
        compiler="deepc",
        iterations=iteration,
        elapsed=time.monotonic() - start,
        arcs=tracer.arcs_by_scope(pass_only=False),
        pass_arcs=tracer.arcs_by_scope(pass_only=True),
        timeline=timeline,
        crashes=crashes,
    )


def run_fuzzer_comparison(compiler_name: str, fuzzers=("nnsmith", "graphfuzzer", "lemon"),
                          max_iterations: int = 40,
                          time_budget: Optional[float] = None,
                          seed: int = 0) -> Dict[str, CoverageCampaignResult]:
    """Run every fuzzer against one compiler (the per-subplot data of Fig. 4-7)."""
    results: Dict[str, CoverageCampaignResult] = {}
    for name in fuzzers:
        generator = make_case_generator(name, seed=seed)
        results[name] = run_coverage_campaign(
            generator, compiler_name,
            max_iterations=max_iterations, time_budget=time_budget, seed=seed)
    return results
