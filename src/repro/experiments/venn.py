"""Venn-style decomposition of coverage sets (Figures 7, 8 and 10).

Besides the generic set machinery, this module knows how to slice a matrix
campaign's per-cell provenance (:attr:`repro.core.fuzzer.CampaignResult.cells`)
into labelled bug sets — per compiler subset, per optimization level, per
shard or per individual cell — so one matrix campaign yields the paper's
per-backend Venn diagrams directly, without re-running anything.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Mapping, Set, Tuple


def venn_regions(sets: Mapping[str, Iterable]) -> Dict[FrozenSet[str], int]:
    """Sizes of every exclusive region of the Venn diagram.

    Each element is assigned to the region keyed by the frozenset of set
    names containing it; the returned mapping gives the size of every
    non-empty region.
    """
    materialized: Dict[str, Set] = {name: set(values) for name, values in sets.items()}
    regions: Dict[FrozenSet[str], int] = {}
    universe: Set = set()
    for values in materialized.values():
        universe |= values
    for element in universe:
        members = frozenset(name for name, values in materialized.items()
                            if element in values)
        regions[members] = regions.get(members, 0) + 1
    return regions


def unique_counts(sets: Mapping[str, Iterable]) -> Dict[str, int]:
    """Per-set count of elements not covered by any other set.

    This is the paper's "unique coverage" metric (branches only one fuzzer
    reaches).
    """
    regions = venn_regions(sets)
    return {name: regions.get(frozenset({name}), 0) for name in sets}


def totals(sets: Mapping[str, Iterable]) -> Dict[str, int]:
    """Total size of each set (the parenthesised numbers in Figure 7)."""
    return {name: len(set(values)) for name, values in sets.items()}


def pairwise_overlap(sets: Mapping[str, Iterable]) -> Dict[Tuple[str, str], int]:
    """Size of the pairwise intersections (diagnostic, not in the paper)."""
    names = sorted(sets)
    materialized = {name: set(sets[name]) for name in names}
    overlaps: Dict[Tuple[str, str], int] = {}
    for i, first in enumerate(names):
        for second in names[i + 1:]:
            overlaps[(first, second)] = len(materialized[first] & materialized[second])
    return overlaps


def campaign_cell_sets(result, by: str = "compiler_set",
                       what: str = "bugs") -> Dict[str, Set[str]]:
    """Group a matrix campaign's per-cell findings into labelled sets.

    ``by`` selects the grouping axis: ``"compiler_set"`` (the subset names
    joined with ``+``), ``"opt_level"`` (``O0``/``O2``/...), ``"generator"``
    (the cell's generation strategy — the paper's fuzzer-vs-fuzzer
    comparison), ``"oracle"`` (the cell's test oracle — which bug classes
    each oracle alone can see), ``"pipeline"`` (the cell's pass-pipeline
    token — which findings only a non-canonical pass ordering exposes),
    ``"shard"`` or ``"cell"`` (each cell its own set).
    ``what`` selects the elements: ``"bugs"`` (ground-truth seeded bug ids),
    ``"reports"`` (deduplicated report keys) or ``"coverage"`` (encoded
    branch arcs — populated by campaigns run with coverage feedback, e.g.
    ``--schedule coverage``, and empty otherwise; this is what turns one
    matrix campaign into the paper's per-fuzzer coverage Venn diagrams).
    The result feeds straight into :func:`venn_regions` /
    :func:`unique_counts` / :func:`format_venn_table`.
    """
    if by not in ("compiler_set", "opt_level", "generator", "oracle",
                  "pipeline", "shard", "cell"):
        raise ValueError(f"unknown grouping {by!r}")
    if what not in ("bugs", "reports", "coverage"):
        raise ValueError(f"unknown element kind {what!r}")
    groups: Dict[str, Set[str]] = {}
    for key, cell in result.cells.items():
        if by == "cell":
            label = key
        elif by == "compiler_set":
            label = "+".join(cell.compilers) if cell.compilers else "<default>"
        elif by == "opt_level":
            label = "O?" if cell.opt_level is None else f"O{cell.opt_level}"
        elif by == "generator":
            label = cell.generator if cell.generator else "<default>"
        elif by == "oracle":
            label = cell.oracle if cell.oracle else "<default>"
        elif by == "pipeline":
            label = cell.pipeline if cell.pipeline else "<default>"
        else:
            label = f"shard{cell.shard}"
        if what == "bugs":
            elements = cell.seeded_bugs_found
        elif what == "reports":
            elements = cell.report_keys
        else:
            elements = cell.coverage_arcs
        groups.setdefault(label, set()).update(elements)
    return groups


def campaign_venn(result, by: str = "compiler_set",
                  what: str = "bugs") -> Dict[FrozenSet[str], int]:
    """Exclusive Venn regions of a matrix campaign along one axis."""
    return venn_regions(campaign_cell_sets(result, by=by, what=what))


def format_venn_table(sets: Mapping[str, Iterable], title: str = "") -> str:
    """Human-readable text rendering of a Venn decomposition."""
    lines = []
    if title:
        lines.append(title)
    for name, total in totals(sets).items():
        lines.append(f"  {name:<14} total={total}")
    lines.append("  exclusive regions:")
    for members, count in sorted(venn_regions(sets).items(),
                                 key=lambda item: (len(item[0]), sorted(item[0]))):
        label = " & ".join(sorted(members))
        lines.append(f"    {label:<40} {count}")
    return "\n".join(lines)
