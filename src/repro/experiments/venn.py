"""Venn-style decomposition of coverage sets (Figures 7, 8 and 10)."""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Mapping, Set, Tuple


def venn_regions(sets: Mapping[str, Iterable]) -> Dict[FrozenSet[str], int]:
    """Sizes of every exclusive region of the Venn diagram.

    Each element is assigned to the region keyed by the frozenset of set
    names containing it; the returned mapping gives the size of every
    non-empty region.
    """
    materialized: Dict[str, Set] = {name: set(values) for name, values in sets.items()}
    regions: Dict[FrozenSet[str], int] = {}
    universe: Set = set()
    for values in materialized.values():
        universe |= values
    for element in universe:
        members = frozenset(name for name, values in materialized.items()
                            if element in values)
        regions[members] = regions.get(members, 0) + 1
    return regions


def unique_counts(sets: Mapping[str, Iterable]) -> Dict[str, int]:
    """Per-set count of elements not covered by any other set.

    This is the paper's "unique coverage" metric (branches only one fuzzer
    reaches).
    """
    regions = venn_regions(sets)
    return {name: regions.get(frozenset({name}), 0) for name in sets}


def totals(sets: Mapping[str, Iterable]) -> Dict[str, int]:
    """Total size of each set (the parenthesised numbers in Figure 7)."""
    return {name: len(set(values)) for name, values in sets.items()}


def pairwise_overlap(sets: Mapping[str, Iterable]) -> Dict[Tuple[str, str], int]:
    """Size of the pairwise intersections (diagnostic, not in the paper)."""
    names = sorted(sets)
    materialized = {name: set(sets[name]) for name in names}
    overlaps: Dict[Tuple[str, str], int] = {}
    for i, first in enumerate(names):
        for second in names[i + 1:]:
            overlaps[(first, second)] = len(materialized[first] & materialized[second])
    return overlaps


def format_venn_table(sets: Mapping[str, Iterable], title: str = "") -> str:
    """Human-readable text rendering of a Venn decomposition."""
    lines = []
    if title:
        lines.append(title)
    for name, total in totals(sets).items():
        lines.append(f"  {name:<14} total={total}")
    lines.append("  exclusive regions:")
    for members, count in sorted(venn_regions(sets).items(),
                                 key=lambda item: (len(item[0]), sorted(item[0]))):
        label = " & ".join(sorted(members))
        lines.append(f"    {label:<40} {count}")
    return "\n".join(lines)
