"""Pluggable model-generation strategies and their named registry.

The campaign engine (:mod:`repro.core.fuzzer`, :mod:`repro.core.parallel`)
used to be hardcoded to the NNSmith generator; the LEMON / GraphFuzzer /
Tzer baselines lived in ad-hoc classes wired only into ``experiments/``.
This module makes *generation* a first-class, registry-named concept, the
same way :mod:`repro.compilers.base` made compilers registry-named for the
matrix engine: a :class:`GenerationStrategy` produces one
:class:`~repro.core.concretize.GeneratedModel` per ``(seed, iteration)``
pair, declares its capabilities, and is rebuilt *by name* inside worker
processes (names, unlike instances, are trivially picklable and fit in
checkpoint fingerprints).

The purity contract
-------------------
``generate(seed, iteration)`` must depend only on its arguments and the
strategy's construction-time config — never on call order.  This is the
property that lets the matrix engine re-execute any subset of iterations on
any worker (mid-cell checkpoint resume, adaptive chunk stealing) while
still reproducing a serial run exactly.  Stateful designs are wrapped
accordingly: the LEMON strategy re-derives its mutation chain from the
iteration seed instead of carrying an evolving model pool across
iterations, and Tzer — which mutates DeepC's *low-level IR*, not graphs —
is represented at the graph level by its seed corpus (exactly the paper's
point: Tzer never exercises graph-level structure; its own IR fuzzing stays
in :func:`repro.experiments.coverage_experiment.run_tzer_campaign`).

Strategies registered here: ``nnsmith`` (the solver-guided generator),
``graphfuzzer``, ``lemon``, ``tzer`` and ``targeted`` — a motif library
biased toward the rare structures (channel-strided Slice after Conv,
>4-input Concat, Squeeze without axes, ...) that plain fuzzing reaches only
with very low probability.
"""

from __future__ import annotations

import abc
import dataclasses
import random
import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.concretize import GeneratedModel
from repro.errors import GenerationError
from repro.graph.model import Model

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (fuzzer imports us)
    from repro.core.fuzzer import FuzzerConfig

#: The strategy assumed when a config predates the registry.  Seed streams
#: for this default are bit-identical to the pre-registry engine (see
#: :func:`strategy_entropy`), so PR-2 campaigns and the frozen corpus replay
#: unchanged.
DEFAULT_STRATEGY = "nnsmith"


def strategy_entropy(strategy: Optional[str]) -> Optional[int]:
    """Extra :class:`numpy.random.SeedSequence` entropy for a named strategy.

    ``None`` for the default strategy: the NNSmith streams must stay
    bit-identical to the pre-registry engine so existing campaign seeds,
    checkpoints-by-fingerprint and the regression corpus keep their meaning.
    Every other strategy gets its own disjoint stream per iteration.
    """
    if strategy in (None, DEFAULT_STRATEGY):
        return None
    return zlib.crc32(strategy.encode("utf-8"))


@dataclass(frozen=True)
class StrategyCapabilities:
    """What the engine may assume about a strategy.

    ``supports_op_pool``: the strategy honours
    :attr:`~repro.core.generator.GeneratorConfig.op_pool`, so probing
    compiler support matrices and baking a restricted pool into the config
    changes what it generates.  ``needs_value_search``: generated models
    benefit from Algorithm 3's input/weight search (solver-generated models
    do; mutation baselines are tested on plain random inputs, as in the
    paper's head-to-head).
    """

    supports_op_pool: bool = False
    needs_value_search: bool = False


class GenerationStrategy(abc.ABC):
    """One test-case generator behind the campaign engine.

    Subclasses are constructed from a :class:`~repro.core.fuzzer.FuzzerConfig`
    (whose ``generator`` knobs they may honour, per their capabilities) and
    must implement the pure ``generate`` step.
    """

    name: str = "strategy"
    capabilities: StrategyCapabilities = StrategyCapabilities()

    @abc.abstractmethod
    def generate(self, seed: int, iteration: int) -> GeneratedModel:
        """Produce one model for this iteration.

        ``seed`` is the engine-derived per-iteration seed (already mixed
        from campaign seed, generator seed, iteration and strategy name);
        ``iteration`` is the 1-based iteration index, provided so strategies
        may round-robin deterministic structure (the ``targeted`` strategy
        cycles its motif library this way).  Raises
        :class:`~repro.errors.GenerationError` on failure.
        """


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #
#: A picklable-by-name factory: config -> strategy instance.
StrategyFactory = Callable[["FuzzerConfig"], GenerationStrategy]

_STRATEGY_REGISTRY: Dict[str, StrategyFactory] = {}


def register_strategy(name: str, factory: Optional[StrategyFactory] = None):
    """Register a generation strategy under ``name``.

    Usable as a decorator on a strategy class (whose constructor takes the
    campaign's :class:`FuzzerConfig`) or called with an explicit factory.
    Idempotent for re-registration of the same factory; a different factory
    under a taken name is a configuration error.
    """

    def _register(factory: StrategyFactory) -> StrategyFactory:
        existing = _STRATEGY_REGISTRY.get(name)
        if existing is not None and existing is not factory:
            raise ValueError(f"strategy name {name!r} already registered")
        _STRATEGY_REGISTRY[name] = factory
        return factory

    if factory is not None:
        return _register(factory)
    return _register


def registered_strategies() -> Tuple[str, ...]:
    """Names of every registered strategy, in deterministic order."""
    return tuple(sorted(_STRATEGY_REGISTRY))


def build_strategy(name: str, config: "FuzzerConfig") -> GenerationStrategy:
    """Instantiate a registered strategy for one campaign config.

    This is how workers materialize a cell's generator: the *name* travels
    through process boundaries and checkpoint fingerprints, the instance is
    built on arrival.
    """
    try:
        factory = _STRATEGY_REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown generation strategy {name!r}; registered: "
                       f"{sorted(_STRATEGY_REGISTRY)}") from None
    return factory(config)


# --------------------------------------------------------------------------- #
# NNSmith (the paper's generator)
# --------------------------------------------------------------------------- #
@register_strategy("nnsmith")
class NNSmithStrategy(GenerationStrategy):
    """Algorithm 1 + 2: solver-guided symbolic generation with binning."""

    name = "nnsmith"
    capabilities = StrategyCapabilities(supports_op_pool=True,
                                        needs_value_search=True)

    def __init__(self, config: "FuzzerConfig") -> None:
        self._generator_config = config.generator

    def generate(self, seed: int, iteration: int) -> GeneratedModel:
        from repro.core.generator import generate_model

        return generate_model(
            dataclasses.replace(self._generator_config, seed=seed))


# --------------------------------------------------------------------------- #
# Baselines
# --------------------------------------------------------------------------- #
def _model_op_instances(model: Model) -> List[str]:
    """Operator-instance signatures, mirroring what concretize records."""
    return [f"{node.signature()}|" +
            ",".join(str(model.type_of(name)) for name in node.inputs)
            for node in model.nodes]


def wrap_model(model: Model) -> GeneratedModel:
    """Package a builder/mutation-produced model as a GeneratedModel.

    The helper third-party strategies use to return plain
    :class:`~repro.graph.model.Model` objects from ``generate`` with the
    operator-instance metadata (Figure 9's diversity metric) filled in.
    """
    return GeneratedModel(
        model=model,
        assignment={},
        n_nodes=len(model.nodes),
        weight_names=sorted(model.initializers),
        input_names=list(model.inputs),
        op_instances=_model_op_instances(model),
    )


#: Backwards-compatible private alias (pre-1.0 name).
_wrap_model = wrap_model


@register_strategy("graphfuzzer")
class GraphFuzzerStrategy(GenerationStrategy):
    """Random operator stitching with slice/pad shape alignment."""

    name = "graphfuzzer"
    capabilities = StrategyCapabilities()

    def __init__(self, config: "FuzzerConfig") -> None:
        self._n_nodes = config.generator.n_nodes

    def generate(self, seed: int, iteration: int) -> GeneratedModel:
        from repro.baselines.graphfuzzer import GraphFuzzerGenerator

        generator = GraphFuzzerGenerator(seed=seed, n_nodes=self._n_nodes)
        return _wrap_model(generator.next_case())


@register_strategy("lemon")
class LemonStrategy(GenerationStrategy):
    """Shape-preserving mutation of the seed-model zoo.

    The original LEMON evolves one model pool across the whole campaign,
    which is order-*dependent* and would break the engine's re-execute-any-
    iteration guarantee.  Here each iteration re-derives a short mutation
    chain (1-4 mutations, chain length drawn from the iteration seed) from
    the immutable seed zoo, so ``generate`` is pure in ``(seed, iteration)``
    while mutation depth still varies like a pool would.
    """

    name = "lemon"
    capabilities = StrategyCapabilities()

    def __init__(self, config: "FuzzerConfig") -> None:
        del config
        self._zoo: Optional[List[Model]] = None  # built lazily, reused

    def generate(self, seed: int, iteration: int) -> GeneratedModel:
        from repro.baselines.lemon import LemonGenerator

        if self._zoo is None:
            from repro.baselines.seeds import build_seed_models

            self._zoo = build_seed_models()
        # A fresh pool *list* per call keeps generate pure; the zoo models
        # themselves are safe to share — LemonGenerator clones before every
        # mutation and never hands out an un-cloned pool member.
        generator = LemonGenerator(seed=seed, pool=list(self._zoo))
        depth = 1 + random.Random(seed ^ 0x5EED).randrange(4)
        model = generator.next_case()
        for _ in range(depth - 1):
            model = generator.next_case()
        return _wrap_model(model)


@register_strategy("tzer")
class TzerStrategy(GenerationStrategy):
    """Tzer's graph-level footprint: seed-zoo models with perturbed weights.

    Tzer proper mutates DeepC's low-level IR and the pass pipeline — it
    produces no graphs, which is precisely why the paper finds it blind to
    graph-level importers and optimizations.  Behind the unified engine it
    therefore replays only its seed corpus (with Gaussian weight noise, the
    sole graph-level mutation its design admits); campaigns show it finding
    next to nothing at the graph level, matching Figure 8.  Its real
    low-level fuzzing loop remains
    :func:`repro.experiments.coverage_experiment.run_tzer_campaign`.
    """

    name = "tzer"
    capabilities = StrategyCapabilities()

    def __init__(self, config: "FuzzerConfig") -> None:
        del config
        self._zoo: Optional[List[Model]] = None

    def generate(self, seed: int, iteration: int) -> GeneratedModel:
        if self._zoo is None:
            from repro.baselines.seeds import build_seed_models

            self._zoo = build_seed_models()
        rng = random.Random(seed)
        model = rng.choice(self._zoo).clone()
        np_rng = np.random.default_rng(rng.randrange(1 << 30))
        for name in sorted(model.initializers):
            array = model.initializers[name]
            if array.dtype.kind == "f" and rng.random() < 0.5:
                noise = np_rng.normal(0, 0.05, size=array.shape)
                model.initializers[name] = (array + noise).astype(array.dtype)
        return _wrap_model(model)


# Registering the targeted strategy is an import side effect, like the
# builtin compilers in repro.compilers; importing last avoids a cycle.
from repro.core import targeted as _targeted  # noqa: E402,F401
