"""Pluggable test oracles and their named registry.

The campaign engine used to hardwire one oracle — the crash + numeric-diff
:class:`~repro.core.difftest.DifferentialTester`.  This module names that
choice: an *oracle* consumes a model plus concrete inputs and returns one
:class:`~repro.core.difftest.CompilerVerdict` per system under test.  New
oracles register a factory and slot into the serial loop, the matrix engine
and the CLI without touching any of them.  Registered here:

* ``difftest`` — the paper's oracle (crash + numeric differential test);
* ``crash`` — compile-and-run, crashes only (~2x cheaper per case);
* ``shape`` — shape-infer vs executed output shapes (pipeline smoke);
* ``perf`` — performance regression: the cell's optimized build is timed
  against an O0 build of the same model with a calibrated repeat/warmup
  harness; an optimized build slower than O0 beyond a noise threshold
  learned per worker is a ``perf`` verdict
  (:class:`PerfRegressionOracle`);
* ``gradcheck`` — autodiff gradient check: reverse-mode backprop through
  :mod:`repro.autodiff` is compared against central finite differences of
  the reference interpreter *and* of every compiled backend, reporting
  wrong-gradient verdicts with per-output max-error provenance
  (:class:`GradientCheckOracle`).

Like compilers and generation strategies, oracles travel through worker
processes and checkpoint fingerprints *by name* and are instantiated on
arrival via :func:`build_oracle`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.compilers.base import Compiler
from repro.core.cache import compile_with_cache
from repro.compilers.bugs import BugConfig
from repro.core.difftest import (CaseResult, CompilerVerdict,
                                 DifferentialTester, first_line)
from repro.errors import (CompilerError, ConversionError, IRVerificationError,
                          ReproError)

#: The oracle assumed when a config predates the registry.
DEFAULT_ORACLE = "difftest"

#: A picklable-by-name factory building an oracle inside a worker.
OracleFactory = Callable[[Sequence[Compiler], BugConfig], "Oracle"]

# The Oracle contract (structural, like compilers' CompiledModel):
#   name: str                       -- registry identifier
#   compilers: Sequence[Compiler]   -- systems under test (for pool probing)
#   evaluate(model, inputs, numerically_valid=None) -> List[CompilerVerdict]
#   run_case(model, inputs=None, numerically_valid=None) -> CaseResult
# DifferentialTester already satisfies it (difftest.py adds name/evaluate);
# Oracle below is a convenience base class for new implementations that
# derives run_case from evaluate.
Oracle = DifferentialTester  # default implementation doubles as the alias


class BaseOracle:
    """Convenience base: implement ``evaluate``, inherit ``run_case``."""

    name: str = "oracle"

    def __init__(self, compilers: Sequence[Compiler],
                 bugs: Optional[BugConfig] = None) -> None:
        self.compilers = list(compilers)
        self.bugs = bugs if bugs is not None else BugConfig.all()

    def evaluate(self, model, inputs,
                 numerically_valid: Optional[bool] = None
                 ) -> List[CompilerVerdict]:
        raise NotImplementedError

    def run_case(self, model, inputs=None,
                 numerically_valid: Optional[bool] = None,
                 rng: Optional[np.random.Generator] = None) -> CaseResult:
        """Evaluate one case, drawing random inputs when none are given.

        ``rng`` seeds those random inputs (default: a fixed stream, for
        reproducible standalone calls — pass a generator to vary inputs
        across calls).  ``numerically_valid`` is forwarded *as-is*:
        ``None`` means "validity unknown" and is preserved in the result —
        unlike :class:`DifferentialTester`, which derives validity from
        its reference-interpreter run, oracles built on this base never
        ran the reference, so coercing unknown to ``False`` would record
        every case as numerically invalid.
        """
        from repro.runtime.interpreter import random_inputs

        if inputs is None:
            rng = rng if rng is not None else np.random.default_rng(0)
            inputs = random_inputs(model, rng)
        verdicts = self.evaluate(model, inputs, numerically_valid)
        return CaseResult(model=model,
                          numerically_valid=numerically_valid,
                          verdicts=verdicts)


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #
_ORACLE_REGISTRY: Dict[str, OracleFactory] = {}


def register_oracle(name: str, factory: Optional[OracleFactory] = None):
    """Register an oracle factory under ``name`` (usable as a decorator)."""

    def _register(factory: OracleFactory) -> OracleFactory:
        existing = _ORACLE_REGISTRY.get(name)
        if existing is not None and existing is not factory:
            raise ValueError(f"oracle name {name!r} already registered")
        _ORACLE_REGISTRY[name] = factory
        return factory

    if factory is not None:
        return _register(factory)
    return _register


def registered_oracles() -> Tuple[str, ...]:
    """Names of every registered oracle, in deterministic order."""
    return tuple(sorted(_ORACLE_REGISTRY))


def build_oracle(name: str, compilers: Sequence[Compiler],
                 bugs: Optional[BugConfig] = None):
    """Instantiate a registered oracle over the given systems under test."""
    try:
        factory = _ORACLE_REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown oracle {name!r}; registered: "
                       f"{sorted(_ORACLE_REGISTRY)}") from None
    return factory(compilers, bugs if bugs is not None else BugConfig.all())


@register_oracle(DEFAULT_ORACLE)
def _difftest_factory(compilers: Sequence[Compiler],
                      bugs: BugConfig) -> DifferentialTester:
    """The paper's oracle: crash detection + numeric differential testing."""
    return DifferentialTester(compilers, bugs=bugs)


# --------------------------------------------------------------------------- #
# Shape-only oracle
# --------------------------------------------------------------------------- #
@register_oracle("shape")
class ShapeOnlyOracle(BaseOracle):
    """Pipeline-smoke oracle comparing output *shapes* only.

    The reference is the model's statically shape-inferred output types
    (generated models are fully concretized, so every output shape is
    known without running anything); each compiler's outputs must match
    them in shape, values are never compared.  That makes it the cheapest
    full-pipeline oracle — no reference-interpreter run, no numeric
    tolerance questions — suitable for smoke campaigns and for catching
    the large class of layout/reshape/broadcast bugs that change a result
    tensor's shape.  Value-level semantic bugs are invisible to it by
    design; crashes are reported exactly like ``difftest``.
    """

    name = "shape"

    def evaluate(self, model, inputs,
                 numerically_valid: Optional[bool] = None
                 ) -> List[CompilerVerdict]:
        from repro.runtime.exporter import ExportReport, export_model

        expected = {name: tuple(model.type_of(name).shape)
                    for name in model.outputs}
        report = ExportReport()
        exported = export_model(model, bugs=self.bugs, report=report)
        verdicts: List[CompilerVerdict] = []
        for compiler in self.compilers:
            verdict = self._judge_compiler(compiler, exported, inputs,
                                           expected)
            verdict.triggered_bugs.extend(
                bug for bug in report.triggered_bugs
                if bug not in verdict.triggered_bugs)
            verdicts.append(verdict)
        return verdicts

    def _judge_compiler(self, compiler, exported, inputs,
                        expected) -> CompilerVerdict:
        from repro.core.difftest import _bugs_from_error

        try:
            compiled = compile_with_cache(compiler, exported)
        except IRVerificationError as exc:
            return CompilerVerdict(compiler.name, "verifier", "transformation",
                                   str(exc), _bugs_from_error(exc))
        except ConversionError as exc:
            return CompilerVerdict(compiler.name, "crash", "conversion",
                                   str(exc), _bugs_from_error(exc))
        except CompilerError as exc:
            return CompilerVerdict(compiler.name, "crash", "transformation",
                                   str(exc), _bugs_from_error(exc))
        triggered = list(getattr(compiled, "triggered_bugs", []))
        modified = list(getattr(compiled, "modified_by", []))
        try:
            outputs = compiled.run(inputs)
        except ReproError as exc:
            return CompilerVerdict(compiler.name, "crash", "execution",
                                   str(exc),
                                   triggered + _bugs_from_error(exc),
                                   modified)
        for name, shape in expected.items():
            if name not in outputs:
                return CompilerVerdict(
                    compiler.name, "semantic", "execution",
                    f"output {name!r} missing from compiled results",
                    triggered, modified)
            actual = tuple(np.asarray(outputs[name]).shape)
            if actual != shape:
                return CompilerVerdict(
                    compiler.name, "semantic", "execution",
                    f"output {name!r} shape mismatch: inferred {shape}, "
                    f"got {actual}", triggered, modified)
        return CompilerVerdict(compiler.name, "ok", "", "", triggered,
                               modified)


# --------------------------------------------------------------------------- #
# Crash-only oracle
# --------------------------------------------------------------------------- #
@register_oracle("crash")
class CrashOnlyOracle(BaseOracle):
    """Compile-and-run oracle that reports crashes only.

    Skips the reference-interpreter run and the numeric comparison, making
    it roughly 2x cheaper per case than ``difftest`` — useful for long
    crash-hunting campaigns and as the registry's proof that a second
    oracle slots in without touching the engine.  Semantic (wrong-output)
    bugs are invisible to it by design.
    """

    name = "crash"

    def __init__(self, compilers: Sequence[Compiler],
                 bugs: Optional[BugConfig] = None) -> None:
        super().__init__(compilers, bugs)

    def evaluate(self, model, inputs,
                 numerically_valid: Optional[bool] = None
                 ) -> List[CompilerVerdict]:
        from repro.core.difftest import _bugs_from_error
        from repro.runtime.exporter import ExportReport, export_model

        report = ExportReport()
        exported = export_model(model, bugs=self.bugs, report=report)
        verdicts: List[CompilerVerdict] = []
        for compiler in self.compilers:
            modified: List[str] = []
            try:
                compiled = compile_with_cache(compiler, exported)
                triggered = list(getattr(compiled, "triggered_bugs", []))
                modified = list(getattr(compiled, "modified_by", []))
                compiled.run(inputs)
                verdict = CompilerVerdict(compiler.name, "ok", "", "",
                                          triggered, modified)
            except IRVerificationError as exc:
                verdict = CompilerVerdict(compiler.name, "verifier",
                                          "transformation", str(exc),
                                          _bugs_from_error(exc))
            except ConversionError as exc:
                verdict = CompilerVerdict(compiler.name, "crash", "conversion",
                                          str(exc), _bugs_from_error(exc))
            except CompilerError as exc:
                verdict = CompilerVerdict(compiler.name, "crash",
                                          "transformation", str(exc),
                                          _bugs_from_error(exc))
            except ReproError as exc:
                verdict = CompilerVerdict(compiler.name, "crash", "execution",
                                          str(exc), _bugs_from_error(exc),
                                          modified)
            verdict.triggered_bugs.extend(
                bug for bug in report.triggered_bugs
                if bug not in verdict.triggered_bugs)
            verdicts.append(verdict)
        return verdicts


# --------------------------------------------------------------------------- #
# Performance-regression oracle
# --------------------------------------------------------------------------- #
@register_oracle("perf")
class PerfRegressionOracle(BaseOracle):
    """Optimized-vs-O0 runtime comparison (Tzer-style pass-level hunting).

    For every compiler the model is compiled twice — at the compiler's own
    optimization level and at O0 — and both executables are timed with a
    warmup + min-of-repeats harness (the minimum is robust to additive
    scheduler noise).  An optimized build slower than the O0 build beyond
    a noise threshold is reported as a ``perf`` verdict: optimizations are
    allowed to be useless, not to pessimize.

    The threshold is *learned per worker*: the first case calibrates by
    timing the same O0 executable twice and widening the floor by the
    observed run-to-run noise, so a loaded CI machine raises the bar
    instead of flaking.  ``timer`` / ``threshold`` are injectable for
    deterministic tests (a fake clock makes every measurement scripted).

    Repeat counts are *size-adaptive* by default: tiny models run in
    microseconds where dispatch jitter dominates, so they get more timed
    repeats; big models are individually slow but self-averaging, so they
    get fewer — keeping per-case timing work roughly constant
    (:meth:`counts_for_cost`, √ scaling against :data:`REFERENCE_COST`).
    Passing explicit ``repeats``/``warmup`` pins fixed counts and disables
    the scaling entirely.

    Crashes are reported exactly like ``difftest``; value correctness is
    out of scope (run ``difftest`` alongside via the oracle matrix axis).

    Unlike every other oracle, ``perf`` verdicts depend on real wall time,
    so campaigns that include it are not bit-reproducible run-to-run —
    seeded-bug attribution stays stable (triggers are recorded at compile
    time), but borderline findings can flip.  The scheduler-equivalence
    guarantees apply to the deterministic oracles.
    """

    name = "perf"

    #: Untimed runs before measuring (caches, lazy init).
    WARMUP = 1
    #: Timed runs per measurement; the minimum is kept.
    REPEATS = 3
    #: Model cost (graph nodes × input elements) at which the base
    #: WARMUP/REPEATS apply unscaled.  Roughly a 10-node model over a
    #: few hundred elements — the campaign generator's typical output.
    REFERENCE_COST = 4096.0
    #: Clamp bounds of the size-adaptive counts: even a huge model keeps a
    #: noise-robust min-of-2, even a tiny one never exceeds 9 repeats
    #: (3 warmups) per measurement.
    MIN_REPEATS, MAX_REPEATS = 2, 9
    MIN_WARMUP, MAX_WARMUP = 1, 3
    #: Minimum slowdown ratio ever reported, however quiet the machine.
    #: Generous: the tiny models campaigns generate run in microseconds,
    #: where per-node dispatch jitter is multiplicative — real seeded
    #: pessimizations sit orders of magnitude above this.
    THRESHOLD_FLOOR = 4.0
    #: How much observed calibration noise widens the threshold.
    CALIBRATION_SLACK = 4.0

    def __init__(self, compilers: Sequence[Compiler],
                 bugs: Optional[BugConfig] = None,
                 timer: Optional[Callable[[], float]] = None,
                 repeats: Optional[int] = None,
                 warmup: Optional[int] = None,
                 threshold: Optional[float] = None) -> None:
        import time

        super().__init__(compilers, bugs)
        self._timer = timer if timer is not None else time.perf_counter
        #: Explicit counts pin fixed behaviour (deterministic fake-clock
        #: tests depend on a scripted number of timer reads); leaving both
        #: unset enables per-case size-adaptive counts.
        self._adaptive = repeats is None and warmup is None
        self.repeats = self.REPEATS if repeats is None else max(1, repeats)
        self.warmup = self.WARMUP if warmup is None else max(0, warmup)
        #: Calibrated slowdown threshold; None until the per-worker
        #: calibration run (an explicit ``threshold`` skips calibration).
        self._threshold: Optional[float] = threshold

    # ------------------------------------------------------------------ #
    @classmethod
    def model_cost(cls, model, inputs) -> float:
        """Per-run work estimate: graph nodes × total input elements."""
        nodes = max(1, len(getattr(model, "nodes", []) or []))
        elements = max(1, sum(int(getattr(value, "size", 1) or 1)
                              for value in (inputs or {}).values()))
        return float(nodes * elements)

    @classmethod
    def counts_for_cost(cls, cost: float) -> Tuple[int, int]:
        """``(warmup, repeats)`` for a model of per-run ``cost``.

        √ scaling keeps total timing work per case roughly constant: a
        model 4× cheaper than :data:`REFERENCE_COST` gets 2× the repeats
        (its jitter-to-runtime ratio is worse), a 4× dearer one gets half.
        Clamped to [MIN, MAX] on both counts.
        """
        import math

        if cost <= 0.0:
            return cls.WARMUP, cls.REPEATS
        scale = math.sqrt(cls.REFERENCE_COST / cost)
        warmup = int(round(cls.WARMUP * scale))
        repeats = int(round(cls.REPEATS * scale))
        return (max(cls.MIN_WARMUP, min(cls.MAX_WARMUP, warmup)),
                max(cls.MIN_REPEATS, min(cls.MAX_REPEATS, repeats)))

    def _measure(self, compiled, inputs) -> float:
        """Min-of-repeats wall time of one executable, in seconds."""
        for _ in range(self.warmup):
            compiled.run(inputs)
        best: Optional[float] = None
        for _ in range(self.repeats):
            start = self._timer()
            compiled.run(inputs)
            elapsed = self._timer() - start
            if best is None or elapsed < best:
                best = elapsed
        return max(best if best is not None else 0.0, 1e-9)

    def _calibrated_threshold(self, compiled, inputs) -> float:
        """The per-worker noise threshold, calibrating on first use.

        Two independent min-of-repeats measurements of the *same*
        executable should agree; their ratio estimates this worker's
        timing noise, and the reporting threshold widens accordingly.
        """
        if self._threshold is None:
            first = self._measure(compiled, inputs)
            second = self._measure(compiled, inputs)
            noise = max(first, second) / min(first, second)
            self._threshold = max(
                self.THRESHOLD_FLOOR,
                1.0 + self.CALIBRATION_SLACK * (noise - 1.0))
        return self._threshold

    # ------------------------------------------------------------------ #
    def evaluate(self, model, inputs,
                 numerically_valid: Optional[bool] = None
                 ) -> List[CompilerVerdict]:
        from repro.runtime.exporter import ExportReport, export_model

        if self._adaptive:
            self.warmup, self.repeats = self.counts_for_cost(
                self.model_cost(model, inputs))
        report = ExportReport()
        exported = export_model(model, bugs=self.bugs, report=report)
        verdicts: List[CompilerVerdict] = []
        for compiler in self.compilers:
            verdict = self._judge_compiler(compiler, exported, inputs)
            verdict.triggered_bugs.extend(
                bug for bug in report.triggered_bugs
                if bug not in verdict.triggered_bugs)
            verdicts.append(verdict)
        return verdicts

    def _judge_compiler(self, compiler, exported, inputs) -> CompilerVerdict:
        from repro.compilers.base import CompileOptions
        from repro.core.difftest import _bugs_from_error

        try:
            optimized = compile_with_cache(compiler, exported)
        except IRVerificationError as exc:
            return CompilerVerdict(compiler.name, "verifier", "transformation",
                                   str(exc), _bugs_from_error(exc))
        except ConversionError as exc:
            return CompilerVerdict(compiler.name, "crash", "conversion",
                                   str(exc), _bugs_from_error(exc))
        except CompilerError as exc:
            return CompilerVerdict(compiler.name, "crash", "transformation",
                                   str(exc), _bugs_from_error(exc))
        triggered = list(getattr(optimized, "triggered_bugs", []))
        modified = list(getattr(optimized, "modified_by", []))
        try:
            optimized.run(inputs)
        except ReproError as exc:
            return CompilerVerdict(compiler.name, "crash", "execution",
                                   str(exc),
                                   triggered + _bugs_from_error(exc),
                                   modified)
        opt_level = getattr(getattr(compiler, "options", None),
                            "opt_level", None)
        if not opt_level:
            # Already an O0 (or unleveled) build: no optimized-vs-baseline
            # contrast exists for this cell.
            return CompilerVerdict(compiler.name, "ok", "", "", triggered,
                                   modified)
        try:
            baseline = compile_with_cache(
                type(compiler)(CompileOptions(opt_level=0, bugs=self.bugs)),
                exported)
            baseline.run(inputs)
        except ReproError:
            # The unoptimized build itself fails; crash-class oracles own
            # that case — there is no baseline to regress against.
            return CompilerVerdict(compiler.name, "ok", "", "", triggered,
                                   modified)
        threshold = self._calibrated_threshold(baseline, inputs)
        optimized_time = self._measure(optimized, inputs)
        baseline_time = self._measure(baseline, inputs)
        ratio = optimized_time / baseline_time
        if ratio <= threshold:
            return CompilerVerdict(compiler.name, "ok", "", "", triggered,
                                   modified)
        message = (f"optimized (O{opt_level}) build is {ratio:.1f}x slower "
                   f"than O0 ({optimized_time * 1e3:.3f}ms vs "
                   f"{baseline_time * 1e3:.3f}ms; calibrated threshold "
                   f"{threshold:.2f}x)")
        # Bisect the flagged regression to the nodes that carry it.  The
        # attribution is pure provenance: it runs only after the verdict is
        # already decided, never changes the message or dedup key, and
        # executables without per-node profiling hooks yield [].
        try:
            from repro.runtime.compiled_plan import attribute_slow_nodes
            slow_nodes = attribute_slow_nodes(optimized, baseline, inputs,
                                              timer=self._timer)
        except Exception:
            slow_nodes = []
        return CompilerVerdict(compiler.name, "perf", "transformation",
                               message, triggered, modified,
                               slow_nodes=slow_nodes)


# --------------------------------------------------------------------------- #
# Autodiff gradient-check oracle
# --------------------------------------------------------------------------- #
@register_oracle("gradcheck")
class GradientCheckOracle(BaseOracle):
    """Backprop through :mod:`repro.autodiff` vs central finite differences.

    Whole bug classes are invisible to forward-output differential testing:
    a wrong vector-Jacobian product produces perfectly correct forward
    results and silently corrupts every gradient consumer.  This oracle
    runs reverse-mode backprop over the generated model (proxy derivatives
    *disabled* — true derivatives only, so analytic and numeric gradients
    agree on smooth paths) and compares the analytic input gradients
    against central finite differences of

    * the reference interpreter (verdict ``"autodiff"`` — the repo's
      autograd itself is the system under test), and
    * every compiled backend, where supported (gradients observed through
      each compiler's forward function must match too).

    Comparisons sample a deterministic subset of elements per float graph
    input; wrong-gradient verdicts carry per-output max-error provenance
    (which output's gradient, against which input element, analytic vs
    numeric value).  Cases that are numerically invalid, have no float
    inputs/outputs, or contain operators without a registered VJP are
    skipped (all-ok verdicts) — gradients are only comparable on smooth,
    finite paths.
    """

    name = "gradcheck"

    #: Elements checked per float graph input (deterministic, evenly
    #: spaced over the flattened tensor).
    SAMPLES_PER_TENSOR = 3
    #: Central-difference step, scaled by the element's magnitude.
    FD_STEP = 1e-3
    #: Mismatch tolerances: a sample disagrees when the absolute error
    #: exceeds ATOL *and* the error relative to max(1, |analytic|,
    #: |numeric|) exceeds RTOL.  Deliberately loose (like difftest's
    #: forward tolerances) so float32 truncation and benign kinks never
    #: alarm.
    RTOL = 5e-2
    ATOL = 1e-2

    def evaluate(self, model, inputs,
                 numerically_valid: Optional[bool] = None
                 ) -> List[CompilerVerdict]:
        from repro.autodiff.backprop import backpropagate
        from repro.autodiff.proxy import NO_PROXY
        from repro.runtime.exporter import ExportReport, export_model
        from repro.runtime.interpreter import Interpreter

        interpreter = Interpreter(record_intermediates=True)
        try:
            run = interpreter.run_detailed(model, inputs)
        except ReproError:
            return self._skip_verdicts()
        if numerically_valid is None:
            numerically_valid = run.numerically_valid
        float_outputs = [name for name in model.outputs
                         if model.type_of(name).dtype.is_float]
        targets = self._sampled_targets(model, inputs)
        if not numerically_valid or not float_outputs or not targets:
            return self._skip_verdicts()

        triggered: List[str] = []
        analytic: Dict[str, Dict[str, np.ndarray]] = {}
        try:
            for out in float_outputs:
                seed = {out: np.ones(np.asarray(run.outputs[out]).shape,
                                     dtype=np.float64)}
                analytic[out] = backpropagate(model, run.values, seed,
                                              proxy=NO_PROXY,
                                              bugs=self.bugs,
                                              triggered=triggered)
        except ReproError:
            return self._skip_verdicts()  # some operator has no VJP

        # When the compiled-plan layer is on, FD probes of the reference
        # interpreter run in batched sweeps (all perturbations of one input
        # through one plan walk) — bit-identical outputs, so the verdict is
        # the same either way (pinned by the cache invisibility tests).
        try:
            from repro.runtime.compiled_plan import batched_reference_runner
            batch_runner = batched_reference_runner(model)
        except ReproError:
            batch_runner = None
        try:
            reference = self._judge_runner(
                "autodiff",
                lambda perturbed: Interpreter(record_intermediates=False)
                .run_detailed(model, perturbed).outputs,
                inputs, float_outputs, targets, analytic, triggered,
                batch_runner=batch_runner)
        except ReproError:
            # A perturbed reference run failed outright (domain edge):
            # gradients are not comparable here.
            reference = CompilerVerdict("autodiff", "ok", "", "",
                                        list(triggered))
        verdicts = [reference]

        report = ExportReport()
        exported = export_model(model, bugs=self.bugs, report=report)
        for compiler in self.compilers:
            verdict = self._judge_compiled(compiler, exported, inputs,
                                           float_outputs, targets, analytic,
                                           triggered)
            verdict.triggered_bugs.extend(
                bug for bug in report.triggered_bugs
                if bug not in verdict.triggered_bugs)
            verdicts.append(verdict)
        return verdicts

    # ------------------------------------------------------------------ #
    def _skip_verdicts(self) -> List[CompilerVerdict]:
        """All-ok verdicts for cases gradients cannot be checked on."""
        return [CompilerVerdict("autodiff", "ok", "", "")] + \
            [CompilerVerdict(compiler.name, "ok", "", "")
             for compiler in self.compilers]

    def _sampled_targets(self, model, inputs):
        """(input name, sampled flat indices) for every float graph input.

        Only graph inputs are perturbed (weights are baked into compiled
        executables, so they cannot be finite-differenced through a
        backend); the sampled elements are deterministic — evenly spaced
        over the flattened tensor — so campaign iterations are pure in
        ``(config, iteration)`` like every other engine component.
        """
        targets = []
        for name in model.inputs:
            if not model.type_of(name).dtype.is_float:
                continue
            size = int(np.asarray(inputs[name]).size)
            if size == 0:
                continue
            count = min(self.SAMPLES_PER_TENSOR, size)
            indices = sorted({int(round(i * (size - 1) / max(count - 1, 1)))
                              for i in range(count)})
            targets.append((name, indices))
        return targets

    def _judge_compiled(self, compiler, exported, inputs, float_outputs,
                        targets, analytic, triggered) -> CompilerVerdict:
        from repro.core.difftest import _bugs_from_error

        try:
            compiled = compile_with_cache(compiler, exported)
        except IRVerificationError as exc:
            return CompilerVerdict(compiler.name, "verifier", "transformation",
                                   str(exc), _bugs_from_error(exc))
        except ConversionError as exc:
            return CompilerVerdict(compiler.name, "crash", "conversion",
                                   str(exc), _bugs_from_error(exc))
        except CompilerError as exc:
            return CompilerVerdict(compiler.name, "crash", "transformation",
                                   str(exc), _bugs_from_error(exc))
        compile_triggered = list(getattr(compiled, "triggered_bugs", []))
        modified = list(getattr(compiled, "modified_by", []))
        try:
            verdict = self._judge_runner(compiler.name, compiled.run, inputs,
                                         float_outputs, targets, analytic,
                                         triggered)
        except ReproError as exc:
            return CompilerVerdict(compiler.name, "crash", "execution",
                                   str(exc),
                                   compile_triggered + _bugs_from_error(exc),
                                   modified)
        verdict.triggered_bugs.extend(
            bug for bug in compile_triggered
            if bug not in verdict.triggered_bugs)
        verdict.modified_by = modified
        return verdict

    def _judge_runner(self, system, runner, inputs, float_outputs, targets,
                      analytic, triggered,
                      batch_runner=None) -> CompilerVerdict:
        """Compare analytic gradients against central FD through ``runner``.

        ``runner`` maps an inputs dict to an outputs dict; the scalar loss
        per output is the sum of its elements, so one pair of perturbed
        runs yields every output's directional derivative at once.  With a
        ``batch_runner`` (maps a list of input dicts to a list of output
        dicts), the ±probes of *every* target tensor run as one batched
        sweep instead of 2×samples sequential runs; runs are pure, so the
        judged values are identical.
        """
        per_name = []
        for name, indices in targets:
            base = np.asarray(inputs[name])
            probes = []
            for index in indices:
                value = float(base.reshape(-1)[index])
                step = self.FD_STEP * max(1.0, abs(value))
                probes.append((index, step,
                               self._perturbed(inputs, name, index, step),
                               self._perturbed(inputs, name, index, -step)))
            per_name.append((name, probes))
        if batch_runner is not None:
            flat = [sample for _name, probes in per_name
                    for _i, _s, plus, minus in probes
                    for sample in (plus, minus)]
            outs = batch_runner(flat) if flat else []
            pairs_of = []
            cursor = 0
            for _name, probes in per_name:
                pairs_of.append([(outs[cursor + 2 * i],
                                  outs[cursor + 2 * i + 1])
                                 for i in range(len(probes))])
                cursor += 2 * len(probes)
        else:
            pairs_of = [[(runner(plus), runner(minus))
                         for _i, _s, plus, minus in probes]
                        for _name, probes in per_name]

        worst: Dict[str, Tuple[float, str, int, float, float]] = {}
        mismatched = False
        for (name, probes), pairs in zip(per_name, pairs_of):
            for (index, step, _plus, _minus), (outs_plus, outs_minus) in zip(
                    probes, pairs):
                for out in float_outputs:
                    if out not in outs_plus or out not in outs_minus:
                        continue
                    hi = float(np.sum(np.asarray(outs_plus[out],
                                                 dtype=np.float64)))
                    lo = float(np.sum(np.asarray(outs_minus[out],
                                                 dtype=np.float64)))
                    if not (np.isfinite(hi) and np.isfinite(lo)):
                        continue  # perturbation left the smooth domain
                    numeric = (hi - lo) / (2.0 * step)
                    grads = analytic[out].get(name)
                    if grads is None:
                        continue
                    exact = float(np.asarray(grads).reshape(-1)[index])
                    error = abs(exact - numeric)
                    scale = max(1.0, abs(exact), abs(numeric))
                    record = worst.get(out)
                    if record is None or error > record[0]:
                        worst[out] = (error, name, index, exact, numeric)
                    if error > self.ATOL and error / scale > self.RTOL:
                        mismatched = True
        if not mismatched:
            return CompilerVerdict(system, "ok", "", "", list(triggered))
        provenance = "; ".join(
            f"output {out!r}: max |analytic-numeric| {error:.4g} "
            f"(input {name!r}[{index}], analytic {exact:.4g}, "
            f"numeric {numeric:.4g})"
            for out, (error, name, index, exact, numeric)
            in sorted(worst.items()))
        return CompilerVerdict(system, "gradient", "backward",
                               f"wrong gradient: {provenance}",
                               list(triggered))

    @staticmethod
    def _perturbed(inputs, name, index, delta):
        perturbed = dict(inputs)
        array = np.array(inputs[name], copy=True)
        flat = array.reshape(-1)
        flat[index] = flat[index] + delta
        perturbed[name] = array
        return perturbed


__all__ = [
    "BaseOracle",
    "CrashOnlyOracle",
    "DEFAULT_ORACLE",
    "GradientCheckOracle",
    "Oracle",
    "PerfRegressionOracle",
    "ShapeOnlyOracle",
    "build_oracle",
    "first_line",
    "register_oracle",
    "registered_oracles",
]
