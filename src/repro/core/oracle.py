"""Pluggable test oracles and their named registry.

The campaign engine used to hardwire one oracle — the crash + numeric-diff
:class:`~repro.core.difftest.DifferentialTester`.  This module names that
choice: an *oracle* consumes a model plus concrete inputs and returns one
:class:`~repro.core.difftest.CompilerVerdict` per system under test.  New
oracles register a factory and slot into the serial loop, the matrix engine
and the CLI without touching any of them — ``crash`` (compile-and-run) and
``shape`` (shape-infer vs executed output shapes, the cheap pipeline smoke)
are the in-repo proofs; performance-regression and autodiff gradient
checking remain open roadmap slots.

Like compilers and generation strategies, oracles travel through worker
processes and checkpoint fingerprints *by name* and are instantiated on
arrival via :func:`build_oracle`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.compilers.base import Compiler
from repro.compilers.bugs import BugConfig
from repro.core.difftest import (CaseResult, CompilerVerdict,
                                 DifferentialTester, first_line)
from repro.errors import CompilerError, ConversionError, ReproError

#: The oracle assumed when a config predates the registry.
DEFAULT_ORACLE = "difftest"

#: A picklable-by-name factory building an oracle inside a worker.
OracleFactory = Callable[[Sequence[Compiler], BugConfig], "Oracle"]

# The Oracle contract (structural, like compilers' CompiledModel):
#   name: str                       -- registry identifier
#   compilers: Sequence[Compiler]   -- systems under test (for pool probing)
#   evaluate(model, inputs, numerically_valid=None) -> List[CompilerVerdict]
#   run_case(model, inputs=None, numerically_valid=None) -> CaseResult
# DifferentialTester already satisfies it (difftest.py adds name/evaluate);
# Oracle below is a convenience base class for new implementations that
# derives run_case from evaluate.
Oracle = DifferentialTester  # default implementation doubles as the alias


class BaseOracle:
    """Convenience base: implement ``evaluate``, inherit ``run_case``."""

    name: str = "oracle"

    def __init__(self, compilers: Sequence[Compiler],
                 bugs: Optional[BugConfig] = None) -> None:
        self.compilers = list(compilers)
        self.bugs = bugs if bugs is not None else BugConfig.all()

    def evaluate(self, model, inputs,
                 numerically_valid: Optional[bool] = None
                 ) -> List[CompilerVerdict]:
        raise NotImplementedError

    def run_case(self, model, inputs=None,
                 numerically_valid: Optional[bool] = None) -> CaseResult:
        from repro.runtime.interpreter import random_inputs

        if inputs is None:
            inputs = random_inputs(model, np.random.default_rng(0))
        verdicts = self.evaluate(model, inputs, numerically_valid)
        return CaseResult(model=model,
                          numerically_valid=bool(numerically_valid),
                          verdicts=verdicts)


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #
_ORACLE_REGISTRY: Dict[str, OracleFactory] = {}


def register_oracle(name: str, factory: Optional[OracleFactory] = None):
    """Register an oracle factory under ``name`` (usable as a decorator)."""

    def _register(factory: OracleFactory) -> OracleFactory:
        existing = _ORACLE_REGISTRY.get(name)
        if existing is not None and existing is not factory:
            raise ValueError(f"oracle name {name!r} already registered")
        _ORACLE_REGISTRY[name] = factory
        return factory

    if factory is not None:
        return _register(factory)
    return _register


def registered_oracles() -> Tuple[str, ...]:
    """Names of every registered oracle, in deterministic order."""
    return tuple(sorted(_ORACLE_REGISTRY))


def build_oracle(name: str, compilers: Sequence[Compiler],
                 bugs: Optional[BugConfig] = None):
    """Instantiate a registered oracle over the given systems under test."""
    try:
        factory = _ORACLE_REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown oracle {name!r}; registered: "
                       f"{sorted(_ORACLE_REGISTRY)}") from None
    return factory(compilers, bugs if bugs is not None else BugConfig.all())


@register_oracle(DEFAULT_ORACLE)
def _difftest_factory(compilers: Sequence[Compiler],
                      bugs: BugConfig) -> DifferentialTester:
    """The paper's oracle: crash detection + numeric differential testing."""
    return DifferentialTester(compilers, bugs=bugs)


# --------------------------------------------------------------------------- #
# Shape-only oracle
# --------------------------------------------------------------------------- #
@register_oracle("shape")
class ShapeOnlyOracle(BaseOracle):
    """Pipeline-smoke oracle comparing output *shapes* only.

    The reference is the model's statically shape-inferred output types
    (generated models are fully concretized, so every output shape is
    known without running anything); each compiler's outputs must match
    them in shape, values are never compared.  That makes it the cheapest
    full-pipeline oracle — no reference-interpreter run, no numeric
    tolerance questions — suitable for smoke campaigns and for catching
    the large class of layout/reshape/broadcast bugs that change a result
    tensor's shape.  Value-level semantic bugs are invisible to it by
    design; crashes are reported exactly like ``difftest``.
    """

    name = "shape"

    def evaluate(self, model, inputs,
                 numerically_valid: Optional[bool] = None
                 ) -> List[CompilerVerdict]:
        from repro.runtime.exporter import ExportReport, export_model

        expected = {name: tuple(model.type_of(name).shape)
                    for name in model.outputs}
        report = ExportReport()
        exported = export_model(model, bugs=self.bugs, report=report)
        verdicts: List[CompilerVerdict] = []
        for compiler in self.compilers:
            verdict = self._judge_compiler(compiler, exported, inputs,
                                           expected)
            verdict.triggered_bugs.extend(
                bug for bug in report.triggered_bugs
                if bug not in verdict.triggered_bugs)
            verdicts.append(verdict)
        return verdicts

    def _judge_compiler(self, compiler, exported, inputs,
                        expected) -> CompilerVerdict:
        from repro.core.difftest import _bugs_from_error

        try:
            compiled = compiler.compile_model(exported)
        except ConversionError as exc:
            return CompilerVerdict(compiler.name, "crash", "conversion",
                                   str(exc), _bugs_from_error(exc))
        except CompilerError as exc:
            return CompilerVerdict(compiler.name, "crash", "transformation",
                                   str(exc), _bugs_from_error(exc))
        triggered = list(getattr(compiled, "triggered_bugs", []))
        try:
            outputs = compiled.run(inputs)
        except ReproError as exc:
            return CompilerVerdict(compiler.name, "crash", "execution",
                                   str(exc),
                                   triggered + _bugs_from_error(exc))
        for name, shape in expected.items():
            if name not in outputs:
                return CompilerVerdict(
                    compiler.name, "semantic", "execution",
                    f"output {name!r} missing from compiled results",
                    triggered)
            actual = tuple(np.asarray(outputs[name]).shape)
            if actual != shape:
                return CompilerVerdict(
                    compiler.name, "semantic", "execution",
                    f"output {name!r} shape mismatch: inferred {shape}, "
                    f"got {actual}", triggered)
        return CompilerVerdict(compiler.name, "ok", "", "", triggered)


# --------------------------------------------------------------------------- #
# Crash-only oracle
# --------------------------------------------------------------------------- #
@register_oracle("crash")
class CrashOnlyOracle(BaseOracle):
    """Compile-and-run oracle that reports crashes only.

    Skips the reference-interpreter run and the numeric comparison, making
    it roughly 2x cheaper per case than ``difftest`` — useful for long
    crash-hunting campaigns and as the registry's proof that a second
    oracle slots in without touching the engine.  Semantic (wrong-output)
    bugs are invisible to it by design.
    """

    name = "crash"

    def __init__(self, compilers: Sequence[Compiler],
                 bugs: Optional[BugConfig] = None) -> None:
        super().__init__(compilers, bugs)

    def evaluate(self, model, inputs,
                 numerically_valid: Optional[bool] = None
                 ) -> List[CompilerVerdict]:
        from repro.core.difftest import _bugs_from_error
        from repro.runtime.exporter import ExportReport, export_model

        report = ExportReport()
        exported = export_model(model, bugs=self.bugs, report=report)
        verdicts: List[CompilerVerdict] = []
        for compiler in self.compilers:
            try:
                compiled = compiler.compile_model(exported)
                triggered = list(getattr(compiled, "triggered_bugs", []))
                compiled.run(inputs)
                verdict = CompilerVerdict(compiler.name, "ok", "", "",
                                          triggered)
            except ConversionError as exc:
                verdict = CompilerVerdict(compiler.name, "crash", "conversion",
                                          str(exc), _bugs_from_error(exc))
            except CompilerError as exc:
                verdict = CompilerVerdict(compiler.name, "crash",
                                          "transformation", str(exc),
                                          _bugs_from_error(exc))
            except ReproError as exc:
                verdict = CompilerVerdict(compiler.name, "crash", "execution",
                                          str(exc), _bugs_from_error(exc))
            verdict.triggered_bugs.extend(
                bug for bug in report.triggered_bugs
                if bug not in verdict.triggered_bugs)
            verdicts.append(verdict)
        return verdicts


__all__ = [
    "BaseOracle",
    "CrashOnlyOracle",
    "DEFAULT_ORACLE",
    "Oracle",
    "ShapeOnlyOracle",
    "build_oracle",
    "first_line",
    "register_oracle",
    "registered_oracles",
]
