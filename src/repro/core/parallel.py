"""Matrix campaigns: sharded, process-parallel fuzzing over a compiler matrix.

:class:`repro.core.fuzzer.Fuzzer` is a strictly serial loop; a campaign uses
one core no matter how many are available.  The search is embarrassingly
parallel, so this module schedules it over a pool of ``multiprocessing``
workers.  The unit of work is a **matrix cell** — one shard's seed stream
run against one *compiler subset* at one *optimization level*
(:class:`MatrixCell`).  A classic PR-1-style campaign is the degenerate
1×1 matrix: N shards against the single compiler set built by
``compiler_factory``.

Three properties distinguish the matrix engine from a flat shard list:

* **Shared streams.**  Every compiler subset sees the *same* shard seed
  streams: cell ``(shard=s, subset=A, O2)`` and cell ``(shard=s, subset=B,
  O0)`` generate and value-search identical models.  Combined with the
  per-cell provenance recorded in :class:`~repro.core.fuzzer.CellOutcome`,
  this makes per-backend / per-opt-level bug Venn diagrams
  (:func:`repro.experiments.venn.campaign_cell_sets`) an apples-to-apples
  comparison.  When ``probe_operator_support`` is on, the operator pool is
  probed once over the *union* of all matrix compilers so every cell
  generates from the same pool.
* **Intra-cell checkpointing.**  Workers stream every completed iteration's
  folded result back to the coordinator, which persists an incremental JSON
  checkpoint (`format_version` 2): per cell, the accumulated
  :class:`CampaignResult` plus the exact set of completed iterations.  An
  interrupted cell resumes *mid-stream* — only the missing iterations are
  re-executed — instead of restarting at whole-shard granularity.  This is
  sound because every iteration is seeded purely from ``(config,
  iteration)`` (see :func:`repro.core.fuzzer.iteration_seed`), so iterations
  can be re-executed in any order on any worker.  Cells with a pure
  wall-clock budget (``max_iterations=None``) have no well-defined
  "remaining iterations" and still checkpoint at whole-cell granularity.
* **Adaptive budgets.**  With ``adaptive=True`` (or an explicit
  ``chunk_iterations``), each cell's iteration range is split into chunks
  that workers lease from a shared queue.  A worker whose cell finishes
  early immediately picks up the remaining iteration budget of slower
  cells, so no core idles while work remains — without changing the result:
  the set of executed iterations is fixed, only their placement moves.

Determinism: the merged found-bug sets, per-cell iteration counts and
deduplicated report keys depend only on the campaign config and matrix
shape — not on worker count, chunking, interruption, or scheduling order.
For *exact* reproducibility use deterministic value-search settings
(``value_search_budget=None`` plus ``value_search_max_steps``);
:func:`deterministic_config` applies that transform.

Checkpoints are fingerprinted by everything that changes what a cell
computes — including the compiler subsets and opt levels of the matrix —
so a differently-shaped campaign can never silently cross-load another
campaign's checkpoint.
"""

from __future__ import annotations

import dataclasses
import json
import math
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, List, Optional, Sequence, Set,
                    Tuple)

import numpy as np

from repro.compilers.base import Compiler, registered_compilers
from repro.compilers.bugs import BugConfig
from repro.core.difftest import DifferentialTester
from repro.core.fuzzer import (BugReport, CampaignResult, CellOutcome, Fuzzer,
                               FuzzerConfig, probe_supported_pool,
                               single_iteration_result)
from repro.errors import ReproError
from repro.graph.serialize import to_jsonable

CHECKPOINT_FORMAT_VERSION = 2

#: Coordinator poll interval while waiting for worker messages (seconds).
POLL_TIMEOUT = 1.0
#: Consecutive quiet polls before a dead worker is given up on (its final
#: messages can still be in flight right after exit).
DEAD_WORKER_POLLS = 3
#: Consecutive quiet polls before unclaimed chunks are considered lost with
#: a claim-lessly dead worker (a healthy survivor leases within one poll).
ORPHAN_QUIET_POLLS = 10

#: A picklable callable building the compilers under test inside a worker.
CompilerFactory = Callable[[BugConfig], List[Compiler]]


def default_compiler_factory(bugs: BugConfig) -> List[Compiler]:
    """The three in-repo systems under test at full optimization level."""
    from repro.compilers import (CompileOptions, DeepCCompiler, GraphRTCompiler,
                                 TurboCompiler)

    return [
        GraphRTCompiler(CompileOptions(opt_level=2, bugs=bugs)),
        DeepCCompiler(CompileOptions(opt_level=2, bugs=bugs)),
        TurboCompiler(CompileOptions(opt_level=2, bugs=bugs)),
    ]


# --------------------------------------------------------------------------- #
# Shard seeding
# --------------------------------------------------------------------------- #
def shard_seed(campaign_seed: int, shard_index: int) -> int:
    """Derive a shard's campaign seed; disjoint streams across shards *and*
    across nearby campaign seeds (SeedSequence mixing, not linear offsets)."""
    entropy = (campaign_seed % (1 << 63), shard_index % (1 << 63))
    return int(np.random.SeedSequence(entropy).generate_state(1, np.uint64)[0])


def shard_configs(config: FuzzerConfig, n_workers: int) -> List[FuzzerConfig]:
    """Split a campaign config into per-shard configs with disjoint seeds.

    The iteration budget is divided as evenly as possible (earlier shards
    absorb the remainder); a wall-clock ``time_budget`` is passed through
    unchanged since shards run concurrently.
    """
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    shards: List[FuzzerConfig] = []
    total = config.max_iterations
    for index in range(n_workers):
        if total is None:
            budget = None
        else:
            budget = total // n_workers + (1 if index < total % n_workers else 0)
        shards.append(dataclasses.replace(
            config,
            generator=dataclasses.replace(config.generator),
            max_iterations=budget,
            seed=shard_seed(config.seed, index),
        ))
    return shards


def deterministic_config(config: FuzzerConfig,
                         max_steps: int = 32) -> FuzzerConfig:
    """A copy of ``config`` whose value searches are step-bounded instead of
    time-bounded, making each iteration's outcome independent of machine
    load.  A campaign-level ``time_budget`` is preserved — but note that
    full campaign determinism additionally requires an iteration-bounded
    campaign (``time_budget=None``)."""
    return dataclasses.replace(
        config,
        generator=dataclasses.replace(config.generator),
        value_search_budget=None,
        value_search_max_steps=max_steps,
    )


# --------------------------------------------------------------------------- #
# The campaign matrix
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class MatrixCell:
    """One work unit of a matrix campaign.

    ``compilers`` is a sorted tuple of registered compiler names; the empty
    tuple means "whatever the campaign's ``compiler_factory`` builds"
    (the flat, PR-1-compatible mode).  ``opt_level`` is None in factory
    mode (the factory fixes its own levels).
    """

    shard: int
    compilers: Tuple[str, ...] = ()
    opt_level: Optional[int] = None

    def outcome(self) -> CellOutcome:
        """A fresh, empty provenance record for this cell."""
        return CellOutcome(shard=self.shard, compilers=tuple(self.compilers),
                           opt_level=self.opt_level)

    @property
    def key(self) -> str:
        return self.outcome().key()


@dataclass
class CellTask:
    """A matrix cell plus the shard config it executes."""

    cell: MatrixCell
    config: FuzzerConfig


def build_matrix(config: FuzzerConfig, n_shards: int,
                 compiler_sets: Optional[Sequence[Sequence[str]]] = None,
                 opt_levels: Optional[Sequence[int]] = None) -> List[CellTask]:
    """Expand a campaign config into the shard × compiler-set × opt matrix.

    Every ``(compiler_set, opt_level)`` combination receives the *full*
    campaign iteration budget, split over ``n_shards`` shards exactly like a
    flat campaign — so each combination explores the same model streams and
    results are comparable cell-by-cell.  With ``compiler_sets=None`` the
    matrix degenerates to the flat shard list (one factory-built combo).
    """
    shards = shard_configs(config, n_shards)
    if compiler_sets is None:
        combos: List[Tuple[Tuple[str, ...], Optional[int]]] = [((), None)]
    else:
        known = set(registered_compilers())
        subsets: List[Tuple[str, ...]] = []
        for subset in compiler_sets:
            names = tuple(sorted(subset))
            if not names:
                raise ValueError("empty compiler subset in compiler_sets")
            unknown = [name for name in names if name not in known]
            if unknown:
                raise KeyError(f"unknown compiler(s) {unknown}; "
                               f"registered: {sorted(known)}")
            subsets.append(names)
        if not subsets:
            raise ValueError("compiler_sets must name at least one subset")
        levels = list(opt_levels) if opt_levels else [2]
        # Dedupe: repeated subsets/levels would produce cells with identical
        # keys, which collide in the checkpoint and double-count provenance.
        combos = []
        for subset in subsets:
            for level in levels:
                if (subset, level) not in combos:
                    combos.append((subset, level))
    return [CellTask(cell=MatrixCell(shard=index, compilers=subset,
                                     opt_level=level),
                     config=shard)
            for subset, level in combos
            for index, shard in enumerate(shards)]


# --------------------------------------------------------------------------- #
# Campaign-result (de)serialization for checkpoints
# --------------------------------------------------------------------------- #
def campaign_result_to_dict(result: CampaignResult) -> Dict[str, Any]:
    """JSON-compatible encoding of a campaign result."""
    return {
        "iterations": result.iterations,
        "generated_models": result.generated_models,
        "generation_failures": result.generation_failures,
        "numerically_valid_models": result.numerically_valid_models,
        "elapsed": result.elapsed,
        "reports": [to_jsonable(dataclasses.asdict(report))
                    for report in result.reports],
        "operator_instances": sorted(result.operator_instances),
        "seeded_bugs_found": sorted(result.seeded_bugs_found),
        "timeline": to_jsonable(result.timeline),
        "cells": {
            key: {
                "shard": cell.shard,
                "compilers": list(cell.compilers),
                "opt_level": cell.opt_level,
                "iterations": cell.iterations,
                "seeded_bugs_found": sorted(cell.seeded_bugs_found),
                "report_keys": sorted(cell.report_keys),
            }
            for key, cell in result.cells.items()
        },
    }


def campaign_result_from_dict(payload: Dict[str, Any]) -> CampaignResult:
    """Rebuild a campaign result from :func:`campaign_result_to_dict`."""
    cells = {
        key: CellOutcome(
            shard=entry["shard"],
            compilers=tuple(entry.get("compilers", [])),
            opt_level=entry.get("opt_level"),
            iterations=entry.get("iterations", 0),
            seeded_bugs_found=set(entry.get("seeded_bugs_found", [])),
            report_keys=set(entry.get("report_keys", [])),
        )
        for key, entry in payload.get("cells", {}).items()
    }
    return CampaignResult(
        iterations=payload.get("iterations", 0),
        generated_models=payload.get("generated_models", 0),
        generation_failures=payload.get("generation_failures", 0),
        numerically_valid_models=payload.get("numerically_valid_models", 0),
        elapsed=payload.get("elapsed", 0.0),
        reports=[BugReport(**entry) for entry in payload.get("reports", [])],
        operator_instances=set(payload.get("operator_instances", [])),
        seeded_bugs_found=set(payload.get("seeded_bugs_found", [])),
        timeline=list(payload.get("timeline", [])),
        cells=cells,
    )


def _ranges_from_iterations(iterations: Set[int]) -> List[List[int]]:
    """Compact a set of iteration indices into inclusive [start, end] runs."""
    runs: List[List[int]] = []
    for value in sorted(iterations):
        if runs and value == runs[-1][1] + 1:
            runs[-1][1] = value
        else:
            runs.append([value, value])
    return runs


def _iterations_from_ranges(runs: Sequence[Sequence[int]]) -> Set[int]:
    completed: Set[int] = set()
    for start, end in runs:
        completed.update(range(int(start), int(end) + 1))
    return completed


# --------------------------------------------------------------------------- #
# Worker side
# --------------------------------------------------------------------------- #
def _cell_tester(task: CellTask, factory: CompilerFactory
                 ) -> Tuple[DifferentialTester, FuzzerConfig]:
    """Build a cell's systems under test and its effective config.

    Named subsets come from the compiler registry at the cell's opt level;
    the empty subset falls back to the campaign's ``compiler_factory``.
    Factory cells probe the operator pool locally (every cell shares the
    same factory, so every shard derives the identical pool); named cells
    arrive with the pool already probed and baked in by the coordinator.
    """
    cell, config = task.cell, task.config
    if cell.compilers:
        opt_level = 2 if cell.opt_level is None else cell.opt_level
        tester = DifferentialTester.for_compiler_names(
            cell.compilers, opt_level=opt_level, bugs=config.bugs)
    else:
        tester = DifferentialTester(factory(config.bugs), bugs=config.bugs)
    if config.probe_operator_support:
        config = dataclasses.replace(
            config,
            generator=dataclasses.replace(
                config.generator,
                op_pool=probe_supported_pool(tester.compilers,
                                             config.generator.op_pool)),
            probe_operator_support=False)
    return tester, config


def _run_chunk(tester: DifferentialTester, config: FuzzerConfig,
               start: int, stop: Optional[int],
               emit: Callable[[int, CampaignResult], None]) -> None:
    """Execute one chunk's iterations, emitting each folded result.

    ``stop`` is inclusive; None means "until the cell's time budget runs
    out" (unbounded cells).  A time budget, when present, also bounds
    iteration-budgeted chunks so mixed-budget campaigns terminate.
    """
    chunk_start = time.monotonic()
    deadline = (None if config.time_budget is None
                else chunk_start + config.time_budget)
    iteration = start
    while stop is None or iteration <= stop:
        if deadline is not None and time.monotonic() >= deadline:
            break
        partial = single_iteration_result(
            tester, config, iteration,
            elapsed=time.monotonic() - chunk_start)
        emit(iteration, partial)
        iteration += 1


def _matrix_worker(worker_index: int, tasks: List[CellTask],
                   factory: CompilerFactory, task_queue, result_queue) -> None:
    """Pool worker: lease chunks from the shared queue until told to stop.

    Emits ``("claim", worker, chunk_id, ...)`` when starting a chunk,
    ``("iter", cell, iteration, result_dict)`` per completed iteration,
    ``("chunk_done", worker, chunk_id, cell)`` per finished chunk and
    ``("error", worker, chunk_id, cell, message)`` on failure (after which
    the worker exits and surviving workers absorb the remaining queue).
    """
    testers: Dict[int, Tuple[DifferentialTester, FuzzerConfig]] = {}
    while True:
        item = task_queue.get()
        if item is None:
            break
        chunk_id, cell_index, start, stop = item
        result_queue.put(("claim", worker_index, chunk_id, cell_index, None))
        try:
            if cell_index not in testers:
                testers[cell_index] = _cell_tester(tasks[cell_index], factory)
            tester, config = testers[cell_index]

            def emit(iteration, partial):
                result_queue.put(("iter", worker_index, chunk_id, cell_index,
                                  (iteration, campaign_result_to_dict(partial))))

            _run_chunk(tester, config, start, stop, emit)
            result_queue.put(("chunk_done", worker_index, chunk_id,
                              cell_index, None))
        except BaseException as exc:  # surface worker failure, then retire
            result_queue.put(("error", worker_index, chunk_id, cell_index,
                              f"{type(exc).__name__}: {exc}"))
            break


# --------------------------------------------------------------------------- #
# Coordinator
# --------------------------------------------------------------------------- #
@dataclass
class _CellState:
    """Coordinator-side bookkeeping for one matrix cell."""

    task: CellTask
    result: Optional[CampaignResult] = None
    completed: Set[int] = field(default_factory=set)
    done: bool = False
    outstanding_chunks: int = 0
    #: Persistent dedup-key set of ``result.reports`` so per-iteration folds
    #: stay O(new reports) instead of rebuilding the set every fold.
    seen_keys: Set[str] = field(default_factory=set)


@dataclass
class ParallelCampaign:
    """Coordinator for a (possibly matrix-shaped) sharded fuzzing campaign.

    With only the PR-1 parameters (``config``, ``n_workers``,
    ``compiler_factory``) this schedules a flat 1×1 matrix: N shards against
    the factory-built compiler trio.  Passing ``compiler_sets`` (and
    optionally ``opt_levels``) expands the campaign into the full
    shard × compiler-set × opt-level matrix; every combination runs the
    same shard seed streams and the merged :class:`CampaignResult` carries
    per-cell provenance for Venn-style analysis.
    """

    config: FuzzerConfig = field(default_factory=FuzzerConfig)
    n_workers: int = 2
    compiler_factory: CompilerFactory = default_compiler_factory
    #: Named compiler subsets forming the matrix columns (None = factory mode).
    compiler_sets: Optional[Sequence[Sequence[str]]] = None
    #: Optimization levels crossed with ``compiler_sets`` (default: [2]).
    opt_levels: Optional[Sequence[int]] = None
    #: Shards per combination (default: ``n_workers``).
    n_shards: Optional[int] = None
    #: Persist per-iteration progress here and resume mid-cell on re-run.
    checkpoint_path: Optional[str] = None
    #: Split cell budgets into chunks so idle workers steal remaining budget
    #: from slower cells.  Does not change results, only their placement.
    adaptive: bool = False
    #: Explicit chunk size in iterations (implies chunked scheduling).
    chunk_iterations: Optional[int] = None
    #: Save the checkpoint every N folded iterations (1 = every iteration).
    checkpoint_every: int = 1
    #: multiprocessing start method ("fork" on Linux is fastest; "spawn" is
    #: portable). None picks the platform default.
    mp_context: Optional[str] = None
    #: Optional observer for streamed events (kind, cell_key, payload).
    on_event: Optional[Callable[[str, str, Any], None]] = None

    # ------------------------------------------------------------------ #
    def run(self) -> CampaignResult:
        """Run every matrix cell and return the merged campaign result."""
        started = time.monotonic()
        self._run_started = started
        tasks = self._build_tasks()
        states = [_CellState(task=task) for task in tasks]
        self._load_checkpoint(states)
        self._unsaved_folds = 0

        chunks = self._plan_chunks(states)
        if chunks:
            workers = min(self.n_workers, len(chunks))
            if workers <= 1:
                self._execute_inprocess(states, chunks)
            else:
                self._execute_pool(states, chunks, workers)
            self._save_checkpoint(states, force=True)

        merged = CampaignResult.merge_all(
            [self._provenanced_result(state) for state in states])
        merged.elapsed = max(merged.elapsed, time.monotonic() - started)
        return merged

    # ------------------------------------------------------------------ #
    def _build_tasks(self) -> List[CellTask]:
        n_shards = self.n_shards if self.n_shards is not None else self.n_workers
        tasks = build_matrix(self.config, n_shards,
                             compiler_sets=self.compiler_sets,
                             opt_levels=self.opt_levels)
        if self.compiler_sets is not None and self.config.probe_operator_support:
            # Probe once over the union of every compiler in the matrix and
            # bake the shared pool into every cell (see module docstring).
            names = sorted({name for task in tasks
                            for name in task.cell.compilers})
            from repro.compilers.base import build_compiler_set

            pool = probe_supported_pool(
                build_compiler_set(names, bugs=self.config.bugs),
                self.config.generator.op_pool)
            tasks = [CellTask(
                cell=task.cell,
                config=dataclasses.replace(
                    task.config,
                    generator=dataclasses.replace(task.config.generator,
                                                  op_pool=list(pool)),
                    probe_operator_support=False))
                for task in tasks]
        return tasks

    def _plan_chunks(self, states: List[_CellState]
                     ) -> List[Tuple[int, int, int, Optional[int]]]:
        """Chunks of not-yet-completed iterations: (chunk_id, cell, start, stop).

        Chunks are interleaved round-robin across cells so every cell makes
        early progress (and its compilers' reports stream out) even when
        there are more cells than workers.
        """
        per_cell: List[List[Tuple[int, int, Optional[int]]]] = []
        for index, state in enumerate(states):
            budget = state.task.config.max_iterations
            if state.done:
                per_cell.append([])
                continue
            if budget is None:
                # Pure time-budget cell: no well-defined remaining range —
                # cell-granular checkpointing, single chunk, fresh start.
                # The dedup set must restart with the result: stale keys
                # would silently swallow reports re-found after the restart.
                state.result = None
                state.completed = set()
                state.seen_keys = set()
                per_cell.append([(index, 1, None)])
                continue
            remaining = [i for i in range(1, budget + 1)
                         if i not in state.completed]
            if not remaining:
                state.done = True
                per_cell.append([])
                continue
            size = self._chunk_size(len(remaining))
            runs = _ranges_from_iterations(set(remaining))
            cell_chunks: List[Tuple[int, int, Optional[int]]] = []
            for start, end in runs:
                cursor = start
                while cursor <= end:
                    stop = min(cursor + size - 1, end)
                    cell_chunks.append((index, cursor, stop))
                    cursor = stop + 1
            per_cell.append(cell_chunks)
        interleaved: List[Tuple[int, int, Optional[int]]] = []
        rank = 0
        while True:
            layer = [chunks[rank] for chunks in per_cell if rank < len(chunks)]
            if not layer:
                break
            interleaved.extend(layer)
            rank += 1
        for index, chunks in enumerate(per_cell):
            states[index].outstanding_chunks = len(chunks)
        return [(chunk_id,) + chunk
                for chunk_id, chunk in enumerate(interleaved)]

    def _chunk_size(self, remaining: int) -> int:
        if self.config.time_budget is not None:
            # The wall-clock deadline is measured from chunk start; splitting
            # a time-budgeted cell across chunks would grant each lease a
            # fresh budget, multiplying the cell's effective allowance.
            return remaining
        if self.chunk_iterations is not None:
            return max(1, self.chunk_iterations)
        if self.adaptive:
            # Aim for ~4 leases per cell: fine enough to rebalance, coarse
            # enough to amortize scheduling and checkpoint traffic.
            return max(1, math.ceil(remaining / 4))
        return remaining

    # ------------------------------------------------------------------ #
    def _fold_iteration(self, states: List[_CellState], cell_index: int,
                        iteration: int, partial: CampaignResult) -> None:
        """Accumulate one iteration's result into its cell.

        A hand-rolled fold rather than ``CampaignResult.merge``: merge
        rebuilds the report dedup set and re-sorts the whole timeline on
        every call, which would make the coordinator quadratic in cell
        size.  The observable outcome is identical (the property tests pin
        merge's semantics; this fold mirrors them with persistent state).
        """
        state = states[cell_index]
        if iteration in state.completed:
            return  # replayed message (e.g. duplicate after a worker retry)
        state.completed.add(iteration)
        if state.result is None:
            state.result = CampaignResult()
        result = state.result
        # Workers only know chunk-relative time; stamp samples with the
        # coordinator's campaign clock so merged throughput curves order
        # iterations by when they actually completed.
        now = time.monotonic() - self._run_started
        for sample in partial.timeline:
            sample["elapsed"] = now
        result.iterations += partial.iterations
        result.generated_models += partial.generated_models
        result.generation_failures += partial.generation_failures
        result.numerically_valid_models += partial.numerically_valid_models
        result.elapsed = max(result.elapsed, now)
        for report in partial.reports:
            key = report.dedup_key()
            if key not in state.seen_keys:
                state.seen_keys.add(key)
                result.reports.append(report)
        result.operator_instances.update(partial.operator_instances)
        result.seeded_bugs_found.update(partial.seeded_bugs_found)
        result.timeline.extend(partial.timeline)
        for report in partial.reports:
            self._emit("progress", state.task.cell.key,
                       {"iteration": iteration, "compiler": report.compiler,
                        "status": report.status})
        self._unsaved_folds += 1
        if self._unsaved_folds >= max(1, self.checkpoint_every):
            self._save_checkpoint(states)

    def _finish_chunk(self, states: List[_CellState], cell_index: int) -> None:
        state = states[cell_index]
        state.outstanding_chunks -= 1
        if state.outstanding_chunks <= 0:
            state.done = True
            self._emit("cell_done", state.task.cell.key,
                       {"iterations": len(state.completed)})
            # Force: the done flag itself must reach disk even when every
            # fold is already saved — for unbounded (time-budget) cells it
            # is the only thing distinguishing "finished" from "restart me".
            self._save_checkpoint(states, force=True)

    def _provenanced_result(self, state: _CellState) -> CampaignResult:
        result = state.result if state.result is not None else CampaignResult()
        outcome = state.task.cell.outcome()
        outcome.iterations = result.iterations
        outcome.seeded_bugs_found = set(result.seeded_bugs_found)
        outcome.report_keys = {report.dedup_key() for report in result.reports}
        result.cells = {outcome.key(): outcome}
        return result

    def _emit(self, kind: str, cell_key: str, payload: Any) -> None:
        if self.on_event is not None:
            self.on_event(kind, cell_key, payload)

    # ------------------------------------------------------------------ #
    def _execute_inprocess(self, states: List[_CellState],
                           chunks: List[Tuple[int, int, int, Optional[int]]]
                           ) -> None:
        """Single-worker path: run every chunk in this process.

        No process spawn, no queues, no pickling — but the same fold and
        checkpoint pipeline, so ``--workers 1`` keeps full mid-cell resume
        support.
        """
        testers: Dict[int, Tuple[DifferentialTester, FuzzerConfig]] = {}
        for _chunk_id, cell_index, start, stop in chunks:
            try:
                if cell_index not in testers:
                    testers[cell_index] = _cell_tester(
                        states[cell_index].task, self.compiler_factory)
                tester, config = testers[cell_index]
                _run_chunk(
                    tester, config, start, stop,
                    lambda iteration, partial: self._fold_iteration(
                        states, cell_index, iteration, partial))
            except ReproError:
                raise
            except Exception as exc:
                raise ReproError(
                    "campaign worker(s) failed: cell "
                    f"{states[cell_index].task.cell.key}: "
                    f"{type(exc).__name__}: {exc}") from exc
            self._finish_chunk(states, cell_index)

    # ------------------------------------------------------------------ #
    def _execute_pool(self, states: List[_CellState],
                      chunks: List[Tuple[int, int, int, Optional[int]]],
                      n_workers: int) -> None:
        context = (multiprocessing.get_context(self.mp_context)
                   if self.mp_context else multiprocessing.get_context())
        task_queue = context.Queue()
        result_queue = context.Queue()
        for chunk in chunks:
            task_queue.put(chunk)
        tasks = [state.task for state in states]
        workers = {
            index: context.Process(
                target=_matrix_worker,
                args=(index, tasks, self.compiler_factory,
                      task_queue, result_queue),
                daemon=True)
            for index in range(n_workers)
        }
        for worker in workers.values():
            worker.start()
        try:
            self._drain(states, chunks, workers, task_queue, result_queue)
        finally:
            # One stop sentinel per worker, unconditionally.  Sentinels are
            # not addressed to a specific worker, so gating them on
            # is_alive() races: a still-alive worker can consume the
            # sentinel "meant" for another and then exit before its own
            # liveness check, leaving one short and a worker blocked in
            # get() until the join timeout.  Surplus sentinels for
            # already-dead workers are harmless queue garbage.
            for _ in workers:
                task_queue.put(None)
            for worker in workers.values():
                worker.join(timeout=30)
                if worker.is_alive():
                    worker.terminate()

    def _drain(self, states: List[_CellState], chunks, workers,
               task_queue, result_queue) -> None:
        import queue as queue_module

        pending: Set[int] = {chunk[0] for chunk in chunks}
        claims: Dict[int, int] = {}          # chunk_id -> worker_index
        errors: List[str] = []
        dead_polls: Dict[int, int] = {}
        retired: Set[int] = set()
        #: Workers that died without a recorded claim very likely popped a
        #: chunk whose claim message was lost with the process; each such
        #: death can orphan at most one unclaimed chunk.
        lost_pops = 0
        quiet_after_loss = 0

        def fail_chunk(chunk_id: int, message: str) -> None:
            pending.discard(chunk_id)
            claims.pop(chunk_id, None)
            errors.append(message)

        while pending:
            try:
                message = result_queue.get(timeout=POLL_TIMEOUT)
            except queue_module.Empty:
                # A worker killed by the OS (OOM, signal) never reports back;
                # detect silent death instead of blocking forever.  A freshly
                # exited worker's final messages can still be in flight, so a
                # worker is only given up on after staying dead over several
                # consecutive quiet polls.
                for index, worker in workers.items():
                    if index in retired:
                        continue
                    if worker.is_alive():
                        dead_polls[index] = 0
                        continue
                    dead_polls[index] = dead_polls.get(index, 0) + 1
                    if dead_polls[index] < DEAD_WORKER_POLLS:
                        continue
                    retired.add(index)
                    owned = [chunk_id for chunk_id, owner in claims.items()
                             if owner == index]
                    for chunk_id in owned:
                        cell = states[self._chunk_cell(chunks, chunk_id)]
                        fail_chunk(
                            chunk_id,
                            f"cell {cell.task.cell.key}: worker died "
                            f"with exit code {worker.exitcode}")
                    if not owned:
                        # The claim can be lost with the process (the queue
                        # feeder thread dies unflushed); still report the
                        # death so the campaign fails loudly.
                        lost_pops += 1
                        errors.append(f"worker {index} died with exit code "
                                      f"{worker.exitcode}")
                if pending and all(index in retired for index in workers):
                    # Quiesced: nobody is left to claim the remaining chunks.
                    for chunk_id in sorted(pending):
                        cell = states[self._chunk_cell(chunks, chunk_id)]
                        fail_chunk(
                            chunk_id,
                            f"cell {cell.task.cell.key}: no live worker "
                            "left to run it")
                elif pending and lost_pops:
                    # Some workers survive, but chunks popped by the dead
                    # ones are gone from the task queue with no claim on
                    # record.  A healthy survivor would lease an available
                    # chunk within a poll or two; a long quiet stretch with
                    # unclaimed chunks outstanding means they are orphaned —
                    # without this, `while pending` would spin forever.
                    unclaimed = pending - set(claims)
                    quiet_after_loss += 1
                    if unclaimed and quiet_after_loss >= ORPHAN_QUIET_POLLS:
                        for chunk_id in sorted(unclaimed)[:lost_pops]:
                            cell = states[self._chunk_cell(chunks, chunk_id)]
                            fail_chunk(
                                chunk_id,
                                f"cell {cell.task.cell.key}: chunk lost "
                                "with a dead worker")
                        lost_pops = 0
                        quiet_after_loss = 0
                continue

            quiet_after_loss = 0

            kind = message[0]
            if kind == "claim":
                _, worker_index, chunk_id, _cell_index, _ = message
                claims[chunk_id] = worker_index
            elif kind == "iter":
                _, _worker_index, _chunk_id, cell_index, payload = message
                iteration, partial_dict = payload
                self._fold_iteration(states, cell_index, iteration,
                                     campaign_result_from_dict(partial_dict))
            elif kind == "chunk_done":
                _, _worker_index, chunk_id, cell_index, _ = message
                pending.discard(chunk_id)
                claims.pop(chunk_id, None)
                self._finish_chunk(states, cell_index)
            elif kind == "error":
                _, worker_index, chunk_id, cell_index, text = message
                retired.add(worker_index)
                fail_chunk(chunk_id,
                           f"cell {states[cell_index].task.cell.key}: {text}")
                self._emit("error", states[cell_index].task.cell.key, text)
        if errors:
            raise ReproError("parallel campaign worker(s) failed: "
                             + "; ".join(errors))

    @staticmethod
    def _chunk_cell(chunks, chunk_id: int) -> int:
        for cid, cell_index, _start, _stop in chunks:
            if cid == chunk_id:
                return cell_index
        raise KeyError(chunk_id)

    # ------------------------------------------------------------------ #
    def _checkpoint_fingerprint(self, n_cells: int) -> Dict[str, Any]:
        """Everything that changes what a cell computes.  A checkpoint whose
        fingerprint differs is discarded rather than silently reused —
        including the matrix shape (compiler subsets and opt levels), so a
        differently-shaped campaign can never cross-load cell results."""
        factory = self.compiler_factory
        generator = self.config.generator
        n_shards = self.n_shards if self.n_shards is not None else self.n_workers
        return {
            "n_cells": n_cells,
            "n_shards": n_shards,
            "compiler_factory": f"{factory.__module__}.{factory.__qualname__}",
            "compiler_sets": (None if self.compiler_sets is None
                              else sorted(sorted(subset)
                                          for subset in self.compiler_sets)),
            "opt_levels": (None if self.compiler_sets is None
                           else list(self.opt_levels or [2])),
            "seed": self.config.seed,
            "max_iterations": self.config.max_iterations,
            "time_budget": self.config.time_budget,
            "value_search_method": self.config.value_search_method,
            "value_search_budget": self.config.value_search_budget,
            "value_search_max_steps": self.config.value_search_max_steps,
            "probe_operator_support": self.config.probe_operator_support,
            "bugs": sorted(self.config.bugs.enabled_ids()),
            "generator": {
                "n_nodes": generator.n_nodes,
                "max_dim": generator.max_dim,
                "max_rank": generator.max_rank,
                "seed": generator.seed,
                "forward_probability": generator.forward_probability,
                "weight_probability": generator.weight_probability,
                "use_binning": generator.use_binning,
                "n_bins": generator.n_bins,
                "op_pool": sorted(spec.op_kind for spec in generator.op_pool),
                "dtype_weights": {str(dtype): weight for dtype, weight
                                  in sorted(generator.dtype_weights.items(),
                                            key=lambda item: str(item[0]))},
                "max_attempts_per_node": generator.max_attempts_per_node,
            },
        }

    def _load_checkpoint(self, states: List[_CellState]) -> None:
        path = self.checkpoint_path
        if not path or not os.path.exists(path):
            return
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return  # unreadable/corrupt checkpoint: start fresh
        if not isinstance(payload, dict) or \
                payload.get("format_version") != CHECKPOINT_FORMAT_VERSION:
            return
        if payload.get("campaign") != self._checkpoint_fingerprint(len(states)):
            return  # different campaign: start over
        entries = payload.get("cells", {})
        for state in states:
            entry = entries.get(state.task.cell.key)
            if not isinstance(entry, dict):
                continue
            try:
                result = (campaign_result_from_dict(entry["result"])
                          if entry.get("result") is not None else None)
                completed = _iterations_from_ranges(entry.get("completed", []))
                done = bool(entry.get("done", False))
            except (ValueError, TypeError, KeyError, AttributeError):
                continue  # treat a corrupt cell entry as not started
            state.result = result
            state.completed = completed
            state.done = done
            state.seen_keys = (set() if result is None else
                               {report.dedup_key() for report in result.reports})

    def _save_checkpoint(self, states: List[_CellState],
                         force: bool = False) -> None:
        path = self.checkpoint_path
        if not path:
            return
        if not force and self._unsaved_folds == 0:
            return
        payload = {
            "format_version": CHECKPOINT_FORMAT_VERSION,
            "campaign": self._checkpoint_fingerprint(len(states)),
            "cells": {
                state.task.cell.key: {
                    "done": state.done,
                    "completed": _ranges_from_iterations(state.completed),
                    "result": (campaign_result_to_dict(state.result)
                               if state.result is not None else None),
                }
                for state in states
                if state.result is not None or state.done
            },
        }
        tmp_path = f"{path}.tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        os.replace(tmp_path, path)
        self._unsaved_folds = 0


def run_parallel_campaign(config: Optional[FuzzerConfig] = None,
                          n_workers: int = 2,
                          compiler_factory: CompilerFactory = default_compiler_factory,
                          compiler_sets: Optional[Sequence[Sequence[str]]] = None,
                          opt_levels: Optional[Sequence[int]] = None,
                          n_shards: Optional[int] = None,
                          checkpoint_path: Optional[str] = None,
                          checkpoint_every: int = 1,
                          adaptive: bool = False,
                          chunk_iterations: Optional[int] = None,
                          mp_context: Optional[str] = None,
                          on_event: Optional[Callable[[str, str, Any], None]] = None
                          ) -> CampaignResult:
    """Convenience wrapper: build a :class:`ParallelCampaign` and run it."""
    campaign = ParallelCampaign(
        config=config or FuzzerConfig(),
        n_workers=n_workers,
        compiler_factory=compiler_factory,
        compiler_sets=compiler_sets,
        opt_levels=opt_levels,
        n_shards=n_shards,
        checkpoint_path=checkpoint_path,
        checkpoint_every=checkpoint_every,
        adaptive=adaptive,
        chunk_iterations=chunk_iterations,
        mp_context=mp_context,
        on_event=on_event,
    )
    return campaign.run()


def run_sharded_serial(config: FuzzerConfig, n_workers: int,
                       compiler_factory: CompilerFactory = default_compiler_factory
                       ) -> CampaignResult:
    """Run the same shard configs in-process, serially, and merge them.

    This is the reference implementation the parallel engine is equivalent
    to; it is also the fallback when ``multiprocessing`` is unavailable.
    """
    results = []
    for shard in shard_configs(config, n_workers):
        fuzzer = Fuzzer(compiler_factory(shard.bugs), shard)
        results.append(fuzzer.run())
    merged = CampaignResult.merge_all(results)
    # merge() assumes concurrent shards (elapsed = max); these ran back to
    # back, so wall-clock is the sum.
    merged.elapsed = sum(result.elapsed for result in results)
    return merged
