"""Sharded, process-parallel fuzzing campaigns.

:class:`repro.core.fuzzer.Fuzzer` is a strictly serial loop; a campaign uses
one core no matter how many are available.  The search is embarrassingly
parallel, so this module splits a :class:`FuzzerConfig` into N worker
*shards* with disjoint seed streams (:func:`shard_configs`), runs each
shard's generate → value-search → difftest loop in its own
``multiprocessing`` worker, and streams per-iteration progress and fresh
:class:`BugReport` records back to the coordinator over a queue.  The
coordinator performs global report dedup and merges the shard
:class:`CampaignResult`\\ s (operator instances, seeded-bug sets, timelines)
via :meth:`CampaignResult.merge`.

Determinism: a shard's result depends only on its shard config, so running
the same shard configs serially (``Fuzzer(...).run()`` per shard, then
``CampaignResult.merge_all``) yields the same merged found-bug and
operator-instance sets as the parallel run.  For *exact* report equality use
deterministic value-search settings (``value_search_budget=None`` plus
``value_search_max_steps``) so CPU contention cannot change search outcomes;
:func:`deterministic_config` applies that transform.

Checkpoint/resume: pass ``checkpoint_path`` and every completed shard's
result is persisted as JSON (reusing the :mod:`repro.graph.serialize` JSON
conventions).  Re-running the same campaign resumes by loading completed
shards from the checkpoint and only executing the missing ones.
"""

from __future__ import annotations

import dataclasses
import json
import multiprocessing
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set

import numpy as np

from repro.compilers.base import Compiler
from repro.compilers.bugs import BugConfig
from repro.core.fuzzer import BugReport, CampaignResult, Fuzzer, FuzzerConfig
from repro.errors import ReproError
from repro.graph.serialize import to_jsonable

CHECKPOINT_FORMAT_VERSION = 1

#: A picklable callable building the compilers under test inside a worker.
CompilerFactory = Callable[[BugConfig], List[Compiler]]


def default_compiler_factory(bugs: BugConfig) -> List[Compiler]:
    """The three in-repo systems under test at full optimization level."""
    from repro.compilers import (CompileOptions, DeepCCompiler, GraphRTCompiler,
                                 TurboCompiler)

    return [
        GraphRTCompiler(CompileOptions(opt_level=2, bugs=bugs)),
        DeepCCompiler(CompileOptions(opt_level=2, bugs=bugs)),
        TurboCompiler(CompileOptions(opt_level=2, bugs=bugs)),
    ]


# --------------------------------------------------------------------------- #
# Shard seeding
# --------------------------------------------------------------------------- #
def shard_seed(campaign_seed: int, shard_index: int) -> int:
    """Derive a shard's campaign seed; disjoint streams across shards *and*
    across nearby campaign seeds (SeedSequence mixing, not linear offsets)."""
    entropy = (campaign_seed % (1 << 63), shard_index % (1 << 63))
    return int(np.random.SeedSequence(entropy).generate_state(1, np.uint64)[0])


def shard_configs(config: FuzzerConfig, n_workers: int) -> List[FuzzerConfig]:
    """Split a campaign config into per-shard configs with disjoint seeds.

    The iteration budget is divided as evenly as possible (earlier shards
    absorb the remainder); a wall-clock ``time_budget`` is passed through
    unchanged since shards run concurrently.
    """
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    shards: List[FuzzerConfig] = []
    total = config.max_iterations
    for index in range(n_workers):
        if total is None:
            budget = None
        else:
            budget = total // n_workers + (1 if index < total % n_workers else 0)
        shards.append(dataclasses.replace(
            config,
            generator=dataclasses.replace(config.generator),
            max_iterations=budget,
            seed=shard_seed(config.seed, index),
        ))
    return shards


def deterministic_config(config: FuzzerConfig,
                         max_steps: int = 32) -> FuzzerConfig:
    """A copy of ``config`` whose value searches are step-bounded instead of
    time-bounded, making each iteration's outcome independent of machine
    load.  A campaign-level ``time_budget`` is preserved — but note that
    full campaign determinism additionally requires an iteration-bounded
    campaign (``time_budget=None``)."""
    return dataclasses.replace(
        config,
        generator=dataclasses.replace(config.generator),
        value_search_budget=None,
        value_search_max_steps=max_steps,
    )


# --------------------------------------------------------------------------- #
# Campaign-result (de)serialization for checkpoints
# --------------------------------------------------------------------------- #
def campaign_result_to_dict(result: CampaignResult) -> Dict[str, Any]:
    """JSON-compatible encoding of a campaign result."""
    return {
        "iterations": result.iterations,
        "generated_models": result.generated_models,
        "generation_failures": result.generation_failures,
        "numerically_valid_models": result.numerically_valid_models,
        "elapsed": result.elapsed,
        "reports": [to_jsonable(dataclasses.asdict(report))
                    for report in result.reports],
        "operator_instances": sorted(result.operator_instances),
        "seeded_bugs_found": sorted(result.seeded_bugs_found),
        "timeline": to_jsonable(result.timeline),
    }


def campaign_result_from_dict(payload: Dict[str, Any]) -> CampaignResult:
    """Rebuild a campaign result from :func:`campaign_result_to_dict`."""
    return CampaignResult(
        iterations=payload.get("iterations", 0),
        generated_models=payload.get("generated_models", 0),
        generation_failures=payload.get("generation_failures", 0),
        numerically_valid_models=payload.get("numerically_valid_models", 0),
        elapsed=payload.get("elapsed", 0.0),
        reports=[BugReport(**entry) for entry in payload.get("reports", [])],
        operator_instances=set(payload.get("operator_instances", [])),
        seeded_bugs_found=set(payload.get("seeded_bugs_found", [])),
        timeline=list(payload.get("timeline", [])),
    )


# --------------------------------------------------------------------------- #
# Worker side
# --------------------------------------------------------------------------- #
def _shard_worker(shard_index: int, config: FuzzerConfig,
                  factory: CompilerFactory, queue) -> None:
    """Run one shard's full campaign, streaming progress to the coordinator.

    Emits ``("progress", shard, payload)`` for every bug-finding verdict,
    ``("done", shard, result_dict)`` on success and
    ``("error", shard, message)`` on failure.
    """
    try:
        compilers = factory(config.bugs)
        fuzzer = Fuzzer(compilers, config)

        def stream(iteration, case):
            for verdict in case.verdicts:
                if verdict.found_bug:
                    queue.put(("progress", shard_index,
                               {"iteration": iteration,
                                "compiler": verdict.compiler,
                                "status": verdict.status}))

        result = fuzzer.run(on_iteration=stream)
        queue.put(("done", shard_index, campaign_result_to_dict(result)))
    except BaseException as exc:  # surface worker death to the coordinator
        queue.put(("error", shard_index, f"{type(exc).__name__}: {exc}"))


# --------------------------------------------------------------------------- #
# Coordinator
# --------------------------------------------------------------------------- #
@dataclass
class ParallelCampaign:
    """Coordinator for a sharded fuzzing campaign.

    Parameters mirror the serial :class:`Fuzzer`: ``config`` describes the
    whole campaign and is split across ``n_workers`` shards.  The compilers
    under test are built *inside* each worker by ``compiler_factory`` (which
    must be a picklable, module-level callable).
    """

    config: FuzzerConfig = field(default_factory=FuzzerConfig)
    n_workers: int = 2
    compiler_factory: CompilerFactory = default_compiler_factory
    #: Persist completed shard results here and resume from them on re-run.
    checkpoint_path: Optional[str] = None
    #: multiprocessing start method ("fork" on Linux is fastest; "spawn" is
    #: portable). None picks the platform default.
    mp_context: Optional[str] = None
    #: Optional observer for streamed worker events (kind, shard, payload).
    on_event: Optional[Callable[[str, int, Any], None]] = None

    # ------------------------------------------------------------------ #
    def run(self) -> CampaignResult:
        """Run all shards in parallel and return the merged campaign result."""
        shards = shard_configs(self.config, self.n_workers)
        completed = self._load_checkpoint(len(shards))
        pending = [index for index in range(len(shards))
                   if completed[index] is None]

        if pending:
            context = (multiprocessing.get_context(self.mp_context)
                       if self.mp_context else multiprocessing.get_context())
            queue = context.Queue()
            workers = {index: context.Process(target=_shard_worker,
                                              args=(index, shards[index],
                                                    self.compiler_factory, queue),
                                              daemon=True)
                       for index in pending}
            for worker in workers.values():
                worker.start()
            try:
                self._drain(queue, completed, set(pending), workers)
            finally:
                for worker in workers.values():
                    worker.join(timeout=30)
                    if worker.is_alive():
                        worker.terminate()

        results = [campaign_result_from_dict(payload) for payload in completed]
        return CampaignResult.merge_all(results)

    # ------------------------------------------------------------------ #
    def _drain(self, queue, completed: List[Optional[Dict[str, Any]]],
               pending: Set[int], workers: Dict[int, Any]) -> None:
        import queue as queue_module

        errors: List[str] = []
        dead_polls: Dict[int, int] = {}
        while pending:
            try:
                kind, shard, payload = queue.get(timeout=1.0)
            except queue_module.Empty:
                # A worker killed by the OS (OOM, signal) never reports back;
                # detect the silent death instead of blocking forever.  A
                # freshly-exited worker's final message can still be in
                # flight, so only give up on a shard once its worker stays
                # dead over consecutive quiet polls.
                for shard in list(pending):
                    if workers[shard].is_alive():
                        dead_polls[shard] = 0
                        continue
                    dead_polls[shard] = dead_polls.get(shard, 0) + 1
                    if dead_polls[shard] >= 3:
                        pending.discard(shard)
                        errors.append(
                            f"shard {shard}: worker died with exit code "
                            f"{workers[shard].exitcode}")
                continue
            if self.on_event is not None:
                self.on_event(kind, shard, payload)
            if kind == "done":
                completed[shard] = payload
                pending.discard(shard)
                self._save_checkpoint(completed)
            elif kind == "error":
                pending.discard(shard)
                errors.append(f"shard {shard}: {payload}")
        if errors:
            raise ReproError("parallel campaign worker(s) failed: "
                             + "; ".join(errors))

    # ------------------------------------------------------------------ #
    def _checkpoint_fingerprint(self, n_shards: int) -> Dict[str, Any]:
        """Everything that changes what a shard computes.  A checkpoint whose
        fingerprint differs is discarded rather than silently reused."""
        factory = self.compiler_factory
        generator = self.config.generator
        return {
            "n_shards": n_shards,
            "compiler_factory": f"{factory.__module__}.{factory.__qualname__}",
            "seed": self.config.seed,
            "max_iterations": self.config.max_iterations,
            "time_budget": self.config.time_budget,
            "value_search_method": self.config.value_search_method,
            "value_search_budget": self.config.value_search_budget,
            "value_search_max_steps": self.config.value_search_max_steps,
            "probe_operator_support": self.config.probe_operator_support,
            "bugs": sorted(self.config.bugs.enabled_ids()),
            "generator": {
                "n_nodes": generator.n_nodes,
                "max_dim": generator.max_dim,
                "max_rank": generator.max_rank,
                "seed": generator.seed,
                "forward_probability": generator.forward_probability,
                "weight_probability": generator.weight_probability,
                "use_binning": generator.use_binning,
                "n_bins": generator.n_bins,
                "op_pool": sorted(spec.op_kind for spec in generator.op_pool),
                "dtype_weights": {str(dtype): weight for dtype, weight
                                  in sorted(generator.dtype_weights.items(),
                                            key=lambda item: str(item[0]))},
                "max_attempts_per_node": generator.max_attempts_per_node,
            },
        }

    def _load_checkpoint(self, n_shards: int) -> List[Optional[Dict[str, Any]]]:
        completed: List[Optional[Dict[str, Any]]] = [None] * n_shards
        path = self.checkpoint_path
        if not path or not os.path.exists(path):
            return completed
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return completed  # unreadable/corrupt checkpoint: start fresh
        if not isinstance(payload, dict) or \
                payload.get("format_version") != CHECKPOINT_FORMAT_VERSION:
            return completed
        if payload.get("campaign") != self._checkpoint_fingerprint(n_shards):
            return completed  # different campaign: start over
        for key, entry in payload.get("shards", {}).items():
            try:
                index = int(key)
                if not 0 <= index < n_shards:
                    continue
                campaign_result_from_dict(entry)  # reject malformed payloads
            except (ValueError, TypeError, KeyError, AttributeError):
                continue  # treat a corrupt shard entry as not completed
            completed[index] = entry
        return completed

    def _save_checkpoint(self, completed: List[Optional[Dict[str, Any]]]) -> None:
        path = self.checkpoint_path
        if not path:
            return
        payload = {
            "format_version": CHECKPOINT_FORMAT_VERSION,
            "campaign": self._checkpoint_fingerprint(len(completed)),
            "shards": {str(index): entry
                       for index, entry in enumerate(completed)
                       if entry is not None},
        }
        tmp_path = f"{path}.tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        os.replace(tmp_path, path)


def run_parallel_campaign(config: Optional[FuzzerConfig] = None,
                          n_workers: int = 2,
                          compiler_factory: CompilerFactory = default_compiler_factory,
                          checkpoint_path: Optional[str] = None,
                          mp_context: Optional[str] = None,
                          on_event: Optional[Callable[[str, int, Any], None]] = None
                          ) -> CampaignResult:
    """Convenience wrapper: build a :class:`ParallelCampaign` and run it."""
    campaign = ParallelCampaign(
        config=config or FuzzerConfig(),
        n_workers=n_workers,
        compiler_factory=compiler_factory,
        checkpoint_path=checkpoint_path,
        mp_context=mp_context,
        on_event=on_event,
    )
    return campaign.run()


def run_sharded_serial(config: FuzzerConfig, n_workers: int,
                       compiler_factory: CompilerFactory = default_compiler_factory
                       ) -> CampaignResult:
    """Run the same shard configs in-process, serially, and merge them.

    This is the reference implementation the parallel engine is equivalent
    to; it is also the fallback when ``multiprocessing`` is unavailable.
    """
    results = []
    for shard in shard_configs(config, n_workers):
        fuzzer = Fuzzer(compiler_factory(shard.bugs), shard)
        results.append(fuzzer.run())
    merged = CampaignResult.merge_all(results)
    # merge() assumes concurrent shards (elapsed = max); these ran back to
    # back, so wall-clock is the sum.
    merged.elapsed = sum(result.elapsed for result in results)
    return merged
