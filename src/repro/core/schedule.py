"""Pluggable campaign schedulers and their named registry.

The matrix campaign engine (:mod:`repro.core.parallel`) executes a fixed
population of *chunks* — contiguous iteration ranges of matrix cells.  A
:class:`Scheduler` decides (1) how finely each cell's budget is chunked and
(2) in which order pending chunks are leased to workers.  Crucially, a
scheduler may only reorder and redirect *leases*: it never changes which
``(config, iteration)`` pairs execute or their seeds, so the merged
findings of a fixed-iteration campaign are bit-identical across schedulers
— only lease order and worker placement move.  (The scheduler-equivalence
suite in ``tests/core/test_schedulers.py`` pins this.)

Like strategies, oracles and compilers, schedulers are registry-named:
the *name* travels through the CLI (``--schedule``) and checkpoints, the
instance is built where it runs.

Registered schedulers:

* ``static`` — today's pre-planned placement: one chunk per cell, leased in
  the planner's round-robin interleaving.  Zero scheduling overhead.
* ``adaptive`` — work stealing: each cell's budget is split into ~4 leases
  so a worker whose cell finishes early immediately picks up the remaining
  budget of slower cells.
* ``coverage`` — a novelty-rate bandit.  Workers trace compiler branch
  arcs per iteration and ship deltas to the coordinator
  (:class:`repro.compilers.coverage.CoverageFeedback`); the coordinator
  maintains the global arc union and per-cell recent new-arc rates, and
  each lease goes to the cell with the best recent novelty-per-second.
  Cells that keep finding new arcs get the stolen budget first, à la
  greybox coverage-guided fuzzers.
"""

from __future__ import annotations

import abc
import math
from collections import deque
from typing import Any, Callable, Deque, Dict, Mapping, Optional, \
    Sequence, Tuple

#: The scheduler assumed when a campaign predates the registry.
DEFAULT_SCHEDULER = "static"


class Scheduler(abc.ABC):
    """Lease-ordering policy of one campaign run.

    Subclasses override :meth:`_default_chunk` (budget granularity) and
    :meth:`select` (which pending chunk is leased next), and may consume
    per-iteration telemetry via :meth:`observe`.  ``wants_coverage``
    declares whether workers must trace compiler coverage and ship
    per-iteration arc deltas — pure overhead for policies that ignore
    them, so it defaults to off.
    """

    name: str = "scheduler"
    #: Workers trace compiler branch coverage and ship per-iteration deltas.
    wants_coverage: bool = False

    def __init__(self, chunk_iterations: Optional[int] = None) -> None:
        self.chunk_iterations = chunk_iterations

    # ------------------------------------------------------------------ #
    def chunk_size(self, remaining: int, time_budgeted: bool) -> int:
        """Iterations per lease for a cell with ``remaining`` left.

        Time-budgeted cells are never split: the wall-clock deadline is
        measured from chunk start, so splitting would grant each lease a
        fresh budget, multiplying the cell's effective allowance.
        """
        if time_budgeted:
            return remaining
        if self.chunk_iterations is not None:
            return max(1, self.chunk_iterations)
        return self._default_chunk(remaining)

    def _default_chunk(self, remaining: int) -> int:
        return remaining

    # ------------------------------------------------------------------ #
    def select(self, pending: Sequence[int],
               cell_of: Mapping[int, int]) -> int:
        """Choose the next chunk to lease.

        ``pending`` lists the not-yet-dispatched chunk ids in the
        planner's interleaved order (the deterministic tie-break);
        ``cell_of`` maps chunk id → cell index.  The default is FIFO in
        planned order.
        """
        return pending[0]

    def lease_iterations(self, cell_index: int, base: int,
                         remaining: int) -> int:
        """Iterations granted to the next lease of a cell.

        ``base`` is the cell's fixed chunk granularity (from
        :meth:`chunk_size` at the cell's first lease); ``remaining`` is
        how many unleased iterations it has left.  The default grants the
        base size — a scheduler with telemetry may scale it (see
        :meth:`CoverageScheduler.lease_iterations`).  Lease sizing only
        moves *where chunk boundaries fall*; findings stay bit-identical
        because iterations are seeded from ``(config, iteration)``.
        """
        return max(1, min(base, remaining))

    def observe(self, cell_index: int, new_arcs: int,
                duration: float) -> None:
        """Per-iteration feedback: globally-new arc count + wall seconds."""

    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, Any]:
        """JSON-serializable scheduler state for checkpoint persistence."""
        return {}

    def load_state(self, payload: Dict[str, Any]) -> None:
        """Restore :meth:`state_dict` output on campaign resume."""


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #
#: A factory building a scheduler for one campaign run.
SchedulerFactory = Callable[[Optional[int]], Scheduler]

_SCHEDULER_REGISTRY: Dict[str, SchedulerFactory] = {}


def register_scheduler(name: str,
                       factory: Optional[SchedulerFactory] = None):
    """Register a scheduler factory under ``name`` (usable as a decorator)."""

    def _register(factory: SchedulerFactory) -> SchedulerFactory:
        existing = _SCHEDULER_REGISTRY.get(name)
        if existing is not None and existing is not factory:
            raise ValueError(f"scheduler name {name!r} already registered")
        _SCHEDULER_REGISTRY[name] = factory
        return factory

    if factory is not None:
        return _register(factory)
    return _register


def registered_schedulers() -> Tuple[str, ...]:
    """Names of every registered scheduler, in deterministic order."""
    return tuple(sorted(_SCHEDULER_REGISTRY))


def build_scheduler(name: str,
                    chunk_iterations: Optional[int] = None) -> Scheduler:
    """Instantiate a registered scheduler for one campaign run."""
    try:
        factory = _SCHEDULER_REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown scheduler {name!r}; registered: "
                       f"{sorted(_SCHEDULER_REGISTRY)}") from None
    return factory(chunk_iterations)


# --------------------------------------------------------------------------- #
# Built-in schedulers
# --------------------------------------------------------------------------- #
@register_scheduler("static")
class StaticScheduler(Scheduler):
    """Pre-planned placement: whole-cell leases in planner order.

    An explicit ``chunk_iterations`` still splits cells (the historical
    ``chunk_iterations`` knob implied chunked scheduling even without
    work stealing); otherwise every cell is one lease.
    """

    name = "static"


@register_scheduler("adaptive")
class AdaptiveScheduler(Scheduler):
    """Work stealing: ~4 leases per cell, leased FIFO in planner order.

    A worker whose cell finishes early immediately leases the remaining
    budget of slower cells, so no core idles while work remains.
    """

    name = "adaptive"

    def _default_chunk(self, remaining: int) -> int:
        # ~4 leases per cell: fine enough to rebalance, coarse enough to
        # amortize scheduling and checkpoint traffic.
        return max(1, math.ceil(remaining / 4))


@register_scheduler("coverage")
class CoverageScheduler(Scheduler):
    """Novelty-rate bandit over per-cell coverage feedback.

    For every folded iteration the coordinator reports how many arcs were
    new *to the global union* and how long the iteration took; the
    scheduler keeps a sliding window per cell and leases the next chunk to
    the cell with the best recent novelty-per-second.  Cells never
    observed (fresh campaigns, resumed cells without restored state) are
    explored first, in planner order — so the opening sweep is the static
    round-robin and the bandit takes over once rates exist.
    """

    name = "coverage"
    wants_coverage = True

    #: Sliding-window length (iterations) of the per-cell rate estimate.
    #: Long enough to smooth single-iteration noise, short enough that a
    #: plateaued cell's stale streak decays within one lease.
    WINDOW = 8

    def __init__(self, chunk_iterations: Optional[int] = None) -> None:
        super().__init__(chunk_iterations)
        self._recent: Dict[int, Deque[Tuple[int, float]]] = {}
        #: Per-cell compute seconds since the last globally-new arc — the
        #: campaign's ``stagnation_budget`` is enforced against this clock.
        #: Compute seconds, not wall clock: a cell waiting its turn on a
        #: busy fleet is not stagnating, only one that *runs* dry is.
        self._stagnation: Dict[int, float] = {}

    def _default_chunk(self, remaining: int) -> int:
        return max(1, math.ceil(remaining / 4))

    # ------------------------------------------------------------------ #
    def observe(self, cell_index: int, new_arcs: int,
                duration: float) -> None:
        window = self._recent.setdefault(cell_index,
                                         deque(maxlen=self.WINDOW))
        window.append((int(new_arcs), max(float(duration), 1e-6)))
        if int(new_arcs) > 0:
            self._stagnation[cell_index] = 0.0
        else:
            self._stagnation[cell_index] = \
                self._stagnation.get(cell_index, 0.0) + max(float(duration),
                                                            0.0)

    def seconds_since_novelty(self, cell_index: int) -> float:
        """Compute seconds a cell has run since its last globally-new arc."""
        return self._stagnation.get(cell_index, 0.0)

    def novelty_rate(self, cell_index: int) -> Optional[float]:
        """Recent new-arcs-per-second of a cell, or None when unobserved."""
        window = self._recent.get(cell_index)
        if not window:
            return None
        arcs = sum(count for count, _duration in window)
        seconds = sum(duration for _count, duration in window)
        return arcs / max(seconds, 1e-6)

    def select(self, pending: Sequence[int],
               cell_of: Mapping[int, int]) -> int:
        best: Optional[Tuple[float, int]] = None
        for chunk_id in pending:  # planner order = deterministic tie-break
            rate = self.novelty_rate(cell_of[chunk_id])
            if rate is None:
                return chunk_id  # explore unobserved cells first
            if best is None or rate > best[0]:
                best = (rate, chunk_id)
        assert best is not None
        return best[1]

    def lease_iterations(self, cell_index: int, base: int,
                         remaining: int) -> int:
        """Novelty-rate-driven lease sizes.

        A cell producing new arcs at the fleet's best recent rate gets
        leases up to 2× its base granularity (fewer scheduling round-trips
        while it is hot); a plateaued cell gets down to half (so the
        bandit re-evaluates it sooner).  Unobserved cells, and campaigns
        with an explicit ``chunk_iterations``, keep the fixed base — the
        user asked for that granularity.
        """
        if self.chunk_iterations is not None:
            return max(1, min(base, remaining))
        rate = self.novelty_rate(cell_index)
        if rate is None:
            return max(1, min(base, remaining))
        best = max((self.novelty_rate(cell) or 0.0)
                   for cell in self._recent)
        if best <= 0.0:
            return max(1, min(base, remaining))
        scale = 0.5 + 1.5 * min(1.0, rate / best)
        return max(1, min(remaining, int(round(base * scale))))

    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, Any]:
        return {"window": self.WINDOW,
                "recent": {str(cell): [[count, duration]
                                       for count, duration in window]
                           for cell, window in self._recent.items()},
                "stagnation": {str(cell): seconds for cell, seconds
                               in self._stagnation.items()}}

    def load_state(self, payload: Dict[str, Any]) -> None:
        from repro.errors import ReproError

        window = payload.get("window")
        if window is not None:
            # state_dict() always records the window the samples were
            # collected under.  Re-windowing stale samples under a
            # different WINDOW would silently change every restored
            # novelty-rate estimate, so a mismatch is a loud error — not
            # a quiet re-window — and the user decides (delete the
            # checkpoint, or resume with the engine that wrote it).
            try:
                window = int(window)
            except (TypeError, ValueError):
                raise ReproError(
                    "coverage scheduler checkpoint is corrupt: non-integer "
                    f"novelty window {window!r}") from None
            if window != self.WINDOW:
                raise ReproError(
                    f"coverage scheduler checkpoint was written with a "
                    f"novelty window of {window} iterations; this engine "
                    f"uses {self.WINDOW}.  Resuming would re-window stale "
                    "novelty samples and silently change lease decisions — "
                    "resume with the engine version that wrote the "
                    "checkpoint, or delete it to drop the scheduler state.")
        recent = payload.get("recent", {})
        if not isinstance(recent, dict):
            return
        self._recent = {}
        for cell, samples in recent.items():
            try:
                window: Deque[Tuple[int, float]] = deque(
                    (int(count), float(duration))
                    for count, duration in samples)
                window = deque(window, maxlen=self.WINDOW)
                self._recent[int(cell)] = window
            except (TypeError, ValueError):
                continue  # corrupt entry: fall back to exploring that cell
        self._stagnation = {}
        stagnation = payload.get("stagnation")
        if isinstance(stagnation, dict):
            for cell, seconds in stagnation.items():
                try:
                    self._stagnation[int(cell)] = max(0.0, float(seconds))
                except (TypeError, ValueError):
                    continue  # corrupt entry: treat as freshly novel


__all__ = [
    "AdaptiveScheduler",
    "CoverageScheduler",
    "DEFAULT_SCHEDULER",
    "Scheduler",
    "StaticScheduler",
    "build_scheduler",
    "register_scheduler",
    "registered_schedulers",
]
