"""Model generation: Algorithm 1 of the paper.

The generator grows a *symbolic* computation graph one operator at a time.
Every insertion either

* **forward-inserts** a new operator consuming existing values, or
* **backward-inserts** an operator that *produces* an existing placeholder,
  creating fresh placeholders for its own inputs,

and is accepted only if the operator's constraints (from its specification)
are satisfiable together with everything asserted so far — checked
incrementally by the shared solver, exactly as the paper uses Z3.

Placeholders that remain at the end become graph inputs or weights.  After
generation, attribute binning (:mod:`repro.core.binning`) diversifies
attribute values and :mod:`repro.core.concretize` materializes the concrete
interchange model.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Type

from repro.core.abstract import AbsTensor
from repro.core.op_spec import MAX_DIM, MAX_RANK, AbsOpBase, SpecContext
from repro.core.oplib import DEFAULT_OP_POOL
from repro.dtypes import DType
from repro.errors import GenerationError
from repro.solver.solver import Solver


class SymValue:
    """A value (tensor) of the symbolic graph being generated."""

    def __init__(self, name: str, tensor: AbsTensor,
                 producer: Optional["SymNode"] = None) -> None:
        self.name = name
        self.tensor = tensor
        self.producer = producer

    @property
    def is_placeholder(self) -> bool:
        """True while no operator produces this value."""
        return self.producer is None

    def __repr__(self) -> str:
        kind = "placeholder" if self.is_placeholder else "value"
        return f"SymValue({self.name!r}, {kind}, rank={self.tensor.rank})"


class SymNode:
    """A symbolic operator instance."""

    def __init__(self, spec: AbsOpBase, inputs: List[SymValue],
                 outputs: List[SymValue]) -> None:
        self.spec = spec
        self.inputs = inputs
        self.outputs = outputs

    @property
    def name(self) -> str:
        return self.spec.name

    def __repr__(self) -> str:
        return f"SymNode({self.spec.op_kind}, {self.name!r})"


class SymbolicGraph:
    """The symbolic graph plus the solver that owns its constraints."""

    def __init__(self, solver: Solver, ctx: SpecContext) -> None:
        self.solver = solver
        self.ctx = ctx
        self.values: List[SymValue] = []
        self.nodes: List[SymNode] = []

    def placeholders(self) -> List[SymValue]:
        return [value for value in self.values if value.is_placeholder]

    def produced_values(self) -> List[SymValue]:
        return [value for value in self.values if not value.is_placeholder]

    def leaf_values(self) -> List[SymValue]:
        """Values not consumed by any node (the graph outputs)."""
        consumed = {value.name for node in self.nodes for value in node.inputs}
        return [value for value in self.values
                if value.name not in consumed and not value.is_placeholder]

    def topological_nodes(self) -> List[SymNode]:
        """Nodes ordered so that producers precede consumers."""
        ordered: List[SymNode] = []
        done: set = set()
        remaining = list(self.nodes)
        while remaining:
            progressed = False
            for node in list(remaining):
                ready = all(value.is_placeholder or value.producer in ordered or
                            value.producer.name in done
                            for value in node.inputs)
                if ready:
                    ordered.append(node)
                    done.add(node.name)
                    remaining.remove(node)
                    progressed = True
            if not progressed:
                raise GenerationError("symbolic graph contains a cycle")
        return ordered

    def symbolic_attr_vars(self) -> Dict[str, AbsOpBase]:
        """All symbolic attribute variables, mapped to their owning spec."""
        result: Dict[str, AbsOpBase] = {}
        for node in self.nodes:
            for expr in node.spec.attrs.values():
                result[expr.name] = node.spec
            for key, value in vars(node.spec).items():
                if key.startswith("_") and isinstance(value, list):
                    for item in value:
                        if hasattr(item, "name") and hasattr(item, "evaluate"):
                            result.setdefault(item.name, node.spec)
        return result

    def dimension_vars(self) -> List[str]:
        """Dimension variables of every placeholder (inputs and weights)."""
        names: List[str] = []
        for value in self.values:
            if not value.is_placeholder:
                continue
            for dim in value.tensor.dims:
                if hasattr(dim, "name"):
                    names.append(dim.name)
        return names


@dataclass
class GeneratorConfig:
    """Knobs of the model generator (defaults follow §5.1 of the paper)."""

    n_nodes: int = 10
    max_dim: int = MAX_DIM
    max_rank: int = MAX_RANK
    seed: Optional[int] = None
    #: Probability of attempting forward (vs backward) insertion.
    forward_probability: float = 0.5
    #: Probability that a leftover placeholder becomes a weight (constant).
    weight_probability: float = 0.4
    #: Attribute binning (Algorithm 2) and its bin count k.
    use_binning: bool = True
    n_bins: int = 7
    #: Operator specification pool to sample from.
    op_pool: Sequence[Type[AbsOpBase]] = field(default_factory=lambda: list(DEFAULT_OP_POOL))
    #: Relative likelihood of placeholder dtypes (mostly float32, like real models).
    dtype_weights: Dict[DType, float] = field(default_factory=lambda: {
        DType.float32: 0.62,
        DType.float64: 0.14,
        DType.int32: 0.08,
        DType.int64: 0.08,
        DType.bool_: 0.08,
    })
    #: Give up after this many failed insertion attempts per requested node.
    max_attempts_per_node: int = 25


class GraphGenerator:
    """Incremental, constraint-guided symbolic graph generation."""

    def __init__(self, config: Optional[GeneratorConfig] = None) -> None:
        self.config = config or GeneratorConfig()
        self.rng = random.Random(self.config.seed)

    # ------------------------------------------------------------------ #
    def generate_symbolic(self) -> SymbolicGraph:
        """Run Algorithm 1 and return the symbolic graph (pre-binning)."""
        solver = Solver(seed=self.rng.randrange(1 << 30))
        ctx = SpecContext(solver, self.rng, max_dim=self.config.max_dim)
        graph = SymbolicGraph(solver, ctx)
        self._add_placeholder(graph, prefix="seed")

        attempts_left = self.config.n_nodes * self.config.max_attempts_per_node
        while len(graph.nodes) < self.config.n_nodes and attempts_left > 0:
            attempts_left -= 1
            spec_cls = self.rng.choice(list(self.config.op_pool))
            forward = self.rng.random() < self.config.forward_probability
            if forward:
                self._forward_insert(graph, spec_cls)
            else:
                self._backward_insert(graph, spec_cls)
        if not graph.nodes:
            raise GenerationError(
                "failed to insert any operator within the attempt budget")
        return graph

    # ------------------------------------------------------------------ #
    def _add_placeholder(self, graph: SymbolicGraph, prefix: str,
                         rank: Optional[int] = None,
                         dtype: Optional[DType] = None) -> SymValue:
        rank = self.rng.randint(1, self.config.max_rank) if rank is None else rank
        dtype = dtype or self._sample_dtype()
        name = graph.ctx.fresh_name(f"{prefix}_ph")
        tensor = graph.ctx.fresh_tensor(name, rank, dtype)
        value = SymValue(name, tensor)
        graph.values.append(value)
        return value

    def _sample_dtype(self) -> DType:
        weights = self.config.dtype_weights
        choices = list(weights)
        return self.rng.choices(choices, weights=[weights[c] for c in choices], k=1)[0]

    # ------------------------------------------------------------------ #
    def _forward_insert(self, graph: SymbolicGraph, spec_cls: Type[AbsOpBase]) -> bool:
        arity = self.rng.choice(spec_cls.arity_options())
        candidates = self._match_forward_inputs(graph, spec_cls, arity)
        if candidates is None:
            return False
        inputs = candidates
        spec = spec_cls.instantiate(graph.ctx, [value.tensor for value in inputs])
        if spec is None:
            return False
        tensors = [value.tensor for value in inputs]
        constraints = list(spec.requires(tensors))
        outputs = spec.type_transfer(tensors)
        for out in outputs:
            constraints.extend(out.positive_constraints())
            constraints.extend(dim <= self.config.max_dim * 4 for dim in out.dims)
        if not graph.solver.try_add_constraints(constraints):
            return False
        out_values = []
        node = SymNode(spec, list(inputs), [])
        for index, out in enumerate(outputs):
            value = SymValue(f"{spec.name}_out{index}", out, producer=node)
            out_values.append(value)
            graph.values.append(value)
        node.outputs = out_values
        graph.nodes.append(node)
        return True

    def _match_forward_inputs(self, graph: SymbolicGraph, spec_cls: Type[AbsOpBase],
                              arity: int) -> Optional[List[SymValue]]:
        """The cheap type-matching filter: dtypes and ranks only."""
        rank_options = spec_cls.input_rank_options()
        if len(rank_options) < arity:
            rank_options = rank_options + [rank_options[-1]] * (arity - len(rank_options))
        for _ in range(12):
            picked: List[SymValue] = []
            for position in range(arity):
                allowed_ranks = rank_options[position]
                pool = [value for value in graph.values
                        if value.tensor.rank in allowed_ranks]
                if not pool:
                    break
                picked.append(self.rng.choice(pool))
            if len(picked) != arity:
                return None
            dtypes = tuple(value.tensor.dtype for value in picked)
            ranks = tuple(value.tensor.rank for value in picked)
            if spec_cls.accepts_dtypes(dtypes) and spec_cls.accepts_ranks(ranks):
                return picked
        return None

    # ------------------------------------------------------------------ #
    def _backward_insert(self, graph: SymbolicGraph, spec_cls: Type[AbsOpBase]) -> bool:
        placeholders = graph.placeholders()
        if not placeholders or not spec_cls.supports_backward:
            return False
        target = self.rng.choice(placeholders)
        candidates = spec_cls.backward_candidates(target.tensor.dtype, target.tensor.rank)
        if not candidates:
            return False
        dtypes, ranks = self.rng.choice(candidates)
        fresh_tensors = [
            graph.ctx.fresh_tensor(graph.ctx.fresh_name(f"{spec_cls.op_kind}_bwd"), rank, dtype)
            for rank, dtype in zip(ranks, dtypes)
        ]
        spec = spec_cls.instantiate(graph.ctx, fresh_tensors)
        if spec is None:
            return False
        constraints = list(spec.requires(fresh_tensors))
        outputs = spec.type_transfer(fresh_tensors)
        if len(outputs) != 1 or outputs[0].rank != target.tensor.rank or \
                outputs[0].dtype != target.tensor.dtype:
            return False
        constraints.extend(outputs[0].same_shape_as(target.tensor))
        if not graph.solver.try_add_constraints(constraints):
            return False
        input_values = []
        node = SymNode(spec, [], [target])
        for tensor in fresh_tensors:
            value = SymValue(graph.ctx.fresh_name(f"{spec.name}_in"), tensor)
            input_values.append(value)
            graph.values.append(value)
        node.inputs = input_values
        target.producer = node
        graph.nodes.append(node)
        return True


def generate_model(config: Optional[GeneratorConfig] = None):
    """Convenience wrapper: generate, bin, and concretize one model.

    Returns a :class:`repro.core.concretize.GeneratedModel`.
    """
    from repro.core.binning import apply_attribute_binning
    from repro.core.concretize import concretize

    generator = GraphGenerator(config)
    graph = generator.generate_symbolic()
    if generator.config.use_binning:
        apply_attribute_binning(graph, generator.rng, k=generator.config.n_bins)
    return concretize(graph, generator.rng,
                      weight_probability=generator.config.weight_probability)
