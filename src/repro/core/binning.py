"""Attribute binning: Algorithm 2 of the paper.

SMT solvers (and the repo's backtracking solver alike) return boundary values
for under-constrained integers — typically 1 for every free dimension and
attribute — which collapses attribute diversity.  Binning adds extra
constraints that push each attribute into a randomly chosen exponential
range ``[2^(i-1), 2^i)``; if the combined system becomes unsatisfiable, half
of the binning constraints are dropped at random until it is satisfiable
again.

Operator specifications may contribute *specialized* bins (``C*`` in the
paper) via :meth:`AbsOpBase.bin_hints` — e.g. a dedicated ``{0}`` bin for
convolution padding or negative bins for cropping pads.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.core.generator import SymbolicGraph
from repro.solver.constraints import Constraint
from repro.solver.expr import SymVar

Bin = Tuple[int, Optional[int]]


def sample_from_bin(index: int, k: int, rng: random.Random) -> Tuple[int, Optional[int]]:
    """Sample an integer sub-range ``[l, r]`` from the ``index``-th bin.

    Bins follow the paper: bin ``i`` (1-based) spans ``[2^(i-1), 2^i)`` and
    the last bin is unbounded above.
    """
    if index != k:
        low_exp, high_exp = index - 1, index
        a = rng.uniform(low_exp, high_exp)
        b = rng.uniform(low_exp, high_exp)
        bottom, top = sorted((a, b))
        return int(2 ** bottom), int(2 ** top)
    return 2 ** (k - 1), None


def binning_constraints_for(var_name: str, rng: random.Random, k: int,
                            hints: Optional[List[Bin]] = None) -> List[Constraint]:
    """Constraints limiting one variable to a randomly chosen bin."""
    var = SymVar(var_name)
    candidate_bins: List[Bin] = []
    for index in range(1, k + 1):
        candidate_bins.append(sample_from_bin(index, k, rng))
    if hints:
        candidate_bins.extend(hints)
    low, high = rng.choice(candidate_bins)
    constraints: List[Constraint] = [var >= low]
    if high is not None:
        constraints.append(var <= high)
    return constraints


#: Node budget for each incremental binning query; a rejection only means the
#: attribute keeps its boundary value, so giving up quickly is fine.
_BINNING_SOLVER_BUDGET = 4000


def apply_attribute_binning(graph: SymbolicGraph, rng: random.Random,
                            k: int = 7) -> List[Constraint]:
    """Apply Algorithm 2 to a freshly generated symbolic graph.

    Binning constraints are asserted only when the combined system stays
    satisfiable.  Algorithm 2 adds them in bulk and drops a random half on
    failure; asserting them variable-by-variable (in random order, with a
    small solver budget) converges to the same fixed point — the maximal
    satisfiable subset reachable by random dropping — while keeping every
    individual solver query cheap.

    Returns the binning constraints that were accepted.
    """
    per_variable: List[List[Constraint]] = []

    # Operator attributes (with per-spec specializations).
    attr_owners = graph.symbolic_attr_vars()
    for var_name, spec in attr_owners.items():
        hints = spec.bin_hints().get(var_name)
        per_variable.append(binning_constraints_for(var_name, rng, k, hints))

    # Placeholder shapes are treated as attributes too (Algorithm 2, line 9).
    for var_name in graph.dimension_vars():
        per_variable.append(binning_constraints_for(var_name, rng, k))

    rng.shuffle(per_variable)
    accepted: List[Constraint] = []
    for constraints in per_variable:
        if graph.solver.try_add_constraints(constraints,
                                            budget=_BINNING_SOLVER_BUDGET):
            accepted.extend(constraints)
    return accepted
