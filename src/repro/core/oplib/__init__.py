"""The operator-specification library.

``DEFAULT_OP_POOL`` is the pool of specifications the generator samples from;
it corresponds to the operator set the original NNSmith ships specifications
for.  Users extend the fuzzer by appending their own
:class:`~repro.core.op_spec.AbsOpBase` subclasses (see
``examples/custom_operator.py``).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Type

from repro.core.op_spec import AbsOpBase
from repro.core.oplib import elementwise, nn, reduce, shape


def _collect(module) -> List[Type[AbsOpBase]]:
    specs = []
    for name in dir(module):
        obj = getattr(module, name)
        if isinstance(obj, type) and issubclass(obj, AbsOpBase) and \
                getattr(obj, "op_kind", "") and not name.startswith("_"):
            specs.append(obj)
    return specs


#: Every concrete specification shipped with the library.
ALL_SPECS: List[Type[AbsOpBase]] = sorted(
    set(_collect(elementwise) + _collect(nn) + _collect(shape) + _collect(reduce)),
    key=lambda cls: (cls.op_kind, cls.__name__),
)

#: Mapping from interchange operator kind to its specification class.
SPEC_BY_KIND: Dict[str, Type[AbsOpBase]] = {cls.op_kind: cls for cls in ALL_SPECS}

#: The default sampling pool used by the generator.
DEFAULT_OP_POOL: List[Type[AbsOpBase]] = list(ALL_SPECS)


def specs_for_ops(op_kinds: Sequence[str]) -> List[Type[AbsOpBase]]:
    """Specification classes for a set of operator kinds (unknown ones skipped).

    Used to restrict generation to the operator subset a particular compiler
    supports (NNSmith probes compilers for their support matrix, §4).
    """
    return [SPEC_BY_KIND[kind] for kind in op_kinds if kind in SPEC_BY_KIND]


__all__ = ["ALL_SPECS", "DEFAULT_OP_POOL", "SPEC_BY_KIND", "specs_for_ops"]
