"""Specifications for neural-network operators (convolution, pooling, matmul)."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.abstract import AbsTensor
from repro.core.op_spec import AbsOpBase, DtypeCombo, SpecContext, same_dtype_combos
from repro.dtypes import DType, FLOAT_DTYPES
from repro.solver.constraints import Constraint


class Conv2dSpec(AbsOpBase):
    """2-D convolution over NCHW tensors (the paper's most complex spec)."""

    op_kind = "Conv2d"
    n_inputs = 2

    @classmethod
    def dtype_combos(cls) -> List[DtypeCombo]:
        return [((dtype, dtype), (dtype,)) for dtype in FLOAT_DTYPES]

    @classmethod
    def input_rank_options(cls) -> List[List[int]]:
        return [[4], [4]]

    @classmethod
    def deduce_output_rank(cls, input_ranks) -> Optional[int]:
        return 4

    def _configure(self, ctx: SpecContext, inputs: List[AbsTensor]) -> bool:
        prefix = self.name
        self.attrs["stride"] = ctx.int_attr(f"{prefix}_stride", 1, 4)
        self.attrs["padding"] = ctx.int_attr(f"{prefix}_padding", 0, 8)
        self.attrs["dilation"] = ctx.int_attr(f"{prefix}_dilation", 1, 2)
        return True

    def requires(self, inputs: List[AbsTensor]) -> List[Constraint]:
        x, weight = inputs
        _, in_ch, in_h, in_w = x.dims
        _, w_in_ch, k_h, k_w = weight.dims
        stride = self.attrs["stride"]
        padding = self.attrs["padding"]
        dilation = self.attrs["dilation"]
        eff_kh = (k_h - 1) * dilation + 1
        eff_kw = (k_w - 1) * dilation + 1
        return [
            in_ch == w_in_ch,
            k_h >= 1, k_w >= 1,
            stride >= 1, padding >= 0, dilation >= 1,
            eff_kh <= in_h + 2 * padding,
            eff_kw <= in_w + 2 * padding,
            (in_h + 2 * padding - eff_kh) // stride + 1 >= 1,
            (in_w + 2 * padding - eff_kw) // stride + 1 >= 1,
        ]

    def type_transfer(self, inputs: List[AbsTensor]) -> List[AbsTensor]:
        x, weight = inputs
        batch, _, in_h, in_w = x.dims
        out_ch, _, k_h, k_w = weight.dims
        stride = self.attrs["stride"]
        padding = self.attrs["padding"]
        dilation = self.attrs["dilation"]
        eff_kh = (k_h - 1) * dilation + 1
        eff_kw = (k_w - 1) * dilation + 1
        out_h = (in_h + 2 * padding - eff_kh) // stride + 1
        out_w = (in_w + 2 * padding - eff_kw) // stride + 1
        return [AbsTensor(inputs[0].dtype, [batch, out_ch, out_h, out_w])]

    def bin_hints(self):
        # Padding may legitimately be zero, so a dedicated {0} bin is added
        # (the paper's C* specialization for Conv2d padding).
        return {self.attrs["padding"].name: [(0, 0)]}


class _Pool2dSpec(AbsOpBase):
    """Shared implementation of 2-D max/average pooling."""

    n_inputs = 1

    @classmethod
    def dtype_combos(cls) -> List[DtypeCombo]:
        return [((dtype,), (dtype,)) for dtype in FLOAT_DTYPES]

    @classmethod
    def input_rank_options(cls) -> List[List[int]]:
        return [[4]]

    @classmethod
    def deduce_output_rank(cls, input_ranks) -> Optional[int]:
        return 4

    def _configure(self, ctx: SpecContext, inputs: List[AbsTensor]) -> bool:
        prefix = self.name
        self.attrs["kh"] = ctx.int_attr(f"{prefix}_kh", 1, 8)
        self.attrs["kw"] = ctx.int_attr(f"{prefix}_kw", 1, 8)
        self.attrs["stride"] = ctx.int_attr(f"{prefix}_stride", 1, 4)
        self.attrs["padding"] = ctx.int_attr(f"{prefix}_padding", 0, 4)
        return True

    def requires(self, inputs: List[AbsTensor]) -> List[Constraint]:
        (x,) = inputs
        _, _, in_h, in_w = x.dims
        k_h, k_w = self.attrs["kh"], self.attrs["kw"]
        stride, padding = self.attrs["stride"], self.attrs["padding"]
        return [
            k_h >= 1, k_w >= 1, stride >= 1, padding >= 0,
            # Padding may not exceed half the kernel (the ONNX/PyTorch rule).
            2 * padding <= k_h, 2 * padding <= k_w,
            k_h <= in_h + 2 * padding,
            k_w <= in_w + 2 * padding,
        ]

    def type_transfer(self, inputs: List[AbsTensor]) -> List[AbsTensor]:
        (x,) = inputs
        batch, channels, in_h, in_w = x.dims
        k_h, k_w = self.attrs["kh"], self.attrs["kw"]
        stride, padding = self.attrs["stride"], self.attrs["padding"]
        out_h = (in_h + 2 * padding - k_h) // stride + 1
        out_w = (in_w + 2 * padding - k_w) // stride + 1
        return [AbsTensor(x.dtype, [batch, channels, out_h, out_w])]

    def bin_hints(self):
        return {self.attrs["padding"].name: [(0, 0)]}


class MaxPool2dSpec(_Pool2dSpec):
    op_kind = "MaxPool2d"


class AvgPool2dSpec(_Pool2dSpec):
    op_kind = "AvgPool2d"


class GlobalAvgPool2dSpec(AbsOpBase):
    op_kind = "GlobalAvgPool2d"
    n_inputs = 1

    @classmethod
    def dtype_combos(cls) -> List[DtypeCombo]:
        return [((dtype,), (dtype,)) for dtype in FLOAT_DTYPES]

    @classmethod
    def input_rank_options(cls) -> List[List[int]]:
        return [[4]]

    def type_transfer(self, inputs: List[AbsTensor]) -> List[AbsTensor]:
        (x,) = inputs
        batch, channels = x.dims[0], x.dims[1]
        return [AbsTensor(x.dtype, [batch, channels, 1, 1])]


class BatchNormSpec(AbsOpBase):
    """Inference-mode batch normalization."""

    op_kind = "BatchNorm"
    n_inputs = 5
    supports_backward = False

    @classmethod
    def dtype_combos(cls) -> List[DtypeCombo]:
        return [((d, d, d, d, d), (d,)) for d in FLOAT_DTYPES]

    @classmethod
    def input_rank_options(cls) -> List[List[int]]:
        return [[2, 3, 4], [1], [1], [1], [1]]

    def _configure(self, ctx: SpecContext, inputs: List[AbsTensor]) -> bool:
        self.const_attrs["epsilon"] = 1e-5
        return True

    def requires(self, inputs: List[AbsTensor]) -> List[Constraint]:
        x = inputs[0]
        channels = x.dims[1]
        return [param.dims[0] == channels for param in inputs[1:]]

    def type_transfer(self, inputs: List[AbsTensor]) -> List[AbsTensor]:
        x = inputs[0]
        return [AbsTensor(x.dtype, list(x.dims))]


class MatMulSpec(AbsOpBase):
    """Matrix multiplication, including single-rank (vector) operands."""

    op_kind = "MatMul"
    n_inputs = 2

    @classmethod
    def dtype_combos(cls) -> List[DtypeCombo]:
        return [((dtype, dtype), (dtype,)) for dtype in FLOAT_DTYPES]

    @classmethod
    def input_rank_options(cls) -> List[List[int]]:
        return [[1, 2], [1, 2]]

    @classmethod
    def deduce_output_rank(cls, input_ranks) -> Optional[int]:
        lhs, rhs = input_ranks
        if lhs == 1 and rhs == 1:
            return 0
        if lhs == 1 or rhs == 1:
            return 1
        return 2

    def requires(self, inputs: List[AbsTensor]) -> List[Constraint]:
        lhs, rhs = inputs
        contraction_lhs = lhs.dims[-1]
        contraction_rhs = rhs.dims[-2] if rhs.rank >= 2 else rhs.dims[0]
        return [contraction_lhs == contraction_rhs]

    def type_transfer(self, inputs: List[AbsTensor]) -> List[AbsTensor]:
        lhs, rhs = inputs
        if lhs.rank == 1 and rhs.rank == 1:
            dims: List = []
        elif lhs.rank == 1:
            dims = [rhs.dims[-1]]
        elif rhs.rank == 1:
            dims = [lhs.dims[0]]
        else:
            dims = [lhs.dims[0], rhs.dims[1]]
        return [AbsTensor(lhs.dtype, dims)]


class GemmSpec(AbsOpBase):
    """Dense layer: ``X @ W + b`` over rank-2 operands."""

    op_kind = "Gemm"
    n_inputs = 3

    @classmethod
    def dtype_combos(cls) -> List[DtypeCombo]:
        return [((dtype, dtype, dtype), (dtype,)) for dtype in FLOAT_DTYPES]

    @classmethod
    def input_rank_options(cls) -> List[List[int]]:
        return [[2], [2], [1]]

    @classmethod
    def deduce_output_rank(cls, input_ranks) -> Optional[int]:
        return 2

    def requires(self, inputs: List[AbsTensor]) -> List[Constraint]:
        x, weight, bias = inputs
        return [x.dims[1] == weight.dims[0], bias.dims[0] == weight.dims[1]]

    def type_transfer(self, inputs: List[AbsTensor]) -> List[AbsTensor]:
        x, weight, _ = inputs
        return [AbsTensor(x.dtype, [x.dims[0], weight.dims[1]])]


class Resize2dSpec(AbsOpBase):
    """Nearest-neighbour upsampling by integer scale factors."""

    op_kind = "Resize2d"
    n_inputs = 1

    @classmethod
    def dtype_combos(cls) -> List[DtypeCombo]:
        return [((dtype,), (dtype,)) for dtype in FLOAT_DTYPES]

    @classmethod
    def input_rank_options(cls) -> List[List[int]]:
        return [[4]]

    def _configure(self, ctx: SpecContext, inputs: List[AbsTensor]) -> bool:
        self.attrs["scale_h"] = ctx.int_attr(f"{self.name}_scale_h", 1, 4)
        self.attrs["scale_w"] = ctx.int_attr(f"{self.name}_scale_w", 1, 4)
        return True

    def requires(self, inputs: List[AbsTensor]) -> List[Constraint]:
        (x,) = inputs
        return [
            self.attrs["scale_h"] >= 1,
            self.attrs["scale_w"] >= 1,
            # Keep the upsampled tensor reasonably small for fuzzing speed.
            x.dims[2] * self.attrs["scale_h"] <= 128,
            x.dims[3] * self.attrs["scale_w"] <= 128,
        ]

    def type_transfer(self, inputs: List[AbsTensor]) -> List[AbsTensor]:
        (x,) = inputs
        batch, channels, height, width = x.dims
        return [AbsTensor(x.dtype, [batch, channels,
                                    height * self.attrs["scale_h"],
                                    width * self.attrs["scale_w"]])]
