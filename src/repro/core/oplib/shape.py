"""Specifications for shape-manipulating (data movement) operators."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.abstract import AbsTensor
from repro.core.op_spec import MAX_RANK, AbsOpBase, DtypeCombo, SpecContext, same_dtype_combos
from repro.dtypes import DType, FLOAT_DTYPES, INT_DTYPES
from repro.graph.node import Node
from repro.solver.constraints import Constraint, Or
from repro.solver.expr import product

_ALL_DATA_DTYPES = FLOAT_DTYPES + INT_DTYPES + (DType.bool_,)


class _DataMovementSpec(AbsOpBase):
    """Shared defaults: accepts any data dtype, preserves it."""

    supports_backward = False

    @classmethod
    def dtype_combos(cls) -> List[DtypeCombo]:
        return same_dtype_combos(_ALL_DATA_DTYPES, cls.n_inputs, "same")


class ReshapeSpec(_DataMovementSpec):
    """Reshape to a freshly solved target shape with equal element count."""

    op_kind = "Reshape"
    n_inputs = 1

    @classmethod
    def input_rank_options(cls) -> List[List[int]]:
        return [list(range(1, MAX_RANK + 1))]

    def _configure(self, ctx: SpecContext, inputs: List[AbsTensor]) -> bool:
        out_rank = ctx.rng.randint(1, MAX_RANK)
        self._target_dims = [ctx.dim_var(f"{self.name}_t{i}") for i in range(out_rank)]
        return True

    def requires(self, inputs: List[AbsTensor]) -> List[Constraint]:
        (x,) = inputs
        constraints = [dim >= 1 for dim in self._target_dims]
        constraints.append(product(self._target_dims) == x.numel())
        return constraints

    def type_transfer(self, inputs: List[AbsTensor]) -> List[AbsTensor]:
        return [AbsTensor(inputs[0].dtype, list(self._target_dims))]

    def to_node(self, input_names, output_names, assignment) -> Node:
        shape = [dim.evaluate(assignment) for dim in self._target_dims]
        return Node(self.op_kind, self.name, list(input_names), list(output_names),
                    {"shape": shape})


class FlattenSpec(_DataMovementSpec):
    op_kind = "Flatten"
    n_inputs = 1

    @classmethod
    def input_rank_options(cls) -> List[List[int]]:
        return [list(range(1, MAX_RANK + 1))]

    def _configure(self, ctx: SpecContext, inputs: List[AbsTensor]) -> bool:
        self.const_attrs["axis"] = ctx.rng.randint(1, max(inputs[0].rank, 1))
        return True

    def type_transfer(self, inputs: List[AbsTensor]) -> List[AbsTensor]:
        (x,) = inputs
        axis = self.const_attrs["axis"]
        lead = product(x.dims[:axis])
        trail = product(x.dims[axis:])
        return [AbsTensor(x.dtype, [lead, trail])]


class TransposeSpec(_DataMovementSpec):
    op_kind = "Transpose"
    n_inputs = 1

    @classmethod
    def input_rank_options(cls) -> List[List[int]]:
        return [list(range(2, MAX_RANK + 1))]

    def _configure(self, ctx: SpecContext, inputs: List[AbsTensor]) -> bool:
        perm = list(range(inputs[0].rank))
        ctx.rng.shuffle(perm)
        self.const_attrs["perm"] = perm
        return True

    def type_transfer(self, inputs: List[AbsTensor]) -> List[AbsTensor]:
        (x,) = inputs
        perm = self.const_attrs["perm"]
        return [AbsTensor(x.dtype, [x.dims[p] for p in perm])]


class SqueezeSpec(_DataMovementSpec):
    """Remove one dimension, which is constrained to be of size one."""

    op_kind = "Squeeze"
    n_inputs = 1

    @classmethod
    def input_rank_options(cls) -> List[List[int]]:
        return [list(range(1, MAX_RANK + 1))]

    def _configure(self, ctx: SpecContext, inputs: List[AbsTensor]) -> bool:
        self.const_attrs["axes"] = [ctx.rng.randrange(inputs[0].rank)]
        return True

    def requires(self, inputs: List[AbsTensor]) -> List[Constraint]:
        axis = self.const_attrs["axes"][0]
        return [inputs[0].dims[axis] == 1]

    def type_transfer(self, inputs: List[AbsTensor]) -> List[AbsTensor]:
        (x,) = inputs
        axis = self.const_attrs["axes"][0]
        dims = [dim for index, dim in enumerate(x.dims) if index != axis]
        return [AbsTensor(x.dtype, dims)]


class UnsqueezeSpec(_DataMovementSpec):
    op_kind = "Unsqueeze"
    n_inputs = 1

    @classmethod
    def input_rank_options(cls) -> List[List[int]]:
        return [list(range(0, MAX_RANK))]

    def _configure(self, ctx: SpecContext, inputs: List[AbsTensor]) -> bool:
        self.const_attrs["axes"] = [ctx.rng.randint(0, inputs[0].rank)]
        return True

    def type_transfer(self, inputs: List[AbsTensor]) -> List[AbsTensor]:
        (x,) = inputs
        axis = self.const_attrs["axes"][0]
        dims = list(x.dims)
        dims.insert(axis, 1)
        return [AbsTensor(x.dtype, dims)]


class SliceSpec(_DataMovementSpec):
    """Slice one axis with symbolic start/end/step attributes."""

    op_kind = "Slice"
    n_inputs = 1

    @classmethod
    def input_rank_options(cls) -> List[List[int]]:
        return [list(range(1, MAX_RANK + 1))]

    def _configure(self, ctx: SpecContext, inputs: List[AbsTensor]) -> bool:
        self._axis = ctx.rng.randrange(inputs[0].rank)
        self.attrs["start"] = ctx.int_attr(f"{self.name}_start", 0, ctx.max_dim)
        self.attrs["end"] = ctx.int_attr(f"{self.name}_end", 1, ctx.max_dim)
        self.attrs["step"] = ctx.int_attr(f"{self.name}_step", 1, 4)
        return True

    def requires(self, inputs: List[AbsTensor]) -> List[Constraint]:
        dim = inputs[0].dims[self._axis]
        start, end, step = self.attrs["start"], self.attrs["end"], self.attrs["step"]
        return [start >= 0, start < end, end <= dim, step >= 1]

    def type_transfer(self, inputs: List[AbsTensor]) -> List[AbsTensor]:
        (x,) = inputs
        start, end, step = self.attrs["start"], self.attrs["end"], self.attrs["step"]
        dims = list(x.dims)
        dims[self._axis] = (end - start + step - 1) // step
        return [AbsTensor(x.dtype, dims)]

    def to_node(self, input_names, output_names, assignment) -> Node:
        attrs = {
            "starts": [self.attrs["start"].evaluate(assignment)],
            "ends": [self.attrs["end"].evaluate(assignment)],
            "axes": [self._axis],
            "steps": [self.attrs["step"].evaluate(assignment)],
        }
        return Node(self.op_kind, self.name, list(input_names), list(output_names), attrs)

    def bin_hints(self):
        # The C* specialization for Slice: keep the index range small so that
        # start < end <= dim stays satisfiable for typical dimensions.
        return {
            self.attrs["start"].name: [(0, 4)],
            self.attrs["end"].name: [(1, 16)],
        }


class PadSpec(_DataMovementSpec):
    """Constant/reflect/replicate padding with per-edge symbolic widths."""

    op_kind = "Pad"
    n_inputs = 1

    @classmethod
    def input_rank_options(cls) -> List[List[int]]:
        return [list(range(1, MAX_RANK + 1))]

    @classmethod
    def dtype_combos(cls) -> List[DtypeCombo]:
        return same_dtype_combos(FLOAT_DTYPES + INT_DTYPES, 1, "same")

    def _configure(self, ctx: SpecContext, inputs: List[AbsTensor]) -> bool:
        rank = inputs[0].rank
        self.const_attrs["mode"] = ctx.rng.choice(["constant", "reflect", "replicate"])
        self.const_attrs["value"] = 0
        self._before = [ctx.solver.int_var(f"{self.name}_b{i}", -4, 8) for i in range(rank)]
        self._after = [ctx.solver.int_var(f"{self.name}_a{i}", -4, 8) for i in range(rank)]
        return True

    def requires(self, inputs: List[AbsTensor]) -> List[Constraint]:
        (x,) = inputs
        constraints: List[Constraint] = []
        for dim, before, after in zip(x.dims, self._before, self._after):
            constraints.append(dim + before + after >= 1)
            if self.const_attrs["mode"] != "constant":
                # Reflect/replicate padding cannot exceed the input extent and
                # negative (cropping) pads are constant-mode only.
                constraints.extend([before >= 0, after >= 0,
                                    before <= dim - 1, after <= dim - 1])
        return constraints

    def type_transfer(self, inputs: List[AbsTensor]) -> List[AbsTensor]:
        (x,) = inputs
        dims = [dim + before + after
                for dim, before, after in zip(x.dims, self._before, self._after)]
        return [AbsTensor(x.dtype, dims)]

    def to_node(self, input_names, output_names, assignment) -> Node:
        pads = [v.evaluate(assignment) for v in self._before] + \
            [v.evaluate(assignment) for v in self._after]
        attrs = {"pads": pads, "mode": self.const_attrs["mode"],
                 "value": self.const_attrs["value"]}
        return Node(self.op_kind, self.name, list(input_names), list(output_names), attrs)

    def bin_hints(self) -> Dict:
        # The C* specialization for padding operators: include zero and
        # negative bins so cropping pads are generated too.
        hints = {}
        for var in self._before + self._after:
            hints[var.name] = [(0, 0), (-4, -1)]
        return hints


class BroadcastToSpec(_DataMovementSpec):
    """Broadcast to a larger shape solved by the constraint system."""

    op_kind = "BroadcastTo"
    n_inputs = 1

    @classmethod
    def input_rank_options(cls) -> List[List[int]]:
        return [list(range(1, MAX_RANK + 1))]

    def _configure(self, ctx: SpecContext, inputs: List[AbsTensor]) -> bool:
        self._out_rank = ctx.rng.randint(inputs[0].rank, MAX_RANK)
        self._target = [ctx.dim_var(f"{self.name}_t{i}") for i in range(self._out_rank)]
        return True

    def requires(self, inputs: List[AbsTensor]) -> List[Constraint]:
        (x,) = inputs
        constraints: List[Constraint] = [dim >= 1 for dim in self._target]
        offset = self._out_rank - x.rank
        for index, dim in enumerate(x.dims):
            target = self._target[offset + index]
            constraints.append(Or([target == dim, dim == 1]))
        return constraints

    def type_transfer(self, inputs: List[AbsTensor]) -> List[AbsTensor]:
        return [AbsTensor(inputs[0].dtype, list(self._target))]

    def to_node(self, input_names, output_names, assignment) -> Node:
        shape = [dim.evaluate(assignment) for dim in self._target]
        return Node(self.op_kind, self.name, list(input_names), list(output_names),
                    {"shape": shape})


class ConcatSpec(_DataMovementSpec):
    """Concatenate two to four tensors along one axis."""

    op_kind = "Concat"

    def __init__(self, name: str) -> None:
        super().__init__(name)

    @classmethod
    def arity_options(cls) -> List[int]:
        return [2, 3, 4]

    @classmethod
    def dtype_combos(cls) -> List[DtypeCombo]:
        combos = []
        for arity in (2, 3, 4):
            for dtype in _ALL_DATA_DTYPES:
                combos.append((tuple([dtype] * arity), (dtype,)))
        return combos

    @classmethod
    def input_rank_options(cls) -> List[List[int]]:
        # Arity is variable; rank matching is handled in accepts_ranks.
        return [list(range(1, MAX_RANK + 1))]

    @classmethod
    def accepts_ranks(cls, ranks) -> bool:
        if not 2 <= len(ranks) <= 4:
            return False
        return len(set(ranks)) == 1 and ranks[0] >= 1

    @classmethod
    def accepts_dtypes(cls, dtypes) -> bool:
        return 2 <= len(dtypes) <= 4 and len(set(dtypes)) == 1

    @classmethod
    def out_dtypes_for(cls, dtypes):
        if not cls.accepts_dtypes(dtypes):
            return None
        return (dtypes[0],)

    def _configure(self, ctx: SpecContext, inputs: List[AbsTensor]) -> bool:
        self.const_attrs["axis"] = ctx.rng.randrange(inputs[0].rank)
        return True

    def requires(self, inputs: List[AbsTensor]) -> List[Constraint]:
        axis = self.const_attrs["axis"]
        first = inputs[0]
        constraints: List[Constraint] = []
        for other in inputs[1:]:
            for index in range(first.rank):
                if index != axis:
                    constraints.append(other.dims[index] == first.dims[index])
        return constraints

    def type_transfer(self, inputs: List[AbsTensor]) -> List[AbsTensor]:
        axis = self.const_attrs["axis"]
        total = inputs[0].dims[axis]
        for other in inputs[1:]:
            total = total + other.dims[axis]
        dims = list(inputs[0].dims)
        dims[axis] = total
        return [AbsTensor(inputs[0].dtype, dims)]
