"""Specifications for elementwise (unary, binary, ternary) operators."""

from __future__ import annotations

from typing import List, Optional

from repro.core.abstract import AbsTensor, broadcast_dims
from repro.core.op_spec import (
    AbsOpBase,
    BinaryBroadcast,
    DtypeCombo,
    ElementwiseUnary,
    SpecContext,
)
from repro.dtypes import ALL_DTYPES, DType, FLOAT_DTYPES, INT_DTYPES, NUMERIC_DTYPES
from repro.solver.constraints import Constraint


# --------------------------------------------------------------------------- #
# Unary, dtype-preserving.
# --------------------------------------------------------------------------- #
class ReluSpec(ElementwiseUnary):
    op_kind = "Relu"


class AbsSpec(ElementwiseUnary):
    op_kind = "Abs"
    dtypes = FLOAT_DTYPES + INT_DTYPES


class NegSpec(ElementwiseUnary):
    op_kind = "Neg"
    dtypes = FLOAT_DTYPES + INT_DTYPES


class SignSpec(ElementwiseUnary):
    op_kind = "Sign"
    dtypes = FLOAT_DTYPES + INT_DTYPES


class FloorSpec(ElementwiseUnary):
    op_kind = "Floor"


class CeilSpec(ElementwiseUnary):
    op_kind = "Ceil"


class RoundSpec(ElementwiseUnary):
    op_kind = "Round"


class IdentitySpec(ElementwiseUnary):
    op_kind = "Identity"
    dtypes = FLOAT_DTYPES + INT_DTYPES


class DropoutSpec(ElementwiseUnary):
    op_kind = "Dropout"

    def _configure(self, ctx: SpecContext, inputs: List[AbsTensor]) -> bool:
        self.const_attrs["ratio"] = round(ctx.rng.uniform(0.0, 0.9), 2)
        return True


class LeakyReluSpec(ElementwiseUnary):
    op_kind = "LeakyRelu"

    def _configure(self, ctx: SpecContext, inputs: List[AbsTensor]) -> bool:
        self.const_attrs["alpha"] = round(ctx.rng.uniform(0.001, 0.3), 3)
        return True


class ClipSpec(ElementwiseUnary):
    op_kind = "Clip"
    dtypes = FLOAT_DTYPES + INT_DTYPES

    def _configure(self, ctx: SpecContext, inputs: List[AbsTensor]) -> bool:
        low = ctx.rng.uniform(-8.0, 0.0)
        high = low + ctx.rng.uniform(0.5, 8.0)
        if inputs[0].dtype.is_int:
            self.const_attrs["min"] = int(low)
            self.const_attrs["max"] = int(high) + 1
        else:
            self.const_attrs["min"] = round(low, 3)
            self.const_attrs["max"] = round(high, 3)
        return True


# --------------------------------------------------------------------------- #
# Unary, float result.
# --------------------------------------------------------------------------- #
class SigmoidSpec(ElementwiseUnary):
    op_kind = "Sigmoid"
    out_rule = "float_like"


class TanhSpec(ElementwiseUnary):
    op_kind = "Tanh"
    out_rule = "float_like"


class ExpSpec(ElementwiseUnary):
    op_kind = "Exp"
    out_rule = "float_like"


class LogSpec(ElementwiseUnary):
    op_kind = "Log"
    out_rule = "float_like"


class Log2Spec(ElementwiseUnary):
    op_kind = "Log2"
    out_rule = "float_like"


class SqrtSpec(ElementwiseUnary):
    op_kind = "Sqrt"
    out_rule = "float_like"


class SinSpec(ElementwiseUnary):
    op_kind = "Sin"
    out_rule = "float_like"


class CosSpec(ElementwiseUnary):
    op_kind = "Cos"
    out_rule = "float_like"


class AsinSpec(ElementwiseUnary):
    op_kind = "Asin"
    out_rule = "float_like"


class AcosSpec(ElementwiseUnary):
    op_kind = "Acos"
    out_rule = "float_like"


class AtanSpec(ElementwiseUnary):
    op_kind = "Atan"
    out_rule = "float_like"


class SoftplusSpec(ElementwiseUnary):
    op_kind = "Softplus"
    out_rule = "float_like"


class ErfSpec(ElementwiseUnary):
    op_kind = "Erf"
    out_rule = "float_like"


class ReciprocalSpec(ElementwiseUnary):
    op_kind = "Reciprocal"
    out_rule = "float_like"


class SoftmaxSpec(ElementwiseUnary):
    op_kind = "Softmax"
    out_rule = "float_like"

    @classmethod
    def input_rank_options(cls) -> List[List[int]]:
        return [[1, 2, 3, 4]]

    def _configure(self, ctx: SpecContext, inputs: List[AbsTensor]) -> bool:
        self.const_attrs["axis"] = ctx.rng.randrange(inputs[0].rank)
        return True


class NotSpec(ElementwiseUnary):
    op_kind = "Not"
    dtypes = (DType.bool_,)
    out_rule = "bool"


class CastSpec(ElementwiseUnary):
    """Cast to a dtype chosen when the node is created."""

    op_kind = "Cast"
    dtypes = NUMERIC_DTYPES
    supports_backward = False

    def _configure(self, ctx: SpecContext, inputs: List[AbsTensor]) -> bool:
        choices = [d for d in NUMERIC_DTYPES if d != inputs[0].dtype]
        self._target = ctx.rng.choice(choices)
        self.const_attrs["to"] = str(self._target)
        return True

    def type_transfer(self, inputs: List[AbsTensor]) -> List[AbsTensor]:
        return [AbsTensor(self._target, list(inputs[0].dims))]


# --------------------------------------------------------------------------- #
# Binary broadcasting operators.
# --------------------------------------------------------------------------- #
class AddSpec(BinaryBroadcast):
    op_kind = "Add"


class SubSpec(BinaryBroadcast):
    op_kind = "Sub"


class MulSpec(BinaryBroadcast):
    op_kind = "Mul"


class DivSpec(BinaryBroadcast):
    op_kind = "Div"


class MaxSpec(BinaryBroadcast):
    op_kind = "Max"


class MinSpec(BinaryBroadcast):
    op_kind = "Min"


class PowSpec(BinaryBroadcast):
    op_kind = "Pow"
    dtypes = FLOAT_DTYPES


class EqualSpec(BinaryBroadcast):
    op_kind = "Equal"
    out_rule = "bool"


class GreaterSpec(BinaryBroadcast):
    op_kind = "Greater"
    out_rule = "bool"


class LessSpec(BinaryBroadcast):
    op_kind = "Less"
    out_rule = "bool"


class AndSpec(BinaryBroadcast):
    op_kind = "And"
    dtypes = (DType.bool_,)
    out_rule = "bool"


class OrSpec(BinaryBroadcast):
    op_kind = "Or"
    dtypes = (DType.bool_,)
    out_rule = "bool"


class XorSpec(BinaryBroadcast):
    op_kind = "Xor"
    dtypes = (DType.bool_,)
    out_rule = "bool"


class WhereSpec(AbsOpBase):
    """Ternary selection with three-way broadcasting."""

    op_kind = "Where"
    n_inputs = 3

    @classmethod
    def dtype_combos(cls) -> List[DtypeCombo]:
        return [((DType.bool_, dtype, dtype), (dtype,))
                for dtype in FLOAT_DTYPES + INT_DTYPES]

    @classmethod
    def deduce_output_rank(cls, input_ranks) -> Optional[int]:
        return max(input_ranks)

    def requires(self, inputs: List[AbsTensor]) -> List[Constraint]:
        cond, lhs, rhs = inputs
        _, first = broadcast_dims(lhs, rhs)
        merged = AbsTensor(lhs.dtype, broadcast_dims(lhs, rhs)[0])
        _, second = broadcast_dims(cond, merged)
        return first + second

    def type_transfer(self, inputs: List[AbsTensor]) -> List[AbsTensor]:
        cond, lhs, rhs = inputs
        merged_dims, _ = broadcast_dims(lhs, rhs)
        final_dims, _ = broadcast_dims(cond, AbsTensor(lhs.dtype, merged_dims))
        return [AbsTensor(lhs.dtype, final_dims)]
