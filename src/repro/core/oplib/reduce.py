"""Specifications for reduction operators."""

from __future__ import annotations

from typing import List

from repro.core.abstract import AbsTensor
from repro.core.op_spec import MAX_RANK, AbsOpBase, DtypeCombo, ReduceBase, SpecContext
from repro.dtypes import DType, FLOAT_DTYPES, INT_DTYPES


class ReduceSumSpec(ReduceBase):
    op_kind = "ReduceSum"


class ReduceMeanSpec(ReduceBase):
    op_kind = "ReduceMean"
    dtypes = FLOAT_DTYPES
    out_rule = "float_like"


class ReduceMaxSpec(ReduceBase):
    op_kind = "ReduceMax"


class ReduceMinSpec(ReduceBase):
    op_kind = "ReduceMin"


class ReduceProdSpec(ReduceBase):
    op_kind = "ReduceProd"
    dtypes = FLOAT_DTYPES


class _ArgExtremeSpec(AbsOpBase):
    """ArgMax/ArgMin over one axis, producing int64 indices."""

    n_inputs = 1
    supports_backward = False

    @classmethod
    def dtype_combos(cls) -> List[DtypeCombo]:
        return [((dtype,), (DType.int64,))
                for dtype in FLOAT_DTYPES + INT_DTYPES + (DType.bool_,)]

    @classmethod
    def input_rank_options(cls) -> List[List[int]]:
        return [list(range(1, MAX_RANK + 1))]

    def _configure(self, ctx: SpecContext, inputs: List[AbsTensor]) -> bool:
        self.const_attrs["axis"] = ctx.rng.randrange(inputs[0].rank)
        self.const_attrs["keepdims"] = bool(ctx.rng.random() < 0.5)
        return True

    def type_transfer(self, inputs: List[AbsTensor]) -> List[AbsTensor]:
        (x,) = inputs
        axis = self.const_attrs["axis"]
        keepdims = self.const_attrs["keepdims"]
        dims = []
        for index, dim in enumerate(x.dims):
            if index == axis:
                if keepdims:
                    dims.append(1)
            else:
                dims.append(dim)
        return [AbsTensor(DType.int64, dims)]


class ArgMaxSpec(_ArgExtremeSpec):
    op_kind = "ArgMax"


class ArgMinSpec(_ArgExtremeSpec):
    op_kind = "ArgMin"
