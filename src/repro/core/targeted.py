"""The ``targeted`` generation strategy: motif-biased model construction.

Plain fuzzing reaches some seeded-bug trigger structures only with very low
probability — the regression corpus stalled at 18/30 bugs because the
remaining triggers need rare shapes: a channel-strided ``Slice`` directly
after a ``Conv2d``, a ``Concat`` with more than four inputs, a ``Squeeze``
without an ``axes`` attribute, back-to-back non-inverse ``Transpose``
pairs, and so on (see ROADMAP).  This strategy encodes those structures as
a library of *motifs* — small parameterized model builders — and
round-robins through them, so a short campaign exercises every rare
structure many times.

Each motif is randomized (shapes, decoration with extra elementwise
operators) from the iteration seed, keeping the strategy pure in
``(seed, iteration)`` like every other registered strategy.  Motifs are
*biased toward* their trigger conditions but go through the exact same
export → compile → differential-test pipeline as any generated model; they
are not oracle shortcuts.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Callable, List

import numpy as np

from repro.core.concretize import GeneratedModel
from repro.core.strategy import (GenerationStrategy, StrategyCapabilities,
                                 _wrap_model, register_strategy)
from repro.dtypes import DType
from repro.errors import GenerationError, ReproError
from repro.graph.builder import GraphBuilder

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.fuzzer import FuzzerConfig

#: Float-safe unary decorations appended to some motif outputs.
_DECORATIONS = ("Relu", "Abs", "Neg", "Sigmoid", "Tanh")

Motif = Callable[[GraphBuilder, random.Random], str]


def _np(rng: random.Random) -> np.random.Generator:
    return np.random.default_rng(rng.randrange(1 << 30))


def _conv(builder: GraphBuilder, rng: random.Random, channels: int,
          size: int, out_channels: int) -> str:
    x = builder.input([1, channels, size, size])
    kernel = _np(rng).normal(0, 0.3, size=(out_channels, channels, 3, 3))
    w = builder.weight(kernel.astype(np.float32))
    return builder.op1("Conv2d", [x, w], stride=1, padding=1)


# --------------------------------------------------------------------------- #
# The motif library.  Comments name the structure, not a bug id: motifs bias
# generation toward structures, detection stays with the oracle.
# --------------------------------------------------------------------------- #
def motif_conv_channel_strided_slice(builder: GraphBuilder,
                                     rng: random.Random) -> str:
    """Conv2d whose output is sliced along channels with stride > 1."""
    size = rng.choice([6, 8])
    conv = _conv(builder, rng, channels=4, size=size, out_channels=8)
    return builder.op1("Slice", [conv], starts=[0], ends=[8], axes=[1],
                       steps=[2])


def motif_conv_lower_rank_broadcast(builder: GraphBuilder,
                                    rng: random.Random) -> str:
    """Conv2d followed by a broadcasting Add with a lower-rank operand."""
    size = rng.choice([6, 8])
    conv = _conv(builder, rng, channels=4, size=size, out_channels=4)
    vec = builder.weight(
        _np(rng).uniform(1, 4, size=(size,)).astype(np.float32))
    return builder.op1(rng.choice(["Add", "Mul"]), [conv, vec])


def motif_many_input_concat(builder: GraphBuilder, rng: random.Random) -> str:
    """Concat joining more than four inputs."""
    arity = rng.choice([5, 6, 7])
    shape = [2, rng.choice([2, 3])]
    values = [builder.input(shape) for _ in range(arity)]
    return builder.op1("Concat", values, axis=rng.choice([0, 1]))


def motif_squeeze_without_axes(builder: GraphBuilder,
                               rng: random.Random) -> str:
    """Squeeze relying on the implicit all-unit-axes default."""
    shape = [rng.choice([2, 3]), 1, rng.choice([3, 4])]
    x = builder.input(shape)
    squeezed = builder.op1("Squeeze", [x])
    return builder.op1("Relu", [squeezed])


def motif_conv_batchnorm(builder: GraphBuilder, rng: random.Random) -> str:
    """Conv2d feeding straight into BatchNorm."""
    size = rng.choice([6, 8])
    conv = _conv(builder, rng, channels=4, size=size, out_channels=4)
    np_rng = _np(rng)
    scale = builder.weight(np_rng.uniform(0.5, 2, size=4).astype(np.float32))
    bias = builder.weight(np.zeros(4, dtype=np.float32))
    mean = builder.weight(np_rng.uniform(-1, 1, size=4).astype(np.float32))
    var = builder.weight(np_rng.uniform(0.5, 2, size=4).astype(np.float32))
    return builder.op1("BatchNorm", [conv, scale, bias, mean, var],
                       epsilon=1e-5)


def motif_matmul_scalar_addend(builder: GraphBuilder,
                               rng: random.Random) -> str:
    """MatMul whose Add consumer has a single-element (broadcast) addend."""
    rows, inner, cols = rng.choice([3, 4]), rng.choice([4, 5]), rng.choice([3, 4])
    a = builder.input([rows, inner])
    b = builder.weight(_np(rng).normal(0, 0.4,
                                       size=(inner, cols)).astype(np.float32))
    product = builder.op1("MatMul", [a, b])
    addend = builder.weight(np.float32(_np(rng).uniform(1, 3)).reshape(()))
    return builder.op1("Add", [product, addend])


def motif_noninverse_transpose_pair(builder: GraphBuilder,
                                    rng: random.Random) -> str:
    """Back-to-back Transpose nodes that do not compose to the identity."""
    x = builder.input([2, 3, 4])
    perm = rng.choice([[1, 2, 0], [2, 0, 1]])
    inner = builder.op1("Transpose", [x], perm=perm)
    return builder.op1("Transpose", [inner], perm=perm)


def motif_constant_pow_large_exponent(builder: GraphBuilder,
                                      rng: random.Random) -> str:
    """Pow over two constants with a large exponent (constant-foldable)."""
    np_rng = _np(rng)
    base = builder.weight(
        np_rng.uniform(1.0, 1.2, size=(2, 2)).astype(np.float32))
    exponent = builder.weight(
        np.full((2, 2), float(rng.choice([16, 24, 32])), dtype=np.float32))
    powered = builder.op1("Pow", [base, exponent])
    x = builder.input([2, 2])
    return builder.op1("Add", [powered, x])


def motif_adjacent_strided_slices(builder: GraphBuilder,
                                  rng: random.Random) -> str:
    """Two adjacent Slices on disjoint axes, one of them strided."""
    x = builder.input([6, 6, rng.choice([4, 6])])
    first = builder.op1("Slice", [x], starts=[0], ends=[6], axes=[0],
                        steps=[2])
    return builder.op1("Slice", [first], starts=[1], ends=[5], axes=[1],
                       steps=[1])


def motif_integer_mul_div_roundtrip(builder: GraphBuilder,
                                    rng: random.Random) -> str:
    """(x * c) / c over integer tensors with a shared constant."""
    shape = [rng.choice([3, 4]), 4]
    x = builder.input(shape, DType.int32)
    constant = builder.weight(
        _np(rng).integers(2, 6, size=shape).astype(np.int32))
    product = builder.op1("Mul", [x, constant])
    quotient = builder.op1("Div", [product, constant])
    # The round-trip must feed a consumer: simplifiers skip graph outputs.
    return builder.op1("Add", [quotient, x])


def motif_large_reshape(builder: GraphBuilder, rng: random.Random) -> str:
    """Reshape whose element count needs 64-bit index arithmetic."""
    x = builder.input([4, 16, 16])
    target = rng.choice([[1024], [16, 64], [32, 32]])
    reshaped = builder.op1("Reshape", [x], shape=list(target))
    return builder.op1("Abs", [reshaped])


def motif_overpadded_pooling(builder: GraphBuilder,
                             rng: random.Random) -> str:
    """Pooling whose padding exceeds half the kernel size."""
    x = builder.input([1, 2, 6, 6])
    op = rng.choice(["MaxPool2d", "AvgPool2d"])
    return builder.op1(op, [x], kh=2, kw=2, stride=1, padding=2)


MOTIFS: List[Motif] = [
    motif_conv_channel_strided_slice,
    motif_conv_lower_rank_broadcast,
    motif_many_input_concat,
    motif_squeeze_without_axes,
    motif_conv_batchnorm,
    motif_matmul_scalar_addend,
    motif_noninverse_transpose_pair,
    motif_constant_pow_large_exponent,
    motif_adjacent_strided_slices,
    motif_integer_mul_div_roundtrip,
    motif_large_reshape,
    motif_overpadded_pooling,
]


@register_strategy("targeted")
class TargetedStrategy(GenerationStrategy):
    """Round-robin over the motif library with seeded randomization."""

    name = "targeted"
    capabilities = StrategyCapabilities()

    def __init__(self, config: "FuzzerConfig") -> None:
        del config

    def generate(self, seed: int, iteration: int) -> GeneratedModel:
        motif = MOTIFS[(iteration - 1) % len(MOTIFS)]
        rng = random.Random(seed)
        builder = GraphBuilder(f"targeted_{motif.__name__[6:]}")
        try:
            value = motif(builder, rng)
            if builder.model.type_of(value).dtype.is_float and \
                    rng.random() < 0.5:
                value = builder.op1(rng.choice(_DECORATIONS), [value])
            builder.output(value)
            return _wrap_model(builder.build())
        except GenerationError:
            raise
        except ReproError as exc:
            raise GenerationError(f"targeted motif {motif.__name__} failed: "
                                  f"{exc}") from exc
