"""The ``targeted`` generation strategy: motif-biased model construction.

Plain fuzzing reaches some seeded-bug trigger structures only with very low
probability — the regression corpus stalled at 18/30 bugs because the
remaining triggers need rare shapes: a channel-strided ``Slice`` directly
after a ``Conv2d``, a ``Concat`` with more than four inputs, a ``Squeeze``
without an ``axes`` attribute, back-to-back non-inverse ``Transpose``
pairs, and so on (see ROADMAP).  This strategy encodes those structures as
a library of *motifs* — small parameterized model builders — and
round-robins through them, so a short campaign exercises every rare
structure many times.

Each motif is randomized (shapes, decoration with extra elementwise
operators) from the iteration seed, keeping the strategy pure in
``(seed, iteration)`` like every other registered strategy.  Motifs are
*biased toward* their trigger conditions but go through the exact same
export → compile → differential-test pipeline as any generated model; they
are not oracle shortcuts.
"""

from __future__ import annotations

import math
import random
from typing import TYPE_CHECKING, Callable, Dict, FrozenSet, List

import numpy as np

from repro.compilers.bugs import (FEATURE_ATTR_DIVERSITY, FEATURE_BROADCAST,
                                  FEATURE_FLOAT64, FEATURE_INT_DTYPE,
                                  FEATURE_MULTI_INPUT, FEATURE_MULTI_OP,
                                  FEATURE_NON_SHAPE_PRESERVING,
                                  FEATURE_SCALAR, FEATURE_SHAPE_OPS,
                                  FEATURE_VECTOR_MATMUL, BugSpec, all_bugs,
                                  bug_spec)
from repro.core.concretize import GeneratedModel
from repro.core.strategy import (GenerationStrategy, StrategyCapabilities,
                                 _wrap_model, register_strategy)
from repro.dtypes import DType
from repro.errors import GenerationError, ReproError
from repro.graph.builder import GraphBuilder

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.fuzzer import FuzzerConfig

#: Float-safe unary decorations appended to some motif outputs.
_DECORATIONS = ("Relu", "Abs", "Neg", "Sigmoid", "Tanh")

Motif = Callable[[GraphBuilder, random.Random], str]


def _np(rng: random.Random) -> np.random.Generator:
    return np.random.default_rng(rng.randrange(1 << 30))


def _conv(builder: GraphBuilder, rng: random.Random, channels: int,
          size: int, out_channels: int) -> str:
    x = builder.input([1, channels, size, size])
    kernel = _np(rng).normal(0, 0.3, size=(out_channels, channels, 3, 3))
    w = builder.weight(kernel.astype(np.float32))
    return builder.op1("Conv2d", [x, w], stride=1, padding=1)


# --------------------------------------------------------------------------- #
# The motif library.  Comments name the structure, not a bug id: motifs bias
# generation toward structures, detection stays with the oracle.
# --------------------------------------------------------------------------- #
def motif_conv_channel_strided_slice(builder: GraphBuilder,
                                     rng: random.Random) -> str:
    """Conv2d whose output is sliced along channels with stride > 1."""
    size = rng.choice([6, 8])
    conv = _conv(builder, rng, channels=4, size=size, out_channels=8)
    return builder.op1("Slice", [conv], starts=[0], ends=[8], axes=[1],
                       steps=[2])


def motif_conv_lower_rank_broadcast(builder: GraphBuilder,
                                    rng: random.Random) -> str:
    """Conv2d followed by a broadcasting Add with a lower-rank operand."""
    size = rng.choice([6, 8])
    conv = _conv(builder, rng, channels=4, size=size, out_channels=4)
    vec = builder.weight(
        _np(rng).uniform(1, 4, size=(size,)).astype(np.float32))
    return builder.op1(rng.choice(["Add", "Mul"]), [conv, vec])


def motif_many_input_concat(builder: GraphBuilder, rng: random.Random) -> str:
    """Concat joining more than four inputs."""
    arity = rng.choice([5, 6, 7])
    shape = [2, rng.choice([2, 3])]
    values = [builder.input(shape) for _ in range(arity)]
    return builder.op1("Concat", values, axis=rng.choice([0, 1]))


def motif_squeeze_without_axes(builder: GraphBuilder,
                               rng: random.Random) -> str:
    """Squeeze relying on the implicit all-unit-axes default."""
    shape = [rng.choice([2, 3]), 1, rng.choice([3, 4])]
    x = builder.input(shape)
    squeezed = builder.op1("Squeeze", [x])
    return builder.op1("Relu", [squeezed])


def motif_conv_batchnorm(builder: GraphBuilder, rng: random.Random) -> str:
    """Conv2d feeding straight into BatchNorm."""
    size = rng.choice([6, 8])
    conv = _conv(builder, rng, channels=4, size=size, out_channels=4)
    np_rng = _np(rng)
    scale = builder.weight(np_rng.uniform(0.5, 2, size=4).astype(np.float32))
    bias = builder.weight(np.zeros(4, dtype=np.float32))
    mean = builder.weight(np_rng.uniform(-1, 1, size=4).astype(np.float32))
    var = builder.weight(np_rng.uniform(0.5, 2, size=4).astype(np.float32))
    return builder.op1("BatchNorm", [conv, scale, bias, mean, var],
                       epsilon=1e-5)


def motif_matmul_scalar_addend(builder: GraphBuilder,
                               rng: random.Random) -> str:
    """MatMul whose Add consumer has a single-element (broadcast) addend."""
    rows, inner, cols = rng.choice([3, 4]), rng.choice([4, 5]), rng.choice([3, 4])
    a = builder.input([rows, inner])
    b = builder.weight(_np(rng).normal(0, 0.4,
                                       size=(inner, cols)).astype(np.float32))
    product = builder.op1("MatMul", [a, b])
    addend = builder.weight(np.float32(_np(rng).uniform(1, 3)).reshape(()))
    return builder.op1("Add", [product, addend])


def motif_noninverse_transpose_pair(builder: GraphBuilder,
                                    rng: random.Random) -> str:
    """Back-to-back Transpose nodes that do not compose to the identity."""
    x = builder.input([2, 3, 4])
    perm = rng.choice([[1, 2, 0], [2, 0, 1]])
    inner = builder.op1("Transpose", [x], perm=perm)
    return builder.op1("Transpose", [inner], perm=perm)


def motif_constant_pow_large_exponent(builder: GraphBuilder,
                                      rng: random.Random) -> str:
    """Pow over two constants with a large exponent (constant-foldable)."""
    np_rng = _np(rng)
    base = builder.weight(
        np_rng.uniform(1.0, 1.2, size=(2, 2)).astype(np.float32))
    exponent = builder.weight(
        np.full((2, 2), float(rng.choice([16, 24, 32])), dtype=np.float32))
    powered = builder.op1("Pow", [base, exponent])
    x = builder.input([2, 2])
    return builder.op1("Add", [powered, x])


def motif_adjacent_strided_slices(builder: GraphBuilder,
                                  rng: random.Random) -> str:
    """Two adjacent Slices on disjoint axes, one of them strided."""
    x = builder.input([6, 6, rng.choice([4, 6])])
    first = builder.op1("Slice", [x], starts=[0], ends=[6], axes=[0],
                        steps=[2])
    return builder.op1("Slice", [first], starts=[1], ends=[5], axes=[1],
                       steps=[1])


def motif_integer_mul_div_roundtrip(builder: GraphBuilder,
                                    rng: random.Random) -> str:
    """(x * c) / c over integer tensors with a shared constant."""
    shape = [rng.choice([3, 4]), 4]
    x = builder.input(shape, DType.int32)
    constant = builder.weight(
        _np(rng).integers(2, 6, size=shape).astype(np.int32))
    product = builder.op1("Mul", [x, constant])
    quotient = builder.op1("Div", [product, constant])
    # The round-trip must feed a consumer: simplifiers skip graph outputs.
    return builder.op1("Add", [quotient, x])


def motif_large_reshape(builder: GraphBuilder, rng: random.Random) -> str:
    """Reshape whose element count needs 64-bit index arithmetic."""
    x = builder.input([4, 16, 16])
    target = rng.choice([[1024], [16, 64], [32, 32]])
    reshaped = builder.op1("Reshape", [x], shape=list(target))
    return builder.op1("Abs", [reshaped])


def motif_overpadded_pooling(builder: GraphBuilder,
                             rng: random.Random) -> str:
    """Pooling whose padding exceeds half the kernel size."""
    x = builder.input([1, 2, 6, 6])
    op = rng.choice(["MaxPool2d", "AvgPool2d"])
    return builder.op1(op, [x], kh=2, kw=2, stride=1, padding=2)


MOTIFS: List[Motif] = [
    motif_conv_channel_strided_slice,
    motif_conv_lower_rank_broadcast,
    motif_many_input_concat,
    motif_squeeze_without_axes,
    motif_conv_batchnorm,
    motif_matmul_scalar_addend,
    motif_noninverse_transpose_pair,
    motif_constant_pow_large_exponent,
    motif_adjacent_strided_slices,
    motif_integer_mul_div_roundtrip,
    motif_large_reshape,
    motif_overpadded_pooling,
]

#: Generator features each hand-written motif exercises, against the same
#: vocabulary as :attr:`repro.compilers.bugs.BugSpec.required_features`.
#: This is what decides whether a bug already *has* a motif: a motif covers
#: a bug when its feature set is a superset of the bug's requirements.
MOTIF_FEATURES: Dict[str, FrozenSet[str]] = {
    "motif_conv_channel_strided_slice": frozenset(
        {FEATURE_MULTI_OP, FEATURE_ATTR_DIVERSITY,
         FEATURE_NON_SHAPE_PRESERVING, FEATURE_SHAPE_OPS}),
    "motif_conv_lower_rank_broadcast": frozenset(
        {FEATURE_MULTI_OP, FEATURE_BROADCAST}),
    "motif_many_input_concat": frozenset(
        {FEATURE_MULTI_OP, FEATURE_MULTI_INPUT,
         FEATURE_NON_SHAPE_PRESERVING}),
    "motif_squeeze_without_axes": frozenset(
        {FEATURE_MULTI_OP, FEATURE_SHAPE_OPS,
         FEATURE_NON_SHAPE_PRESERVING}),
    "motif_conv_batchnorm": frozenset(
        {FEATURE_MULTI_OP, FEATURE_ATTR_DIVERSITY}),
    "motif_matmul_scalar_addend": frozenset(
        {FEATURE_MULTI_OP, FEATURE_SCALAR, FEATURE_BROADCAST}),
    "motif_noninverse_transpose_pair": frozenset(
        {FEATURE_MULTI_OP, FEATURE_NON_SHAPE_PRESERVING,
         FEATURE_SHAPE_OPS}),
    "motif_constant_pow_large_exponent": frozenset({FEATURE_MULTI_OP}),
    "motif_adjacent_strided_slices": frozenset(
        {FEATURE_MULTI_OP, FEATURE_ATTR_DIVERSITY,
         FEATURE_NON_SHAPE_PRESERVING, FEATURE_SHAPE_OPS}),
    "motif_integer_mul_div_roundtrip": frozenset(
        {FEATURE_MULTI_OP, FEATURE_INT_DTYPE}),
    "motif_large_reshape": frozenset(
        {FEATURE_MULTI_OP, FEATURE_SHAPE_OPS,
         FEATURE_NON_SHAPE_PRESERVING}),
    "motif_overpadded_pooling": frozenset(
        {FEATURE_MULTI_OP, FEATURE_ATTR_DIVERSITY,
         FEATURE_NON_SHAPE_PRESERVING}),
}


# --------------------------------------------------------------------------- #
# Feature-derived fallback motifs (ops-only).  Bugs whose required_features
# no hand-written motif covers — newly seeded bugs, third-party registries —
# get a motif for free: a deterministic operator pipeline assembled from the
# feature labels themselves.  Structures stay biased-toward, detection stays
# with the oracle, exactly like the hand-written library.
# --------------------------------------------------------------------------- #
def derive_motif(features: FrozenSet[str]) -> Motif:
    """Build an ops-only motif exercising a ``required_features`` set.

    The pipeline is assembled feature by feature in a fixed order (rank-1
    MatMul operand, extra graph inputs, lower-rank broadcast, scalar
    constants, strided/attribute-diverse Slice, Reshape) with shapes
    randomized from the iteration seed, so derived motifs obey the same
    purity contract as hand-written ones.
    """
    wanted = frozenset(features)

    def motif(builder: GraphBuilder, rng: random.Random) -> str:
        np_rng = _np(rng)
        if FEATURE_FLOAT64 in wanted:
            dtype, np_dtype = DType.float64, np.float64
        elif FEATURE_INT_DTYPE in wanted:
            dtype, np_dtype = DType.int32, np.int32
        else:
            dtype, np_dtype = DType.float32, np.float32

        def constant(shape):
            if np_dtype is np.int32:
                return np_rng.integers(1, 5, size=shape).astype(np_dtype)
            return np_rng.uniform(0.5, 2.0, size=shape).astype(np_dtype)

        if FEATURE_VECTOR_MATMUL in wanted:
            inner = rng.choice([3, 4])
            x = builder.input([inner], dtype)  # rank-1 MatMul operand
            w = builder.weight(constant((inner, rng.choice([3, 4]))))
            value = builder.op1("MatMul", [x, w])
            shape = list(builder.model.type_of(value).shape)
        else:
            shape = [rng.choice([2, 4]), 3, 4]
            value = builder.input(list(shape), dtype)
        if FEATURE_MULTI_INPUT in wanted:
            other = builder.input(list(shape), dtype)
            value = builder.op1("Add", [value, other])
        if FEATURE_BROADCAST in wanted:
            value = builder.op1("Add",
                                [value, builder.weight(constant((shape[-1],)))])
        if FEATURE_SCALAR in wanted:
            scalar = builder.weight(
                np.asarray(rng.choice([2, 3]), dtype=np_dtype).reshape(()))
            value = builder.op1("Mul", [value, scalar])
        if FEATURE_NON_SHAPE_PRESERVING in wanted or \
                FEATURE_ATTR_DIVERSITY in wanted:
            step = 2 if FEATURE_ATTR_DIVERSITY in wanted else 1
            value = builder.op1("Slice", [value], starts=[0],
                                ends=[shape[0]], axes=[0], steps=[step])
            shape[0] = len(range(0, shape[0], step))
        if FEATURE_SHAPE_OPS in wanted:
            value = builder.op1("Reshape", [value],
                                shape=[int(math.prod(shape))])
        # Every derived motif is multi-op by construction; the trailing
        # elementwise op also feeds shape/slice results into a consumer so
        # simplifiers cannot skip them as graph outputs.
        return builder.op1("Abs", [value])

    motif.__name__ = "motif_auto_" + \
        ("_".join(sorted(wanted)) if wanted else "plain")
    return motif


def motif_for_bug(bug_id: str) -> Motif:
    """The motif biased toward one seeded bug's trigger structure.

    Prefers the first hand-written motif whose declared features cover the
    bug's ``required_features``; bugs no hand-written motif covers get a
    feature-derived fallback.  Every registered bug therefore maps to
    *some* motif — which is what keeps newly seeded bugs targetable
    without writing a motif by hand.
    """
    spec: BugSpec = bug_spec(bug_id)
    for motif in MOTIFS:
        if MOTIF_FEATURES[motif.__name__] >= spec.required_features:
            return motif
    return derive_motif(spec.required_features)


def fallback_motifs() -> List[Motif]:
    """Derived motifs for every registered bug no hand-written motif covers.

    Deduplicated by feature set (many bugs share requirements) and ordered
    deterministically so the strategy's rotation — and therefore its
    streams — is stable for a fixed bug registry.
    """
    uncovered: List[FrozenSet[str]] = []
    for spec in sorted(all_bugs(), key=lambda spec: spec.bug_id):
        if any(MOTIF_FEATURES[motif.__name__] >= spec.required_features
               for motif in MOTIFS):
            continue
        if spec.required_features not in uncovered:
            uncovered.append(spec.required_features)
    return [derive_motif(features) for features in uncovered]


@register_strategy("targeted")
class TargetedStrategy(GenerationStrategy):
    """Round-robin over the motif library with seeded randomization.

    The rotation is the hand-written library followed by the feature-
    derived fallbacks (:func:`fallback_motifs`), so every registered bug's
    trigger structure — hand-modelled or not — is exercised each cycle.
    Hand-written motifs come first, keeping short campaigns' streams
    anchored on the curated structures.
    """

    name = "targeted"
    capabilities = StrategyCapabilities()

    def __init__(self, config: "FuzzerConfig") -> None:
        del config
        self._rotation: List[Motif] = MOTIFS + fallback_motifs()

    def generate(self, seed: int, iteration: int) -> GeneratedModel:
        motif = self._rotation[(iteration - 1) % len(self._rotation)]
        rng = random.Random(seed)
        builder = GraphBuilder(f"targeted_{motif.__name__[6:]}")
        try:
            value = motif(builder, rng)
            if builder.model.type_of(value).dtype.is_float and \
                    rng.random() < 0.5:
                value = builder.op1(rng.choice(_DECORATIONS), [value])
            builder.output(value)
            return _wrap_model(builder.build())
        except GenerationError:
            raise
        except ReproError as exc:
            raise GenerationError(f"targeted motif {motif.__name__} failed: "
                                  f"{exc}") from exc
