"""The versioned coordinator↔worker message schema of the campaign fabric.

Every message the coordinator and its workers exchange — over
``multiprocessing`` queues *and* over TCP sockets — is one of the frozen
dataclasses below, serialized with :func:`encode` to a JSON-compatible dict
tagged with the protocol version and message kind, and rebuilt with
:func:`decode`.  Promoting the historical ad-hoc queue tuples to a schema is
what makes the two transports interchangeable: the wire format is the
contract, the transport only moves frames.

Versioning: :data:`PROTOCOL_VERSION` is bumped whenever a message's fields
change meaning or shape.  :func:`decode` rejects frames from another
protocol version loudly (a fleet mixing engine versions would silently
corrupt campaign state otherwise); unknown *extra* fields on a known kind
are ignored so additive same-version deployments interoperate.

The module also carries the JSON round-trips for the campaign objects a
*remote* worker must rebuild from the wire rather than receive by pickle:
:func:`config_to_dict`/:func:`config_from_dict` for
:class:`~repro.core.fuzzer.FuzzerConfig` (including the generator's
operator pool, serialized as registry kind names) and
:func:`task_to_dict`/:func:`task_from_dict` for
:class:`~repro.core.parallel.CellTask`.
"""

from __future__ import annotations

import base64
import dataclasses
import json
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple, Type

from repro.errors import ReproError

#: Wire-format version.  v1: the PR-8 schema — lease/claim/iter/
#: coverage_delta/chunk_done/error/heartbeat/checkpoint_ack/shutdown plus
#: the hello/welcome handshake and the status request/reply pair.
#: v2: large ``coverage_delta`` frames may ship their arcs zlib-compressed
#: (``packed``/``codec`` wire fields) — see :data:`ARC_COMPRESSION_THRESHOLD`.
PROTOCOL_VERSION = 2

#: Serialized-arcs byte size above which a ``coverage_delta`` frame ships
#: compressed.  Arcs are long dotted-path strings with heavy shared
#: structure, so zlib routinely shrinks high-arc deltas 5-10×; tiny deltas
#: are not worth the round-trip cost.
ARC_COMPRESSION_THRESHOLD = 2048

#: The only arc codec v2 speaks: JSON list → zlib → base64 text.
_ARC_CODEC = "zlib+b64"


class ProtocolError(ReproError):
    """A malformed, unknown or version-mismatched fabric frame."""


# --------------------------------------------------------------------------- #
# Message dataclasses
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class Message:
    """Base class; ``kind`` is the wire tag of each concrete message."""

    kind = ""


@dataclass(frozen=True)
class Hello(Message):
    """Worker → coordinator handshake: identity + protocol version."""

    kind = "hello"
    worker: str = ""
    pid: int = 0
    protocol: int = PROTOCOL_VERSION


@dataclass(frozen=True)
class Welcome(Message):
    """Coordinator → worker handshake reply.

    ``factory`` is the dotted path of the campaign's compiler factory —
    remote workers import it by name (factory-mode cells only; named-subset
    cells rebuild their compilers from the registry).
    """

    kind = "welcome"
    factory: str = ""
    protocol: int = PROTOCOL_VERSION


@dataclass(frozen=True)
class Lease(Message):
    """Coordinator → worker: one chunk of a matrix cell to execute.

    ``stop`` is inclusive; None means "run until ``time_budget`` expires"
    (pure time-budget cells).  ``exclude`` names workers this lease must
    not be assigned to — the fault-tolerance path requeues a dead worker's
    chunk with that worker excluded.  ``task`` carries the serialized
    :class:`~repro.core.parallel.CellTask` for remote workers (local pool
    workers already hold the task list and receive ``task=None``).
    """

    kind = "lease"
    chunk_id: int = 0
    cell_index: int = 0
    start: int = 1
    stop: Optional[int] = None
    time_budget: Optional[float] = None
    exclude: Tuple[str, ...] = ()
    task: Optional[Dict[str, Any]] = None


@dataclass(frozen=True)
class Claim(Message):
    """Worker → coordinator: a lease was picked up and is now running."""

    kind = "claim"
    worker: str = ""
    chunk_id: int = 0
    cell_index: int = 0


@dataclass(frozen=True)
class IterationResult(Message):
    """Worker → coordinator: one completed iteration's folded result.

    ``payload`` is :func:`~repro.core.parallel.campaign_result_to_dict` of
    the iteration's partial result (coverage arcs stripped — they travel as
    a separate :class:`CoverageDelta` frame); ``duration`` is the
    iteration's wall-clock seconds on the worker, the coordinator's unit of
    consumed cell budget.
    """

    kind = "iter"
    worker: str = ""
    chunk_id: int = 0
    cell_index: int = 0
    iteration: int = 0
    duration: float = 0.0
    payload: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class CoverageDelta(Message):
    """Worker → coordinator: an iteration's newly-seen coverage arcs.

    Deltas are keyed to ``(cell_index, iteration)`` and sent *before* the
    matching :class:`IterationResult`, so the feedback channel ships
    compact per-iteration novelty, never cumulative arc sets.  Only
    non-empty deltas are transmitted.
    """

    kind = "coverage_delta"
    worker: str = ""
    cell_index: int = 0
    iteration: int = 0
    arcs: Tuple[str, ...] = ()


@dataclass(frozen=True)
class ChunkDone(Message):
    """Worker → coordinator: a lease ran to completion."""

    kind = "chunk_done"
    worker: str = ""
    chunk_id: int = 0
    cell_index: int = 0


@dataclass(frozen=True)
class WorkerError(Message):
    """Worker → coordinator: the lease failed with a worker-side exception
    (after which the worker retires)."""

    kind = "error"
    worker: str = ""
    chunk_id: int = 0
    cell_index: int = 0
    message: str = ""


@dataclass(frozen=True)
class Heartbeat(Message):
    """Worker → coordinator liveness beacon (socket transport only; local
    pool workers are observed directly via ``Process.is_alive``)."""

    kind = "heartbeat"
    worker: str = ""
    sent_at: float = 0.0


@dataclass(frozen=True)
class CheckpointAck(Message):
    """Coordinator → worker: progress through ``folded`` iterations has
    been folded, and — when ``persisted`` — written to the checkpoint.
    Informational: workers surface it in logs so fleet operators can see
    their shard's durability lag."""

    kind = "checkpoint_ack"
    worker: str = ""
    folded: int = 0
    persisted: bool = False


@dataclass(frozen=True)
class Shutdown(Message):
    """Coordinator → worker: drain and exit."""

    kind = "shutdown"
    reason: str = ""


@dataclass(frozen=True)
class StatusRequest(Message):
    """Status client → coordinator: ask for the live campaign snapshot."""

    kind = "status_request"


@dataclass(frozen=True)
class StatusReply(Message):
    """Coordinator → status client: the latest campaign snapshot."""

    kind = "status_reply"
    snapshot: Dict[str, Any] = field(default_factory=dict)


_MESSAGE_TYPES: Dict[str, Type[Message]] = {
    cls.kind: cls
    for cls in (Hello, Welcome, Lease, Claim, IterationResult, CoverageDelta,
                ChunkDone, WorkerError, Heartbeat, CheckpointAck, Shutdown,
                StatusRequest, StatusReply)
}


# --------------------------------------------------------------------------- #
# Frame (de)serialization
# --------------------------------------------------------------------------- #
def encode(message: Message) -> Dict[str, Any]:
    """Serialize a message to a JSON-compatible, version-tagged dict.

    ``coverage_delta`` frames — the chattiest message on high-arc
    campaigns — ship their arcs zlib-compressed above
    :data:`ARC_COMPRESSION_THRESHOLD` serialized bytes: the arc list moves
    into the ``packed``/``codec`` wire fields and ``arcs`` goes empty on
    the wire.  :func:`decode` restores the plain tuple, so the dataclass
    a receiver sees is identical either way.
    """
    if not isinstance(message, Message) or not message.kind:
        raise ProtocolError(f"not a fabric message: {message!r}")
    payload = dataclasses.asdict(message)
    payload["kind"] = message.kind
    payload["v"] = PROTOCOL_VERSION
    if message.kind == "coverage_delta" and payload.get("arcs"):
        serialized = json.dumps(list(payload["arcs"])).encode("utf-8")
        if len(serialized) > ARC_COMPRESSION_THRESHOLD:
            payload["arcs"] = []
            payload["packed"] = base64.b64encode(
                zlib.compress(serialized)).decode("ascii")
            payload["codec"] = _ARC_CODEC
    return payload


def decode(payload: Any) -> Message:
    """Rebuild a message from :func:`encode` output.

    Rejects frames from another protocol version or of unknown kind with a
    :class:`ProtocolError`; extra fields on a known kind are dropped so
    additive same-version peers interoperate.
    """
    if not isinstance(payload, dict):
        raise ProtocolError(f"fabric frame must be a dict, got "
                            f"{type(payload).__name__}")
    version = payload.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"fabric frame has protocol version {version!r}; this engine "
            f"speaks v{PROTOCOL_VERSION}.  Coordinator and workers must run "
            "the same engine version — upgrade the lagging side.")
    kind = payload.get("kind")
    cls = _MESSAGE_TYPES.get(kind)
    if cls is None:
        raise ProtocolError(f"unknown fabric message kind {kind!r}")
    names = {f.name for f in dataclasses.fields(cls)}
    kwargs = {key: value for key, value in payload.items() if key in names}
    if kind == "coverage_delta" and payload.get("packed"):
        codec = payload.get("codec")
        if codec != _ARC_CODEC:
            raise ProtocolError(
                f"coverage_delta frame uses unknown arc codec {codec!r}")
        try:
            kwargs["arcs"] = json.loads(zlib.decompress(
                base64.b64decode(payload["packed"])).decode("utf-8"))
        except (ValueError, zlib.error) as exc:
            raise ProtocolError(
                f"corrupt packed coverage_delta frame: {exc}") from None
    for name in ("exclude", "arcs"):
        if name in kwargs and isinstance(kwargs[name], list):
            kwargs[name] = tuple(kwargs[name])
    try:
        return cls(**kwargs)
    except TypeError as exc:
        raise ProtocolError(f"malformed {kind!r} frame: {exc}") from None


# --------------------------------------------------------------------------- #
# Campaign-object round-trips (what a remote worker rebuilds from the wire)
# --------------------------------------------------------------------------- #
def config_to_dict(config) -> Dict[str, Any]:
    """JSON encoding of a :class:`~repro.core.fuzzer.FuzzerConfig`.

    The generator's operator pool is serialized as registry kind names and
    rebuilt from :data:`repro.core.oplib.SPEC_BY_KIND`; dtype weights are
    keyed by dtype name.  Both keep their original order — the generator
    draws from them by iteration order, so reordering on the wire would
    change what a remote worker generates for the same seed.
    """
    generator = config.generator
    return {
        "generator": {
            "n_nodes": generator.n_nodes,
            "max_dim": generator.max_dim,
            "max_rank": generator.max_rank,
            "seed": generator.seed,
            "forward_probability": generator.forward_probability,
            "weight_probability": generator.weight_probability,
            "use_binning": generator.use_binning,
            "n_bins": generator.n_bins,
            "op_pool": [spec.op_kind for spec in generator.op_pool],
            "dtype_weights": {str(dtype): float(weight) for dtype, weight
                              in generator.dtype_weights.items()},
            "max_attempts_per_node": generator.max_attempts_per_node,
        },
        "value_search_method": config.value_search_method,
        "value_search_budget": config.value_search_budget,
        "value_search_max_steps": config.value_search_max_steps,
        "max_iterations": config.max_iterations,
        "time_budget": config.time_budget,
        "bugs": sorted(config.bugs.enabled_ids()),
        "seed": config.seed,
        "probe_operator_support": config.probe_operator_support,
        "strategy": config.strategy,
        "oracle": config.oracle,
        "pipeline": config.pipeline,
        "enable_cache": config.enable_cache,
        "verify_passes": config.verify_passes,
    }


def config_from_dict(payload: Dict[str, Any]):
    """Rebuild a :class:`~repro.core.fuzzer.FuzzerConfig` from
    :func:`config_to_dict` output."""
    from repro.compilers.bugs import BugConfig
    from repro.core.fuzzer import FuzzerConfig
    from repro.core.generator import GeneratorConfig
    from repro.core.oplib import SPEC_BY_KIND
    from repro.dtypes import DType

    entry = payload.get("generator", {})
    unknown = [kind for kind in entry.get("op_pool", [])
               if kind not in SPEC_BY_KIND]
    if unknown:
        raise ProtocolError(
            f"lease names operator kinds this worker does not know: "
            f"{sorted(unknown)} — coordinator and workers must run the "
            "same engine version.")
    generator = GeneratorConfig(
        n_nodes=entry.get("n_nodes", 10),
        max_dim=entry.get("max_dim", GeneratorConfig().max_dim),
        max_rank=entry.get("max_rank", GeneratorConfig().max_rank),
        seed=entry.get("seed"),
        forward_probability=entry.get("forward_probability", 0.5),
        weight_probability=entry.get("weight_probability", 0.4),
        use_binning=entry.get("use_binning", True),
        n_bins=entry.get("n_bins", 7),
        op_pool=[SPEC_BY_KIND[kind] for kind in entry.get("op_pool", [])],
        dtype_weights={DType(name): float(weight) for name, weight
                       in entry.get("dtype_weights", {}).items()},
        max_attempts_per_node=entry.get("max_attempts_per_node", 25),
    )
    return FuzzerConfig(
        generator=generator,
        value_search_method=payload.get("value_search_method",
                                        "gradient_proxy"),
        value_search_budget=payload.get("value_search_budget"),
        value_search_max_steps=payload.get("value_search_max_steps"),
        max_iterations=payload.get("max_iterations"),
        time_budget=payload.get("time_budget"),
        bugs=BugConfig(enabled=payload.get("bugs", [])),
        seed=payload.get("seed", 0),
        probe_operator_support=payload.get("probe_operator_support", True),
        strategy=payload.get("strategy", FuzzerConfig().strategy),
        oracle=payload.get("oracle", FuzzerConfig().oracle),
        pipeline=payload.get("pipeline"),
        enable_cache=payload.get("enable_cache", True),
        verify_passes=payload.get("verify_passes", False),
    )


def task_to_dict(task) -> Dict[str, Any]:
    """JSON encoding of a :class:`~repro.core.parallel.CellTask`."""
    cell = task.cell
    return {
        "cell": {
            "shard": cell.shard,
            "compilers": list(cell.compilers),
            "opt_level": cell.opt_level,
            "generator": cell.generator,
            "oracle": cell.oracle,
            "pipeline": cell.pipeline,
        },
        "config": config_to_dict(task.config),
        "trace_coverage": task.trace_coverage,
    }


def task_from_dict(payload: Dict[str, Any]):
    """Rebuild a :class:`~repro.core.parallel.CellTask` from
    :func:`task_to_dict` output."""
    from repro.core.parallel import CellTask, MatrixCell

    entry = payload.get("cell", {})
    cell = MatrixCell(
        shard=entry.get("shard", 0),
        compilers=tuple(entry.get("compilers", [])),
        opt_level=entry.get("opt_level"),
        generator=entry.get("generator"),
        oracle=entry.get("oracle"),
        pipeline=entry.get("pipeline"),
    )
    return CellTask(cell=cell,
                    config=config_from_dict(payload.get("config", {})),
                    trace_coverage=bool(payload.get("trace_coverage", False)))


__all__ = [
    "PROTOCOL_VERSION",
    "CheckpointAck",
    "ChunkDone",
    "Claim",
    "CoverageDelta",
    "Heartbeat",
    "Hello",
    "IterationResult",
    "Lease",
    "Message",
    "ProtocolError",
    "Shutdown",
    "StatusReply",
    "StatusRequest",
    "Welcome",
    "WorkerError",
    "config_from_dict",
    "config_to_dict",
    "decode",
    "encode",
    "task_from_dict",
    "task_to_dict",
]
