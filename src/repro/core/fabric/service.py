"""Network-facing entry points of the campaign fabric.

Three subcommands hang off ``python -m repro.campaign``:

* ``serve`` — run the campaign coordinator as a TCP service::

      python -m repro.campaign serve --port 7777 --iterations 200 \\
          --compilers graphrt,deepc --compilers turbo

  The coordinator binds first and schedules leases as workers join
  (``--min-workers N`` waits for a quorum before starting); a worker dying
  mid-lease has its chunk requeued with that worker excluded
  (``--fault-tolerance requeue`` is the serve default).  Findings are
  bit-identical to a local run of the same campaign: iterations are seeded
  purely from ``(config, iteration)``.

* ``worker`` — join a coordinator as one fleet member::

      python -m repro.campaign worker --connect host:7777

  The worker handshakes (``hello``/``welcome``), imports the campaign's
  compiler factory by dotted path, heartbeats every
  :data:`~repro.core.fabric.transport.HEARTBEAT_INTERVAL` seconds and runs
  leases until told to shut down.

* ``status`` — fetch the coordinator's live JSON snapshot::

      python -m repro.campaign status --connect host:7777

  The snapshot carries per-cell progress, novelty-per-second, cache hit
  rates, findings count, worker roster and lease round-trip latency.
"""

from __future__ import annotations

import argparse
import importlib
import json
import os
import socket
import sys
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.core.fabric.protocol import (
    ChunkDone,
    Claim,
    Heartbeat,
    Hello,
    Lease,
    Message,
    ProtocolError,
    Shutdown,
    StatusReply,
    StatusRequest,
    Welcome,
    WorkerError,
    encode,
)
from repro.core.fabric.transport import (
    HEARTBEAT_INTERVAL,
    SocketTransport,
    read_frame,
    send_frame,
)
from repro.errors import ReproError

#: Exit code of a worker that lost its coordinator connection unexpectedly.
EXIT_CONNECTION_LOST = 3


def import_factory(dotted: str) -> Callable:
    """Import a compiler factory by its dotted path (the ``welcome`` frame)."""
    module_name, _, attr = dotted.rpartition(".")
    if not module_name:
        raise ProtocolError(f"not a dotted factory path: {dotted!r}")
    try:
        module = importlib.import_module(module_name)
        return getattr(module, attr)
    except (ImportError, AttributeError) as exc:
        raise ProtocolError(
            f"cannot import compiler factory {dotted!r}: {exc} — workers "
            "must have the same repro engine importable as the "
            "coordinator.") from exc


# --------------------------------------------------------------------------- #
# Worker
# --------------------------------------------------------------------------- #
class FabricWorker:
    """One socket fleet member: connect, handshake, run leases, heartbeat.

    ``die_after_iterations`` is a test knob: the worker hard-exits
    (``os._exit``) after streaming that many iteration results — mid-lease,
    without a ``chunk_done`` — which is exactly the failure the
    coordinator's requeue path must absorb (pinned by
    ``tests/core/test_transport_equivalence.py``).
    """

    def __init__(self, host: str, port: int, name: Optional[str] = None,
                 factory: Optional[Callable] = None,
                 die_after_iterations: Optional[int] = None,
                 log: Callable[[str], None] = print,
                 clock: Callable[[], float] = time.time) -> None:
        self.host = host
        self.port = port
        self.name = name or f"{socket.gethostname()}-{os.getpid()}"
        self.factory = factory
        self.die_after_iterations = die_after_iterations
        self.log = log
        #: Injectable wall-clock seam: heartbeat timestamps go on the wire,
        #: so tests can pin them by passing a fake clock.
        self.clock = clock
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._sent_iterations = 0
        self._wfile = None

    # ------------------------------------------------------------------ #
    def _send_payload(self, payload: Dict[str, Any]) -> None:
        with self._lock:
            self._wfile.write(json.dumps(payload) + "\n")
            self._wfile.flush()
        if payload.get("kind") == "iter":
            self._sent_iterations += 1
            if self.die_after_iterations is not None and \
                    self._sent_iterations >= self.die_after_iterations:
                os._exit(43)  # test knob: die mid-lease, no chunk_done

    def _send(self, message: Message) -> None:
        self._send_payload(encode(message))

    def _heartbeat(self) -> None:
        while not self._stop.wait(HEARTBEAT_INTERVAL):
            try:
                self._send(Heartbeat(worker=self.name, sent_at=self.clock()))
            except Exception:
                return  # connection gone; the main loop notices on read

    # ------------------------------------------------------------------ #
    def run(self) -> int:
        from repro.core.parallel import _execute_lease

        sock = socket.create_connection((self.host, self.port))
        rfile = sock.makefile("r", encoding="utf-8")
        self._wfile = sock.makefile("w", encoding="utf-8")
        beat = threading.Thread(target=self._heartbeat, daemon=True,
                                name=f"heartbeat-{self.name}")
        try:
            self._send(Hello(worker=self.name, pid=os.getpid()))
            welcome = read_frame(rfile)
            if not isinstance(welcome, Welcome):
                raise ProtocolError(
                    f"expected a welcome frame, got "
                    f"{getattr(welcome, 'kind', None)!r} — is "
                    f"{self.host}:{self.port} a fabric coordinator?")
            factory = self.factory or import_factory(welcome.factory)
            self.log(f"[{self.name}] joined {self.host}:{self.port} "
                     f"(factory {welcome.factory})")
            beat.start()
            runtimes: Dict[int, Any] = {}
            while True:
                message = read_frame(rfile)
                if message is None:
                    self.log(f"[{self.name}] coordinator connection closed")
                    return EXIT_CONNECTION_LOST
                if message.kind == "shutdown":
                    self.log(f"[{self.name}] shutdown: "
                             f"{message.reason or 'done'}")
                    return 0
                if message.kind == "checkpoint_ack":
                    if message.persisted:
                        self.log(f"[{self.name}] coordinator persisted "
                                 f"{message.folded} iterations")
                    continue
                if not isinstance(message, Lease):
                    continue
                self._send(Claim(worker=self.name,
                                 chunk_id=message.chunk_id,
                                 cell_index=message.cell_index))
                try:
                    _execute_lease(self.name, message, factory,
                                   self._send_payload, runtimes, tasks=None)
                    self._send(ChunkDone(worker=self.name,
                                         chunk_id=message.chunk_id,
                                         cell_index=message.cell_index))
                except BaseException as exc:
                    self._send(WorkerError(
                        worker=self.name, chunk_id=message.chunk_id,
                        cell_index=message.cell_index,
                        message=f"{type(exc).__name__}: {exc}"))
                    raise
        finally:
            self._stop.set()
            try:
                sock.close()
            except OSError:
                pass


def run_fabric_worker(host: str, port: int, name: Optional[str] = None,
                      factory: Optional[Callable] = None,
                      die_after_iterations: Optional[int] = None,
                      log: Callable[[str], None] = print) -> int:
    """Run one fleet worker until the coordinator shuts it down."""
    return FabricWorker(host, port, name=name, factory=factory,
                        die_after_iterations=die_after_iterations,
                        log=log).run()


# --------------------------------------------------------------------------- #
# Status client
# --------------------------------------------------------------------------- #
def query_status(host: str, port: int, timeout: float = 10.0
                 ) -> Dict[str, Any]:
    """Fetch the coordinator's live status snapshot over its service port."""
    with socket.create_connection((host, port), timeout=timeout) as sock:
        rfile = sock.makefile("r", encoding="utf-8")
        wfile = sock.makefile("w", encoding="utf-8")
        send_frame(wfile, StatusRequest())
        reply = read_frame(rfile)
    if not isinstance(reply, StatusReply):
        raise ProtocolError(
            f"expected a status_reply frame, got "
            f"{getattr(reply, 'kind', None)!r} — is {host}:{port} a fabric "
            "coordinator?")
    return reply.snapshot


def _serve_final_status(host: str, port: int, snapshot: Dict[str, Any],
                        seconds: float) -> None:
    """Answer status requests for ``seconds`` after the campaign finished.

    The campaign's transport shuts down with the fleet; ``--linger`` keeps
    the *final* snapshot queryable on the same port so dashboards (and the
    distributed smoke test) can read the completed state deterministically.
    """
    deadline = time.monotonic() + seconds
    with socket.create_server((host, port)) as server:
        server.settimeout(0.2)
        while time.monotonic() < deadline:
            try:
                conn, _addr = server.accept()
            except socket.timeout:
                continue
            with conn:
                rfile = conn.makefile("r", encoding="utf-8")
                wfile = conn.makefile("w", encoding="utf-8")
                try:
                    request = read_frame(rfile)
                    if isinstance(request, StatusRequest):
                        send_frame(wfile, StatusReply(snapshot=snapshot))
                except (ProtocolError, OSError):
                    continue


# --------------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------------- #
def _split_endpoint(value: str) -> tuple:
    host, _, port = value.rpartition(":")
    if not host or not port.isdigit():
        raise argparse.ArgumentTypeError(
            f"expected HOST:PORT, got {value!r}")
    return host, int(port)


def _serve_parser() -> argparse.ArgumentParser:
    from repro.campaign import build_parser

    parser = build_parser()
    parser.prog = "python -m repro.campaign serve"
    parser.description = ("Run the campaign coordinator as a TCP service "
                          "leasing matrix cells to remote worker fleets.")
    parser.add_argument("--host", default="127.0.0.1",
                        help="interface to bind (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=0,
                        help="TCP port to bind (default 0 = ephemeral; the "
                             "bound port is printed at startup)")
    parser.add_argument("--min-workers", type=int, default=1, metavar="N",
                        help="wait for N connected workers before "
                             "scheduling leases (default 1)")
    parser.add_argument("--worker-wait", type=float, default=120.0,
                        metavar="SECONDS",
                        help="give up if --min-workers have not joined "
                             "after this long (default 120)")
    # --fault-tolerance / --stagnation-budget come from the base campaign
    # parser; a remote fleet defaults to surviving worker death.
    parser.set_defaults(fault_tolerance="requeue")
    parser.add_argument("--status-out", default=None, metavar="PATH",
                        help="write the final status snapshot JSON here")
    parser.add_argument("--linger", type=float, default=0.0,
                        metavar="SECONDS",
                        help="keep answering status requests for this long "
                             "after the campaign finishes")
    return parser


def _cmd_serve(argv: Sequence[str]) -> int:
    from repro.campaign import (
        make_config,
        parse_compiler_sets,
        parse_generators,
        parse_opt_levels,
        parse_oracles,
        parse_pipelines,
        print_summary,
    )
    from repro.core.parallel import ParallelCampaign, default_compiler_factory

    parser = _serve_parser()
    args = parser.parse_args(argv)
    config = make_config(args)
    transport = SocketTransport(args.host, args.port)
    transport.start([], default_compiler_factory)  # bind early; run() rebinds
    print(f"fabric coordinator listening on {transport.host}:"
          f"{transport.port}", flush=True)

    def on_event(kind, cell_key, payload):
        if kind == "progress" and not args.quiet:
            print(f"  [{cell_key}] iteration {payload['iteration']} "
                  f"{payload['status']} in {payload['compiler']}")
        elif kind == "worker_joined":
            print(f"  worker joined: {payload['worker']}", flush=True)
        elif kind == "worker_lost":
            print(f"  worker lost: {payload['worker']} — requeued "
                  f"iterations {payload['requeued']} of [{cell_key}]",
                  flush=True)
        elif kind == "cell_stagnated":
            print(f"  [{cell_key}] early-terminated after "
                  f"{payload['iterations']} iterations "
                  f"({payload['budget']}s without novelty)", flush=True)

    campaign = ParallelCampaign(
        config=config,
        compiler_factory=default_compiler_factory,
        compiler_sets=parse_compiler_sets(args),
        opt_levels=parse_opt_levels(args),
        generators=parse_generators(args),
        oracles=parse_oracles(args),
        pipelines=parse_pipelines(args),
        pool_mode=args.pool_mode,
        n_shards=args.shards if args.shards is not None
        else max(args.workers, 1),
        checkpoint_path=args.checkpoint,
        checkpoint_every=args.checkpoint_every,
        schedule=args.schedule,
        adaptive=args.adaptive,
        on_event=on_event,
        transport=transport,
        fault_tolerance=args.fault_tolerance,
        stagnation_budget=args.stagnation_budget,
    )
    if args.min_workers > 0:
        deadline = time.monotonic() + args.worker_wait
        while transport.live_worker_count() < args.min_workers:
            if time.monotonic() >= deadline:
                transport.stop()
                raise ReproError(
                    f"only {transport.live_worker_count()} of "
                    f"--min-workers {args.min_workers} workers joined "
                    f"within {args.worker_wait}s")
            time.sleep(0.1)
    result = campaign.run()
    print_summary(result)
    if args.status_out:
        with open(args.status_out, "w", encoding="utf-8") as handle:
            json.dump(campaign.last_status, handle, indent=2)
    if args.linger > 0:
        _serve_final_status(args.host, transport.port,
                            campaign.last_status, args.linger)
    return 0


def _cmd_worker(argv: Sequence[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign worker",
        description="Join a fabric coordinator as one fleet worker.")
    parser.add_argument("--connect", required=True, type=_split_endpoint,
                        metavar="HOST:PORT",
                        help="coordinator service endpoint")
    parser.add_argument("--name", default=None,
                        help="worker identity (default hostname-pid); must "
                             "be unique per coordinator")
    parser.add_argument("--die-after-iterations", type=int, default=None,
                        help=argparse.SUPPRESS)  # fault-injection test knob
    args = parser.parse_args(argv)
    host, port = args.connect
    return run_fabric_worker(host, port, name=args.name,
                             die_after_iterations=args.die_after_iterations)


def _cmd_status(argv: Sequence[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign status",
        description="Print a fabric coordinator's live status snapshot.")
    parser.add_argument("--connect", required=True, type=_split_endpoint,
                        metavar="HOST:PORT",
                        help="coordinator service endpoint")
    args = parser.parse_args(argv)
    host, port = args.connect
    print(json.dumps(query_status(host, port), indent=2, sort_keys=True))
    return 0


_COMMANDS = {"serve": _cmd_serve, "worker": _cmd_worker,
             "status": _cmd_status}


def fabric_main(argv: Sequence[str]) -> int:
    """Dispatch a ``serve``/``worker``/``status`` subcommand."""
    command = _COMMANDS.get(argv[0] if argv else "")
    if command is None:
        print(f"unknown fabric subcommand {argv[0] if argv else ''!r}; "
              f"expected one of {sorted(_COMMANDS)}", file=sys.stderr)
        return 2
    return command(list(argv[1:]))


__all__ = [
    "EXIT_CONNECTION_LOST",
    "FabricWorker",
    "fabric_main",
    "import_factory",
    "query_status",
    "run_fabric_worker",
]
