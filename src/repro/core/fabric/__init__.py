"""Distributed campaign fabric: one coordinator↔worker protocol, two wires.

The matrix campaign engine (:mod:`repro.core.parallel`) has always been a
coordinator talking to a fleet of workers; until this package the only wire
between them was a pair of ``multiprocessing`` queues, which pinned the
fleet to one host.  The fabric splits that conversation into three layers:

* :mod:`repro.core.fabric.protocol` — the versioned, serializable message
  schema (``lease``/``claim``/``iter``/``coverage_delta``/``heartbeat``/
  ``checkpoint_ack``/``shutdown`` …) plus JSON round-trips for the campaign
  objects a remote worker needs rebuilt (``FuzzerConfig``, ``CellTask``).
* :mod:`repro.core.fabric.transport` — the :class:`CoordinatorTransport`
  contract and its two implementations: :class:`LocalTransport` (the
  historical multiprocessing pool, now one client of the protocol) and
  :class:`SocketTransport` (an asyncio TCP service speaking line-delimited
  JSON frames, with heartbeat liveness and a live status endpoint).
* :mod:`repro.core.fabric.service` — the network-facing entry points:
  ``python -m repro.campaign serve`` (coordinator service),
  ``python -m repro.campaign worker`` (remote fleet member) and
  ``python -m repro.campaign status`` (live JSON snapshot).

Findings are transport-independent by construction: iterations are seeded
purely from ``(config, iteration)``, so the same campaign run over local
queues or over sockets — or started on one wire and resumed on the other —
produces bit-identical findings and checkpoints (pinned by
``tests/core/test_transport_equivalence.py``).
"""

from repro.core.fabric.protocol import (
    PROTOCOL_VERSION,
    Claim,
    CheckpointAck,
    ChunkDone,
    CoverageDelta,
    Heartbeat,
    Hello,
    IterationResult,
    Lease,
    Message,
    ProtocolError,
    Shutdown,
    StatusReply,
    StatusRequest,
    Welcome,
    WorkerError,
    decode,
    encode,
)
from repro.core.fabric.transport import (
    CoordinatorTransport,
    LocalTransport,
    SocketTransport,
)

__all__ = [
    "PROTOCOL_VERSION",
    "Claim",
    "CheckpointAck",
    "ChunkDone",
    "CoordinatorTransport",
    "CoverageDelta",
    "Heartbeat",
    "Hello",
    "IterationResult",
    "Lease",
    "LocalTransport",
    "Message",
    "ProtocolError",
    "Shutdown",
    "SocketTransport",
    "StatusReply",
    "StatusRequest",
    "Welcome",
    "WorkerError",
    "decode",
    "encode",
]
