"""Coordinator-side transports: one protocol, two wires.

:class:`CoordinatorTransport` is the contract the campaign coordinator
(:class:`repro.core.parallel.ParallelCampaign`) drives its worker fleet
through; every frame crossing it is a :mod:`repro.core.fabric.protocol`
message.  Two implementations:

* :class:`LocalTransport` — the historical ``multiprocessing`` pool.  A
  shared task queue carries encoded leases, a shared result queue carries
  encoded worker messages, liveness is ``Process.is_alive``.  Because the
  task queue is shared, a worker dying between popping a lease and
  flushing its claim *loses* the lease without a trace — ``lossy_claims``
  tells the coordinator to run its orphan-chunk accounting.
* :class:`SocketTransport` — an asyncio TCP service speaking
  line-delimited JSON frames.  Leases are *assigned* to a specific idle
  worker connection (never popped from a shared queue), so claims cannot
  be lost; liveness is heartbeat freshness plus connection state; workers
  may join, die and rejoin mid-campaign (``elastic``); and the same port
  answers :class:`~repro.core.fabric.protocol.StatusRequest` frames with
  the coordinator's latest status snapshot — the live dashboard feed.

The coordinator's fold/checkpoint/schedule logic is identical over both —
which is the point: campaign findings and checkpoints depend on the
protocol, never on the wire.
"""

from __future__ import annotations

import abc
import json
import multiprocessing
import queue as queue_module
import threading
import time
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.fabric.protocol import (
    Hello,
    Lease,
    Message,
    ProtocolError,
    Shutdown,
    StatusReply,
    StatusRequest,
    Welcome,
    decode,
    encode,
    task_to_dict,
)

#: Seconds without any frame (heartbeats included) after which a socket
#: worker is presumed dead and its in-flight lease becomes requeueable.
DEFAULT_HEARTBEAT_TIMEOUT = 5.0

#: Seconds between worker heartbeat frames (kept well under the timeout so
#: a single dropped frame never kills a healthy worker).
HEARTBEAT_INTERVAL = 1.0


def factory_path(factory: Callable) -> str:
    """Dotted import path of a compiler factory (what travels the wire)."""
    return f"{factory.__module__}.{factory.__qualname__}"


def send_frame(sock_file, message: Message) -> None:
    """Write one line-delimited JSON frame to a socket file object."""
    sock_file.write(json.dumps(encode(message)) + "\n")
    sock_file.flush()


def read_frame(sock_file) -> Optional[Message]:
    """Read one frame from a socket file object; None on EOF."""
    line = sock_file.readline()
    if not line:
        return None
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"undecodable fabric frame: {exc}") from None
    return decode(payload)


class CoordinatorTransport(abc.ABC):
    """What the campaign coordinator needs from a worker fleet."""

    #: Whether a dying worker can remove an offered lease without leaving a
    #: claim on record (true of a shared multiprocessing queue, impossible
    #: with per-connection assignment).
    lossy_claims = False
    #: Whether workers can join/rejoin after the campaign started.  A
    #: non-elastic fleet that goes fully dead can never finish; an elastic
    #: one keeps the remaining leases offered for future joiners.
    elastic = False

    @abc.abstractmethod
    def start(self, tasks: List[Any], factory: Callable) -> None:
        """Bring the fleet up for a campaign over ``tasks``."""

    @abc.abstractmethod
    def offer(self, lease: Lease) -> None:
        """Make a lease available to the fleet."""

    @abc.abstractmethod
    def recv(self, timeout: float) -> Optional[Tuple[str, Message]]:
        """Next inbound ``(worker_id, message)``, or None after timeout."""

    @abc.abstractmethod
    def worker_alive(self, worker_id: str) -> bool:
        """Whether a worker is currently believed alive."""

    @abc.abstractmethod
    def worker_ids(self) -> List[str]:
        """Every worker this transport has ever seen, dead or alive."""

    def live_worker_count(self) -> int:
        return sum(1 for worker in self.worker_ids()
                   if self.worker_alive(worker))

    def send(self, worker_id: str, message: Message) -> None:
        """Deliver a coordinator→worker message (best effort; transports
        without per-worker addressing drop it)."""

    def publish_status(self, snapshot: Dict[str, Any]) -> None:
        """Expose the latest status snapshot to status clients (optional)."""

    @abc.abstractmethod
    def stop(self) -> None:
        """Shut the fleet down and release transport resources."""


# --------------------------------------------------------------------------- #
# Local multiprocessing pool
# --------------------------------------------------------------------------- #
class LocalTransport(CoordinatorTransport):
    """The historical in-host worker pool, now speaking the fabric protocol.

    ``worker_target`` is the process entry point (the engine passes
    :func:`repro.core.parallel._matrix_worker`); it receives the classic
    ``(worker_index, tasks, factory, task_queue, result_queue)`` signature,
    with encoded protocol frames flowing through both queues.
    """

    lossy_claims = True
    elastic = False

    def __init__(self, n_workers: int, mp_context: Optional[str] = None,
                 worker_target: Optional[Callable] = None) -> None:
        self.n_workers = n_workers
        self.mp_context = mp_context
        self.worker_target = worker_target
        self._processes: Dict[str, Any] = {}
        self.task_queue = None
        self.result_queue = None

    def start(self, tasks: List[Any], factory: Callable) -> None:
        if self.worker_target is None:
            raise ValueError("LocalTransport needs a worker_target")
        context = (multiprocessing.get_context(self.mp_context)
                   if self.mp_context else multiprocessing.get_context())
        self.task_queue = context.Queue()
        self.result_queue = context.Queue()
        self._processes = {
            f"local-{index}": context.Process(
                target=self.worker_target,
                args=(index, tasks, factory, self.task_queue,
                      self.result_queue),
                daemon=True)
            for index in range(self.n_workers)
        }
        for process in self._processes.values():
            process.start()

    def offer(self, lease: Lease) -> None:
        self.task_queue.put(encode(lease))

    def recv(self, timeout: float) -> Optional[Tuple[str, Message]]:
        try:
            payload = self.result_queue.get(timeout=timeout)
        except queue_module.Empty:
            return None
        message = decode(payload)
        return getattr(message, "worker", ""), message

    def worker_alive(self, worker_id: str) -> bool:
        process = self._processes.get(worker_id)
        return process is not None and process.is_alive()

    def worker_ids(self) -> List[str]:
        return list(self._processes)

    def exit_code(self, worker_id: str) -> Optional[int]:
        process = self._processes.get(worker_id)
        return None if process is None else process.exitcode

    def stop(self) -> None:
        # One shutdown frame per worker, unconditionally: frames are not
        # addressed, so gating on is_alive() races (a live worker can eat
        # the frame "meant" for another, then exit before its own liveness
        # check).  Surplus frames for dead workers are harmless garbage.
        for _ in self._processes:
            self.task_queue.put(encode(Shutdown()))
        for process in self._processes.values():
            process.join(timeout=30)
            if process.is_alive():
                process.terminate()


# --------------------------------------------------------------------------- #
# Asyncio TCP service
# --------------------------------------------------------------------------- #
class _Peer:
    """Coordinator-side view of one connected socket worker."""

    def __init__(self, name: str, writer) -> None:
        self.name = name
        self.writer = writer
        self.last_seen = time.monotonic()
        self.connected = True
        #: The lease assigned to this worker (encoded Lease) until it
        #: finishes a chunk; socket workers run one lease at a time.
        self.assigned: Optional[Lease] = None


class SocketTransport(CoordinatorTransport):
    """Asyncio TCP coordinator endpoint (line-delimited JSON frames).

    Runs its event loop in a daemon thread so the synchronous coordinator
    drain loop stays unchanged; :meth:`offer`/:meth:`send`/:meth:`stop`
    hop into the loop via ``call_soon_threadsafe`` and inbound frames
    surface through a thread-safe inbox consumed by :meth:`recv`.

    Leases are assigned to one *specific* idle worker each (respecting the
    lease's ``exclude`` list); a connection dying with an assigned but
    unclaimed lease silently returns it to the pending pool with the dead
    worker excluded, so — unlike the shared local queue — no lease is ever
    lost without a claim on record.
    """

    lossy_claims = False
    elastic = True

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 heartbeat_timeout: float = DEFAULT_HEARTBEAT_TIMEOUT) -> None:
        self.host = host
        self.port = port
        self.heartbeat_timeout = heartbeat_timeout
        self._tasks: List[Any] = []
        self._factory_path = ""
        self._inbox: "queue_module.Queue[Tuple[str, Message]]" = \
            queue_module.Queue()
        self._peers: Dict[str, _Peer] = {}
        self._peers_lock = threading.Lock()
        self._pending: "deque[Lease]" = deque()
        self._status: Dict[str, Any] = {}
        self._loop = None
        self._server = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._stopping = False

    # ------------------------------------------------------------------ #
    def start(self, tasks: List[Any], factory: Callable) -> None:
        import asyncio

        self._tasks = list(tasks)
        self._factory_path = factory_path(factory)
        if self._thread is not None and self._thread.is_alive():
            return  # pre-started (serve binds early so workers can join)

        def run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            try:
                self._server = loop.run_until_complete(
                    asyncio.start_server(self._handle_connection,
                                         self.host, self.port))
                self.port = self._server.sockets[0].getsockname()[1]
            except BaseException as exc:  # bind failure surfaces in start()
                self._startup_error = exc
                self._started.set()
                return
            self._started.set()
            try:
                loop.run_forever()
            finally:
                for task in asyncio.all_tasks(loop):
                    task.cancel()
                loop.run_until_complete(loop.shutdown_asyncgens())
                loop.close()

        self._thread = threading.Thread(target=run, daemon=True,
                                        name="fabric-coordinator")
        self._thread.start()
        self._started.wait(timeout=10)
        if self._startup_error is not None:
            raise ProtocolError(
                f"fabric coordinator failed to bind {self.host}:{self.port}: "
                f"{self._startup_error}")

    # ------------------------------------------------------------------ #
    async def _handle_connection(self, reader, writer) -> None:
        import asyncio

        try:
            line = await reader.readline()
            if not line:
                writer.close()
                return
            try:
                first = decode(json.loads(line))
            except (json.JSONDecodeError, ProtocolError):
                writer.close()
                return
            if isinstance(first, StatusRequest):
                writer.write((json.dumps(encode(
                    StatusReply(snapshot=self._status))) + "\n").encode())
                await writer.drain()
                writer.close()
                return
            if not isinstance(first, Hello):
                writer.close()
                return
            peer = _Peer(first.worker or f"worker-{id(writer):x}", writer)
            with self._peers_lock:
                existing = self._peers.get(peer.name)
                if existing is not None and existing.connected and \
                        self.worker_alive(peer.name):
                    writer.close()  # live name collision: refuse
                    return
                self._peers[peer.name] = peer
            self._write(peer, Welcome(factory=self._factory_path))
            self._inbox.put((peer.name, first))
            self._assign_pending()
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    message = decode(json.loads(line))
                except (json.JSONDecodeError, ProtocolError):
                    continue  # one bad frame must not kill the worker
                peer.last_seen = time.monotonic()
                if message.kind == "heartbeat":
                    continue  # liveness only; not campaign state
                if message.kind in ("chunk_done", "error"):
                    peer.assigned = None
                self._inbox.put((peer.name, message))
                if message.kind == "chunk_done":
                    self._assign_pending()
        except (asyncio.CancelledError, ConnectionError, OSError):
            pass
        finally:
            peer = None
            with self._peers_lock:
                for candidate in self._peers.values():
                    if candidate.writer is writer:
                        peer = candidate
                        break
            if peer is not None:
                peer.connected = False
                if peer.assigned is not None:
                    # Assigned but the worker never claimed (or died before
                    # finishing the handshake of the claim): the lease is
                    # still the coordinator's to give — return it to the
                    # pool with the dead worker excluded.  Claimed leases
                    # are the *coordinator's* problem (requeue-on-death).
                    lease = peer.assigned
                    peer.assigned = None
                    if not self._lease_claimed(lease):
                        self._pending.append(Lease(
                            **{**_lease_fields(lease),
                               "exclude": tuple(sorted(
                                   set(lease.exclude) | {peer.name}))}))
                        self._assign_pending()
            try:
                writer.close()
            except Exception:
                pass

    #: Chunk ids the coordinator has seen claims for; used to decide
    #: whether a dead peer's assigned lease is safe to silently re-offer.
    def _lease_claimed(self, lease: Lease) -> bool:
        return lease.chunk_id in getattr(self, "_claimed_chunks", set())

    def note_claimed(self, chunk_id: int) -> None:
        """Coordinator callback: a claim for this chunk was folded."""
        if not hasattr(self, "_claimed_chunks"):
            self._claimed_chunks = set()
        self._claimed_chunks.add(chunk_id)

    # ------------------------------------------------------------------ #
    def _write(self, peer: _Peer, message: Message) -> None:
        try:
            peer.writer.write((json.dumps(encode(message)) + "\n").encode())
        except Exception:
            peer.connected = False

    def _assign_pending(self) -> None:
        """Hand pending leases to idle, alive, non-excluded workers."""
        with self._peers_lock:
            for _ in range(len(self._pending)):
                lease = self._pending.popleft()
                target = None
                for peer in self._peers.values():
                    if not peer.connected or peer.assigned is not None:
                        continue
                    if peer.name in lease.exclude:
                        continue
                    if not self._fresh(peer):
                        continue
                    target = peer
                    break
                if target is None:
                    self._pending.append(lease)
                    continue
                target.assigned = lease
                self._write(target, lease)

    def _fresh(self, peer: _Peer) -> bool:
        return (time.monotonic() - peer.last_seen) < self.heartbeat_timeout

    # ------------------------------------------------------------------ #
    def offer(self, lease: Lease) -> None:
        if self._loop is None:
            raise ProtocolError("transport not started")
        # Remote workers rebuild the cell task from the wire.
        if lease.task is None and 0 <= lease.cell_index < len(self._tasks):
            lease = Lease(**{**_lease_fields(lease),
                             "task": task_to_dict(
                                 self._tasks[lease.cell_index])})

        def put() -> None:
            self._pending.append(lease)
            self._assign_pending()

        self._loop.call_soon_threadsafe(put)

    def recv(self, timeout: float) -> Optional[Tuple[str, Message]]:
        try:
            return self._inbox.get(timeout=timeout)
        except queue_module.Empty:
            return None

    def worker_alive(self, worker_id: str) -> bool:
        with self._peers_lock:
            peer = self._peers.get(worker_id)
            return peer is not None and peer.connected and self._fresh(peer)

    def worker_ids(self) -> List[str]:
        with self._peers_lock:
            return list(self._peers)

    def worker_view(self) -> Dict[str, Dict[str, Any]]:
        """Status-endpoint roster: liveness + heartbeat age per worker."""
        now = time.monotonic()
        with self._peers_lock:
            return {name: {"alive": peer.connected and self._fresh(peer),
                           "heartbeat_age": round(now - peer.last_seen, 3),
                           "busy": peer.assigned is not None}
                    for name, peer in self._peers.items()}

    def send(self, worker_id: str, message: Message) -> None:
        if self._loop is None:
            return

        def write() -> None:
            with self._peers_lock:
                peer = self._peers.get(worker_id)
            if peer is not None and peer.connected:
                self._write(peer, message)

        self._loop.call_soon_threadsafe(write)

    def publish_status(self, snapshot: Dict[str, Any]) -> None:
        self._status = snapshot

    # ------------------------------------------------------------------ #
    def stop(self) -> None:
        if self._loop is None or self._stopping:
            return
        self._stopping = True

        def shutdown() -> None:
            with self._peers_lock:
                for peer in self._peers.values():
                    if peer.connected:
                        self._write(peer, Shutdown(reason="campaign over"))
            if self._server is not None:
                self._server.close()
            self._loop.stop()

        try:
            self._loop.call_soon_threadsafe(shutdown)
        except RuntimeError:
            return
        if self._thread is not None:
            self._thread.join(timeout=10)


def _lease_fields(lease: Lease) -> Dict[str, Any]:
    return {"chunk_id": lease.chunk_id, "cell_index": lease.cell_index,
            "start": lease.start, "stop": lease.stop,
            "time_budget": lease.time_budget, "exclude": lease.exclude,
            "task": lease.task}


__all__ = [
    "DEFAULT_HEARTBEAT_TIMEOUT",
    "HEARTBEAT_INTERVAL",
    "CoordinatorTransport",
    "LocalTransport",
    "SocketTransport",
    "factory_path",
    "read_frame",
    "send_frame",
]
