"""Differential testing of compiled models against the reference oracle.

Follows §4 of the paper:

* the reference interpreter (the "PyTorch" of the repo) runs the *original*
  generated model and its results are the oracle;
* each compiler under test imports the *exported* model, compiles it and runs
  it on the same inputs;
* a crash anywhere in conversion/compilation/execution is a **crash bug**;
* an output mismatch beyond a generous floating-point tolerance is a
  candidate **semantic bug**.  For fault localization the model is then
  re-compiled at O0: if the unoptimized build agrees with the oracle, the
  mismatch is attributed to the optimizer (transformation phase).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.compilers.base import CompileOptions, Compiler
from repro.core.cache import compile_with_cache
from repro.compilers.bugs import BugConfig
from repro.errors import (CompilerError, ConversionError, ExecutionError,
                          IRVerificationError, ReproError)
from repro.graph.model import Model
from repro.runtime.exporter import ExportReport, export_model
from repro.runtime.interpreter import Interpreter, random_inputs

#: Output comparison tolerances.  The paper deliberately uses a high error
#: tolerance to avoid false alarms from valid floating-point reassociation.
RELATIVE_TOLERANCE = 1e-2
ABSOLUTE_TOLERANCE = 1e-3


def first_line(message: str, limit: int = 160) -> str:
    """First line of a (possibly empty) message, truncated to ``limit``.

    Crash messages are deduplicated by their first line; some seeded bugs
    raise with an empty message, where ``message.splitlines()[0]`` would
    raise ``IndexError``.
    """
    lines = message.splitlines()
    return lines[0][:limit] if lines else ""


def compare_outputs(reference: Mapping[str, np.ndarray],
                    candidate: Mapping[str, np.ndarray],
                    rtol: float = RELATIVE_TOLERANCE,
                    atol: float = ABSOLUTE_TOLERANCE) -> Optional[str]:
    """Return a mismatch description, or None when the outputs agree."""
    for name, expected in reference.items():
        if name not in candidate:
            return f"output {name!r} missing from compiled results"
        actual = candidate[name]
        expected = np.asarray(expected)
        actual = np.asarray(actual)
        if tuple(expected.shape) != tuple(actual.shape):
            return (f"output {name!r} shape mismatch: "
                    f"{expected.shape} vs {actual.shape}")
        if expected.dtype.kind == "f" or actual.dtype.kind == "f":
            close = np.allclose(expected.astype(np.float64),
                                actual.astype(np.float64),
                                rtol=rtol, atol=atol, equal_nan=True)
        else:
            close = np.array_equal(expected, actual)
        if not close:
            diff = _max_difference(expected, actual)
            return f"output {name!r} value mismatch (max difference {diff:g})"
    return None


def _max_difference(expected: np.ndarray, actual: np.ndarray) -> float:
    try:
        delta = np.abs(expected.astype(np.float64) - actual.astype(np.float64))
        return float(np.nanmax(delta))
    except (TypeError, ValueError):
        return float("nan")


@dataclass
class CompilerVerdict:
    """Differential-testing outcome for one compiler on one test case."""

    compiler: str
    status: str                      # "ok" | "crash" | "semantic" | "perf" | "gradient" | "verifier"
    phase: str = ""                  # "conversion" | "transformation" | "execution" | "backward" | ""
    message: str = ""
    #: Ground-truth seeded bugs whose buggy path executed (compile + export).
    triggered_bugs: List[str] = field(default_factory=list)
    #: Pass provenance: the passes that rewrote the IR during compilation
    #: (empty when compilation itself crashed before finishing).
    modified_by: List[str] = field(default_factory=list)
    #: Per-node perf attribution: for ``perf`` findings, the nodes that
    #: carry the regression as ``{"node", "op", "share"}`` dicts (empty when
    #: the backend has no per-node profiling hook).  Provenance only —
    #: never part of the dedup key.
    slow_nodes: List[Dict[str, str]] = field(default_factory=list)

    @property
    def found_bug(self) -> bool:
        # Anything that is not a clean pass is a finding: crash, semantic
        # mismatch, performance regression ("perf") or wrong gradient
        # ("gradient").
        return self.status != "ok"

    def dedup_key(self) -> str:
        """Deduplication key mirroring "unique crashes by error message".

        ``perf``/``gradient``/``verifier`` findings additionally key on the
        seeded bugs whose buggy path executed: their messages embed
        per-case details (ratios, max errors, node labels) that would
        explode the key, while compiler/phase alone would collapse
        *distinct* seeded bugs of one system into a single report.
        """
        if self.status == "crash":
            return f"{self.compiler}|crash|{first_line(self.message)}"
        if self.status in ("perf", "gradient", "verifier"):
            marks = "+".join(sorted(self.triggered_bugs))
            return f"{self.compiler}|{self.status}|{self.phase}|{marks}"
        return f"{self.compiler}|{self.status}|{self.phase}"


@dataclass
class CaseResult:
    """Outcome of differential testing for one generated model.

    ``numerically_valid`` is tri-state: True/False when the validity of the
    tested values is actually known (derived by the oracle or established
    by a successful value search), ``None`` when it was never derived —
    oracles that do not run the reference interpreter (``crash``,
    ``shape``, ...) must not masquerade unknown validity as invalid.
    """

    model: Model
    numerically_valid: Optional[bool]
    verdicts: List[CompilerVerdict] = field(default_factory=list)
    exporter_bugs: List[str] = field(default_factory=list)

    @property
    def found_any_bug(self) -> bool:
        return any(verdict.found_bug for verdict in self.verdicts)


class DifferentialTester:
    """Runs one generated model through every compiler and compares outputs.

    This is the default *oracle* of the campaign engine: it satisfies the
    contract documented in :mod:`repro.core.oracle` (``name``, ``compilers``,
    ``evaluate``/``run_case``) and is registered there as ``"difftest"``.
    """

    #: Registry identifier (see :mod:`repro.core.oracle`).
    name = "difftest"

    def __init__(self, compilers: Sequence[Compiler],
                 bugs: Optional[BugConfig] = None,
                 rtol: float = RELATIVE_TOLERANCE,
                 atol: float = ABSOLUTE_TOLERANCE) -> None:
        self.compilers = list(compilers)
        self.bugs = bugs if bugs is not None else BugConfig.all()
        self.rtol = rtol
        self.atol = atol
        self._interpreter = Interpreter(record_intermediates=False)

    @classmethod
    def for_compiler_names(cls, names: Sequence[str], opt_level: int = 2,
                           bugs: Optional[BugConfig] = None,
                           rtol: float = RELATIVE_TOLERANCE,
                           atol: float = ABSOLUTE_TOLERANCE,
                           verify_passes: bool = False) -> "DifferentialTester":
        """Build a tester for a named compiler subset at one opt level.

        This is how the matrix campaign engine materializes a
        ``(shard, compiler_subset, opt_level)`` cell's systems under test
        inside a worker: compiler *names* travel through process boundaries
        and checkpoint fingerprints, the instances are built on arrival via
        the registry in :mod:`repro.compilers.base`.
        """
        from repro.compilers.base import build_compiler_set

        bugs = bugs if bugs is not None else BugConfig.all()
        return cls(build_compiler_set(names, opt_level=opt_level, bugs=bugs,
                                      verify_passes=verify_passes),
                   bugs=bugs, rtol=rtol, atol=atol)

    # ------------------------------------------------------------------ #
    def run_case(self, model: Model,
                 inputs: Optional[Dict[str, np.ndarray]] = None,
                 numerically_valid: Optional[bool] = None,
                 rng: Optional[np.random.Generator] = None) -> CaseResult:
        """Differentially test one model (weights are baked into the model).

        ``numerically_valid`` lets the caller forward an already-established
        validity verdict (e.g. from a successful value search over the same
        inputs/weights) instead of re-deriving it from the oracle run.
        ``rng`` seeds the random inputs drawn when ``inputs`` is None; the
        default is a fixed stream (for reproducible standalone calls), so
        callers wanting varied inputs must pass their own generator.
        """
        if inputs is None:
            rng = rng if rng is not None else np.random.default_rng(0)
            inputs = random_inputs(model, rng)

        oracle = self._interpreter.run_detailed(model, inputs)
        if numerically_valid is None:
            numerically_valid = oracle.numerically_valid

        export_report = ExportReport()
        exported = export_model(model, bugs=self.bugs, report=export_report)

        result = CaseResult(model=model,
                            numerically_valid=numerically_valid,
                            exporter_bugs=list(export_report.triggered_bugs))
        for compiler in self.compilers:
            verdict = self._test_compiler(compiler, exported, inputs, oracle.outputs,
                                          numerically_valid)
            verdict.triggered_bugs.extend(
                bug for bug in export_report.triggered_bugs
                if bug not in verdict.triggered_bugs)
            result.verdicts.append(verdict)
        return result

    def evaluate(self, model: Model, inputs: Dict[str, np.ndarray],
                 numerically_valid: Optional[bool] = None
                 ) -> List[CompilerVerdict]:
        """Oracle-protocol view of :meth:`run_case`: just the verdicts."""
        return self.run_case(model, inputs=inputs,
                             numerically_valid=numerically_valid).verdicts

    # ------------------------------------------------------------------ #
    def _test_compiler(self, compiler: Compiler, exported: Model,
                       inputs: Dict[str, np.ndarray],
                       oracle_outputs: Dict[str, np.ndarray],
                       numerically_valid: bool) -> CompilerVerdict:
        try:
            compiled = compile_with_cache(compiler, exported)
        except IRVerificationError as exc:
            # The pass-boundary verifier refused an executing-but-ill-formed
            # IR: a dedicated symptom, not a crash (the compiler would have
            # carried on happily without --verify-passes).
            return CompilerVerdict(compiler.name, "verifier", "transformation",
                                   str(exc), _bugs_from_error(exc))
        except ConversionError as exc:
            return CompilerVerdict(compiler.name, "crash", "conversion", str(exc),
                                   _bugs_from_error(exc))
        except CompilerError as exc:
            return CompilerVerdict(compiler.name, "crash", "transformation", str(exc),
                                   _bugs_from_error(exc))

        triggered = list(getattr(compiled, "triggered_bugs", []))
        modified = list(getattr(compiled, "modified_by", []))
        try:
            outputs = compiled.run(inputs)
        except ReproError as exc:
            return CompilerVerdict(compiler.name, "crash", "execution", str(exc),
                                   triggered + _bugs_from_error(exc), modified)

        if not numerically_valid:
            # NaN/Inf reached some operator: results are not comparable
            # (§2.3, challenge #3) — never raise a semantic alarm here.
            return CompilerVerdict(compiler.name, "ok", "", "", triggered,
                                   modified)

        mismatch = compare_outputs(oracle_outputs, outputs, self.rtol, self.atol)
        if mismatch is None:
            return CompilerVerdict(compiler.name, "ok", "", "", triggered,
                                   modified)

        phase = self._localize_fault(compiler, exported, inputs, oracle_outputs)
        if getattr(compiler.options, "pipeline", None) is not None:
            mismatch += self._canonical_pipeline_note(compiler, exported,
                                                      inputs, oracle_outputs)
        return CompilerVerdict(compiler.name, "semantic", phase, mismatch,
                               triggered, modified)

    def _localize_fault(self, compiler: Compiler, exported: Model,
                        inputs: Dict[str, np.ndarray],
                        oracle_outputs: Dict[str, np.ndarray]) -> str:
        """Recompile at O0: if it agrees with the oracle the optimizer is wrong."""
        unoptimized = type(compiler)(CompileOptions(opt_level=0, bugs=self.bugs))
        try:
            compiled = compile_with_cache(unoptimized, exported)
            outputs = compiled.run(inputs)
        except ReproError:
            return "conversion"
        if compare_outputs(oracle_outputs, outputs, self.rtol, self.atol) is None:
            return "transformation"
        return "conversion"

    def _canonical_pipeline_note(self, compiler: Compiler, exported: Model,
                                 inputs: Dict[str, np.ndarray],
                                 oracle_outputs: Dict[str, np.ndarray]) -> str:
        """Equivalence-modulo-passes, second reference point.

        A compiler carrying an explicit (sampled) pipeline spec is judged
        against O0 by :meth:`_localize_fault` *and* against the canonical
        pipeline of its opt level here: if the canonical build agrees with
        the oracle, the mismatch depends on the pass sequence itself.  The
        note lands in the (semantic) message, which is not part of the
        dedup key.
        """
        token = compiler.options.pipeline.name
        canonical = type(compiler)(CompileOptions(
            opt_level=compiler.options.opt_level, bugs=self.bugs))
        try:
            outputs = compile_with_cache(canonical, exported).run(inputs)
        except ReproError as exc:
            return (f" [pipeline {token}: canonical pipeline also fails: "
                    f"{first_line(str(exc))}]")
        if compare_outputs(oracle_outputs, outputs, self.rtol, self.atol) is None:
            return (f" [pipeline {token}: canonical pipeline agrees with the "
                    f"oracle — pass-sequence-dependent miscompilation]")
        return f" [pipeline {token}: canonical pipeline disagrees too]"


def _bugs_from_error(exc: Exception) -> List[str]:
    """Extract seeded-bug identifiers embedded in crash messages."""
    import re

    return re.findall(
        r"\[((?:graphrt|deepc|turbo|exporter|autodiff)-[a-z0-9-]+)\]",
        str(exc))
