"""Content-addressed caches for the campaign iteration hot path.

Every campaign iteration used to recompile both backends from scratch and
re-dispatch every interpreter node through :func:`execute_node`, even though
the thousands of graphs a fuzzing campaign generates overlap heavily in
structure.  This module is the LUT-specialization move (pLUTo / PALUTE in
PAPERS.md): precompute the expensive per-node / per-graph work once, then
serve repeated queries from tables.  Three cache layers:

``artifact``
    Compiled backends, keyed by a canonical *graph fingerprint* (structure +
    initializer digests) plus everything that can change what a compiler
    produces: compiler name, opt level, explicit pass pipeline (full content,
    not just its display name), and the seeded-bug configuration.  A
    seeded-bug compile can therefore never hit a clean-build entry, and two
    pipelines that share a name but differ in passes never collide.
    Deterministic compile *failures* (``ReproError``) are cached and
    re-raised too, so error-path campaigns stay bit-identical.

``shape_infer``
    Memoized :func:`repro.ops.shape_infer.infer_output_types`, keyed by
    ``(op_type, attrs, input_types)``.  Successes only — error messages may
    embed node-specific text, and errors are the rare path.

``exec_plan``
    A per-model interpreter *execution plan*: topological order with each
    node's kernel pre-resolved and per-value consumer refcounts precomputed,
    so :meth:`Interpreter.run_detailed` skips registry dispatch and
    ``topological_order()`` on every run.  Keyed weakly by the live
    :class:`~repro.graph.model.Model` object and validated against its
    ``structure_version`` counter, so mutation through the Model API
    invalidates the plan.

``plan``
    The compiled form of an execution plan
    (:class:`repro.runtime.compiled_plan.CompiledPlan`): the node loop
    flattened into preresolved closures over a flat value slab, with
    refcount decrements baked in at compile time.  Keyed alongside the
    execution plan (same weak Model key, validated by plan identity);
    counters track how often a model's compiled form was reused.  Models
    the flattening cannot represent exactly compile to ``None`` once and
    fall back to the legacy dict loop.

``prefix``
    A *cross-iteration* subgraph-prefix value cache: each topological
    prefix of a compiled plan is fingerprinted by canonical structure
    (positional, name-free) plus content digests of the inputs and
    initializers it consumes; re-executing a previously seen prefix
    (common under ``targeted`` motif repeats and LEMON-style mutation
    chains) restores the cached boundary values instead.  LRU-bounded
    like the artifact cache.

Invisibility contract
---------------------
Caching must be *provably invisible*: a campaign with caches on is
bit-identical to caches off (findings, checkpoints, Venn sets) — enforced by
``tests/core/test_hot_path_cache.py``.  Two consequences baked in here:

* Cache state never feeds checkpoints: :mod:`repro.core.parallel` strips
  ``cache_stats`` before persisting, and the checkpoint fingerprint ignores
  the cache knob, so resuming a run across cache settings is legal (stats
  restart at zero after a resume — they are telemetry, not findings).
* Coverage-traced campaigns disable the *artifact* layer only (a cache hit
  would skip the traced compile arcs); the shape-infer memo, execution
  plans, compiled plans and the prefix cache stay on because the tracer's
  scope excludes ``repro/ops`` and ``repro/runtime`` — traced runs take
  the same compiled path and produce the same arcs (pinned by the
  coverage-equivalence test).

Cache hits and misses are counted per stage and surface as
``CampaignResult.cache_stats`` via the worker → coordinator telemetry
stream; ``tools/bench_hot_path.py`` reports the same counters per benchmark
stage.
"""

from __future__ import annotations

import hashlib
import json
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ReproError
from repro.graph.model import Model
from repro.graph.node import Node
from repro.ops import semantics, shape_infer

__all__ = [
    "STAGES",
    "ExecutionPlan",
    "HotPathCache",
    "artifact_cache_key",
    "build_execution_plan",
    "compile_with_cache",
    "compiled_execution",
    "configure",
    "execution_plan",
    "get_cache",
    "graph_fingerprint",
    "reset",
    "stats_delta",
    "stats_snapshot",
]

#: Telemetry stages, in display order.
STAGES = ("artifact", "shape_infer", "exec_plan", "plan", "prefix")

#: Artifact entries kept before LRU eviction.  Generous for the tiny models
#: campaigns generate; bounds memory on long runs.
ARTIFACT_CAPACITY = 512

#: Subgraph-prefix value entries kept before LRU eviction.  Each entry holds
#: the boundary arrays of one executed prefix; campaign models are tiny, so
#: this bounds memory at a few MB worst case.
PREFIX_CAPACITY = 512

#: Shape-infer memo entries kept before the table is cleared wholesale
#: (entries are tiny; wholesale clearing keeps the bookkeeping trivial).
SHAPE_MEMO_CAPACITY = 65536


# ---------------------------------------------------------------------------
# Graph fingerprint


def _encode_attr(value: Any) -> Any:
    if isinstance(value, (list, tuple)):
        return [_encode_attr(item) for item in value]
    if isinstance(value, (bool, int, float, str)) or value is None:
        return [type(value).__name__, value]
    return ["repr", repr(value)]


def graph_fingerprint(model: Model) -> str:
    """Canonical content hash of a model: structure + initializer digests.

    Two models with identical structure, attrs and initializer bytes get the
    same fingerprint regardless of object identity; any semantic difference
    (shape, dtype, attr value, weight bytes, value names) changes it.
    """
    structure = {
        "name": model.name,
        "inputs": list(model.inputs),
        "outputs": list(model.outputs),
        "values": {
            name: [list(vtype.shape), str(vtype.dtype)]
            for name, vtype in sorted(model.value_types.items())
        },
        "nodes": [
            [node.op, node.name, list(node.inputs), list(node.outputs),
             sorted((key, _encode_attr(val)) for key, val in node.attrs.items())]
            for node in model.nodes
        ],
    }
    digest = hashlib.sha256()
    digest.update(json.dumps(structure, sort_keys=True).encode("utf-8"))
    for name in sorted(model.initializers):
        array = np.ascontiguousarray(model.initializers[name])
        digest.update(name.encode("utf-8"))
        digest.update(str(array.dtype).encode("utf-8"))
        digest.update(repr(array.shape).encode("utf-8"))
        digest.update(array.tobytes())
    return digest.hexdigest()


def artifact_cache_key(compiler: Any, model: Model) -> Tuple:
    """Everything that can change what ``compiler.compile_model`` produces."""
    options = getattr(compiler, "options", None)
    pipeline = getattr(options, "pipeline", None)
    bugs = getattr(options, "bugs", None)
    return (
        graph_fingerprint(model),
        getattr(compiler, "name", type(compiler).__name__),
        getattr(options, "opt_level", None),
        # Key on full pipeline *content*: specs built outside the registry
        # (e.g. pass bisection) may reuse a display name for different
        # pass sequences.
        None if pipeline is None else (pipeline.name, pipeline.stages),
        None if bugs is None else tuple(sorted(bugs.enabled_ids())),
        # Pass-boundary verification turns some cached successes into
        # IRVerificationError failures.
        bool(getattr(options, "verify_passes", False)),
    )


# ---------------------------------------------------------------------------
# Execution plans


@dataclass
class ExecutionPlan:
    """Pre-resolved per-model interpreter schedule.

    ``steps`` holds, per node in topological order, the resolved kernel (or
    ``None`` — raised as :class:`UnsupportedOperatorError` *when reached*,
    matching ``execute_node``), the node itself, and the first statically
    unavailable input name (or ``None``) so the legacy ``GraphError`` fires
    at the same point in the run.  ``consumers`` counts remaining reads per
    value name (duplicate inputs count twice) for eager dead-value dropping;
    ``protected`` is the graph-output set that must survive to the end.
    """

    steps: List[Tuple[Optional[Any], Node, Optional[str]]]
    consumers: Dict[str, int]
    protected: frozenset
    n_nodes: int


def build_execution_plan(model: Model) -> ExecutionPlan:
    available = set(model.inputs) | set(model.initializers)
    consumers: Dict[str, int] = {}
    steps: List[Tuple[Optional[Any], Node, Optional[str]]] = []
    for node in model.topological_order():
        bad_input = None
        for input_name in node.inputs:
            if input_name not in available:
                bad_input = input_name
                break
            consumers[input_name] = consumers.get(input_name, 0) + 1
        steps.append((semantics.kernel_for(node.op), node, bad_input))
        if bad_input is not None:
            # Later steps never execute; stop mirroring the legacy walk here.
            break
        available.update(node.outputs)
    return ExecutionPlan(
        steps=steps,
        consumers=consumers,
        protected=frozenset(model.outputs),
        n_nodes=len(model.nodes),
    )


# ---------------------------------------------------------------------------
# Shape-infer memo keys


def _freeze_attr(value: Any) -> Any:
    """Hashable, type-discriminating view of an attr value.

    Scalars are tagged with their type name so ``True`` and ``1`` (equal and
    hash-equal in Python) cannot share a memo entry.
    """
    if isinstance(value, (list, tuple)):
        return tuple(_freeze_attr(item) for item in value)
    if isinstance(value, dict):
        return tuple(sorted(
            (key, _freeze_attr(val)) for key, val in value.items()))
    return (type(value).__name__, value)


# ---------------------------------------------------------------------------
# The cache singleton


class HotPathCache:
    """Process-wide cache state.  One instance per process (:func:`get_cache`).

    ``enabled`` gates every layer; ``artifact_enabled`` additionally gates
    the artifact layer alone (turned off under coverage tracing, where a
    cache hit would skip traced compile arcs).
    """

    def __init__(self) -> None:
        self.enabled = True
        self.artifact_enabled = True
        self.plan_enabled = True
        self.prefix_enabled = True
        self._artifacts: "OrderedDict[Tuple, Tuple[bool, Any]]" = OrderedDict()
        self._shape_memo: Dict[Tuple, Tuple] = {}
        self._plans: "weakref.WeakKeyDictionary[Model, Tuple[int, ExecutionPlan]]" = (
            weakref.WeakKeyDictionary())
        self._compiled: "weakref.WeakKeyDictionary[Model, Tuple[ExecutionPlan, Any]]" = (
            weakref.WeakKeyDictionary())
        self._prefix: "OrderedDict[Tuple, Any]" = OrderedDict()
        self._hits = {stage: 0 for stage in STAGES}
        self._misses = {stage: 0 for stage in STAGES}

    # -- telemetry ---------------------------------------------------------

    def record_hit(self, stage: str) -> None:
        self._hits[stage] += 1

    def record_miss(self, stage: str) -> None:
        self._misses[stage] += 1

    def stats_snapshot(self) -> Dict[str, Dict[str, int]]:
        return {
            stage: {"hits": self._hits[stage], "misses": self._misses[stage]}
            for stage in STAGES
        }

    def stats_delta(self, before: Dict[str, Dict[str, int]]) -> Dict[str, Dict[str, int]]:
        """Per-stage counter growth since ``before``; silent stages omitted."""
        delta: Dict[str, Dict[str, int]] = {}
        for stage in STAGES:
            prior = before.get(stage, {})
            hits = self._hits[stage] - prior.get("hits", 0)
            misses = self._misses[stage] - prior.get("misses", 0)
            if hits or misses:
                delta[stage] = {"hits": hits, "misses": misses}
        return delta

    # -- configuration -----------------------------------------------------

    def configure(self, enabled: Optional[bool] = None,
                  artifact: Optional[bool] = None,
                  plan: Optional[bool] = None,
                  prefix: Optional[bool] = None) -> None:
        if enabled is not None:
            self.enabled = enabled
        if artifact is not None:
            self.artifact_enabled = artifact
        if plan is not None:
            self.plan_enabled = plan
        if prefix is not None:
            self.prefix_enabled = prefix

    def reset(self, stats_only: bool = False) -> None:
        self._hits = {stage: 0 for stage in STAGES}
        self._misses = {stage: 0 for stage in STAGES}
        if not stats_only:
            self._artifacts.clear()
            self._shape_memo.clear()
            self._plans = weakref.WeakKeyDictionary()
            self._compiled = weakref.WeakKeyDictionary()
            self._prefix.clear()

    # -- artifact layer ----------------------------------------------------

    def artifact_get(self, key: Tuple) -> Optional[Tuple[bool, Any]]:
        entry = self._artifacts.get(key)
        if entry is not None:
            self._artifacts.move_to_end(key)
        return entry

    def artifact_put(self, key: Tuple, entry: Tuple[bool, Any]) -> None:
        self._artifacts[key] = entry
        self._artifacts.move_to_end(key)
        while len(self._artifacts) > ARTIFACT_CAPACITY:
            self._artifacts.popitem(last=False)

    # -- shape-infer layer -------------------------------------------------

    def shape_key(self, node: Node,
                  input_types: Sequence[Any]) -> Optional[Tuple]:
        if not self.enabled:
            return None
        try:
            return (node.op, _freeze_attr(node.attrs), tuple(input_types))
        except TypeError:
            return None  # unhashable attr — bypass the memo

    def shape_get(self, key: Tuple) -> Optional[Tuple]:
        cached = self._shape_memo.get(key)
        if cached is not None:
            self.record_hit("shape_infer")
        else:
            self.record_miss("shape_infer")
        return cached

    def shape_put(self, key: Tuple, output_types: Tuple) -> None:
        if len(self._shape_memo) >= SHAPE_MEMO_CAPACITY:
            self._shape_memo.clear()
        self._shape_memo[key] = output_types

    # -- execution-plan layer ----------------------------------------------

    def plan_for(self, model: Model) -> ExecutionPlan:
        if not self.enabled:
            return build_execution_plan(model)
        version = getattr(model, "structure_version", None)
        entry = self._plans.get(model)
        if (entry is not None and entry[0] == version
                and entry[1].n_nodes == len(model.nodes)):
            self.record_hit("exec_plan")
            return entry[1]
        self.record_miss("exec_plan")
        plan = build_execution_plan(model)
        self._plans[model] = (version, plan)
        return plan

    # -- compiled-plan layer ------------------------------------------------

    def plan_and_compiled(self, model: Model) -> Tuple[Any, ExecutionPlan]:
        """``(compiled_plan_or_None, execution_plan)`` for ``model``.

        The compiled form is keyed by plan object identity, so the
        ``exec_plan`` staleness contract (``structure_version`` + node
        count) transitively invalidates it.  ``None`` is cached too: a
        model the slab cannot represent compiles once, then keeps hitting
        the legacy-loop decision.
        """
        plan = self.plan_for(model)
        if not (self.enabled and self.plan_enabled):
            return None, plan
        entry = self._compiled.get(model)
        if entry is not None and entry[0] is plan:
            self.record_hit("plan")
            return entry[1], plan
        self.record_miss("plan")
        from repro.runtime.compiled_plan import compile_plan
        compiled = compile_plan(model, plan)
        self._compiled[model] = (plan, compiled)
        return compiled, plan

    # -- subgraph-prefix layer ----------------------------------------------

    def prefix_get(self, key: Tuple) -> Optional[Any]:
        entry = self._prefix.get(key)
        if entry is not None:
            self._prefix.move_to_end(key)
        return entry

    def prefix_put(self, key: Tuple, entry: Any) -> None:
        self._prefix[key] = entry
        self._prefix.move_to_end(key)
        while len(self._prefix) > PREFIX_CAPACITY:
            self._prefix.popitem(last=False)


_CACHE = HotPathCache()


def get_cache() -> HotPathCache:
    return _CACHE


def configure(enabled: Optional[bool] = None,
              artifact: Optional[bool] = None,
              plan: Optional[bool] = None,
              prefix: Optional[bool] = None) -> None:
    """Process-wide cache switches (see :class:`HotPathCache.configure`)."""
    _CACHE.configure(enabled=enabled, artifact=artifact, plan=plan,
                     prefix=prefix)


def reset(stats_only: bool = False) -> None:
    _CACHE.reset(stats_only=stats_only)


def stats_snapshot() -> Dict[str, Dict[str, int]]:
    return _CACHE.stats_snapshot()


def stats_delta(before: Dict[str, Dict[str, int]]) -> Dict[str, Dict[str, int]]:
    return _CACHE.stats_delta(before)


def execution_plan(model: Model) -> ExecutionPlan:
    """The (possibly cached) execution plan of ``model``."""
    return _CACHE.plan_for(model)


def compiled_execution(model: Model) -> Tuple[Any, ExecutionPlan]:
    """``(compiled_plan_or_None, execution_plan)`` for the interpreter."""
    return _CACHE.plan_and_compiled(model)


def compile_with_cache(compiler: Any, model: Model) -> Any:
    """``compiler.compile_model(model)`` through the artifact cache.

    Deterministic compile failures (:class:`ReproError` subclasses) are
    cached and re-raised so the error path is as hot as the success path.
    Unknown compiler/model shapes (duck-typed test doubles) silently bypass
    the cache rather than fail.
    """
    if not (_CACHE.enabled and _CACHE.artifact_enabled):
        return compiler.compile_model(model)
    try:
        key = artifact_cache_key(compiler, model)
    except (AttributeError, TypeError):
        return compiler.compile_model(model)
    entry = _CACHE.artifact_get(key)
    if entry is not None:
        _CACHE.record_hit("artifact")
        ok, value = entry
        if ok:
            return value
        raise value
    _CACHE.record_miss("artifact")
    try:
        compiled = compiler.compile_model(model)
    except ReproError as exc:
        _CACHE.artifact_put(key, (False, exc))
        raise
    _CACHE.artifact_put(key, (True, compiled))
    return compiled


# ---------------------------------------------------------------------------
# Shape-infer memo installation (import side effect, kept explicit)


class _ShapeInferMemo:
    """Adapter :mod:`repro.ops.shape_infer` calls into (successes only)."""

    def key_for(self, node: Node, input_types: Sequence[Any]) -> Optional[Tuple]:
        return _CACHE.shape_key(node, input_types)

    def get(self, key: Tuple) -> Optional[Tuple]:
        return _CACHE.shape_get(key)

    def put(self, key: Tuple, output_types: Tuple) -> None:
        _CACHE.shape_put(key, output_types)


shape_infer.install_memo(_ShapeInferMemo())
