"""Input/weight search for numerical validity: Algorithm 3 of the paper.

Given a generated model, the search looks for graph inputs and weights such
that *no* operator produces a NaN or Inf during execution (otherwise
differential testing would either false-alarm or miss bugs, §2.3).  Three
methods are provided, matching the Figure 11 ablation:

* :func:`sampling_search` — repeatedly draw random values from ``[1, 9]``;
* :func:`gradient_search` with proxy derivatives disabled;
* :func:`gradient_search` with proxy derivatives enabled (the default).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.autodiff import Adam, DEFAULT_PROXY, ProxyConfig, backpropagate, unbroadcast
from repro.core.losses import losses_for_node
from repro.graph.model import Model
from repro.runtime.interpreter import Interpreter, random_inputs, random_weights


@dataclass
class SearchResult:
    """Outcome of one value search."""

    success: bool
    inputs: Dict[str, np.ndarray] = field(default_factory=dict)
    weights: Dict[str, np.ndarray] = field(default_factory=dict)
    iterations: int = 0
    elapsed: float = 0.0
    method: str = "sampling"

    def apply_weights(self, model: Model) -> Model:
        """Write the found weights into (a clone of) the model."""
        patched = model.clone()
        for name, value in self.weights.items():
            patched.initializers[name] = np.asarray(
                value, dtype=patched.initializers[name].dtype)
        return patched


def _run(model: Model, inputs, weights, interpreter: Interpreter):
    for name, value in weights.items():
        model.initializers[name] = np.asarray(
            value, dtype=model.type_of(name).dtype.numpy)
    return interpreter.run_detailed(model, inputs)


def sampling_search(model: Model, rng: Optional[np.random.Generator] = None,
                    time_budget: Optional[float] = 0.064,
                    max_trials: int = 64) -> SearchResult:
    """The paper's "Sampling" baseline: re-draw random values until valid.

    ``time_budget=None`` disables the wall-clock bound so the search is only
    limited by ``max_trials`` — this makes the outcome deterministic, which
    parallel campaigns rely on for serial-equivalence.
    """
    rng = rng or np.random.default_rng()
    budget = float("inf") if time_budget is None else time_budget
    interpreter = Interpreter(record_intermediates=False)
    work_model = model.clone()
    start = time.monotonic()
    trials = 0
    inputs = {}
    weights = {}
    while trials < max_trials and (time.monotonic() - start) <= budget:
        trials += 1
        inputs = random_inputs(model, rng)
        weights = random_weights(model, rng)
        result = _run(work_model, inputs, weights, interpreter)
        if result.numerically_valid:
            return SearchResult(True, inputs, weights, trials,
                                time.monotonic() - start, "sampling")
    return SearchResult(False, inputs, weights, trials,
                        time.monotonic() - start, "sampling")


def gradient_search(model: Model, rng: Optional[np.random.Generator] = None,
                    time_budget: Optional[float] = 0.064,
                    learning_rate: float = 0.5,
                    proxy: ProxyConfig = DEFAULT_PROXY,
                    max_iterations: int = 100) -> SearchResult:
    """Gradient-guided search (Algorithm 3).

    Starting from random values, each iteration finds the first operator (in
    topological order) that produces a NaN/Inf, picks its first positive loss
    function, and takes one Adam step on the loss gradient with respect to
    every graph input and weight.  The optimizer state is reset whenever the
    targeted operator changes; zero gradients trigger re-initialization and
    NaN/Inf parameters are replaced by fresh random values.

    ``time_budget=None`` disables the wall-clock bound so the search is only
    limited by ``max_iterations`` and therefore deterministic.
    """
    rng = rng or np.random.default_rng()
    budget = float("inf") if time_budget is None else time_budget
    interpreter = Interpreter(record_intermediates=True)
    work_model = model.clone()
    method = "gradient_proxy" if proxy.enabled else "gradient"

    inputs = random_inputs(model, rng)
    weights = random_weights(model, rng)
    optimizer = Adam(learning_rate=learning_rate)
    last_offender: Optional[str] = None

    start = time.monotonic()
    iterations = 0
    while iterations < max_iterations and (time.monotonic() - start) <= budget:
        iterations += 1
        run = _run(work_model, inputs, weights, interpreter)
        if run.numerically_valid:
            return SearchResult(True, inputs, weights, iterations,
                                time.monotonic() - start, method)

        offender_name = run.first_exceptional_node
        offender = work_model.node_by_name(offender_name)
        if offender_name != last_offender:
            # Loss landscapes differ wildly across operators; reset Adam's
            # moment estimates when the optimization target switches.
            optimizer.reset()
            last_offender = offender_name

        offender_inputs = [run.values[name] for name in offender.inputs]
        loss = next((term for term in losses_for_node(offender)
                     if term.value(offender_inputs) > 0), None)
        if loss is None:
            inputs = random_inputs(model, rng)
            weights = random_weights(model, rng)
            optimizer.reset()
            continue

        seed_grads: Dict[str, np.ndarray] = {}
        for name, grad in zip(offender.inputs, loss.grads(offender_inputs)):
            # Loss expressions over several operands broadcast; reduce each
            # gradient back to the shape of the tensor it belongs to.
            grad = unbroadcast(grad, np.shape(run.values[name]))
            if name in seed_grads:
                seed_grads[name] = seed_grads[name] + grad
            else:
                seed_grads[name] = grad
        grads = backpropagate(work_model, run.values, seed_grads, proxy=proxy,
                              stop_after=offender_name)

        params = {**{k: v.astype(np.float64) for k, v in inputs.items()},
                  **{k: v.astype(np.float64) for k, v in weights.items()}}
        searchable = {name for name, grad in grads.items()
                      if model.type_of(name).dtype.is_float}
        active_grads = {name: grads[name] for name in searchable if name in params}
        if all(float(np.abs(g).sum()) == 0.0 for g in active_grads.values()):
            # Zero gradient everywhere: restart from fresh random values.
            inputs = random_inputs(model, rng)
            weights = random_weights(model, rng)
            optimizer.reset()
            continue

        updated = optimizer.step(params, grads)
        for name in list(updated):
            array = updated[name]
            bad = ~np.isfinite(array)
            if bad.any():
                replacement = rng.uniform(1.0, 9.0, size=array.shape)
                array = np.where(bad, replacement, array)
                updated[name] = array
        inputs = {name: np.asarray(updated[name], dtype=model.type_of(name).dtype.numpy)
                  if model.type_of(name).dtype.is_float else inputs[name]
                  for name in inputs}
        weights = {name: np.asarray(updated[name], dtype=model.type_of(name).dtype.numpy)
                   if model.type_of(name).dtype.is_float else weights[name]
                   for name in weights}

    return SearchResult(False, inputs, weights, iterations,
                        time.monotonic() - start, method)


def search_values(model: Model, method: str = "gradient_proxy",
                  rng: Optional[np.random.Generator] = None,
                  time_budget: Optional[float] = 0.064,
                  max_steps: Optional[int] = None) -> SearchResult:
    """Dispatch helper used by the fuzzer and the Figure 11 experiment.

    ``max_steps`` bounds the number of trials (sampling) or optimizer
    iterations (gradient search); combined with ``time_budget=None`` it makes
    the search fully deterministic.
    """
    if method == "sampling":
        kwargs = {} if max_steps is None else {"max_trials": max_steps}
        return sampling_search(model, rng, time_budget=time_budget, **kwargs)
    if method in ("gradient", "gradient_proxy"):
        if method == "gradient":
            from repro.autodiff import NO_PROXY
            proxy = NO_PROXY
        else:
            proxy = DEFAULT_PROXY
        kwargs = {} if max_steps is None else {"max_iterations": max_steps}
        return gradient_search(model, rng, time_budget=time_budget, proxy=proxy,
                               **kwargs)
    raise ValueError(f"unknown value-search method {method!r}")
