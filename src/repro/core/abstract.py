"""Abstract tensors: symbolic shapes attached to concrete dtypes and ranks.

Operator specifications (§3.1) describe their inputs and outputs with
*abstract tensors*: the data type and rank are concrete, while each dimension
is a symbolic integer expression resolved by the constraint solver during
graph generation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.dtypes import DType
from repro.graph.tensor_type import TensorType
from repro.solver.constraints import Constraint
from repro.solver.expr import Expr, ExprLike, product, to_expr


@dataclass
class AbsTensor:
    """A tensor whose shape may contain symbolic dimensions."""

    dtype: DType
    dims: List[Expr]

    def __init__(self, dtype: DType, dims: Sequence[ExprLike]) -> None:
        self.dtype = dtype
        self.dims = [to_expr(d) for d in dims]

    @property
    def rank(self) -> int:
        return len(self.dims)

    def numel(self) -> Expr:
        """Symbolic element count."""
        return product(self.dims)

    def positive_constraints(self) -> List[Constraint]:
        """Every dimension must be at least one."""
        return [dim >= 1 for dim in self.dims]

    def same_shape_as(self, other: "AbsTensor") -> List[Constraint]:
        """Equality constraints between this shape and another of equal rank."""
        if self.rank != other.rank:
            raise ValueError(
                f"rank mismatch: {self.rank} vs {other.rank}")
        return [mine == theirs for mine, theirs in zip(self.dims, other.dims)]

    def concretize(self, assignment) -> TensorType:
        """Evaluate the symbolic dims under a solver model."""
        shape = [dim.evaluate(assignment) for dim in self.dims]
        return TensorType(shape, self.dtype)

    def __repr__(self) -> str:
        dims = ", ".join(repr(d) for d in self.dims)
        return f"AbsTensor({self.dtype}, [{dims}])"


def broadcast_dims(lhs: AbsTensor, rhs: AbsTensor) -> "tuple[List[Expr], List[Constraint]]":
    """Symbolic numpy broadcasting of two abstract shapes.

    Returns the broadcast output dims along with the constraints that make
    the two shapes broadcast-compatible.  For every aligned dimension pair
    the constraint is the disjunction ``a == b  or  a == 1  or  b == 1`` and
    the output dimension is ``max(a, b)``.
    """
    from repro.solver.constraints import Or
    from repro.solver.expr import sym_max

    rank = max(lhs.rank, rhs.rank)
    out_dims: List[Expr] = []
    constraints: List[Constraint] = []
    for position in range(rank):
        left_index = lhs.rank - rank + position
        right_index = rhs.rank - rank + position
        if left_index < 0:
            out_dims.append(rhs.dims[right_index])
        elif right_index < 0:
            out_dims.append(lhs.dims[left_index])
        else:
            a = lhs.dims[left_index]
            b = rhs.dims[right_index]
            constraints.append(Or([a == b, a == 1, b == 1]))
            out_dims.append(sym_max(a, b))
    return out_dims, constraints
