"""NNSmith's core: specifications, generation, value search, differential testing."""

from repro.core.abstract import AbsTensor
from repro.core.binning import apply_attribute_binning
from repro.core.concretize import GeneratedModel, concretize
from repro.core.difftest import (
    CaseResult,
    CompilerVerdict,
    DifferentialTester,
    compare_outputs,
    first_line,
)
from repro.core.fuzzer import BugReport, CampaignResult, Fuzzer, FuzzerConfig
from repro.core.generator import GeneratorConfig, GraphGenerator, SymbolicGraph, generate_model
from repro.core.op_spec import AbsOpBase, SpecContext
from repro.core.oplib import ALL_SPECS, DEFAULT_OP_POOL, SPEC_BY_KIND, specs_for_ops
from repro.core.parallel import (
    ParallelCampaign,
    default_compiler_factory,
    deterministic_config,
    run_parallel_campaign,
    run_sharded_serial,
    shard_configs,
)
from repro.core.value_search import (
    SearchResult,
    gradient_search,
    sampling_search,
    search_values,
)

__all__ = [
    "ALL_SPECS",
    "AbsOpBase",
    "AbsTensor",
    "BugReport",
    "CampaignResult",
    "CaseResult",
    "CompilerVerdict",
    "DEFAULT_OP_POOL",
    "DifferentialTester",
    "Fuzzer",
    "FuzzerConfig",
    "GeneratedModel",
    "GeneratorConfig",
    "GraphGenerator",
    "ParallelCampaign",
    "SPEC_BY_KIND",
    "SearchResult",
    "SpecContext",
    "SymbolicGraph",
    "apply_attribute_binning",
    "compare_outputs",
    "concretize",
    "default_compiler_factory",
    "deterministic_config",
    "first_line",
    "generate_model",
    "gradient_search",
    "run_parallel_campaign",
    "run_sharded_serial",
    "sampling_search",
    "search_values",
    "shard_configs",
    "specs_for_ops",
]
