"""NNSmith's core: specifications, generation, value search, differential testing."""

from repro.core.abstract import AbsTensor
from repro.core.binning import apply_attribute_binning
from repro.core.concretize import GeneratedModel, concretize
from repro.core.difftest import (
    CaseResult,
    CompilerVerdict,
    DifferentialTester,
    compare_outputs,
    first_line,
)
from repro.core.fuzzer import (
    BugReport,
    CampaignResult,
    CellOutcome,
    Fuzzer,
    FuzzerConfig,
    iteration_rng,
    iteration_seed,
    probe_supported_pool,
    single_iteration_result,
)
from repro.core.generator import GeneratorConfig, GraphGenerator, SymbolicGraph, generate_model
from repro.core.op_spec import AbsOpBase, SpecContext
from repro.core.oplib import ALL_SPECS, DEFAULT_OP_POOL, SPEC_BY_KIND, specs_for_ops
from repro.core.parallel import (
    CellTask,
    MatrixCell,
    ParallelCampaign,
    build_matrix,
    campaign_result_from_dict,
    campaign_result_to_dict,
    default_compiler_factory,
    deterministic_config,
    run_parallel_campaign,
    run_sharded_serial,
    shard_configs,
)
from repro.core.value_search import (
    SearchResult,
    gradient_search,
    sampling_search,
    search_values,
)

__all__ = [
    "ALL_SPECS",
    "AbsOpBase",
    "AbsTensor",
    "BugReport",
    "CampaignResult",
    "CaseResult",
    "CellOutcome",
    "CellTask",
    "CompilerVerdict",
    "DEFAULT_OP_POOL",
    "DifferentialTester",
    "Fuzzer",
    "FuzzerConfig",
    "GeneratedModel",
    "GeneratorConfig",
    "GraphGenerator",
    "MatrixCell",
    "ParallelCampaign",
    "SPEC_BY_KIND",
    "SearchResult",
    "SpecContext",
    "SymbolicGraph",
    "apply_attribute_binning",
    "build_matrix",
    "campaign_result_from_dict",
    "campaign_result_to_dict",
    "compare_outputs",
    "concretize",
    "default_compiler_factory",
    "deterministic_config",
    "first_line",
    "generate_model",
    "gradient_search",
    "iteration_rng",
    "iteration_seed",
    "probe_supported_pool",
    "run_parallel_campaign",
    "run_sharded_serial",
    "sampling_search",
    "search_values",
    "shard_configs",
    "single_iteration_result",
    "specs_for_ops",
]
