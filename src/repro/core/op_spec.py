"""Operator specifications: the light-weight models of operator semantics.

An :class:`AbsOpBase` subclass captures, for one operator kind, everything
the generator needs to insert it into a graph while keeping the graph valid
(§3.1 of the paper):

* which input data types are accepted and what the output dtype is
  (``dtype_combos``);
* which input ranks are possible (``input_rank_options`` /
  ``deduce_output_rank``) — used by the cheap *type matching* filter before
  any constraint solving;
* the *constraints* its attributes and input shapes must satisfy
  (:meth:`requires`);
* the *type transfer function* giving the symbolic output shape
  (:meth:`type_transfer`);
* how to materialize a concrete :class:`~repro.graph.node.Node` once the
  solver produced a model (:meth:`to_node`);
* optional attribute-binning specializations (:meth:`bin_hints`, the ``C*``
  of Algorithm 2).

Meta base classes (`ElementwiseUnary`, `BinaryBroadcast`, `ReduceBase`, ...)
mean that most concrete specifications are only a handful of lines, matching
the paper's observation that 59 of its 73 specifications fit in four lines.
"""

from __future__ import annotations

import abc
import itertools
import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.abstract import AbsTensor, broadcast_dims
from repro.dtypes import DType, FLOAT_DTYPES, INT_DTYPES, promote
from repro.graph.node import Node
from repro.solver.constraints import Constraint
from repro.solver.expr import Expr
from repro.solver.solver import Solver

#: Maximum tensor rank the generator works with.
MAX_RANK = 4
#: Default inclusive upper bound for a single dimension.
MAX_DIM = 64

DtypeCombo = Tuple[Tuple[DType, ...], Tuple[DType, ...]]


class SpecContext:
    """Helper handed to specifications while they configure themselves.

    Wraps the shared solver, the RNG and fresh-name generation, and exposes
    convenience constructors for symbolic attribute/dimension variables.
    """

    def __init__(self, solver: Solver, rng: random.Random,
                 max_dim: int = MAX_DIM) -> None:
        self.solver = solver
        self.rng = rng
        self.max_dim = max_dim
        self._counter = 0

    def fresh_name(self, base: str) -> str:
        self._counter += 1
        return f"{base.lower()}_{self._counter}"

    def int_attr(self, name: str, low: int = 1, high: Optional[int] = None) -> Expr:
        """A symbolic integer attribute variable."""
        return self.solver.int_var(name, low, high if high is not None else self.max_dim)

    def dim_var(self, name: str) -> Expr:
        """A symbolic tensor-dimension variable."""
        return self.solver.int_var(name, 1, self.max_dim)

    def fresh_tensor(self, prefix: str, rank: int, dtype: DType) -> AbsTensor:
        dims = [self.dim_var(f"{prefix}_d{i}") for i in range(rank)]
        return AbsTensor(dtype, dims)


class AbsOpBase(abc.ABC):
    """Base class of every operator specification."""

    #: Interchange operator kind this spec materializes into.
    op_kind: str = ""
    #: Number of graph inputs the operator consumes.
    n_inputs: int = 1
    #: Number of outputs it produces.
    n_outputs: int = 1
    #: Whether backward insertion (Algorithm 1, BackwardInsert) may use it.
    supports_backward: bool = True

    def __init__(self, name: str) -> None:
        self.name = name
        #: Symbolic attributes (resolved by the solver).
        self.attrs: Dict[str, Expr] = {}
        #: Structural attributes fixed at configuration time (axes, perms...).
        self.const_attrs: Dict[str, object] = {}
        #: Input dtypes chosen for this instance.
        self.in_dtypes: Tuple[DType, ...] = ()

    # ------------------------------------------------------------------ #
    # Class-level matching information (the cheap type-matching filter).
    # ------------------------------------------------------------------ #
    @classmethod
    @abc.abstractmethod
    def dtype_combos(cls) -> List[DtypeCombo]:
        """Accepted (input dtypes) -> (output dtypes) combinations."""

    @classmethod
    def arity_options(cls) -> List[int]:
        """Possible numbers of inputs (variadic operators override this)."""
        return [cls.n_inputs]

    @classmethod
    def input_rank_options(cls) -> List[List[int]]:
        """Allowed ranks per input position."""
        return [list(range(MAX_RANK + 1)) for _ in range(cls.n_inputs)]

    @classmethod
    def deduce_output_rank(cls, input_ranks: Sequence[int]) -> Optional[int]:
        """Output rank for given input ranks, or None when not representable."""
        return input_ranks[0]

    @classmethod
    def accepts_dtypes(cls, dtypes: Sequence[DType]) -> bool:
        return any(tuple(dtypes) == combo[0] for combo in cls.dtype_combos())

    @classmethod
    def out_dtypes_for(cls, dtypes: Sequence[DType]) -> Optional[Tuple[DType, ...]]:
        for inputs, outputs in cls.dtype_combos():
            if tuple(dtypes) == inputs:
                return outputs
        return None

    @classmethod
    def accepts_ranks(cls, ranks: Sequence[int]) -> bool:
        options = cls.input_rank_options()
        if len(ranks) != len(options):
            return False
        return all(rank in allowed for rank, allowed in zip(ranks, options))

    @classmethod
    def backward_candidates(cls, output_dtype: DType,
                            output_rank: int) -> List[Tuple[Tuple[DType, ...], Tuple[int, ...]]]:
        """Input (dtype combo, rank combo) pairs that would yield this output."""
        if not cls.supports_backward or cls.n_outputs != 1:
            return []
        dtype_matches = [combo[0] for combo in cls.dtype_combos()
                         if combo[1] and combo[1][0] == output_dtype]
        if not dtype_matches:
            return []
        rank_matches: List[Tuple[int, ...]] = []
        for ranks in itertools.product(*cls.input_rank_options()):
            if cls.deduce_output_rank(ranks) == output_rank:
                rank_matches.append(tuple(ranks))
        return [(dtypes, ranks) for dtypes in dtype_matches for ranks in rank_matches]

    # ------------------------------------------------------------------ #
    # Instance construction.
    # ------------------------------------------------------------------ #
    @classmethod
    def instantiate(cls, ctx: SpecContext,
                    inputs: List[AbsTensor]) -> Optional["AbsOpBase"]:
        """Create a spec instance configured for the given (abstract) inputs.

        Returns None when the operator cannot be configured for these inputs
        (for example because no valid structural attribute exists).
        """
        op = cls(ctx.fresh_name(cls.op_kind))
        op.in_dtypes = tuple(tensor.dtype for tensor in inputs)
        if not cls.accepts_dtypes(op.in_dtypes):
            return None
        if not cls.accepts_ranks([tensor.rank for tensor in inputs]):
            return None
        if not op._configure(ctx, inputs):
            return None
        return op

    def _configure(self, ctx: SpecContext, inputs: List[AbsTensor]) -> bool:
        """Create symbolic/structural attributes; return False to veto."""
        return True

    # ------------------------------------------------------------------ #
    # The specification proper.
    # ------------------------------------------------------------------ #
    def requires(self, inputs: List[AbsTensor]) -> List[Constraint]:
        """Constraints the inputs and attributes must satisfy."""
        return []

    @abc.abstractmethod
    def type_transfer(self, inputs: List[AbsTensor]) -> List[AbsTensor]:
        """Symbolic output tensors for the given inputs."""

    # ------------------------------------------------------------------ #
    # Materialization and binning.
    # ------------------------------------------------------------------ #
    def concrete_attrs(self, assignment: Dict[str, int]) -> Dict[str, object]:
        """Evaluate symbolic attributes under a solver model."""
        resolved: Dict[str, object] = dict(self.const_attrs)
        for key, expr in self.attrs.items():
            resolved[key] = expr.evaluate(assignment)
        return resolved

    def to_node(self, input_names: Sequence[str], output_names: Sequence[str],
                assignment: Dict[str, int]) -> Node:
        """Materialize a concrete interchange node."""
        return Node(self.op_kind, self.name, list(input_names), list(output_names),
                    self.concrete_attrs(assignment))

    def bin_hints(self) -> Dict[str, List[Tuple[int, Optional[int]]]]:
        """Attribute-binning specializations (``C*`` in Algorithm 2).

        Maps an attribute variable name to extra candidate bins given as
        inclusive ``(low, high)`` ranges (``high=None`` means unbounded).
        The default is empty: the generic exponential bins apply.
        """
        return {}

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


# --------------------------------------------------------------------------- #
# Meta specifications
# --------------------------------------------------------------------------- #
def same_dtype_combos(dtypes: Sequence[DType], arity: int,
                      out: str = "same") -> List[DtypeCombo]:
    """Combos where every input shares one dtype from ``dtypes``.

    ``out`` selects the output dtype rule: "same", "bool", or "float_like"
    (float dtypes pass through, integer dtypes promote to float64 — matching
    the reference kernels).
    """
    combos: List[DtypeCombo] = []
    for dtype in dtypes:
        if out == "same":
            output: Tuple[DType, ...] = (dtype,)
        elif out == "bool":
            output = (DType.bool_,)
        elif out == "float_like":
            output = (dtype if dtype.is_float else DType.float64,)
        else:
            raise ValueError(f"unknown output dtype rule {out!r}")
        combos.append((tuple([dtype] * arity), output))
    return combos


class ElementwiseUnary(AbsOpBase):
    """Shape-preserving unary operator."""

    n_inputs = 1
    #: dtypes accepted; subclasses override.
    dtypes: Tuple[DType, ...] = FLOAT_DTYPES
    #: output dtype rule: "same" or "float_like" or "bool".
    out_rule: str = "same"

    @classmethod
    def dtype_combos(cls) -> List[DtypeCombo]:
        return same_dtype_combos(cls.dtypes, 1, cls.out_rule)

    def type_transfer(self, inputs: List[AbsTensor]) -> List[AbsTensor]:
        (x,) = inputs
        out_dtype = self.out_dtypes_for((x.dtype,))[0]
        return [AbsTensor(out_dtype, list(x.dims))]


class BinaryBroadcast(AbsOpBase):
    """Binary elementwise operator with numpy broadcasting."""

    n_inputs = 2
    dtypes: Tuple[DType, ...] = FLOAT_DTYPES + INT_DTYPES
    out_rule: str = "same"

    @classmethod
    def dtype_combos(cls) -> List[DtypeCombo]:
        return same_dtype_combos(cls.dtypes, 2, cls.out_rule)

    @classmethod
    def deduce_output_rank(cls, input_ranks: Sequence[int]) -> Optional[int]:
        return max(input_ranks)

    def requires(self, inputs: List[AbsTensor]) -> List[Constraint]:
        _, constraints = broadcast_dims(inputs[0], inputs[1])
        return constraints

    def type_transfer(self, inputs: List[AbsTensor]) -> List[AbsTensor]:
        dims, _ = broadcast_dims(inputs[0], inputs[1])
        out_dtype = self.out_dtypes_for(tuple(t.dtype for t in inputs))[0]
        return [AbsTensor(out_dtype, dims)]


class ReduceBase(AbsOpBase):
    """Reduction over a random subset of axes."""

    n_inputs = 1
    dtypes: Tuple[DType, ...] = FLOAT_DTYPES + INT_DTYPES
    out_rule: str = "same"
    supports_backward = False  # output rank depends on structural choices

    @classmethod
    def dtype_combos(cls) -> List[DtypeCombo]:
        return same_dtype_combos(cls.dtypes, 1, cls.out_rule)

    @classmethod
    def input_rank_options(cls) -> List[List[int]]:
        return [list(range(1, MAX_RANK + 1))]

    def _configure(self, ctx: SpecContext, inputs: List[AbsTensor]) -> bool:
        rank = inputs[0].rank
        count = ctx.rng.randint(1, rank)
        axes = sorted(ctx.rng.sample(range(rank), count))
        self.const_attrs["axes"] = axes
        self.const_attrs["keepdims"] = bool(ctx.rng.random() < 0.5)
        return True

    def type_transfer(self, inputs: List[AbsTensor]) -> List[AbsTensor]:
        (x,) = inputs
        axes = set(self.const_attrs["axes"])
        keepdims = self.const_attrs["keepdims"]
        dims = []
        for index, dim in enumerate(x.dims):
            if index in axes:
                if keepdims:
                    dims.append(1)
            else:
                dims.append(dim)
        out_dtype = self.out_dtypes_for((x.dtype,))[0]
        return [AbsTensor(out_dtype, dims)]
