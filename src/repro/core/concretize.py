"""Concretization: symbolic graph + solver model -> interchange model.

The original NNSmith materializes its symbolic graph as PyTorch functors and
exports them to ONNX; here the solver's satisfying assignment is evaluated
into concrete shapes/attributes and the result is emitted directly as a
:class:`repro.graph.model.Model`.  Remaining placeholders become graph inputs
or weights (constant initializers), preserving the multi-input / multi-output
structure the generator built.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.core.generator import SymbolicGraph, SymNode, SymValue
from repro.dtypes import DType
from repro.errors import GenerationError
from repro.graph.model import Model
from repro.graph.tensor_type import TensorType
from repro.solver.solver import Solver


@dataclass
class GeneratedModel:
    """A concretized model plus generation metadata."""

    model: Model
    assignment: Dict[str, int]
    n_nodes: int
    #: names of placeholder values that became weights
    weight_names: List[str] = field(default_factory=list)
    #: names of placeholder values that became graph inputs
    input_names: List[str] = field(default_factory=list)
    #: per-node operator instance signatures (used by the Figure 9 metric)
    op_instances: List[str] = field(default_factory=list)


def random_array(ttype: TensorType, rng: random.Random,
                 low: float = 1.0, high: float = 9.0) -> np.ndarray:
    """Random tensor data in the paper's default sampling range ``[1, 9]``."""
    np_rng = np.random.default_rng(rng.randrange(1 << 30))
    if ttype.dtype.is_float:
        data = np_rng.uniform(low, high, size=ttype.shape)
    elif ttype.dtype.is_int:
        data = np_rng.integers(int(low), int(high), size=ttype.shape)
    else:
        data = np_rng.integers(0, 2, size=ttype.shape).astype(bool)
    return np.asarray(data, dtype=ttype.dtype.numpy)


def concretize(graph: SymbolicGraph, rng: random.Random,
               weight_probability: float = 0.4,
               model_name: str = "generated") -> GeneratedModel:
    """Materialize a concrete model from the symbolic graph."""
    assignment = graph.solver.model()

    model = Model(model_name)
    weight_names: List[str] = []
    input_names: List[str] = []

    placeholders = graph.placeholders()
    if not placeholders:
        raise GenerationError("symbolic graph has no placeholders left as inputs")

    # Decide which placeholders are runtime inputs and which are weights,
    # keeping at least one runtime input.
    forced_input = rng.choice(placeholders)
    for value in placeholders:
        ttype = value.tensor.concretize(assignment)
        if value is not forced_input and rng.random() < weight_probability:
            model.add_initializer(value.name, random_array(ttype, rng))
            weight_names.append(value.name)
        else:
            model.add_input(value.name, ttype)
            input_names.append(value.name)

    op_instances: List[str] = []
    for node in graph.topological_nodes():
        concrete = _materialize_node(node, assignment)
        output_types = [value.tensor.concretize(assignment) for value in node.outputs]
        model.add_node(concrete, output_types)
        input_sig = ",".join(str(model.type_of(name)) for name in concrete.inputs)
        op_instances.append(f"{concrete.signature()}|{input_sig}")

    for value in graph.leaf_values():
        model.mark_output(value.name)
    if not model.outputs:
        raise GenerationError("generated model has no outputs")

    return GeneratedModel(
        model=model,
        assignment=assignment,
        n_nodes=len(model.nodes),
        weight_names=weight_names,
        input_names=input_names,
        op_instances=op_instances,
    )


def _materialize_node(node: SymNode, assignment: Dict[str, int]):
    input_names = [value.name for value in node.inputs]
    output_names = [value.name for value in node.outputs]
    return node.spec.to_node(input_names, output_names, assignment)
