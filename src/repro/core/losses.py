"""Loss functions for vulnerable operators (§3.3, Tables 1 and 2).

A *vulnerable* operator produces NaN/Inf outside a sub-domain of its inputs.
That sub-domain is described by a conjunction of tensor inequalities; every
inequality is rewritten into canonical form ``f(X) <= 0`` / ``f(X) < 0`` and
converted into a non-negative scalar loss (Table 2):

* ``f(X) <= 0``  ->  ``sum(max(f(x), 0))``
* ``f(X) <  0``  ->  ``sum(max(f(x) + eps, 0))``

A loss is positive exactly when its predicate is violated, so the search
algorithm can simply pick the first positive loss of the offending operator
(Algorithm 3, line 8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

import numpy as np

from repro.graph.node import Node

#: The epsilon of Table 2 (strict inequalities) — §5.1 sets it to 1e-10.
EPSILON = 1e-10
#: Bound used for "result would overflow" predicates, e.g. ``y*log(x) <= 40``.
OVERFLOW_BOUND = 40.0
#: Generic magnitude bound used by the fallback loss.
MAGNITUDE_BOUND = 1e4


@dataclass
class LossTerm:
    """One differentiable loss attached to an operator's inputs."""

    name: str
    value_fn: Callable[[Sequence[np.ndarray]], float]
    grad_fn: Callable[[Sequence[np.ndarray]], List[np.ndarray]]

    def value(self, inputs: Sequence[np.ndarray]) -> float:
        arrays = [np.asarray(x, dtype=np.float64) for x in inputs]
        with np.errstate(all="ignore"):
            result = float(self.value_fn(arrays))
        if not np.isfinite(result):
            result = float(MAGNITUDE_BOUND)
        return result

    def grads(self, inputs: Sequence[np.ndarray]) -> List[np.ndarray]:
        arrays = [np.asarray(x, dtype=np.float64) for x in inputs]
        with np.errstate(all="ignore"):
            grads = self.grad_fn(arrays)
        cleaned = []
        for array, grad in zip(arrays, grads):
            grad = np.zeros_like(array) if grad is None else np.asarray(grad, np.float64)
            cleaned.append(np.nan_to_num(grad, nan=0.0, posinf=1e3, neginf=-1e3))
        return cleaned


def _hinge(values: np.ndarray) -> float:
    return float(np.sum(np.maximum(values, 0.0)))


def _hinge_mask(values: np.ndarray) -> np.ndarray:
    return (values > 0).astype(np.float64)


# --------------------------------------------------------------------------- #
# Loss constructors for specific predicates.
# --------------------------------------------------------------------------- #
def _abs_at_most_one(position: int) -> LossTerm:
    """|X| <= 1  (Asin, Acos)."""

    def value(inputs):
        x = inputs[position]
        return _hinge(np.abs(x) - 1.0)

    def grads(inputs):
        result = [None] * len(inputs)
        x = inputs[position]
        result[position] = _hinge_mask(np.abs(x) - 1.0) * np.sign(x)
        return result

    return LossTerm(f"abs(input{position}) <= 1", value, grads)


def _strictly_positive(position: int) -> LossTerm:
    """X > 0  (Log, Log2, Sqrt domain, Pow base)."""

    def value(inputs):
        x = inputs[position]
        return _hinge(-x + EPSILON)

    def grads(inputs):
        result = [None] * len(inputs)
        x = inputs[position]
        result[position] = -_hinge_mask(-x + EPSILON)
        return result

    return LossTerm(f"input{position} > 0", value, grads)


def _nonzero_magnitude(position: int) -> LossTerm:
    """|X| > 0  (Div denominator, Reciprocal)."""

    def value(inputs):
        x = inputs[position]
        return _hinge(-np.abs(x) + 1e-3)

    def grads(inputs):
        result = [None] * len(inputs)
        x = inputs[position]
        sign = np.where(x >= 0, 1.0, -1.0)
        result[position] = -_hinge_mask(-np.abs(x) + 1e-3) * sign
        return result

    return LossTerm(f"abs(input{position}) > 0", value, grads)


def _bounded_above(position: int, bound: float) -> LossTerm:
    """X <= bound  (Exp overflow)."""

    def value(inputs):
        return _hinge(inputs[position] - bound)

    def grads(inputs):
        result = [None] * len(inputs)
        result[position] = _hinge_mask(inputs[position] - bound)
        return result

    return LossTerm(f"input{position} <= {bound}", value, grads)


def _pow_overflow() -> LossTerm:
    """Y*log(X) <= 40 for Pow(X, Y)."""

    def value(inputs):
        x, y = inputs[0], inputs[1]
        log_x = np.log(np.maximum(x, EPSILON))
        return _hinge(y * log_x - OVERFLOW_BOUND)

    def grads(inputs):
        x, y = inputs[0], inputs[1]
        safe_x = np.maximum(x, EPSILON)
        log_x = np.log(safe_x)
        active = _hinge_mask(y * log_x - OVERFLOW_BOUND)
        return [active * y / safe_x, active * log_x]

    return LossTerm("y*log(x) <= 40", value, grads)


def magnitude_loss() -> LossTerm:
    """Generic fallback: every float input bounded by ``MAGNITUDE_BOUND``.

    Used when an operator without a registered domain produces NaN/Inf —
    usually an overflow from very large intermediate values (Mul, MatMul,
    Conv2d chains).
    """

    def value(inputs):
        total = 0.0
        for x in inputs:
            total += _hinge(np.abs(x) - MAGNITUDE_BOUND)
        return total

    def grads(inputs):
        return [_hinge_mask(np.abs(x) - MAGNITUDE_BOUND) * np.sign(x) for x in inputs]

    return LossTerm(f"abs(inputs) <= {MAGNITUDE_BOUND}", value, grads)


#: Loss terms per vulnerable operator kind (Table 1, extended).
VULNERABLE_OPERATORS: Dict[str, List[LossTerm]] = {
    "Asin": [_abs_at_most_one(0)],
    "Acos": [_abs_at_most_one(0)],
    "Log": [_strictly_positive(0)],
    "Log2": [_strictly_positive(0)],
    "Sqrt": [_strictly_positive(0)],
    "Reciprocal": [_nonzero_magnitude(0)],
    "Div": [_nonzero_magnitude(1)],
    "Pow": [_strictly_positive(0), _pow_overflow()],
    "Exp": [_bounded_above(0, OVERFLOW_BOUND)],
    "Softmax": [_bounded_above(0, 80.0)],
}


def is_vulnerable(op_kind: str) -> bool:
    """Does this operator have a restricted numerically-valid domain?"""
    return op_kind in VULNERABLE_OPERATORS


def losses_for_node(node: Node) -> List[LossTerm]:
    """Loss terms for one node: registered terms plus the generic fallback."""
    return list(VULNERABLE_OPERATORS.get(node.op, [])) + [magnitude_loss()]
