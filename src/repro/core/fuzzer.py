"""The end-to-end fuzzing campaign loop.

One iteration = generate a model (Algorithm 1 + 2), search for numerically
valid inputs/weights (Algorithm 3), then differentially test every compiler
under test.  The campaign records:

* unique bug reports (deduplicated by crash message / mismatch signature,
  following §5.1's bug counting) and their ground-truth seeded-bug ids;
* the operator-instance signatures exercised (Figure 9's diversity metric);
* per-iteration timing, usable for the coverage/throughput figures.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set

import numpy as np

from repro.compilers.base import Compiler
from repro.compilers.bugs import BugConfig
from repro.core.concretize import GeneratedModel
from repro.core.difftest import CaseResult, DifferentialTester
from repro.core.generator import GeneratorConfig, generate_model
from repro.core.value_search import search_values
from repro.errors import GenerationError, ReproError


@dataclass
class BugReport:
    """A deduplicated finding of the campaign."""

    compiler: str
    status: str
    phase: str
    message: str
    triggered_bugs: List[str]
    iteration: int

    @property
    def seeded_ids(self) -> List[str]:
        return list(self.triggered_bugs)


@dataclass
class FuzzerConfig:
    """Campaign configuration."""

    generator: GeneratorConfig = field(default_factory=GeneratorConfig)
    value_search_method: str = "gradient_proxy"
    value_search_budget: float = 0.064
    #: Stop after this many iterations (None = unbounded).
    max_iterations: Optional[int] = 100
    #: Stop after this much wall-clock time in seconds (None = unbounded).
    time_budget: Optional[float] = None
    bugs: BugConfig = field(default_factory=BugConfig.all)
    seed: int = 0
    #: Probe every compiler's operator support matrix (by asking it which of
    #: the pool's operator kinds it implements) and only generate operators
    #: every compiler supports, avoiding "Not-Implemented" noise (§4).
    probe_operator_support: bool = True


@dataclass
class CampaignResult:
    """Aggregated results of one fuzzing campaign."""

    iterations: int = 0
    generated_models: int = 0
    generation_failures: int = 0
    numerically_valid_models: int = 0
    elapsed: float = 0.0
    reports: List[BugReport] = field(default_factory=list)
    operator_instances: Set[str] = field(default_factory=set)
    seeded_bugs_found: Set[str] = field(default_factory=set)
    #: (elapsed seconds, iteration) samples for throughput plots.
    timeline: List[Dict[str, float]] = field(default_factory=list)

    def unique_crashes(self, compiler: Optional[str] = None) -> int:
        keys = {report.message.splitlines()[0][:160]
                for report in self.reports
                if report.status == "crash" and
                (compiler is None or report.compiler == compiler)}
        return len(keys)

    def bugs_by_system(self) -> Dict[str, int]:
        found: Dict[str, Set[str]] = {}
        for report in self.reports:
            for bug_id in report.triggered_bugs:
                system = bug_id.split("-")[0]
                found.setdefault(system, set()).add(bug_id)
        return {system: len(ids) for system, ids in found.items()}


class Fuzzer:
    """NNSmith's fuzzing loop over the in-repo compilers."""

    def __init__(self, compilers: Sequence[Compiler],
                 config: Optional[FuzzerConfig] = None) -> None:
        self.compilers = list(compilers)
        self.config = config or FuzzerConfig()
        self.tester = DifferentialTester(self.compilers, bugs=self.config.bugs)
        if self.config.probe_operator_support:
            self.config.generator.op_pool = self._probe_supported_pool(
                self.config.generator.op_pool)

    def _probe_supported_pool(self, pool):
        """Restrict the operator pool to kinds every compiler implements."""
        kinds = [spec.op_kind for spec in pool]
        supported = set(kinds)
        for compiler in self.compilers:
            supported &= set(compiler.supported_ops(kinds))
        filtered = [spec for spec in pool if spec.op_kind in supported]
        return filtered or list(pool)

    # ------------------------------------------------------------------ #
    def run(self, on_iteration: Optional[Callable[[int, CaseResult], None]] = None
            ) -> CampaignResult:
        """Run the campaign until the iteration or time budget is exhausted."""
        result = CampaignResult()
        seen_reports: Set[str] = set()
        rng = np.random.default_rng(self.config.seed)
        start = time.monotonic()
        iteration = 0

        while not self._budget_exhausted(iteration, start):
            iteration += 1
            generated = self._generate(iteration)
            if generated is None:
                result.generation_failures += 1
                continue
            result.generated_models += 1
            result.operator_instances.update(generated.op_instances)

            case = self._test_one(generated, rng)
            if case is None:
                continue
            if case.numerically_valid:
                result.numerically_valid_models += 1
            for verdict in case.verdicts:
                if not verdict.found_bug:
                    continue
                key = verdict.dedup_key()
                result.seeded_bugs_found.update(verdict.triggered_bugs)
                if key in seen_reports:
                    continue
                seen_reports.add(key)
                result.reports.append(BugReport(
                    compiler=verdict.compiler,
                    status=verdict.status,
                    phase=verdict.phase,
                    message=verdict.message,
                    triggered_bugs=list(verdict.triggered_bugs),
                    iteration=iteration,
                ))
            result.timeline.append(
                {"elapsed": time.monotonic() - start, "iteration": float(iteration)})
            if on_iteration is not None:
                on_iteration(iteration, case)

        result.iterations = iteration
        result.elapsed = time.monotonic() - start
        return result

    # ------------------------------------------------------------------ #
    def _budget_exhausted(self, iteration: int, start: float) -> bool:
        if self.config.max_iterations is not None and \
                iteration >= self.config.max_iterations:
            return True
        if self.config.time_budget is not None and \
                (time.monotonic() - start) >= self.config.time_budget:
            return True
        return False

    def _generate(self, iteration: int) -> Optional[GeneratedModel]:
        config = self.config.generator
        per_iteration = GeneratorConfig(
            n_nodes=config.n_nodes,
            max_dim=config.max_dim,
            max_rank=config.max_rank,
            seed=(config.seed or 0) * 100_003 + iteration + self.config.seed,
            forward_probability=config.forward_probability,
            weight_probability=config.weight_probability,
            use_binning=config.use_binning,
            n_bins=config.n_bins,
            op_pool=config.op_pool,
            dtype_weights=config.dtype_weights,
            max_attempts_per_node=config.max_attempts_per_node,
        )
        try:
            return generate_model(per_iteration)
        except (GenerationError, ReproError):
            return None

    def _test_one(self, generated: GeneratedModel,
                  rng: np.random.Generator) -> Optional[CaseResult]:
        search = search_values(generated.model,
                               method=self.config.value_search_method,
                               rng=rng,
                               time_budget=self.config.value_search_budget)
        model = search.apply_weights(generated.model) if search.weights else generated.model
        try:
            return self.tester.run_case(model, inputs=search.inputs or None)
        except ReproError:
            return None
