"""The end-to-end fuzzing campaign loop.

One iteration = generate a model (Algorithm 1 + 2), search for numerically
valid inputs/weights (Algorithm 3), then differentially test every compiler
under test.  The campaign records:

* unique bug reports (deduplicated by crash message / mismatch signature,
  following §5.1's bug counting) and their ground-truth seeded-bug ids;
* the operator-instance signatures exercised (Figure 9's diversity metric);
* per-iteration timing, usable for the coverage/throughput figures.

The single-iteration step is factored into module-level pure functions
(:func:`iteration_seed`, :func:`generate_for_iteration`,
:func:`run_campaign_iteration`, :func:`fold_case`) so the serial loop here
and the sharded parallel engine in :mod:`repro.core.parallel` share exactly
the same per-iteration behaviour — a prerequisite for the parallel engine's
serial-equivalence guarantee.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.compilers.base import Compiler
from repro.compilers.bugs import BugConfig
from repro.compilers.coverage import CoverageFeedback
from repro.core.concretize import GeneratedModel
from repro.core.difftest import CaseResult, DifferentialTester, first_line
from repro.core.generator import GeneratorConfig, generate_model
from repro.core.oracle import DEFAULT_ORACLE, build_oracle
from repro.core.strategy import (DEFAULT_STRATEGY, GenerationStrategy,
                                 build_strategy, strategy_entropy)
from repro.core.value_search import search_values
from repro.errors import GenerationError, ReproError
from repro.runtime.interpreter import random_inputs


@dataclass
class BugReport:
    """A deduplicated finding of the campaign."""

    compiler: str
    status: str
    phase: str
    message: str
    triggered_bugs: List[str]
    iteration: int
    #: Pass provenance: the passes that rewrote the IR in the compilation
    #: this finding came from (not part of the dedup key).
    modified_by: List[str] = field(default_factory=list)
    #: Per-node perf attribution for ``perf`` findings (see
    #: :class:`repro.core.difftest.CompilerVerdict.slow_nodes`).
    slow_nodes: List[Dict[str, str]] = field(default_factory=list)

    @property
    def seeded_ids(self) -> List[str]:
        return list(self.triggered_bugs)

    def dedup_key(self) -> str:
        """Same key as :meth:`CompilerVerdict.dedup_key` — crash messages are
        deduplicated by first line, semantic mismatches by compiler/phase,
        perf/gradient/verifier findings by compiler/phase + triggered seeded
        bugs."""
        if self.status == "crash":
            return f"{self.compiler}|crash|{first_line(self.message)}"
        if self.status in ("perf", "gradient", "verifier"):
            marks = "+".join(sorted(self.triggered_bugs))
            return f"{self.compiler}|{self.status}|{self.phase}|{marks}"
        return f"{self.compiler}|{self.status}|{self.phase}"


@dataclass
class FuzzerConfig:
    """Campaign configuration."""

    generator: GeneratorConfig = field(default_factory=GeneratorConfig)
    value_search_method: str = "gradient_proxy"
    #: Wall-clock budget per value search (None = no time bound; searches are
    #: then limited only by their step counts, which makes them deterministic).
    value_search_budget: Optional[float] = 0.064
    #: Step bound per value search (None = the search method's default).
    value_search_max_steps: Optional[int] = None
    #: Stop after this many iterations (None = unbounded).
    max_iterations: Optional[int] = 100
    #: Stop after this much wall-clock time in seconds (None = unbounded).
    time_budget: Optional[float] = None
    bugs: BugConfig = field(default_factory=BugConfig.all)
    seed: int = 0
    #: Probe every compiler's operator support matrix (by asking it which of
    #: the pool's operator kinds it implements) and only generate operators
    #: every compiler supports, avoiding "Not-Implemented" noise (§4).
    #: Only meaningful for strategies whose capabilities declare
    #: ``supports_op_pool`` (probing is skipped otherwise).
    probe_operator_support: bool = True
    #: Registered generation strategy producing this campaign's models
    #: (see :mod:`repro.core.strategy`).
    strategy: str = DEFAULT_STRATEGY
    #: Registered oracle judging every test case
    #: (see :mod:`repro.core.oracle`).
    oracle: str = DEFAULT_ORACLE
    #: Pipeline token of this campaign/cell (``"O<k>"`` or
    #: ``"rand:<seed>:<index>"``, see :mod:`repro.compilers.pipeline`);
    #: None means "the canonical pipeline of each compiler's opt level" —
    #: the historical behavior.
    pipeline: Optional[str] = None
    #: Hot-path caching (:mod:`repro.core.cache`): compiled-artifact reuse,
    #: shape-infer memoization and interpreter execution plans.  Provably
    #: invisible to findings — a campaign with caches on is bit-identical
    #: to caches off (enforced by ``tests/core/test_hot_path_cache.py``) —
    #: so the only reason to turn this off is benchmarking the cold path.
    enable_cache: bool = True
    #: Check IR well-formedness at every pass boundary of every compile
    #: (:mod:`repro.analysis`).  Violations surface as ``verifier``
    #: verdicts; with the flag off campaign findings are bit-identical to
    #: historical behavior.
    verify_passes: bool = False


@dataclass
class CellOutcome:
    """Per-matrix-cell provenance of a campaign result.

    A *cell* is the matrix campaign engine's work unit: one shard's seed
    stream run against one compiler subset at one optimization level
    (:class:`repro.core.parallel.MatrixCell`).  Keeping per-cell iteration
    counts and bug sets inside the merged :class:`CampaignResult` lets
    :mod:`repro.experiments.venn` compute per-backend / per-opt-level bug
    Venn diagrams directly from a single campaign.
    """

    shard: int
    #: Compiler subset names; empty means "the campaign's default factory".
    compilers: Tuple[str, ...] = ()
    #: Optimization level; None means "whatever the factory chose".
    opt_level: Optional[int] = None
    iterations: int = 0
    seeded_bugs_found: Set[str] = field(default_factory=set)
    #: Deduplicated report keys observed in this cell.
    report_keys: Set[str] = field(default_factory=set)
    #: Generation strategy of this cell; None means "the campaign default"
    #: (campaigns without a generator axis keep their PR-2 cell keys).
    generator: Optional[str] = None
    #: Test oracle of this cell; None means "the campaign config's oracle"
    #: (campaigns without an oracle axis keep their pre-v5 cell keys).
    oracle: Optional[str] = None
    #: Compiler branch arcs this cell covered, as encoded strings
    #: (:func:`repro.compilers.coverage.arc_to_str`).  Empty unless the
    #: campaign ran with coverage feedback (``--schedule coverage``), in
    #: which case :func:`repro.experiments.venn.campaign_cell_sets` slices
    #: coverage along any matrix axis exactly like bugs.
    coverage_arcs: Set[str] = field(default_factory=set)
    #: Pipeline token of this cell; None means "the canonical pipeline of
    #: the cell's opt level" (campaigns without a pipeline axis keep their
    #: pre-v6 cell keys).
    pipeline: Optional[str] = None
    #: Whether the coordinator cut this cell short under an explicit
    #: ``--stagnation-budget`` (its novelty rate stayed at zero for longer
    #: than the budget).  Recorded so result consumers can distinguish
    #: "explored its whole budget" from "plateaued and was terminated".
    early_terminated: bool = False

    def key(self) -> str:
        """Stable identifier of the matrix cell this outcome belongs to.

        Axis components are appended only when the axis is in use, so
        campaigns without a generator/oracle/pipeline axis keep their
        historical keys (and therefore their checkpoint cell entries)
        unchanged.
        """
        names = "+".join(self.compilers) if self.compilers else "<default>"
        opt = "O?" if self.opt_level is None else f"O{self.opt_level}"
        base = f"shard{self.shard}|{names}|{opt}"
        if self.generator is not None:
            base = f"{base}|{self.generator}"
        if self.oracle is not None:
            base = f"{base}|oracle:{self.oracle}"
        if self.pipeline is not None:
            base = f"{base}|pipe:{self.pipeline}"
        return base

    def copy(self) -> "CellOutcome":
        return CellOutcome(self.shard, tuple(self.compilers), self.opt_level,
                           self.iterations, set(self.seeded_bugs_found),
                           set(self.report_keys), self.generator,
                           self.oracle, set(self.coverage_arcs),
                           self.pipeline, self.early_terminated)

    def fold(self, other: "CellOutcome") -> None:
        """Accumulate another outcome of the *same* cell into this one."""
        self.iterations += other.iterations
        self.seeded_bugs_found |= other.seeded_bugs_found
        self.report_keys |= other.report_keys
        self.coverage_arcs |= other.coverage_arcs
        self.early_terminated = self.early_terminated or other.early_terminated


@dataclass
class CampaignResult:
    """Aggregated results of one fuzzing campaign."""

    iterations: int = 0
    generated_models: int = 0
    generation_failures: int = 0
    numerically_valid_models: int = 0
    elapsed: float = 0.0
    reports: List[BugReport] = field(default_factory=list)
    operator_instances: Set[str] = field(default_factory=set)
    seeded_bugs_found: Set[str] = field(default_factory=set)
    #: (elapsed seconds, iteration) samples for throughput plots.
    timeline: List[Dict[str, float]] = field(default_factory=list)
    #: Per-matrix-cell provenance, keyed by :meth:`CellOutcome.key`.  Empty
    #: for plain serial campaigns that have no cell structure.
    cells: Dict[str, CellOutcome] = field(default_factory=dict)
    #: Union of compiler branch arcs covered (encoded strings, see
    #: :func:`repro.compilers.coverage.arc_to_str`).  For a streamed
    #: one-iteration partial this holds that iteration's *delta* — arcs new
    #: to the emitting worker's view of the cell — so union-folding partials
    #: reproduces the cumulative set.  Empty without coverage feedback.
    coverage_arcs: Set[str] = field(default_factory=set)
    #: Coverage-over-time samples (``cell``, ``elapsed``, ``iteration``,
    #: ``total``, ``pass_only``, ``global_total``), appended by the
    #: campaign coordinator per folded iteration — the data behind the
    #: Figure 4/5-style coverage curves, per cell and global.
    coverage_timeline: List[Dict[str, Any]] = field(default_factory=list)
    #: Per-stage cache telemetry (``{stage: {"hits": n, "misses": m}}``,
    #: stages from :data:`repro.core.cache.STAGES`).  Pure telemetry:
    #: excluded from checkpoints and from every equivalence signature, and
    #: reset to zero on a checkpoint resume.
    cache_stats: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def unique_crashes(self, compiler: Optional[str] = None) -> int:
        keys = {first_line(report.message)
                for report in self.reports
                if report.status == "crash" and
                (compiler is None or report.compiler == compiler)}
        return len(keys)

    def bugs_by_system(self) -> Dict[str, int]:
        found: Dict[str, Set[str]] = {}
        for report in self.reports:
            for bug_id in report.triggered_bugs:
                system = bug_id.split("-")[0]
                found.setdefault(system, set()).add(bug_id)
        return {system: len(ids) for system, ids in found.items()}

    # ------------------------------------------------------------------ #
    def merge(self, other: "CampaignResult") -> "CampaignResult":
        """Fold another (shard) result into this one, in place.

        Counters add up; bug/operator sets union; reports are globally
        re-deduplicated by :meth:`BugReport.dedup_key` keeping the first
        occurrence in fold order.  ``elapsed`` is the max of the two (shards
        run concurrently), and the merged timeline re-numbers iterations
        cumulatively in elapsed order so throughput plots stay monotonic.
        """
        self.iterations += other.iterations
        self.generated_models += other.generated_models
        self.generation_failures += other.generation_failures
        self.numerically_valid_models += other.numerically_valid_models
        self.elapsed = max(self.elapsed, other.elapsed)
        seen = {report.dedup_key() for report in self.reports}
        for report in other.reports:
            key = report.dedup_key()
            if key not in seen:
                seen.add(key)
                self.reports.append(report)
        self.operator_instances.update(other.operator_instances)
        self.seeded_bugs_found.update(other.seeded_bugs_found)
        samples = sorted(self.timeline + other.timeline,
                         key=lambda sample: sample["elapsed"])
        self.timeline = [{"elapsed": sample["elapsed"], "iteration": float(rank)}
                         for rank, sample in enumerate(samples, start=1)]
        self.coverage_arcs |= other.coverage_arcs
        for stage, counters in other.cache_stats.items():
            mine = self.cache_stats.setdefault(stage, {"hits": 0, "misses": 0})
            mine["hits"] += counters.get("hits", 0)
            mine["misses"] += counters.get("misses", 0)
        # Coverage samples keep their per-cell identity (unlike the
        # throughput timeline they are never renumbered); ``global_total``
        # is stamped by the coordinator that owned the campaign-wide union,
        # so merging keeps it meaningful only within one campaign.
        self.coverage_timeline = sorted(
            self.coverage_timeline + other.coverage_timeline,
            key=lambda sample: sample["elapsed"])
        for key, cell in other.cells.items():
            mine = self.cells.get(key)
            if mine is None:
                self.cells[key] = cell.copy()
            else:
                mine.fold(cell)
        return self

    @classmethod
    def merge_all(cls, results: Sequence["CampaignResult"]) -> "CampaignResult":
        """Merge shard results (in shard order) into a fresh campaign result."""
        merged = cls()
        for result in results:
            merged.merge(result)
        return merged


# --------------------------------------------------------------------------- #
# The single-iteration step, shared by the serial and parallel engines.
# --------------------------------------------------------------------------- #
def iteration_seed(campaign_seed: int, generator_seed: Optional[int],
                   iteration: int, stream: int = 0,
                   strategy: Optional[str] = None) -> int:
    """Mix campaign seed, generator seed and iteration into one stream seed.

    Uses :class:`numpy.random.SeedSequence` so nearby campaign seeds produce
    unrelated per-iteration streams.  (The previous linear mixing
    ``gen_seed * 100_003 + iteration + campaign_seed`` made campaigns with
    seeds ``s`` and ``s + 1`` replay almost the same generator stream shifted
    by one iteration.)

    ``stream`` separates independent per-iteration consumers: stream 0 seeds
    the model generator, stream 1 the value-search RNG.  ``strategy`` mixes
    the generation strategy's name into the entropy so different strategies
    explore unrelated streams; the default (``nnsmith``) contributes *no*
    extra entropy, keeping these seeds bit-identical to the pre-registry
    engine (existing campaign seeds and the frozen corpus stay meaningful).
    Seeding *every* random decision of an iteration from ``(config,
    iteration)`` alone makes iterations order-independent, which is what
    lets the matrix campaign engine checkpoint mid-cell and re-execute any
    subset of iterations on any worker while still reproducing a serial run
    exactly.
    """
    entropy = [campaign_seed % (1 << 63), (generator_seed or 0) % (1 << 63),
               iteration % (1 << 63), stream % (1 << 63)]
    extra = strategy_entropy(strategy)
    if extra is not None:
        entropy.append(extra)
    return int(np.random.SeedSequence(tuple(entropy))
               .generate_state(1, np.uint64)[0])


def iteration_rng(config: "FuzzerConfig", iteration: int) -> np.random.Generator:
    """The value-search RNG for one iteration (stream 1 of the seed mix)."""
    return np.random.default_rng(
        iteration_seed(config.seed, config.generator.seed, iteration, stream=1,
                       strategy=config.strategy))


def generate_for_iteration(config: FuzzerConfig, iteration: int,
                           strategy: Optional[GenerationStrategy] = None
                           ) -> Optional[GeneratedModel]:
    """Generate this iteration's model, or None when generation fails.

    ``strategy`` lets long-lived callers (the serial fuzzer, cell workers)
    reuse one strategy instance; by default the config's named strategy is
    built fresh — equivalent, since ``generate`` is pure in
    ``(seed, iteration)``.
    """
    if strategy is None:
        strategy = build_strategy(config.strategy, config)
    seed = iteration_seed(config.seed, config.generator.seed, iteration,
                          strategy=config.strategy)
    try:
        return strategy.generate(seed, iteration)
    except (GenerationError, ReproError):
        return None


def search_and_difftest(tester: DifferentialTester, config: FuzzerConfig,
                         generated: GeneratedModel,
                         rng: np.random.Generator,
                         strategy: Optional[GenerationStrategy] = None,
                         coverage: Optional[CoverageFeedback] = None
                         ) -> Optional[CaseResult]:
    """Value-search a generated model and test it against the oracle.

    Inputs and weights are forwarded to the oracle only when the search
    *succeeded*; a failed search's last-trial values are known-invalid, so
    the case is re-tested with the model's original weights on fresh random
    inputs instead, and the numeric-validity flag established by a
    successful search is recorded rather than re-derived.

    Strategies that do not declare ``needs_value_search`` (the mutation
    baselines) skip Algorithm 3 entirely and are tested on plain random
    inputs, like the paper's head-to-head comparison.

    ``coverage`` is the optional per-iteration feedback channel: the oracle
    call (compile + run, the only part that executes compiler code) runs
    under its tracer, so every campaign iteration can report branch arcs —
    not just the bespoke coverage-experiment loops.  Generation and value
    search stay untraced: they never enter the compiler packages, and
    ``sys.settrace`` overhead there would be pure cost.
    """

    def judged(model, inputs, validity):
        if coverage is None:
            return tester.run_case(model, inputs=inputs,
                                   numerically_valid=validity)
        with coverage.tracer:
            return tester.run_case(model, inputs=inputs,
                                   numerically_valid=validity)

    if strategy is not None and not strategy.capabilities.needs_value_search:
        try:
            return judged(generated.model,
                          random_inputs(generated.model, rng), None)
        except ReproError:
            return None
    search = search_values(generated.model,
                           method=config.value_search_method,
                           rng=rng,
                           time_budget=config.value_search_budget,
                           max_steps=config.value_search_max_steps)
    if search.success:
        model = search.apply_weights(generated.model) if search.weights \
            else generated.model
        inputs, validity = search.inputs, True
    else:
        model = generated.model
        inputs, validity = random_inputs(model, rng), None
    try:
        return judged(model, inputs, validity)
    except ReproError:
        return None


def run_campaign_iteration(tester: DifferentialTester, config: FuzzerConfig,
                           iteration: int, rng: np.random.Generator,
                           strategy: Optional[GenerationStrategy] = None,
                           coverage: Optional[CoverageFeedback] = None
                           ) -> Tuple[Optional[GeneratedModel], Optional[CaseResult]]:
    """One full generate → value-search → oracle step (pure, picklable)."""
    generated = generate_for_iteration(config, iteration, strategy)
    if generated is None:
        return None, None
    return generated, search_and_difftest(tester, config, generated, rng,
                                          strategy, coverage)


def _bug_observable_by(bug_id: str, status: str) -> bool:
    """Whether a verdict of ``status`` can actually *observe* a seeded bug.

    Oracle-only bugs ride along in trigger sets recorded at compile/backward
    time — e.g. the repack pessimization tags its node during *every*
    oracle's compile, so a difftest crash on the same model would otherwise
    credit a ``perf``-symptom bug to difftest, corrupting the per-oracle
    Venn.  A ``perf`` bug counts as found only through a ``perf`` verdict,
    a ``gradient`` bug only through a ``gradient`` verdict and a
    ``verifier`` bug only through a ``verifier`` verdict;
    crash/semantic bugs keep their historical any-failing-verdict credit.
    """
    from repro.compilers.bugs import _ALL_BUGS

    spec = _ALL_BUGS.get(bug_id)
    if spec is None or spec.symptom not in ("perf", "gradient", "verifier"):
        return True
    return status == spec.symptom


def fold_case(result: CampaignResult, case: CaseResult, iteration: int,
              seen_reports: Set[str]) -> List[BugReport]:
    """Fold one case's verdicts into a campaign result, deduplicating reports.

    Returns the reports that were new to this campaign (useful for streaming
    findings out of parallel shard workers).
    """
    fresh: List[BugReport] = []
    if case.numerically_valid:
        result.numerically_valid_models += 1
    for verdict in case.verdicts:
        if not verdict.found_bug:
            continue
        result.seeded_bugs_found.update(
            bug for bug in verdict.triggered_bugs
            if _bug_observable_by(bug, verdict.status))
        key = verdict.dedup_key()
        if key in seen_reports:
            continue
        seen_reports.add(key)
        report = BugReport(
            compiler=verdict.compiler,
            status=verdict.status,
            phase=verdict.phase,
            message=verdict.message,
            triggered_bugs=list(verdict.triggered_bugs),
            iteration=iteration,
            modified_by=list(getattr(verdict, "modified_by", [])),
            slow_nodes=[dict(entry)
                        for entry in getattr(verdict, "slow_nodes", [])],
        )
        result.reports.append(report)
        fresh.append(report)
    return fresh


def single_iteration_result(tester: DifferentialTester, config: FuzzerConfig,
                            iteration: int, elapsed: float = 0.0,
                            strategy: Optional[GenerationStrategy] = None,
                            coverage: Optional[CoverageFeedback] = None
                            ) -> CampaignResult:
    """Run one iteration and fold it into a fresh one-iteration result.

    This is the unit of work the matrix campaign engine streams between
    workers and the coordinator: because every iteration is seeded purely
    from ``(config, iteration)`` (see :func:`iteration_seed`), merging these
    one-iteration results — in any order, across any process boundary —
    reproduces exactly what a serial loop over the same iterations computes.

    With a ``coverage`` feedback channel the oracle runs traced and the
    returned partial's ``coverage_arcs`` holds this iteration's *delta*
    (arcs new to the channel's seen-set) — compact novelty, not the
    cumulative set, which is what the worker→coordinator queue carries.
    """
    from repro.core.cache import get_cache

    result = CampaignResult(iterations=1)
    stats_before = get_cache().stats_snapshot()
    generated, case = run_campaign_iteration(
        tester, config, iteration, iteration_rng(config, iteration), strategy,
        coverage)
    result.cache_stats = get_cache().stats_delta(stats_before)
    if coverage is not None:
        result.coverage_arcs = set(coverage.flush().arcs)
    if generated is None:
        result.generation_failures += 1
        return result
    result.generated_models += 1
    result.operator_instances.update(generated.op_instances)
    if case is not None:
        fold_case(result, case, iteration, set())
        result.timeline.append(
            {"elapsed": elapsed, "iteration": float(iteration)})
    return result


def probe_supported_pool(compilers: Sequence[Compiler], pool):
    """Restrict an operator-spec pool to kinds every compiler implements.

    NNSmith probes compilers for their support matrices to avoid
    "Not-Implemented" noise (§4).  Exposed at module level so the matrix
    campaign engine can probe once over the *union* of all compilers in the
    matrix and bake the same pool into every cell — per-cell probing would
    give different compiler subsets different generator streams, breaking
    the apples-to-apples property the per-cell Venn diagrams rely on.
    """
    kinds = [spec.op_kind for spec in pool]
    supported = set(kinds)
    for compiler in compilers:
        supported &= set(compiler.supported_ops(kinds))
    filtered = [spec for spec in pool if spec.op_kind in supported]
    return filtered or list(pool)


class Fuzzer:
    """The serial fuzzing loop over the in-repo compilers.

    Generation and judging are delegated to the registries: the config's
    ``strategy`` name picks the generator (NNSmith by default), ``oracle``
    picks the verdict function (differential testing by default).
    """

    def __init__(self, compilers: Sequence[Compiler],
                 config: Optional[FuzzerConfig] = None) -> None:
        self.compilers = list(compilers)
        self.config = config or FuzzerConfig()
        self.tester = build_oracle(self.config.oracle, self.compilers,
                                   bugs=self.config.bugs)
        self.strategy = build_strategy(self.config.strategy, self.config)
        if self.config.probe_operator_support and \
                self.strategy.capabilities.supports_op_pool:
            self.config.generator.op_pool = probe_supported_pool(
                self.compilers, self.config.generator.op_pool)

    # ------------------------------------------------------------------ #
    def run(self, on_iteration: Optional[Callable[[int, CaseResult], None]] = None,
            coverage: Optional[CoverageFeedback] = None) -> CampaignResult:
        """Run the campaign until the iteration or time budget is exhausted.

        ``coverage`` optionally traces compiler branch arcs per iteration
        (see :func:`search_and_difftest`); the result then accumulates the
        covered arcs in ``coverage_arcs`` — the serial loop speaks the same
        feedback protocol as the parallel engine's workers.
        """
        from repro.core.cache import get_cache

        # Coverage tracing must see every compile: artifact-cache hits would
        # skip the traced arcs (shape-infer/plan caches are outside the
        # tracer's scope and stay on).
        get_cache().configure(
            enabled=self.config.enable_cache,
            artifact=self.config.enable_cache and coverage is None,
            plan=self.config.enable_cache,
            prefix=self.config.enable_cache)
        stats_before = get_cache().stats_snapshot()
        result = CampaignResult()
        seen_reports: Set[str] = set()
        start = time.monotonic()
        iteration = 0

        while not self._budget_exhausted(iteration, start):
            iteration += 1
            generated, case = run_campaign_iteration(
                self.tester, self.config, iteration,
                iteration_rng(self.config, iteration), self.strategy, coverage)
            if coverage is not None:
                result.coverage_arcs.update(coverage.flush().arcs)
            if generated is None:
                result.generation_failures += 1
                continue
            result.generated_models += 1
            result.operator_instances.update(generated.op_instances)
            if case is None:
                continue
            fold_case(result, case, iteration, seen_reports)
            result.timeline.append(
                {"elapsed": time.monotonic() - start, "iteration": float(iteration)})
            if on_iteration is not None:
                on_iteration(iteration, case)

        result.iterations = iteration
        result.elapsed = time.monotonic() - start
        result.cache_stats = get_cache().stats_delta(stats_before)
        return result

    # ------------------------------------------------------------------ #
    def _budget_exhausted(self, iteration: int, start: float) -> bool:
        if self.config.max_iterations is not None and \
                iteration >= self.config.max_iterations:
            return True
        if self.config.time_budget is not None and \
                (time.monotonic() - start) >= self.config.time_budget:
            return True
        return False

    def _generate(self, iteration: int) -> Optional[GeneratedModel]:
        """Back-compat shim over :func:`generate_for_iteration`."""
        return generate_for_iteration(self.config, iteration, self.strategy)

    def _test_one(self, generated: GeneratedModel,
                  rng: np.random.Generator) -> Optional[CaseResult]:
        """Back-compat shim over :func:`search_and_difftest`."""
        return search_and_difftest(self.tester, self.config, generated, rng,
                                   self.strategy)
