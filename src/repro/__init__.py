"""repro — a from-scratch reproduction of NNSmith (ASPLOS 2023).

The package contains both the paper's contribution (the NNSmith fuzzer, in
:mod:`repro.core`) and every substrate it depends on, rebuilt natively:

* :mod:`repro.graph` — the model interchange format (ONNX analogue);
* :mod:`repro.ops` — reference operator semantics and shape inference;
* :mod:`repro.solver` — an incremental integer constraint solver (Z3 analogue);
* :mod:`repro.autodiff` — reverse-mode autodiff over graphs (PyTorch analogue);
* :mod:`repro.runtime` — the oracle interpreter and the model exporter;
* :mod:`repro.compilers` — the systems under test (GraphRT, DeepC, Turbo)
  with seeded bugs and coverage instrumentation;
* :mod:`repro.baselines` — LEMON / GraphFuzzer / Tzer baseline generators;
* :mod:`repro.experiments` — drivers regenerating every table and figure.
"""

__version__ = "0.1.0"

__all__ = ["__version__"]
