"""Tensor element data types and promotion rules.

The repro package supports a small but representative set of element types:
two floating-point widths, two integer widths and booleans.  This matches the
set NNSmith exercises when fuzzing ONNX-based compilers and is sufficient to
reproduce the integer-width-mismatch and dtype-mismatch bug patterns the
paper describes (int32 vs int64 shape arithmetic, Clip on int32, ...).
"""

from __future__ import annotations

import enum
from typing import Union

import numpy as np


class DType(enum.Enum):
    """Element type of a tensor."""

    float32 = "float32"
    float64 = "float64"
    int32 = "int32"
    int64 = "int64"
    bool_ = "bool"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DType.{self.name}"

    def __str__(self) -> str:
        return self.value

    @property
    def is_float(self) -> bool:
        return self in (DType.float32, DType.float64)

    @property
    def is_int(self) -> bool:
        return self in (DType.int32, DType.int64)

    @property
    def is_bool(self) -> bool:
        return self is DType.bool_

    @property
    def numpy(self) -> np.dtype:
        """The numpy dtype backing this element type."""
        return _NUMPY_DTYPES[self]

    @property
    def bytes(self) -> int:
        """Size of one element in bytes."""
        return int(np.dtype(self.numpy).itemsize)

    @classmethod
    def from_str(cls, name: str) -> "DType":
        """Parse a dtype from its string name (``"float32"``, ``"bool"``...)."""
        for member in cls:
            if member.value == name:
                return member
        raise ValueError(f"unknown dtype name: {name!r}")

    @classmethod
    def from_numpy(cls, dtype: Union[np.dtype, type]) -> "DType":
        """Map a numpy dtype back to a :class:`DType`."""
        np_dtype = np.dtype(dtype)
        for member, candidate in _NUMPY_DTYPES.items():
            if np.dtype(candidate) == np_dtype:
                return member
        raise ValueError(f"unsupported numpy dtype: {np_dtype}")


_NUMPY_DTYPES = {
    DType.float32: np.float32,
    DType.float64: np.float64,
    DType.int32: np.int32,
    DType.int64: np.int64,
    DType.bool_: np.bool_,
}

#: All supported dtypes, in a deterministic order.
ALL_DTYPES = (DType.float32, DType.float64, DType.int32, DType.int64, DType.bool_)

#: Floating point dtypes.
FLOAT_DTYPES = (DType.float32, DType.float64)

#: Integer dtypes.
INT_DTYPES = (DType.int32, DType.int64)

#: Dtypes usable as numeric computation (float or int, not bool).
NUMERIC_DTYPES = FLOAT_DTYPES + INT_DTYPES

_PROMOTION_ORDER = {
    DType.bool_: 0,
    DType.int32: 1,
    DType.int64: 2,
    DType.float32: 3,
    DType.float64: 4,
}


def promote(lhs: DType, rhs: DType) -> DType:
    """Return the result dtype of a binary elementwise operation.

    The promotion lattice is ``bool < int32 < int64 < float32 < float64``,
    mirroring ONNX/PyTorch behaviour closely enough for the operators the
    fuzzer generates (mixed-dtype operands are rare because operator
    specifications usually require equal dtypes).
    """
    return lhs if _PROMOTION_ORDER[lhs] >= _PROMOTION_ORDER[rhs] else rhs
