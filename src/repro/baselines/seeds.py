"""Seed models for the LEMON baseline (its "pre-trained model zoo").

LEMON mutates existing real-world models rather than generating graphs from
scratch.  The zoo here contains three hand-built architectures of realistic
shape — a small CNN classifier, an MLP and a two-branch (multi-input) network
— which play the role of LEMON's Keras model corpus.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.graph.builder import GraphBuilder
from repro.graph.model import Model


def _rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


def build_cnn_classifier(seed: int = 0) -> Model:
    """Conv/BN/ReLU/Pool stacks followed by a dense classifier head."""
    rng = _rng(seed)
    builder = GraphBuilder("seed_cnn")
    x = builder.input([1, 4, 16, 16], name="image")
    channels = 4
    value = x
    for stage, out_channels in enumerate((8, 16)):
        weight = builder.weight(
            rng.normal(0, 0.4, size=(out_channels, channels, 3, 3)).astype(np.float32))
        value = builder.op1("Conv2d", [value, weight], stride=1, padding=1)
        scale = builder.weight(np.ones(out_channels, dtype=np.float32))
        bias = builder.weight(np.zeros(out_channels, dtype=np.float32))
        mean = builder.weight(np.zeros(out_channels, dtype=np.float32))
        var = builder.weight(np.ones(out_channels, dtype=np.float32))
        value = builder.op1("BatchNorm", [value, scale, bias, mean, var], epsilon=1e-5)
        value = builder.op1("Relu", [value])
        value = builder.op1("MaxPool2d", [value], kh=2, kw=2, stride=2, padding=0)
        channels = out_channels
    value = builder.op1("GlobalAvgPool2d", [value])
    value = builder.op1("Flatten", [value], axis=1)
    dense_w = builder.weight(rng.normal(0, 0.4, size=(channels, 10)).astype(np.float32))
    dense_b = builder.weight(np.zeros(10, dtype=np.float32))
    value = builder.op1("Gemm", [value, dense_w, dense_b])
    value = builder.op1("Softmax", [value], axis=1)
    builder.output(value)
    return builder.build()


def build_mlp(seed: int = 1) -> Model:
    """A plain three-layer perceptron with elementwise activations."""
    rng = _rng(seed)
    builder = GraphBuilder("seed_mlp")
    value = builder.input([4, 32], name="features")
    widths = (32, 24, 16, 8)
    for index in range(len(widths) - 1):
        weight = builder.weight(
            rng.normal(0, 0.3, size=(widths[index], widths[index + 1])).astype(np.float32))
        bias = builder.weight(np.zeros(widths[index + 1], dtype=np.float32))
        value = builder.op1("Gemm", [value, weight, bias])
        value = builder.op1("Tanh" if index % 2 else "Relu", [value])
    value = builder.op1("Softmax", [value], axis=1)
    builder.output(value)
    return builder.build()


def build_two_branch(seed: int = 2) -> Model:
    """A two-input network whose branches are merged by broadcasadd."""
    rng = _rng(seed)
    builder = GraphBuilder("seed_two_branch")
    image = builder.input([1, 4, 8, 8], name="image")
    side = builder.input([1, 4, 1, 1], name="side")
    weight = builder.weight(rng.normal(0, 0.4, size=(4, 4, 3, 3)).astype(np.float32))
    conv = builder.op1("Conv2d", [image, weight], stride=1, padding=1)
    act = builder.op1("Sigmoid", [conv])
    merged = builder.op1("Add", [act, side])
    pooled = builder.op1("AvgPool2d", [merged], kh=2, kw=2, stride=2, padding=0)
    flat = builder.op1("Flatten", [pooled], axis=1)
    builder.output(flat)
    return builder.build()


def build_seed_models() -> List[Model]:
    """The full LEMON seed corpus."""
    return [build_cnn_classifier(), build_mlp(), build_two_branch()]
