"""Baseline test-case generators: LEMON, GraphFuzzer and Tzer."""

from repro.baselines.graphfuzzer import GraphFuzzerGenerator
from repro.baselines.lemon import LemonGenerator
from repro.baselines.seeds import build_seed_models
from repro.baselines.tzer import TzerFuzzer

__all__ = [
    "GraphFuzzerGenerator",
    "LemonGenerator",
    "TzerFuzzer",
    "build_seed_models",
]
