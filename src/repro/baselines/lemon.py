"""LEMON baseline: mutation of pre-trained models with shape-preserving ops.

Reimplements LEMON's *design* as described in §5.1/§6.1 of the paper: starting
from a zoo of real models, each test case is obtained by applying mutation
rules — inserting or deleting *shape-preserving* (elementwise unary) layers,
or perturbing weights.  Because only type-preserving operators may be touched,
LEMON can never create the non-shape-preserving connections (broadcasts,
convolution/slice patterns, ...) that trigger most of the seeded bugs, which
is exactly the limitation the paper demonstrates.

LEMON is also the slowest generator: it always carries full-size real models,
which the coverage experiments reflect in its lower iteration throughput.
"""

from __future__ import annotations

import random
from typing import List, Optional

import numpy as np

from repro.baselines.seeds import build_seed_models
from repro.graph.model import Model
from repro.graph.node import Node
from repro.graph.validate import is_valid
from repro.ops.registry import SHAPE_PRESERVING_OPS

#: Unary shape-preserving operators LEMON may insert (float-friendly subset).
_INSERTABLE = tuple(op for op in SHAPE_PRESERVING_OPS
                    if op not in ("Not", "Cast", "Clip", "Softmax"))


class LemonGenerator:
    """Produces mutated models from the seed zoo."""

    name = "lemon"

    def __init__(self, seed: int = 0, max_pool_size: int = 32,
                 pool: Optional[List[Model]] = None) -> None:
        self.rng = random.Random(seed)
        self.max_pool_size = max_pool_size
        #: ``pool`` lets callers (the registry's LemonStrategy) reuse an
        #: already-built zoo instead of rebuilding the seed models per
        #: instance; the list is adopted, not copied.
        self._pool: List[Model] = pool if pool is not None else build_seed_models()

    # ------------------------------------------------------------------ #
    def next_case(self) -> Model:
        """One LEMON iteration: pick a model from the pool and mutate it."""
        parent = self.rng.choice(self._pool)
        mutant = self._mutate(parent)
        if mutant is not None and is_valid(mutant):
            if len(self._pool) < self.max_pool_size:
                self._pool.append(mutant)
            else:
                self._pool[self.rng.randrange(len(self._pool))] = mutant
            return mutant
        return parent.clone()

    # ------------------------------------------------------------------ #
    def _mutate(self, parent: Model) -> Optional[Model]:
        rule = self.rng.choice(["insert_layer", "delete_layer", "mutate_weights"])
        model = parent.clone()
        if rule == "insert_layer":
            return self._insert_layer(model)
        if rule == "delete_layer":
            return self._delete_layer(model)
        return self._mutate_weights(model)

    def _insert_layer(self, model: Model) -> Optional[Model]:
        """Insert a shape-preserving unary operator on a random float edge."""
        candidates = [name for name in model.intermediate_values()
                      if model.type_of(name).dtype.is_float]
        if not candidates:
            return None
        value = self.rng.choice(candidates)
        op_kind = self.rng.choice(_INSERTABLE)
        new_value = model.fresh_value_name("lemon")
        node = Node(op_kind, model.fresh_node_name(f"lemon_{op_kind.lower()}"),
                    [value], [new_value], {})
        # Rewire consumers of the original value to the inserted layer's
        # output, keeping graph outputs stable.
        consumers = model.consumer_map().get(value, [])
        model.add_node(node, [model.type_of(value)])
        for consumer in consumers:
            consumer.inputs = [new_value if name == value else name
                               for name in consumer.inputs]
        return model

    def _delete_layer(self, model: Model) -> Optional[Model]:
        """Remove one shape-preserving unary operator."""
        removable = [node for node in model.nodes
                     if node.op in SHAPE_PRESERVING_OPS and len(node.inputs) == 1
                     and node.outputs[0] not in model.outputs
                     and model.type_of(node.inputs[0]) == model.type_of(node.outputs[0])]
        if not removable:
            return None
        node = self.rng.choice(removable)
        model.replace_uses(node.outputs[0], node.inputs[0])
        model.remove_node(node)
        return model

    def _mutate_weights(self, model: Model) -> Model:
        """Gaussian perturbation of one weight tensor."""
        if not model.initializers:
            return model
        name = self.rng.choice(sorted(model.initializers))
        array = model.initializers[name]
        if array.dtype.kind == "f":
            noise = np.random.default_rng(self.rng.randrange(1 << 30)).normal(
                0, 0.1, size=array.shape)
            model.initializers[name] = (array + noise).astype(array.dtype)
        return model
