"""Tzer baseline: coverage-guided mutation of DeepC's low-level IR.

The original Tzer fuzzes TVM by jointly mutating low-level TIR programs and
the pass pipeline applied to them; it never exercises graph-level importers
or graph optimizations, which is why the paper finds it strong on low-level
passes but weak on graph-level coverage (Figure 8).

The reimplementation mirrors that design against DeepC: seed low-level
modules are obtained by lowering a few small graphs, and each iteration
mutates either a module (instruction metadata, deletion, duplication) or the
low-level pass pipeline, then runs the low passes and the generated code.
Coverage feedback decides whether the mutant joins the corpus.
"""

from __future__ import annotations

import random
from typing import List, Optional

import numpy as np

from repro.baselines.seeds import build_seed_models
from repro.compilers.bugs import BugConfig
from repro.compilers.coverage import CoverageTracer
from repro.compilers.deepc import codegen
from repro.compilers.deepc.converter import convert_model
from repro.compilers.deepc.lowering import lower_graph
from repro.compilers.deepc.lowir import LowModule
from repro.compilers.deepc.lowpasses import LowPassContext, default_low_pipeline
from repro.errors import ReproError


class TzerFuzzer:
    """Low-level-IR mutation fuzzer for DeepC."""

    name = "tzer"

    def __init__(self, seed: int = 0, bugs: Optional[BugConfig] = None) -> None:
        self.rng = random.Random(seed)
        self.bugs = bugs or BugConfig.all()
        self.corpus: List[LowModule] = self._build_seed_corpus()
        self.crashes: List[str] = []
        self._best_coverage = 0

    # ------------------------------------------------------------------ #
    def _build_seed_corpus(self) -> List[LowModule]:
        corpus = []
        for model in build_seed_models():
            try:
                graph, _ = convert_model(model, BugConfig.none())
                module, _ = lower_graph(graph, BugConfig.none())
                corpus.append(module)
            except ReproError:
                continue
        if not corpus:
            raise ReproError("Tzer could not build a seed corpus")
        return corpus

    # ------------------------------------------------------------------ #
    def run_iteration(self, tracer: Optional[CoverageTracer] = None) -> bool:
        """One fuzzing iteration; returns True when a crash was found."""
        parent = self.rng.choice(self.corpus)
        module = self._mutate_module(parent.clone())
        passes = self._mutate_pipeline()
        crashed = False

        before = tracer.count() if tracer is not None else 0
        try:
            ctx = LowPassContext(bugs=self.bugs, opt_level=2)
            for low_pass in passes:
                low_pass.run(module, ctx)
            self._execute(module)
        except ReproError as exc:
            crashed = True
            self.crashes.append(str(exc))
        after = tracer.count() if tracer is not None else 0

        if tracer is None or after > before:
            # Coverage feedback: keep mutants that discovered new behaviour.
            if len(self.corpus) < 64:
                self.corpus.append(module)
            else:
                self.corpus[self.rng.randrange(len(self.corpus))] = module
        return crashed

    # ------------------------------------------------------------------ #
    def _mutate_module(self, module: LowModule) -> LowModule:
        if not module.kernels:
            return module
        kernel = self.rng.choice(module.kernels)
        if not kernel.instrs:
            return module
        mutation = self.rng.choice(["vector_width", "loop_extent", "index_dtype",
                                    "duplicate", "drop"])
        instr = self.rng.choice(kernel.instrs)
        if mutation == "vector_width":
            instr.vector_width = self.rng.choice([None, 2, 4, 8])
        elif mutation == "loop_extent":
            instr.loop_extent = max(1, instr.loop_extent + self.rng.randint(-3, 3))
        elif mutation == "index_dtype":
            instr.index_dtype = self.rng.choice(["int32", "int64"])
        elif mutation == "duplicate" and len(kernel.instrs) < 24:
            kernel.instrs.insert(kernel.instrs.index(instr), instr.clone())
        elif mutation == "drop" and len(kernel.instrs) > 1:
            kernel.instrs.remove(instr)
        return module

    def _mutate_pipeline(self):
        passes = default_low_pipeline()
        self.rng.shuffle(passes)
        keep = self.rng.randint(1, len(passes))
        return passes[:keep]

    def _execute(self, module: LowModule) -> None:
        rng = np.random.default_rng(self.rng.randrange(1 << 30))
        inputs = {}
        for name in module.graph_inputs:
            ttype = module.value_types[name]
            inputs[name] = rng.uniform(1, 4, size=ttype.shape).astype(ttype.dtype.numpy)
        codegen.execute_module(module, inputs)
