"""GraphFuzzer baseline: random operator stitching with slicing/padding fixes.

Reimplements the design of Luo et al.'s graph-based fuzzer as the paper
describes it (§5.1, §6.1): models are built by randomly connecting operators
from a block corpus; when two tensors' shapes do not match, the generator
*aligns* them by slicing the larger one (or padding the smaller one) instead
of reasoning about operator constraints; non-shape-preserving operators are
only used in shape-preserving configurations (e.g. Conv2d with 1x1 kernels,
stride 1 and equal channel counts).

These alignment nodes are exactly what hides bugs like the paper's M0/M1
example, and the fixed default attributes keep its attribute diversity low.
"""

from __future__ import annotations

import random
from typing import List, Optional

import numpy as np

from repro.graph.builder import GraphBuilder
from repro.graph.model import Model

#: Elementwise unary block corpus.
_UNARY_OPS = ("Relu", "Sigmoid", "Tanh", "Abs", "Exp", "Neg", "LeakyRelu",
              "Sqrt", "Floor", "Ceil", "Identity", "Clip")
#: Binary block corpus (shapes aligned by slicing when needed).
_BINARY_OPS = ("Add", "Sub", "Mul", "Max", "Min")


class GraphFuzzerGenerator:
    """Produces randomly stitched models with slice/pad shape alignment."""

    name = "graphfuzzer"

    def __init__(self, seed: int = 0, n_nodes: int = 10) -> None:
        self.rng = random.Random(seed)
        self.n_nodes = n_nodes

    # ------------------------------------------------------------------ #
    def next_case(self) -> Model:
        from repro.dtypes import DType

        builder = GraphBuilder("graphfuzzer")
        rank4 = [1, self.rng.choice([2, 4, 8]),
                 self.rng.choice([4, 8, 16]), self.rng.choice([4, 8, 16])]
        # GraphFuzzer occasionally uses double-precision inputs (this is how
        # it found the ReLU/Clip fusion bug the paper mentions).
        dtype = DType.float64 if self.rng.random() < 0.25 else DType.float32
        values: List[str] = [builder.input(rank4, dtype)]
        # A second independent input with its own shape (shape mismatches are
        # later "fixed" by slicing, GraphFuzzer's signature behaviour).
        values.append(builder.input([1, self.rng.choice([2, 4, 8]),
                                     self.rng.choice([4, 8, 16]),
                                     self.rng.choice([4, 8, 16])]))
        inserted = 0
        while inserted < self.n_nodes:
            kind = self.rng.random()
            if kind < 0.45:
                values.append(self._insert_unary(builder, values))
            elif kind < 0.8:
                values.append(self._insert_binary(builder, values))
            else:
                values.append(self._insert_pseudo_complex(builder, values))
            inserted += 1
        return builder.build()

    # ------------------------------------------------------------------ #
    def _insert_unary(self, builder: GraphBuilder, values: List[str]) -> str:
        source = self.rng.choice(values)
        op = self.rng.choice(_UNARY_OPS)
        attrs = {}
        if op == "LeakyRelu":
            attrs = {"alpha": 0.01}
        elif op == "Clip":
            attrs = {"min": -1.0, "max": 1.0}
        return builder.op1(op, [source], **attrs)

    def _insert_binary(self, builder: GraphBuilder, values: List[str]) -> str:
        lhs = self.rng.choice(values)
        rhs = self.rng.choice(values)
        lhs, rhs = self._align_shapes(builder, lhs, rhs)
        op = self.rng.choice(_BINARY_OPS)
        return builder.op1(op, [lhs, rhs])

    def _insert_pseudo_complex(self, builder: GraphBuilder, values: List[str]) -> str:
        """Non-unary operators used only in shape-preserving configurations."""
        rank4 = [name for name in values if builder.model.type_of(name).rank == 4]
        if not rank4:
            return self._insert_unary(builder, values)
        source = self.rng.choice(rank4)
        shape = builder.model.type_of(source).shape
        choice = self.rng.random()
        if choice < 0.5:
            # Conv2d restricted to a 1x1 kernel, stride 1, same channel count.
            weight = builder.weight(np.random.default_rng(
                self.rng.randrange(1 << 30)).normal(0, 0.3, size=(shape[1], shape[1], 1, 1)
                                                    ).astype(np.float32))
            return builder.op1("Conv2d", [source, weight], stride=1, padding=0)
        if choice < 0.75:
            # Pooling with a unit kernel is shape preserving.
            return builder.op1("MaxPool2d", [source], kh=1, kw=1, stride=1, padding=0)
        return builder.op1("AvgPool2d", [source], kh=1, kw=1, stride=1, padding=0)

    # ------------------------------------------------------------------ #
    def _align_shapes(self, builder: GraphBuilder, lhs: str, rhs: str):
        """Slice both operands down to their common shape (GraphFuzzer's fix)."""
        lhs_type = builder.model.type_of(lhs)
        rhs_type = builder.model.type_of(rhs)
        if lhs_type.shape == rhs_type.shape:
            return lhs, rhs
        if lhs_type.rank != rhs_type.rank:
            # Flatten both to rank 1 and slice to the shorter length.
            lhs = builder.op1("Flatten", [lhs], axis=0)
            lhs = builder.op1("Reshape", [lhs],
                              shape=[builder.model.type_of(lhs).numel])
            rhs = builder.op1("Flatten", [rhs], axis=0)
            rhs = builder.op1("Reshape", [rhs],
                              shape=[builder.model.type_of(rhs).numel])
            lhs_type = builder.model.type_of(lhs)
            rhs_type = builder.model.type_of(rhs)
        target = [min(a, b) for a, b in zip(lhs_type.shape, rhs_type.shape)]
        lhs = self._slice_to(builder, lhs, target)
        rhs = self._slice_to(builder, rhs, target)
        return lhs, rhs

    @staticmethod
    def _slice_to(builder: GraphBuilder, value: str, target) -> str:
        current = builder.model.type_of(value).shape
        if list(current) == list(target):
            return value
        axes = list(range(len(target)))
        return builder.op1("Slice", [value],
                           starts=[0] * len(target),
                           ends=list(target),
                           axes=axes,
                           steps=[1] * len(target))
