"""A fluent builder for constructing models by hand.

The builder is used by tests, examples and the baseline seed-model zoo.  The
NNSmith generator itself builds models through
:mod:`repro.core.concretize`, but both paths converge on the same
:class:`~repro.graph.model.Model` representation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.dtypes import DType
from repro.graph.model import Model
from repro.graph.node import Node
from repro.graph.tensor_type import TensorType
from repro.ops.shape_infer import infer_output_types


class GraphBuilder:
    """Incrementally build a :class:`Model` with automatic shape inference."""

    def __init__(self, name: str = "model") -> None:
        self.model = Model(name)
        self._counter = 0

    # ------------------------------------------------------------------ #
    def input(self, shape: Sequence[int], dtype: DType = DType.float32,
              name: Optional[str] = None) -> str:
        """Declare a graph input and return its value name."""
        value = name or self._fresh("x")
        self.model.add_input(value, TensorType(shape, dtype))
        return value

    def weight(self, data: np.ndarray, name: Optional[str] = None) -> str:
        """Declare an initializer (constant weight) and return its value name."""
        value = name or self._fresh("w")
        self.model.add_initializer(value, np.asarray(data))
        return value

    def op(self, op: str, inputs: Sequence[str], n_outputs: int = 1,
           name: Optional[str] = None, **attrs) -> List[str]:
        """Append an operator node; output types are inferred automatically.

        Returns the list of output value names.
        """
        node_name = name or self._fresh(op.lower())
        outputs = [self._fresh("v") for _ in range(n_outputs)]
        node = Node(op, node_name, list(inputs), outputs, attrs)
        input_types = [self.model.type_of(value) for value in inputs]
        output_types = infer_output_types(node, input_types)
        if len(output_types) != n_outputs:
            # Trust inference over the caller's guess for the output count.
            outputs = [self._fresh("v") for _ in range(len(output_types))]
            node.outputs = outputs
        self.model.add_node(node, output_types)
        return outputs

    def op1(self, op: str, inputs: Sequence[str], name: Optional[str] = None,
            **attrs) -> str:
        """Like :meth:`op` but for single-output operators; returns the name."""
        return self.op(op, inputs, n_outputs=1, name=name, **attrs)[0]

    def output(self, *names: str) -> None:
        """Mark one or more values as graph outputs."""
        for value in names:
            self.model.mark_output(value)

    def build(self) -> Model:
        """Finalize and return the model.

        If no outputs were marked, every *leaf* value (produced but never
        consumed) becomes an output, which is the convention the fuzzer uses.
        """
        if not self.model.outputs:
            consumed = {name for node in self.model.nodes for name in node.inputs}
            for node in self.model.nodes:
                for produced in node.outputs:
                    if produced not in consumed:
                        self.model.mark_output(produced)
        return self.model

    # ------------------------------------------------------------------ #
    def _fresh(self, base: str) -> str:
        self._counter += 1
        return f"{base}{self._counter}"
