"""Concrete tensor types: a shape plus an element dtype.

A :class:`TensorType` is attached to every edge (value) of a computation
graph.  It is the concrete counterpart of the *abstract tensor* used by the
operator specifications in :mod:`repro.core.abstract`: abstract tensors may
carry symbolic dimensions, while a ``TensorType`` is always fully concrete.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Tuple

from repro.dtypes import DType


@dataclass(frozen=True)
class TensorType:
    """Shape and element type of a tensor value.

    Attributes:
        shape: concrete dimensions; an empty tuple denotes a scalar.
        dtype: the element type.
    """

    shape: Tuple[int, ...]
    dtype: DType

    def __init__(self, shape: Iterable[int], dtype: DType) -> None:
        object.__setattr__(self, "shape", tuple(int(dim) for dim in shape))
        object.__setattr__(self, "dtype", dtype)
        for dim in self.shape:
            if dim < 0:
                raise ValueError(f"negative dimension in shape {self.shape}")

    @property
    def rank(self) -> int:
        """Number of dimensions (0 for scalars)."""
        return len(self.shape)

    @property
    def numel(self) -> int:
        """Total number of elements."""
        return int(math.prod(self.shape)) if self.shape else 1

    @property
    def nbytes(self) -> int:
        """Total storage size in bytes."""
        return self.numel * self.dtype.bytes

    def is_scalar(self) -> bool:
        return self.rank == 0

    def with_shape(self, shape: Iterable[int]) -> "TensorType":
        """Return a copy of this type with a different shape."""
        return TensorType(shape, self.dtype)

    def with_dtype(self, dtype: DType) -> "TensorType":
        """Return a copy of this type with a different dtype."""
        return TensorType(self.shape, dtype)

    def __str__(self) -> str:
        dims = "x".join(str(d) for d in self.shape) if self.shape else "scalar"
        return f"{self.dtype}[{dims}]"


def broadcast_shapes(lhs: Tuple[int, ...], rhs: Tuple[int, ...]) -> Tuple[int, ...]:
    """Numpy-style broadcasting of two shapes.

    Raises:
        ValueError: if the shapes are not broadcast-compatible.
    """
    result = []
    for left, right in zip(_padded(lhs, rhs), _padded(rhs, lhs)):
        if left == right or right == 1:
            result.append(left)
        elif left == 1:
            result.append(right)
        else:
            raise ValueError(f"shapes {lhs} and {rhs} are not broadcastable")
    return tuple(result)


def _padded(shape: Tuple[int, ...], other: Tuple[int, ...]) -> Tuple[int, ...]:
    """Left-pad ``shape`` with 1s to the rank of the longer of the two."""
    rank = max(len(shape), len(other))
    return (1,) * (rank - len(shape)) + tuple(shape)
