"""JSON (de)serialization of models — the repo's "ONNX file format".

Weights are stored inline as nested lists, which is adequate for the small
models the fuzzer produces and keeps the format dependency-free and
human-inspectable.  The exporter in :mod:`repro.runtime.exporter` produces
models in this representation; compilers consume it through their importers.
"""

from __future__ import annotations

import json
from typing import Any, Dict

import numpy as np

from repro.dtypes import DType
from repro.errors import GraphError
from repro.graph.model import Model
from repro.graph.node import Node
from repro.graph.tensor_type import TensorType

FORMAT_VERSION = 1


def model_to_dict(model: Model) -> Dict[str, Any]:
    """Convert a model to a JSON-compatible dictionary."""
    return {
        "format_version": FORMAT_VERSION,
        "name": model.name,
        "values": {
            name: {"shape": list(ttype.shape), "dtype": str(ttype.dtype)}
            for name, ttype in model.value_types.items()
        },
        "inputs": list(model.inputs),
        "outputs": list(model.outputs),
        "initializers": {
            name: {
                "dtype": str(DType.from_numpy(array.dtype)),
                "shape": list(array.shape),
                "data": array.tolist(),
            }
            for name, array in model.initializers.items()
        },
        "nodes": [
            {
                "op": node.op,
                "name": node.name,
                "inputs": list(node.inputs),
                "outputs": list(node.outputs),
                "attrs": _encode_attrs(node.attrs),
            }
            for node in model.nodes
        ],
    }


def model_from_dict(payload: Dict[str, Any]) -> Model:
    """Rebuild a model from :func:`model_to_dict` output."""
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise GraphError(f"unsupported model format version: {version!r}")
    model = Model(payload.get("name", "model"))
    value_types = {
        name: TensorType(entry["shape"], DType.from_str(entry["dtype"]))
        for name, entry in payload.get("values", {}).items()
    }
    for name in payload.get("inputs", []):
        model.add_input(name, value_types[name])
    for name, entry in payload.get("initializers", {}).items():
        dtype = DType.from_str(entry["dtype"])
        array = np.array(entry["data"], dtype=dtype.numpy).reshape(entry["shape"])
        model.add_initializer(name, array)
    for node_entry in payload.get("nodes", []):
        node = Node(
            node_entry["op"],
            node_entry["name"],
            list(node_entry.get("inputs", [])),
            list(node_entry.get("outputs", [])),
            dict(node_entry.get("attrs", {})),
        )
        output_types = [value_types[name] for name in node.outputs]
        model.add_node(node, output_types)
    for name in payload.get("outputs", []):
        model.mark_output(name)
    return model


def dumps(model: Model, indent: int = None) -> str:
    """Serialize a model to a JSON string."""
    return json.dumps(model_to_dict(model), indent=indent)


def loads(text: str) -> Model:
    """Deserialize a model from a JSON string."""
    return model_from_dict(json.loads(text))


def save(model: Model, path: str) -> None:
    """Write a model to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps(model))


def load(path: str) -> Model:
    """Read a model from a JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        return loads(handle.read())


def to_jsonable(value: Any) -> Any:
    """Recursively convert numpy scalars/arrays and containers to JSON types.

    Shared by the model format above and by campaign checkpoints
    (:mod:`repro.core.parallel`), so every artifact the repo persists uses
    the same encoding conventions.
    """
    if isinstance(value, dict):
        return {key: to_jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = sorted(value) if isinstance(value, (set, frozenset)) else value
        return [to_jsonable(item) for item in items]
    if isinstance(value, np.ndarray):
        return to_jsonable(value.tolist())
    return _encode_attr_value(value)


def _encode_attrs(attrs: Dict[str, Any]) -> Dict[str, Any]:
    return {key: _encode_attr_value(value) for key, value in attrs.items()}


def _encode_attr_value(value: Any) -> Any:
    if isinstance(value, (list, tuple)):
        return [_encode_attr_value(item) for item in value]
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.bool_):
        return bool(value)
    return value
