"""Computation-graph IR: tensor types, nodes, models, validation, serialization."""

from repro.graph.builder import GraphBuilder
from repro.graph.model import Model
from repro.graph.node import Node
from repro.graph.tensor_type import TensorType, broadcast_shapes
from repro.graph.validate import is_valid, validate_model, validation_errors

__all__ = [
    "GraphBuilder",
    "Model",
    "Node",
    "TensorType",
    "broadcast_shapes",
    "is_valid",
    "validate_model",
    "validation_errors",
]
